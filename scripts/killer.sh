#!/usr/bin/env bash
# Kill-under-load chaos harness: SIGKILL a journaling `xbfs serve` while a
# load generator is mid-stream, restart it on the same journal, and assert
# nothing was lost — the loadgen reconnects and resends outstanding ids,
# the restarted server replays incomplete admits from the journal, and
# every digest stays consistent across the crash boundary.
#
# Usage: scripts/killer.sh [GRAPH.bin]
#   REQUESTS=400 RPS=300 KILL_AFTER=0.6 KILLS=1 scripts/killer.sh
#
# Exits nonzero if any request is lost, any digest diverges, the restarted
# server replays nothing, or the final drain is not clean.
set -euo pipefail
cd "$(dirname "$0")/.."

XBFS=${XBFS:-target/release/xbfs}
# Offered load deliberately exceeds two workers' capacity so the queue is
# backed up when the SIGKILL lands — that backlog is what replay recovers.
REQUESTS=${REQUESTS:-600}
RPS=${RPS:-2000}
KILL_AFTER=${KILL_AFTER:-0.6}   # seconds of live load before each SIGKILL
KILLS=${KILLS:-1}               # crash/restart cycles within one load run
FSYNC=${FSYNC:-batch=8}

WORK=$(mktemp -d)
SERVE_PID=""
LOAD_PID=""
cleanup() {
  [ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

GRAPH=${1:-}
if [ -z "$GRAPH" ]; then
  GRAPH="$WORK/g.bin"
  "$XBFS" generate --out "$GRAPH" --scale 12 --seed 7 > /dev/null
fi

PORT=$((20000 + RANDOM % 20000))
JOURNAL="$WORK/journal.wal"

start_server() { # $1 = serve report json path, $2 = incarnation tag
  "$XBFS" serve "$GRAPH" --addr "127.0.0.1:$PORT" --workers 2 \
    --queue-cap 256 --journal "$JOURNAL" --journal-fsync "$FSYNC" \
    --json "$1" > "$WORK/serve.$2.out" 2> "$WORK/serve.$2.err" &
  SERVE_PID=$!
}

wait_port() { # wait until the serve port accepts, or the process died
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then return 0; fi
    kill -0 "$SERVE_PID" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

# Restarting on the same port can race lingering sockets from the killed
# incarnation (EADDRINUSE); retry the whole start until the bind lands.
restart_server() { # $1 = serve report json path, $2 = incarnation tag
  for _ in $(seq 1 50); do
    start_server "$1" "$2"
    if wait_port; then return 0; fi
    wait "$SERVE_PID" 2>/dev/null || true
    sleep 0.2
  done
  echo "killer: could not rebind 127.0.0.1:$PORT after SIGKILL" >&2
  return 1
}

echo "killer: serving $GRAPH on 127.0.0.1:$PORT, journal $JOURNAL (fsync $FSYNC)"
start_server "$WORK/serve_report.0.json" 0
wait_port || { echo "killer: server never came up" >&2; exit 1; }

"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests "$REQUESTS" \
  --rps "$RPS" --connections 4 --sources 8 --retries 8 \
  --json "$WORK/loadgen.json" > "$WORK/loadgen.out" 2>&1 &
LOAD_PID=$!

for K in $(seq 1 "$KILLS"); do
  sleep "$KILL_AFTER"
  kill -0 "$LOAD_PID" 2>/dev/null \
    || { echo "killer: load finished before kill $K — raise REQUESTS or lower KILL_AFTER" >&2; exit 1; }
  echo "killer: SIGKILL incarnation $((K - 1)) (pid $SERVE_PID) under live load"
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true
  restart_server "$WORK/serve_report.$K.json" "$K"
  echo "killer: incarnation $K is up on the same journal"
done

wait "$LOAD_PID" \
  || { echo "killer: loadgen failed (lost work or diverged digests)"; cat "$WORK/loadgen.out" >&2; exit 1; }
LOAD_PID=""

# Drain the surviving incarnation so its report is flushed.
"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 1 --rps 50 \
  --shutdown > /dev/null 2>&1
wait "$SERVE_PID" || { echo "killer: final drain was not clean" >&2; exit 1; }
SERVE_PID=""

FINAL="$WORK/serve_report.$KILLS.json"
grep -q '"lost":0,' "$WORK/loadgen.json" \
  || { echo "killer: requests lost across the crash" >&2; exit 1; }
grep -q '"digests_consistent":true' "$WORK/loadgen.json" \
  || { echo "killer: digests diverged across the crash" >&2; exit 1; }
RECONNECTS=$(grep -o '"reconnects":[0-9]*' "$WORK/loadgen.json" | grep -o '[0-9]*$')
test "${RECONNECTS:-0}" -ge 1 \
  || { echo "killer: loadgen never reconnected — did the kill land?" >&2; exit 1; }
REPLAYED=$(grep -o '"replayed_requests":[0-9]*' "$FINAL" | grep -o '[0-9]*$')
test "${REPLAYED:-0}" -ge 1 \
  || { echo "killer: restarted server replayed nothing from the journal" >&2; exit 1; }
grep -q '"drain_clean":true' "$FINAL" \
  || { echo "killer: restarted server drain was not clean" >&2; exit 1; }
RECOVERY_MS=$(grep -o '"recovery_ms":[0-9.]*' "$FINAL" | grep -o '[0-9.]*$')

echo "killer: PASS — lost=0, reconnects=$RECONNECTS, replayed=$REPLAYED," \
  "recovery=${RECOVERY_MS}ms, drain clean after $KILLS SIGKILL(s)"
# Leave the composed evidence where a caller (CI) can pick it up.
if [ -n "${KILLER_OUT:-}" ]; then
  printf '{"schema":"xbfs-killer-v1","kills":%s,"reconnects":%s,"replayed_requests":%s,"recovery_ms":%s,"loadgen":%s,"serve_final":%s}\n' \
    "$KILLS" "$RECONNECTS" "$REPLAYED" "${RECOVERY_MS:-0}" \
    "$(cat "$WORK/loadgen.json")" "$(cat "$FINAL")" > "$KILLER_OUT"
  echo "killer: wrote $KILLER_OUT"
fi
