#!/usr/bin/env bash
# Local CI gate — identical to .github/workflows/ci.yml.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace --benches --examples

echo "==> cargo test --workspace"
cargo test -q --workspace --no-fail-fast

echo "==> cargo clippy -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> cargo fmt --check"
cargo fmt --all --check || echo "(fmt differences are advisory, not a gate)"

echo "==> telemetry smoke (trace export + summarize round-trip)"
XBFS=target/release/xbfs
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$XBFS" generate --out "$SMOKE/g.bin" --scale 12 --seed 7
"$XBFS" run "$SMOKE/g.bin" --trace json:- > "$SMOKE/BENCH_pr2.json"
"$XBFS" trace summarize "$SMOKE/BENCH_pr2.json" > /dev/null
grep -q '"schema":"xbfs-trace-v1"' "$SMOKE/BENCH_pr2.json"
grep -q '"gteps"' "$SMOKE/BENCH_pr2.json"
"$XBFS" run "$SMOKE/g.bin" --trace "chrome:$SMOKE/trace.json" > /dev/null
"$XBFS" trace summarize "$SMOKE/trace.json" > /dev/null
"$XBFS" cluster "$SMOKE/g.bin" --gcds 4 --inject-faults crash@1:rank1 \
  --checkpoint-every 1 --trace json:- > "$SMOKE/cluster_trace.json"
"$XBFS" trace summarize "$SMOKE/cluster_trace.json" | grep -q '1 recoveries'
mkdir -p results
cp "$SMOKE/BENCH_pr2.json" results/BENCH_pr2.json
echo "    wrote results/BENCH_pr2.json"

echo "==> sweep smoke (pooled multi-source throughput)"
"$XBFS" generate --out "$SMOKE/sweep.bin" --scale 11 --seed 11
mkdir -p results
# default --threads = available cores (a forced count oversubscribes 1-core boxes)
"$XBFS" sweep "$SMOKE/sweep.bin" --sources 64 \
  --json results/BENCH_pr3.json | tee "$SMOKE/sweep.out"
grep -q "runs/sec" "$SMOKE/sweep.out"
grep -q "bit-identical" "$SMOKE/sweep.out"
grep -q '"schema": "xbfs-sweep-v1"' results/BENCH_pr3.json
# acceptance gate: >= 3x the runs/sec of a shell loop over `xbfs bfs`,
# which pays process spawn + graph load + upload + alloc on every run
"$XBFS" bfs "$SMOKE/sweep.bin" --source 1 > /dev/null # warm the file cache
T0=$(date +%s%N)
for i in $(seq 1 16); do
  "$XBFS" bfs "$SMOKE/sweep.bin" --source $((i * 50)) > /dev/null
done
T1=$(date +%s%N)
LOOPED_RPS=$(awk -v ns="$((T1 - T0))" 'BEGIN { printf "%.1f", 16 / (ns / 1e9) }')
POOLED_RPS=$(grep -o '"runs_per_sec": [0-9.]*' results/BENCH_pr3.json \
  | head -1 | grep -o '[0-9.]*$')
echo "    pooled sweep ${POOLED_RPS} runs/sec vs looped xbfs bfs ${LOOPED_RPS} runs/sec"
awk -v p="$POOLED_RPS" -v l="$LOOPED_RPS" 'BEGIN { exit !(p >= 3.0 * l) }' \
  || { echo "pooled sweep < 3x looped xbfs bfs" >&2; exit 1; }
echo "    wrote results/BENCH_pr3.json"

echo "==> corruption smoke (SDC detection + self-healing supervisor)"
"$XBFS" generate --out "$SMOKE/corrupt.bin" --scale 11 --seed 4
# every injection target must be detected: exit 7 + IntegrityError on stderr.
# (pool flips need a parked victim buffer, which a fresh `bfs` process
# doesn't have — tests/integrity.rs covers that target.)
for SPEC in "status,seed=7" "parents,seed=13" "csr,seed=29"; do
  if "$XBFS" bfs "$SMOKE/corrupt.bin" --source 5 --verify \
      --inject-bitflips "$SPEC" 2> "$SMOKE/verify.err"; then
    echo "injection $SPEC escaped detection" >&2
    exit 1
  else
    test $? -eq 7
  fi
  grep -q "IntegrityError" "$SMOKE/verify.err"
done
# clean certified runs succeed and print the certificate
"$XBFS" bfs "$SMOKE/corrupt.bin" --source 5 --verify | grep -q "certified:"
# a clean verified sweep certifies every run and reports health
"$XBFS" sweep "$SMOKE/corrupt.bin" --sources 32 --verify \
  --json results/BENCH_pr4.json | tee "$SMOKE/sweep_clean.out"
grep -q "certified" "$SMOKE/sweep_clean.out"
grep -q '"schema": "xbfs-sweep-v1"' results/BENCH_pr4.json
grep -q '"verified": true' results/BENCH_pr4.json
CLEAN_SUM=$(grep -o '"checksum": "[^"]*"' results/BENCH_pr4.json)
# under injection the supervisor quarantines, re-executes, and the healed
# sweep is bit-identical to the clean one
"$XBFS" sweep "$SMOKE/corrupt.bin" --sources 32 --inject-bitflips status,seed=7 \
  --json "$SMOKE/BENCH_pr4_healed.json" | tee "$SMOKE/sweep_healed.out"
grep -q "32/32 certified" "$SMOKE/sweep_healed.out"
HEALED_SUM=$(grep -o '"checksum": "[^"]*"' "$SMOKE/BENCH_pr4_healed.json")
test "$CLEAN_SUM" = "$HEALED_SUM"
# exhausted retries must abort with the integrity exit code, not 0
if "$XBFS" sweep "$SMOKE/corrupt.bin" --sources 8 \
    --inject-bitflips csr,seed=11 --retries 0 2> "$SMOKE/exhausted.err"; then
  echo "expected exit 7 for exhausted retries" >&2
  exit 1
else
  test $? -eq 7
fi
grep -q "IntegrityError" "$SMOKE/exhausted.err"
# a pool byte cap degrades gracefully: pressure counted, results unchanged
"$XBFS" sweep "$SMOKE/corrupt.bin" --sources 32 --verify --max-pool-bytes 4096 \
  --json "$SMOKE/BENCH_pr4_capped.json" | tee "$SMOKE/sweep_capped.out"
grep -q "pool pressure" "$SMOKE/sweep_capped.out"
CAPPED_SUM=$(grep -o '"checksum": "[^"]*"' "$SMOKE/BENCH_pr4_capped.json")
test "$CLEAN_SUM" = "$CAPPED_SUM"
echo "    wrote results/BENCH_pr4.json"

echo "==> serve smoke (load shedding past capacity, zero drops, clean drain)"
"$XBFS" generate --out "$SMOKE/serve.bin" --scale 13 --seed 5
PORT=$((20000 + RANDOM % 20000))
# a deliberately tiny server: 1 worker, 2-deep queue — overload must shed
"$XBFS" serve "$SMOKE/serve.bin" --addr "127.0.0.1:$PORT" --workers 1 \
  --queue-cap 2 --json "$SMOKE/serve_report.json" > "$SMOKE/serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
  sleep 0.1
done
# offer far more than it can take; --shutdown drains the daemon afterwards
"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 400 --rps 4000 \
  --connections 8 --sources 16 --max-shed-pct 98 \
  --json results/BENCH_pr5.json --shutdown | tee "$SMOKE/loadgen.out"
wait "$SERVE_PID" # clean drain is exit 0; lost work would make this nonzero
grep -q '"format":"xbfs-loadgen-v1"' results/BENCH_pr5.json
grep -q '"lost":0,' results/BENCH_pr5.json
grep -q '"digests_consistent":true' results/BENCH_pr5.json
SHED=$(grep -o '"shed":[0-9]*' results/BENCH_pr5.json | grep -o '[0-9]*$')
test "$SHED" -gt 0 || { echo "expected nonzero shed past capacity" >&2; exit 1; }
grep -q '"dropped_connections":0' "$SMOKE/serve_report.json"
grep -q '"drain_clean":true' "$SMOKE/serve_report.json"
echo "    wrote results/BENCH_pr5.json (shed=$SHED)"

echo "==> certified sweep perf gate (pooled >= unpooled, both certified)"
# Both passes of a --verify sweep now certify every run, so the speedup is
# an apples-to-apples pooled-vs-unpooled ratio on the certified path.
CERT_SPEEDUP=$(grep -o '"speedup": [0-9.]*' results/BENCH_pr4.json | grep -o '[0-9.]*$')
echo "    certified pooled-vs-unpooled speedup: ${CERT_SPEEDUP}x"
awk -v s="$CERT_SPEEDUP" 'BEGIN { exit !(s >= 1.0) }' \
  || { echo "certified pooled sweep slower than unpooled rebuild" >&2; exit 1; }

echo "==> cluster serve smoke (rank crashes under live load: shed, heal, drain)"
"$XBFS" generate --out "$SMOKE/clsrv.bin" --scale 12 --seed 6
PORT=$((20000 + RANDOM % 20000))
# 2 workers, each a 4-GCD partitioned cluster engine; chaos honored
"$XBFS" serve "$SMOKE/clsrv.bin" --addr "127.0.0.1:$PORT" --workers 2 \
  --cluster 4 --allow-chaos \
  --json "$SMOKE/cluster_serve_report.json" > "$SMOKE/cluster_serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
  sleep 0.1
done
# every 3rd request injects a rank-1 crash at level 1 (recovered in-request
# by checkpoint/restart); shed requests are retried until they land
"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 48 --rps 400 \
  --connections 4 --sources 1 --chaos "crash@1:3,rank=1" --retries 10 \
  --max-shed-pct 90 --json "$SMOKE/cluster_loadgen.json" --shutdown \
  | tee "$SMOKE/cluster_loadgen.out"
wait "$SERVE_PID" # clean drain is exit 0; lost work would make this nonzero
grep -q '"lost":0,' "$SMOKE/cluster_loadgen.json"
grep -q '"digests_consistent":true' "$SMOKE/cluster_loadgen.json"
grep -q '"retried_ok":' "$SMOKE/cluster_loadgen.json"
grep -q '"drain_clean":true' "$SMOKE/cluster_serve_report.json"
grep -q '"cluster":4' "$SMOKE/cluster_serve_report.json"
RESTORES=$(grep -o '"checkpoints_restored":[0-9]*' "$SMOKE/cluster_serve_report.json" \
  | awk -F: '{ s += $2 } END { print s + 0 }')
test "$RESTORES" -ge 1 || { echo "expected >= 1 checkpoint restore" >&2; exit 1; }
printf '{"schema":"xbfs-bench-pr6-v1","certified_sweep_speedup":%s,"loadgen":%s,"serve":%s}\n' \
  "$CERT_SPEEDUP" "$(cat "$SMOKE/cluster_loadgen.json")" \
  "$(cat "$SMOKE/cluster_serve_report.json")" > results/BENCH_pr6.json
echo "    wrote results/BENCH_pr6.json (restores=$RESTORES)"

echo "==> metrics smoke (mid-load scrape, flight recorder, scrape-overhead + perf gates)"
"$XBFS" generate --out "$SMOKE/metrics.bin" --scale 12 --seed 8
PORT=$((20000 + RANDOM % 20000))
MPORT=$((40000 + RANDOM % 20000))
"$XBFS" serve "$SMOKE/metrics.bin" --addr "127.0.0.1:$PORT" --workers 2 \
  --allow-chaos --metrics-addr "127.0.0.1:$MPORT" --flight-dir "$SMOKE/flight" \
  --json "$SMOKE/metrics_serve_report.json" > "$SMOKE/metrics_serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$MPORT") 2>/dev/null; then break; fi
  sleep 0.1
done
scrape() { # GET $1 from the metrics listener; response (headers+body) on stdout
  exec 3<>"/dev/tcp/127.0.0.1/$MPORT"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&-
}
series_sum() { # sum every sample of series $1 in scrape file $2
  awk -v s="$1" 'index($1, s) == 1 { t += $2 } END { print t + 0 }' "$2"
}
# Load in the background — every 9th request panics its worker (contained,
# replayed, and flight-dumped) — and scrape twice while it runs.
"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 240 --rps 300 \
  --connections 4 --sources 8 --retries 8 --chaos "panic:9" \
  --progress-every-ms 200 --json "$SMOKE/metrics_loadgen.json" \
  > "$SMOKE/metrics_loadgen.out" &
LOAD_PID=$!
sleep 0.4
scrape /metrics > "$SMOKE/scrape1.txt"
sleep 0.4
scrape /metrics > "$SMOKE/scrape2.txt"
grep -q '# TYPE xbfs_serve_requests_total counter' "$SMOKE/scrape2.txt"
grep -q '^xbfs_serve_shed_total' "$SMOKE/scrape2.txt"
grep -q '^xbfs_serve_queue_depth' "$SMOKE/scrape2.txt"
grep -q '^xbfs_serve_request_latency_ms_bucket' "$SMOKE/scrape2.txt"
scrape /metrics.json | grep -q '"format":"xbfs-metrics-v1"'
# key counters are monotone across scrapes taken under live load
for SERIES in xbfs_serve_requests_total xbfs_serve_admitted_total; do
  A=$(series_sum "$SERIES" "$SMOKE/scrape1.txt")
  B=$(series_sum "$SERIES" "$SMOKE/scrape2.txt")
  awk -v a="$A" -v b="$B" 'BEGIN { exit !(b >= a) }' \
    || { echo "$SERIES went backwards across scrapes ($A -> $B)" >&2; exit 1; }
done
wait "$LOAD_PID"
# scrape cost, measured against the live (now idle) server
T0=$(date +%s%N)
for _ in $(seq 1 20); do scrape /metrics.json > /dev/null; done
T1=$(date +%s%N)
SCRAPE_MS=$(awk -v ns="$((T1 - T0))" 'BEGIN { printf "%.3f", ns / 20 / 1e6 }')
"$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 4 --rps 100 \
  --shutdown > /dev/null 2>&1
wait "$SERVE_PID"
grep -q '"lost":0,' "$SMOKE/metrics_loadgen.json"
grep -q '"drain_clean":true' "$SMOKE/metrics_serve_report.json"
# the forced panics left flight-recorder dumps, referenced by the report
grep -q '"flight_dumps":\["' "$SMOKE/metrics_serve_report.json"
DUMP=$(ls "$SMOKE"/flight/xbfs-flight-*.log | head -1)
grep -q 'reason: worker-panic' "$DUMP"
grep -q 'request.start' "$DUMP"
echo "    flight dumps: $(ls "$SMOKE"/flight | wc -l), scrape overhead ${SCRAPE_MS} ms"

echo "==> metrics overhead gate (always-on registry, unscraped: certified sweep >= 98% of PR 6)"
CERT6=$(grep -o '"certified_sweep_speedup":[0-9.]*' results/BENCH_pr6.json | grep -o '[0-9.]*$')
"$XBFS" sweep "$SMOKE/corrupt.bin" --sources 32 --verify --json "$SMOKE/cert7.json" > /dev/null
CERT7=$(grep -o '"speedup": [0-9.]*' "$SMOKE/cert7.json" | grep -o '[0-9.]*$')
echo "    certified sweep speedup with live metrics plane: ${CERT7}x (PR 6 baseline ${CERT6}x)"
awk -v a="$CERT7" -v b="$CERT6" 'BEGIN { exit !(a >= 0.98 * b) }' \
  || { echo "metrics plane regressed certified sweep by > 2%" >&2; exit 1; }
printf '{"schema":"xbfs-bench-pr7-v1","certified_sweep_speedup":%s,"baseline_pr6_speedup":%s,"scrape_overhead_ms":%s,"loadgen":%s,"serve":%s}\n' \
  "$CERT7" "$CERT6" "$SCRAPE_MS" "$(cat "$SMOKE/metrics_loadgen.json")" \
  "$(cat "$SMOKE/metrics_serve_report.json")" > results/BENCH_pr7.json
echo "    wrote results/BENCH_pr7.json"

echo "==> batch smoke (64-wide waves: >= 2x solo served qps, zero lost, clean drains)"
# scale 14 so a solo run costs real host time (the thing batching amortizes)
"$XBFS" generate --out "$SMOKE/batch.bin" --scale 14 --seed 9
batch_profile() { # $1 = --batch-width; writes loadgen json to $2, serve json to $3
  local PORT=$((20000 + RANDOM % 20000))
  "$XBFS" serve "$SMOKE/batch.bin" --addr "127.0.0.1:$PORT" --workers 1 \
    --batch-width "$1" --batch-window-ms 5 --queue-cap 1024 \
    --json "$3" > /dev/null &
  local SRV=$!
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
    sleep 0.1
  done
  # Same offered load both times: far past solo capacity, a hot-key source
  # mix (16 distinct sources) the batcher can dedup and share, and a queue
  # deep enough to hold the burst, so ok-counts match and served qps is
  # the honest throughput difference.
  "$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 600 --rps 4000 \
    --connections 8 --sources 16 --retries 12 --max-shed-pct 99 \
    --json "$2" --shutdown > /dev/null
  wait "$SRV" # clean drain is exit 0; lost work would make this nonzero
}
batch_profile 1 "$SMOKE/loadgen_solo.json" "$SMOKE/serve_solo.json"
batch_profile 64 "$SMOKE/loadgen_batched.json" "$SMOKE/serve_batched.json"
for F in "$SMOKE/loadgen_solo.json" "$SMOKE/loadgen_batched.json"; do
  grep -q '"lost":0,' "$F"
  grep -q '"digests_consistent":true' "$F"
done
for F in "$SMOKE/serve_solo.json" "$SMOKE/serve_batched.json"; do
  grep -q '"drain_clean":true' "$F"
done
# the batched server actually coalesced: waves launched, at least one wide
BATCHES=$(grep -o '"batches":[0-9]*' "$SMOKE/serve_batched.json" | grep -o '[0-9]*$')
MAXB=$(grep -o '"max_batch_size":[0-9]*' "$SMOKE/serve_batched.json" | grep -o '[0-9]*$')
test "$BATCHES" -ge 1 || { echo "batched server never launched a batch" >&2; exit 1; }
test "$MAXB" -ge 2 || { echo "no batch ever coalesced > 1 request" >&2; exit 1; }
SOLO_QPS=$(grep -o '"served_qps":[0-9.]*' "$SMOKE/loadgen_solo.json" | grep -o '[0-9.]*$')
BATCH_QPS=$(grep -o '"served_qps":[0-9.]*' "$SMOKE/loadgen_batched.json" | grep -o '[0-9.]*$')
echo "    served qps: batch-width 64 = ${BATCH_QPS}, batch-width 1 = ${SOLO_QPS}"
awk -v b="$BATCH_QPS" -v s="$SOLO_QPS" 'BEGIN { exit !(b >= 2.0 * s) }' \
  || { echo "batched serving < 2x solo served qps" >&2; exit 1; }
# the offline twin: a multi-source sweep pass, bit-identical to the rebuild
"$XBFS" sweep "$SMOKE/batch.bin" --sources 96 --multi-source \
  --json "$SMOKE/sweep_ms.json" | tee "$SMOKE/sweep_ms.out"
grep -q "multi-source:" "$SMOKE/sweep_ms.out"
grep -q "slot levels bit-identical" "$SMOKE/sweep_ms.out"
grep -q '"multi_source":' "$SMOKE/sweep_ms.json"
printf '{"schema":"xbfs-bench-pr8-v1","batched_served_qps":%s,"solo_served_qps":%s,"batches":%s,"max_batch_size":%s,"loadgen_batched":%s,"loadgen_solo":%s,"serve_batched":%s,"sweep_multi_source":%s}\n' \
  "$BATCH_QPS" "$SOLO_QPS" "$BATCHES" "$MAXB" \
  "$(cat "$SMOKE/loadgen_batched.json")" "$(cat "$SMOKE/loadgen_solo.json")" \
  "$(cat "$SMOKE/serve_batched.json")" "$(cat "$SMOKE/sweep_ms.json")" \
  > results/BENCH_pr8.json
echo "    wrote results/BENCH_pr8.json"

echo "==> durability smoke (journal overhead gate, then SIGKILL-under-load replay)"
"$XBFS" generate --out "$SMOKE/dur.bin" --scale 12 --seed 10
dur_profile() { # $1 = journal flags (or ""), $2 = loadgen json, $3 = serve json
  local PORT=$((20000 + RANDOM % 20000))
  # shellcheck disable=SC2086 — $1 is deliberately word-split serve flags
  "$XBFS" serve "$SMOKE/dur.bin" --addr "127.0.0.1:$PORT" --workers 1 \
    --queue-cap 1024 $1 --json "$3" > /dev/null &
  local SRV=$!
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
    sleep 0.1
  done
  "$XBFS" loadgen --addr "127.0.0.1:$PORT" --requests 400 --rps 4000 \
    --connections 8 --sources 16 --retries 12 --max-shed-pct 99 \
    --json "$2" --shutdown > /dev/null
  wait "$SRV" # clean drain is exit 0; lost work would make this nonzero
}
# Same offered load with and without the journal: the WAL must cost < 10%
# of served throughput under the default batch fsync policy.
dur_profile "" "$SMOKE/loadgen_nojournal.json" "$SMOKE/serve_nojournal.json"
dur_profile "--journal $SMOKE/ci.wal --journal-fsync batch=8" \
  "$SMOKE/loadgen_journal.json" "$SMOKE/serve_journal.json"
for F in "$SMOKE/loadgen_nojournal.json" "$SMOKE/loadgen_journal.json"; do
  grep -q '"lost":0,' "$F"
  grep -q '"digests_consistent":true' "$F"
done
JAPPENDS=$(grep -o '"journal_appends":[0-9]*' "$SMOKE/serve_journal.json" | grep -o '[0-9]*$')
test "$JAPPENDS" -ge 1 || { echo "journaled server appended nothing" >&2; exit 1; }
NOJ_QPS=$(grep -o '"served_qps":[0-9.]*' "$SMOKE/loadgen_nojournal.json" | grep -o '[0-9.]*$')
J_QPS=$(grep -o '"served_qps":[0-9.]*' "$SMOKE/loadgen_journal.json" | grep -o '[0-9.]*$')
echo "    served qps: journal(batch=8) = ${J_QPS}, no journal = ${NOJ_QPS}"
awk -v j="$J_QPS" -v s="$NOJ_QPS" 'BEGIN { exit !(j >= 0.9 * s) }' \
  || { echo "journaling cost > 10% of served qps" >&2; exit 1; }
# The crash harness: SIGKILL the journaling server mid-load, restart it on
# the same journal, and require lost=0, >= 1 replayed admit, consistent
# digests across the crash boundary, and a clean final drain.
KILLER_OUT="$SMOKE/killer.json" scripts/killer.sh "$SMOKE/dur.bin"
grep -q '"lost":0,' "$SMOKE/killer.json"
grep -q '"digests_consistent":true' "$SMOKE/killer.json"
REPLAYED=$(grep -o '"replayed_requests":[0-9]*' "$SMOKE/killer.json" | head -1 | grep -o '[0-9]*$')
RECOVERY_MS=$(grep -o '"recovery_ms":[0-9.]*' "$SMOKE/killer.json" | head -1 | grep -o '[0-9.]*$')
JOVERHEAD=$(awk -v j="$J_QPS" -v s="$NOJ_QPS" 'BEGIN { printf "%.1f", (1 - j / s) * 100 }')
printf '{"schema":"xbfs-bench-pr9-v1","journal_served_qps":%s,"nojournal_served_qps":%s,"journal_overhead_pct":%s,"recovery_ms":%s,"replayed_requests":%s,"killer":%s,"loadgen_journal":%s,"serve_journal":%s}\n' \
  "$J_QPS" "$NOJ_QPS" "$JOVERHEAD" "${RECOVERY_MS:-0}" "${REPLAYED:-0}" \
  "$(cat "$SMOKE/killer.json")" "$(cat "$SMOKE/loadgen_journal.json")" \
  "$(cat "$SMOKE/serve_journal.json")" > results/BENCH_pr9.json
echo "    wrote results/BENCH_pr9.json (overhead=${JOVERHEAD}%, replayed=$REPLAYED, recovery=${RECOVERY_MS}ms)"

echo "CI gate passed."
