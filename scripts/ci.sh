#!/usr/bin/env bash
# Local CI gate — identical to .github/workflows/ci.yml.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace --benches --examples

echo "==> cargo test --workspace"
cargo test -q --workspace --no-fail-fast

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check || echo "(fmt differences are advisory, not a gate)"

echo "CI gate passed."
