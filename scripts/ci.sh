#!/usr/bin/env bash
# Local CI gate — identical to .github/workflows/ci.yml.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace --benches --examples

echo "==> cargo test --workspace"
cargo test -q --workspace --no-fail-fast

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check || echo "(fmt differences are advisory, not a gate)"

echo "==> telemetry smoke (trace export + summarize round-trip)"
XBFS=target/release/xbfs
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$XBFS" generate --out "$SMOKE/g.bin" --scale 12 --seed 7
"$XBFS" run "$SMOKE/g.bin" --trace json:- > "$SMOKE/BENCH_pr2.json"
"$XBFS" trace summarize "$SMOKE/BENCH_pr2.json" > /dev/null
grep -q '"schema":"xbfs-trace-v1"' "$SMOKE/BENCH_pr2.json"
grep -q '"gteps"' "$SMOKE/BENCH_pr2.json"
"$XBFS" run "$SMOKE/g.bin" --trace "chrome:$SMOKE/trace.json" > /dev/null
"$XBFS" trace summarize "$SMOKE/trace.json" > /dev/null
"$XBFS" cluster "$SMOKE/g.bin" --gcds 4 --inject-faults crash@1:rank1 \
  --checkpoint-every 1 --trace json:- > "$SMOKE/cluster_trace.json"
"$XBFS" trace summarize "$SMOKE/cluster_trace.json" | grep -q '1 recoveries'
cp "$SMOKE/BENCH_pr2.json" BENCH_pr2.json
echo "    wrote BENCH_pr2.json"

echo "CI gate passed."
