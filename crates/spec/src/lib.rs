#![warn(missing_docs)]

//! `xbfs-spec` — the one spec grammar every injection plan in the
//! workspace parses.
//!
//! Three subsystems accept comma-separated plan specs on the command
//! line: the multi-GCD fault plans (`crash@2:rank1,drop@1:0-2x3,seed=7`),
//! the single-GCD bit-flip plans (`status:2,csr,seed=7`), and the serving
//! layer's chaos plans (`panic:8,slow@25:4,seed=3`). Before this crate
//! each hand-rolled its own `split(',')` loop with its own error wording;
//! now all three share one tokenizer and one error shape, so a malformed
//! token is reported the same way (`token `X`: why`) no matter which
//! subsystem rejected it.
//!
//! The grammar, shared by every consumer:
//!
//! ```text
//! spec   := token ("," token)*          (empty tokens are skipped)
//! token  := key "=" value               assignment, e.g. seed=42
//!         | kind ["@" at] [":" arg]     item, e.g. crash@2:rank1, status:3
//! ```
//!
//! Consumers iterate [`tokenize`] and match on [`Token`]; numeric fields
//! go through [`Token::num`] / [`Token::arg_count`] so "not an integer"
//! errors carry the offending token verbatim.

use std::fmt;

/// A spec parse failure: the offending token plus why it was rejected.
///
/// Renders as ``token `X`: why`` — the message shape shared by every plan
/// parser in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The comma-separated token that failed, verbatim.
    pub token: String,
    /// Human-readable reason.
    pub why: String,
}

impl SpecError {
    /// Build an error for `token`.
    pub fn new(token: impl Into<String>, why: impl Into<String>) -> Self {
        Self {
            token: token.into(),
            why: why.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token `{}`: {}", self.token, self.why)
    }
}

impl std::error::Error for SpecError {}

/// One comma-separated token of a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// `key=value`, e.g. `seed=42`.
    Assign {
        /// Text before the `=`.
        key: &'a str,
        /// Text after the `=`.
        value: &'a str,
        /// The whole token, for error reporting.
        raw: &'a str,
    },
    /// `kind[@at][:arg]`, e.g. `crash@2:rank1`, `status:3`, `csr`.
    Item {
        /// Text before any `@`/`:`.
        kind: &'a str,
        /// Text between `@` and `:` (or the end), when present.
        at: Option<&'a str>,
        /// Text after the first `:` past the kind/at, when present.
        arg: Option<&'a str>,
        /// The whole token, for error reporting.
        raw: &'a str,
    },
}

impl<'a> Token<'a> {
    /// The token verbatim as it appeared in the spec.
    pub fn raw(&self) -> &'a str {
        match self {
            Token::Assign { raw, .. } | Token::Item { raw, .. } => raw,
        }
    }

    /// An error blaming this token.
    pub fn err(&self, why: impl Into<String>) -> SpecError {
        SpecError::new(self.raw(), why)
    }

    /// Parse `text` (one field of this token) as a number, blaming the
    /// token with "`what` must be …" on failure.
    pub fn num<T: std::str::FromStr>(&self, what: &str, text: &str) -> Result<T, SpecError> {
        text.parse()
            .map_err(|_| self.err(format!("{what} must be a number (got {text:?})")))
    }

    /// For `kind[:N]` items: the count `N`, defaulting to `default` when
    /// the `:arg` part is absent. An `@at` part is rejected — counted
    /// items have no position field.
    pub fn arg_count(&self, default: u32) -> Result<u32, SpecError> {
        match self {
            Token::Assign { .. } => Err(self.err("expected an item, not an assignment")),
            Token::Item { at: Some(_), .. } => {
                Err(self.err("unexpected `@` (this kind takes only a count)"))
            }
            Token::Item { arg: None, .. } => Ok(default),
            Token::Item { arg: Some(a), .. } => self.num("count", a),
        }
    }
}

/// Split `spec` into [`Token`]s: comma-separated, whitespace-trimmed,
/// empty tokens skipped. Tokenization itself never fails — classification
/// errors (unknown kind, bad numbers) are the consumer's to raise via
/// [`Token::err`], so the message names the subsystem's own vocabulary.
pub fn tokenize(spec: &str) -> impl Iterator<Item = Token<'_>> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|raw| {
            if let Some((key, value)) = raw.split_once('=') {
                // `=` wins over `@`/`:` so values may contain either.
                Token::Assign { key, value, raw }
            } else {
                let (head, arg) = match raw.split_once(':') {
                    Some((h, a)) => (h, Some(a)),
                    None => (raw, None),
                };
                let (kind, at) = match head.split_once('@') {
                    Some((k, a)) => (k, Some(a)),
                    None => (head, None),
                };
                Token::Item { kind, at, arg, raw }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(spec: &str) -> Vec<Token<'_>> {
        tokenize(spec).collect()
    }

    #[test]
    fn classifies_assignments_and_items() {
        let t = toks("seed=42, crash@2:rank1 ,status:3,csr,,");
        assert_eq!(t.len(), 4);
        assert_eq!(
            t[0],
            Token::Assign {
                key: "seed",
                value: "42",
                raw: "seed=42"
            }
        );
        assert_eq!(
            t[1],
            Token::Item {
                kind: "crash",
                at: Some("2"),
                arg: Some("rank1"),
                raw: "crash@2:rank1"
            }
        );
        assert_eq!(
            t[2],
            Token::Item {
                kind: "status",
                at: None,
                arg: Some("3"),
                raw: "status:3"
            }
        );
        assert_eq!(
            t[3],
            Token::Item {
                kind: "csr",
                at: None,
                arg: None,
                raw: "csr"
            }
        );
    }

    #[test]
    fn empty_spec_yields_no_tokens() {
        assert!(toks("").is_empty());
        assert!(toks(" , ,").is_empty());
    }

    #[test]
    fn counts_default_and_parse() {
        let t = toks("status,parents:4,pool:x,slow@9:2");
        assert_eq!(t[0].arg_count(1).unwrap(), 1);
        assert_eq!(t[1].arg_count(1).unwrap(), 4);
        let e = t[2].arg_count(1).unwrap_err();
        assert_eq!(e.token, "pool:x");
        assert!(e.why.contains("count"), "{e}");
        // `@` on a counted item is rejected with the token named.
        assert!(t[3].arg_count(1).is_err());
    }

    #[test]
    fn error_display_shape_is_stable() {
        let e = SpecError::new("meteor@3", "unknown fault kind");
        assert_eq!(e.to_string(), "token `meteor@3`: unknown fault kind");
    }

    #[test]
    fn assignment_wins_over_decorations() {
        // Values may contain `@` or `:` — e.g. addr=127.0.0.1:4000.
        let t = toks("addr=127.0.0.1:4000");
        assert_eq!(
            t[0],
            Token::Assign {
                key: "addr",
                value: "127.0.0.1:4000",
                raw: "addr=127.0.0.1:4000"
            }
        );
    }
}
