//! Property-based correctness of XBFS: every strategy, every configuration,
//! both architectures, arbitrary graphs — always the exact BFS levels.

use gcd_sim::{ArchProfile, Device, ExecMode};
use proptest::prelude::*;
use xbfs_core::{MsBfs, Strategy as BfsStrategy, Xbfs, XbfsConfig, MAX_CONCURRENT};
use xbfs_graph::builder::{BuildOptions, CsrBuilder};
use xbfs_graph::reference::bfs_levels_serial;
use xbfs_graph::validate_bfs_tree;
use xbfs_graph::Csr;

fn arb_graph_and_source() -> impl Strategy<Value = (Csr, u32)> {
    (2usize..80).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 1..250),
            0..n as u32,
        )
            .prop_map(move |(edges, src)| {
                let mut b = CsrBuilder::new(n);
                b.extend_edges(edges);
                (b.build(BuildOptions::default()), src)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adaptive_is_exact_bfs((g, src) in arb_graph_and_source()) {
        let dev = Device::mi250x();
        let run = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap().run(src).unwrap();
        prop_assert_eq!(run.levels, bfs_levels_serial(&g, src));
    }

    #[test]
    fn every_forced_strategy_is_exact_bfs((g, src) in arb_graph_and_source()) {
        for strat in [BfsStrategy::ScanFree, BfsStrategy::SingleScan, BfsStrategy::BottomUp] {
            let dev = Device::mi250x();
            let run = Xbfs::new(&dev, &g, XbfsConfig::forced(strat)).unwrap().run(src).unwrap();
            prop_assert_eq!(run.levels, bfs_levels_serial(&g, src), "strategy {}", strat);
        }
    }

    #[test]
    fn warp32_arch_is_exact_bfs((g, src) in arb_graph_and_source()) {
        // The NVIDIA profile exercises 32-wide ballot/queue paths.
        let cfg = XbfsConfig::cuda_original();
        let dev = Device::new(ArchProfile::p6000(), ExecMode::Functional, cfg.required_streams());
        let run = Xbfs::new(&dev, &g, cfg).unwrap().run(src).unwrap();
        prop_assert_eq!(run.levels, bfs_levels_serial(&g, src));
    }

    #[test]
    fn timing_mode_is_exact_bfs((g, src) in arb_graph_and_source()) {
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
        let run = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap().run(src).unwrap();
        prop_assert_eq!(run.levels, bfs_levels_serial(&g, src));
    }

    #[test]
    fn parents_validate_on_arbitrary_graphs((g, src) in arb_graph_and_source()) {
        let cfg = XbfsConfig { record_parents: true, ..XbfsConfig::default() };
        let dev = Device::mi250x();
        let run = Xbfs::new(&dev, &g, cfg).unwrap().run(src).unwrap();
        let parents = run.parents.unwrap();
        let levels = validate_bfs_tree(&g, src, &parents).expect("invalid tree");
        prop_assert_eq!(levels, run.levels);
    }

    #[test]
    fn toggles_never_change_results((g, src) in arb_graph_and_source(), bits in 0u32..32) {
        let cfg = XbfsConfig {
            balancing_top_down: bits & 1 != 0,
            balancing_bottom_up: bits & 2 != 0,
            multi_stream: bits & 4 != 0,
            nfg: bits & 8 != 0,
            proactive: bits & 16 != 0,
            ..XbfsConfig::default()
        };
        let dev = Device::new(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            cfg.required_streams(),
        );
        let run = Xbfs::new(&dev, &g, cfg).unwrap().run(src).unwrap();
        prop_assert_eq!(run.levels, bfs_levels_serial(&g, src));
    }

    #[test]
    fn directed_preset_is_exact_on_asymmetric_graphs(
        n in 2usize..60,
        raw_edges in proptest::collection::vec((0u32..60, 0u32..60), 1..200),
        src_sel in 0usize..60,
    ) {
        // Directed build: no symmetrization. The `directed()` preset must
        // still be exact BFS (it pins α = ∞, so pull never engages).
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let mut b = CsrBuilder::new(n);
        b.extend_edges(edges);
        let g = b.build(BuildOptions {
            symmetrize: false,
            remove_self_loops: true,
            dedup: true,
        });
        let src = (src_sel % n) as u32;
        let dev = Device::mi250x();
        let run = Xbfs::new(&dev, &g, XbfsConfig::directed()).unwrap().run(src).unwrap();
        prop_assert!(!run.strategy_trace().contains(&BfsStrategy::BottomUp));
        prop_assert_eq!(run.levels, bfs_levels_serial(&g, src));
    }

    #[test]
    fn batched_multi_source_equals_sequential_levels(
        (g, _src) in arb_graph_and_source(),
        raw_sources in proptest::collection::vec(0u32..80, 1..MAX_CONCURRENT + 1),
    ) {
        // One 64-wide bit-parallel wave over up to MAX_CONCURRENT random
        // sources (duplicates included) must produce, slot for slot, the
        // exact levels a sequential solo run finds for that source.
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = raw_sources.into_iter().map(|s| s % n).collect();
        let dev = Device::mi250x();
        let run = MsBfs::new(&dev, &g).unwrap().run_batch(&sources);
        prop_assert_eq!(run.width(), sources.len());
        for (slot, &src) in sources.iter().enumerate() {
            prop_assert_eq!(
                &run.levels[slot],
                &bfs_levels_serial(&g, src),
                "slot {} (source {})", slot, src
            );
        }
    }

    #[test]
    fn level_stats_are_consistent((g, src) in arb_graph_and_source()) {
        let dev = Device::mi250x();
        let run = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap().run(src).unwrap();
        // Frontier counts across levels sum to the visited set — except
        // that single-scan's CAS-free claims may double-count a vertex two
        // racing waves both saw unvisited (benign, §III-B), so the sum can
        // only overshoot, and only when single-scan levels exist.
        let visited = run.levels.iter().filter(|&&l| l != u32::MAX).count() as u64;
        let total: u64 = run.level_stats.iter().map(|l| l.frontier_count).sum();
        if run.strategy_trace().contains(&BfsStrategy::SingleScan) {
            prop_assert!(total >= visited, "total {} < visited {}", total, visited);
        } else {
            prop_assert_eq!(total, visited);
        }
        // Ratios are degree sums over |E|.
        for ls in &run.level_stats {
            let expect = ls.frontier_edges as f64 / g.num_edges().max(1) as f64;
            prop_assert!((ls.ratio - expect).abs() < 1e-9);
            prop_assert!(ls.time_ms >= 0.0);
        }
        // Levels in stats are consecutive from 0.
        for (i, ls) in run.level_stats.iter().enumerate() {
            prop_assert_eq!(ls.level as usize, i);
        }
    }
}
