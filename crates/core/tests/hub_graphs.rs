//! Runner-level coverage of the degree-binned kernels: graphs with mega-
//! hubs must route vertices through all three bins (thread / wave / block)
//! and still produce exact BFS, in both execution modes.

use gcd_sim::{ArchProfile, Device, ExecMode};
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::builder::{BuildOptions, CsrBuilder};
use xbfs_graph::reference::bfs_levels_serial;
use xbfs_graph::Csr;

/// A hub of degree `hub_deg` (large bin), a ring of mid-degree vertices
/// (medium bin), and pendant leaves (small bin).
fn three_bin_graph(hub_deg: usize) -> Csr {
    let mid = 200usize; // vertices 1..=200 form a chain with extra edges
    let n = 1 + hub_deg.max(mid);
    let mut b = CsrBuilder::new(n + mid);
    // Hub (vertex 0) connects to hub_deg distinct vertices.
    for v in 1..=hub_deg {
        b.add_edge(0, v as u32);
    }
    // Give vertices 1..=mid moderate degree (connect each to ~80 others).
    for v in 1..=mid {
        for j in 1..80 {
            let w = 1 + ((v + j * 7) % (n - 1));
            if w != v {
                b.add_edge(v as u32, w as u32);
            }
        }
    }
    b.build(BuildOptions::default())
}

#[test]
fn mega_hub_routes_through_the_block_kernel() {
    let g = three_bin_graph(6000);
    let dev = Device::mi250x();
    // Keep the run top-down (the adaptive default would switch to
    // bottom-up right at the hub level and bypass the bins).
    let cfg = XbfsConfig {
        alpha: 10.0,
        ..XbfsConfig::default()
    };
    let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
    // Start at a leaf so the hub is *claimed* (and binned) during level 0,
    // then *expanded* by the block kernel at level 1.
    let src = 6000u32;
    let run = xbfs.run(src).unwrap();
    assert_eq!(run.levels, bfs_levels_serial(&g, src));
    let kernels: Vec<&str> = run
        .level_stats
        .iter()
        .flat_map(|l| &l.kernels)
        .map(|k| k.name.as_str())
        .collect();
    assert!(
        kernels.contains(&"fq_expand_block"),
        "block kernel never ran: {kernels:?}"
    );
    assert!(kernels.contains(&"fq_expand_wave"), "{kernels:?}");
    assert!(kernels.contains(&"fq_expand_thread"), "{kernels:?}");
}

#[test]
fn mega_hub_exact_in_timing_mode() {
    let g = three_bin_graph(5000);
    let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
    let run = Xbfs::new(&dev, &g, XbfsConfig::default())
        .unwrap()
        .run(5000)
        .unwrap();
    assert_eq!(run.levels, bfs_levels_serial(&g, 5000));
}

#[test]
fn mega_hub_exact_on_warp32_and_with_parents() {
    let g = three_bin_graph(5000);
    let cfg = XbfsConfig {
        record_parents: true,
        ..XbfsConfig::cuda_original()
    };
    let dev = Device::new(
        ArchProfile::p6000(),
        ExecMode::Functional,
        cfg.required_streams(),
    );
    let run = Xbfs::new(&dev, &g, cfg).unwrap().run(17).unwrap();
    assert_eq!(run.levels, bfs_levels_serial(&g, 17));
    let parents = run.parents.unwrap();
    xbfs_graph::validate_bfs_tree(&g, 17, &parents).expect("invalid tree");
}

#[test]
fn source_in_the_large_bin() {
    // BFS starting *at* the hub: the seed queue puts it in bin 0 (thread
    // kernel walks its whole adjacency) — correctness must not depend on
    // binning the source.
    let g = three_bin_graph(6000);
    let dev = Device::mi250x();
    let run = Xbfs::new(&dev, &g, XbfsConfig::default())
        .unwrap()
        .run(0)
        .unwrap();
    assert_eq!(run.levels, bfs_levels_serial(&g, 0));
}
