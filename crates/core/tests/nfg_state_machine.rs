//! Integration tests pinning the No-Frontier-Generation state machine
//! (§III-B): when a generation scan runs, when it is skipped, and how the
//! bottom-up superset queue and proactive claims interact with it.

use gcd_sim::Device;
use xbfs_core::{Strategy, Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};
use xbfs_graph::stats::pick_sources;

fn rmat() -> xbfs_graph::Csr {
    rmat_graph(RmatParams::graph500(13), 3)
}

fn kernel_names(run: &xbfs_core::BfsRun) -> Vec<(u32, Vec<String>)> {
    run.level_stats
        .iter()
        .map(|l| (l.level, l.kernels.iter().map(|k| k.name.clone()).collect()))
        .collect()
}

#[test]
fn scan_free_levels_chain_without_generation_scans() {
    let g = rmat();
    let src = pick_sources(&g, 1, 1)[0];
    let dev = Device::mi250x();
    let run = Xbfs::new(&dev, &g, XbfsConfig::forced(Strategy::ScanFree))
        .unwrap()
        .run(src)
        .unwrap();
    // Level 0 starts from the seeded source queue; every level chains the
    // atomically-built next queue, so `fq_generate` never appears.
    for (level, names) in kernel_names(&run) {
        assert!(
            !names.iter().any(|n| n == "fq_generate"),
            "level {level} ran a generation scan in forced scan-free: {names:?}"
        );
    }
    assert!(run.level_stats.iter().all(|l| l.used_nfg));
}

#[test]
fn forced_single_scan_pays_one_generation_scan_per_level_after_the_first() {
    let g = rmat();
    let src = pick_sources(&g, 1, 1)[0];
    let dev = Device::mi250x();
    let run = Xbfs::new(&dev, &g, XbfsConfig::forced(Strategy::SingleScan))
        .unwrap()
        .run(src)
        .unwrap();
    for (level, names) in kernel_names(&run) {
        let scans = names.iter().filter(|n| n.as_str() == "fq_generate").count();
        if level == 0 {
            // The seed queue exists, so NFG kicks in at level 0.
            assert_eq!(scans, 0, "level 0 should reuse the seed queue");
        } else {
            assert_eq!(scans, 1, "level {level} must scan exactly once: {names:?}");
        }
    }
}

#[test]
fn adaptive_run_uses_filtered_expansion_after_bottom_up() {
    let g = rmat();
    let src = pick_sources(&g, 1, 1)[0];
    let dev = Device::mi250x();
    let run = Xbfs::new(&dev, &g, XbfsConfig::default())
        .unwrap()
        .run(src)
        .unwrap();
    let trace = run.strategy_trace();
    let Some(last_bu) = trace.iter().rposition(|&s| s == Strategy::BottomUp) else {
        panic!("R-MAT adaptive run should include bottom-up: {trace:?}");
    };
    // Every top-down level after the last bottom-up must expand from the
    // stale bottom-up queue (filtered) or an exact queue — never rescan.
    for ls in &run.level_stats[last_bu + 1..] {
        assert!(ls.used_nfg, "level {} lost NFG: {:?}", ls.level, trace);
        assert!(
            !ls.kernels.iter().any(|k| k.name == "fq_generate"),
            "level {} ran a scan after bottom-up",
            ls.level
        );
    }
    // And at least one of those levels used the superset filter path.
    let filtered = run.level_stats[last_bu + 1..]
        .iter()
        .flat_map(|l| &l.kernels)
        .any(|k| k.name == "fq_expand_filtered");
    assert!(filtered, "no filtered expansion after bottom-up");
}

#[test]
fn nfg_disabled_scans_every_top_down_level() {
    let g = rmat();
    let src = pick_sources(&g, 1, 1)[0];
    let dev = Device::mi250x();
    let cfg = XbfsConfig {
        nfg: false,
        ..XbfsConfig::default()
    };
    let run = Xbfs::new(&dev, &g, cfg).unwrap().run(src).unwrap();
    for ls in &run.level_stats {
        if ls.strategy == Strategy::BottomUp {
            continue;
        }
        assert!(
            ls.kernels.iter().any(|k| k.name == "fq_generate"),
            "level {} skipped the scan with NFG off",
            ls.level
        );
        assert!(!ls.used_nfg);
    }
}

#[test]
fn proactive_claims_shrink_following_level_work() {
    // With proactive claims on, the pass after a bottom-up level has fewer
    // vertices left to claim. Compare memory accesses, not instructions:
    // instruction charging is wave-granular, so a vertex rescanned next
    // level piggybacks on wave instructions its workgroup issues anyway,
    // while each proactive claim pays two uniform counter atomics — sparse
    // claims can tip raw instruction counts the wrong way by a fraction of
    // a percent. Per-lane accesses are what the optimization shrinks.
    let g = rmat();
    let src = pick_sources(&g, 1, 1)[0];
    let total_accesses = |proactive: bool| -> u64 {
        let dev = Device::mi250x();
        let cfg = XbfsConfig {
            proactive,
            ..XbfsConfig::forced(Strategy::BottomUp)
        };
        let run = Xbfs::new(&dev, &g, cfg).unwrap().run(src).unwrap();
        run.level_stats
            .iter()
            .flat_map(|l| &l.kernels)
            .map(|k| k.stats.accesses)
            .sum()
    };
    let with = total_accesses(true);
    let without = total_accesses(false);
    assert!(
        with <= without,
        "proactive ({with}) should not exceed non-proactive ({without}) accesses"
    );
}
