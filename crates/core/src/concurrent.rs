//! Concurrent multi-source BFS (iBFS-style), 64 sources wide.
//!
//! The paper's introduction cites the authors' iBFS work: many BFS
//! instances — e.g. the 64 search keys of a Graph500 run, or a burst of
//! distance queries from different users — can share one traversal. This
//! module implements the bit-parallel formulation on the simulated GCD:
//! each vertex carries a 64-bit *visited mask* (one bit per concurrent
//! source, matching the CDNA wave width), a frontier level expands the
//! union frontier once, and newly discovered `(vertex, source)` pairs are
//! the bits that survive `frontier_bits & !seen_bits`, propagated with a
//! 64-bit `atomicOr`.
//!
//! Sharing pays because hub vertices are touched once per *level* instead
//! of once per *source* — the same locality argument as the paper's
//! degree-aware re-arrangement, one level up.
//!
//! [`MsBfs`] is a pooled run-context in the mold of [`crate::Xbfs`]: the
//! graph is uploaded once, every buffer comes from the device pool (so a
//! rebuilt engine reacquires the same addresses), and between batches the
//! engine does **O(1) epoch resets** instead of O(|V|) fills — the seen
//! mask is gated by a per-vertex epoch stamp, and the per-slot level
//! arrays use the same base-offset encoding as [`crate::BfsState`].
//! [`MsBfs::run_governed`] adds the serving governors: a modeled-time
//! deadline checked between levels and optional per-slot certification
//! ([`crate::integrity::certify_ms_run`]).

use std::borrow::Borrow;

use crate::device_graph::DeviceGraph;
use crate::error::XbfsError;
use crate::integrity::{certify_ms_run, Certificate, IntegrityError};
use crate::state::UNVISITED;
use crate::stats::levels_digest;
use gcd_sim::{BufU32, BufU64, Device, LaunchCfg, WaveCtx};
use parking_lot::Mutex;
use xbfs_graph::Csr;

/// Maximum sources per batch (bits in the visited mask = wave width).
pub const MAX_CONCURRENT: usize = 64;

/// Mutable traversal state, pooled and reused across batches.
struct MsInner {
    /// Per-vertex 64-bit visited mask; valid only where `stamp == epoch`.
    seen: BufU64,
    /// Per-vertex freshly-discovered bits for the level in flight. The
    /// fold pass zeroes every entry it consumes, so the buffer is
    /// all-zero between levels and between batches (no per-level fill).
    fresh: BufU64,
    /// Per-vertex batch-epoch stamp gating `seen` (0 = never touched).
    stamp: BufU32,
    frontier: BufU32,
    next_frontier: BufU32,
    counters: BufU32,
    /// Per-slot level arrays, grown lazily to the widest batch seen.
    /// Values are `base + level`; anything `< base` (or `UNVISITED`) is
    /// unvisited — the [`crate::BfsState`] epoch encoding.
    level_of: Vec<BufU32>,
    /// Current batch epoch for `stamp` (advances once per batch).
    epoch: u32,
    /// Current level-encoding base.
    base: u32,
    /// Deepest level the previous batch wrote (bounds the base advance).
    last_depth: u32,
    /// Whether `frontier`/`next_frontier` are swapped relative to their
    /// acquisition order — tracked so Drop releases them to the pool in a
    /// deterministic order regardless of batch depths.
    swapped: bool,
    /// Cached `"msbfs level N"` phase labels.
    labels: Vec<String>,
}

/// A persistent, pooled multi-source engine: the graph upload and every
/// device buffer are built **once**, and each batch reuses them — repeat
/// batches over one graph pay only the traversal itself (resets are O(1)
/// epoch bumps). The free-standing [`ms_bfs`] is a one-shot convenience
/// wrapper.
pub struct MsBfs<D: Borrow<Device>> {
    device: D,
    graph: DeviceGraph,
    degrees: Vec<u32>,
    inner: Mutex<MsInner>,
}

impl<D: Borrow<Device>> MsBfs<D> {
    /// Upload `graph` and acquire the reusable traversal state from the
    /// device pool.
    pub fn new(device: D, graph: &Csr) -> Result<Self, XbfsError> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(XbfsError::EmptyGraph);
        }
        let dev: &Device = device.borrow();
        let g = DeviceGraph::upload(dev, graph);
        let seen = dev.pool_acquire_u64(n);
        let fresh = dev.pool_acquire_u64(n);
        fresh.host_fill(0);
        let stamp = dev.pool_acquire_u32(n);
        stamp.host_fill(0);
        let frontier = dev.pool_acquire_u32(n);
        let next_frontier = dev.pool_acquire_u32(n);
        let counters = dev.pool_acquire_u32(2);
        let inner = MsInner {
            seen,
            fresh,
            stamp,
            frontier,
            next_frontier,
            counters,
            level_of: Vec::new(),
            epoch: 0,
            base: 1,
            last_depth: 0,
            swapped: false,
            labels: Vec::new(),
        };
        Ok(Self {
            device,
            graph: g,
            degrees: (0..n as u32).map(|v| graph.degree(v)).collect(),
            inner: Mutex::new(inner),
        })
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        self.device.borrow()
    }

    /// Vertex count of the resident graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Run up to [`MAX_CONCURRENT`] BFS instances in one shared traversal.
    ///
    /// Panics on invalid input (empty / oversized batch, out-of-range
    /// source); serving layers should use [`MsBfs::run_governed`], which
    /// returns typed errors and supports deadlines and certification.
    pub fn run_batch(&self, sources: &[u32]) -> MsBfsRun {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(
            sources.len() <= MAX_CONCURRENT,
            "at most {MAX_CONCURRENT} concurrent sources"
        );
        let n = self.graph.num_vertices();
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range");
        }
        self.run_impl(sources, None)
            .expect("no deadline: run cannot fail")
    }

    /// The serving layer's entry point: one batch under every governor at
    /// once. `deadline_ms` bounds the modeled clock (checked between
    /// levels — a batch that completes on its last level is never a
    /// timeout), `verify` runs the pool sweeps, CSR re-check, and the
    /// per-slot certificate ([`certify_ms_run`]).
    pub fn run_governed(
        &self,
        sources: &[u32],
        deadline_ms: Option<f64>,
        verify: bool,
    ) -> Result<(MsBfsRun, Option<Vec<Certificate>>), XbfsError> {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(
            sources.len() <= MAX_CONCURRENT,
            "at most {MAX_CONCURRENT} concurrent sources"
        );
        let n = self.graph.num_vertices();
        for &s in sources {
            if (s as usize) >= n {
                return Err(XbfsError::SourceOutOfRange {
                    source: s,
                    num_vertices: n,
                });
            }
        }
        if !verify {
            return self.run_impl(sources, deadline_ms).map(|run| (run, None));
        }
        let dev: &Device = self.device.borrow();
        // Surface corruption the pool already quarantined before investing
        // in a batch, exactly like the single-source verified pipeline.
        if let Some(f) = dev.take_pool_faults().into_iter().next() {
            return Err(IntegrityError::Pool(f).into());
        }
        dev.verify_pool().map_err(IntegrityError::Pool)?;
        let run = self.run_impl(sources, deadline_ms)?;
        self.graph.verify()?;
        let certs = certify_ms_run(
            &self.graph.offsets.to_host(),
            &self.graph.adjacency.to_host(),
            &run,
        )
        .map_err(IntegrityError::Certificate)?;
        dev.verify_pool().map_err(IntegrityError::Pool)?;
        if let Some(f) = dev.take_pool_faults().into_iter().next() {
            return Err(IntegrityError::Pool(f).into());
        }
        Ok((run, Some(certs)))
    }

    fn run_impl(&self, sources: &[u32], deadline_ms: Option<f64>) -> Result<MsBfsRun, XbfsError> {
        let device: &Device = self.device.borrow();
        let graph = &self.graph;
        let n = graph.num_vertices();
        let mut guard = self.inner.lock();
        let inner = &mut *guard;

        // O(1) between-batch resets: bump the stamp epoch (stale seen
        // masks read as empty) and advance the level base past everything
        // the previous batch wrote. Both wrap with an O(|V|) fallback fill.
        if inner.epoch == u32::MAX {
            inner.stamp.host_fill(0);
            inner.epoch = 1;
        } else {
            inner.epoch += 1;
        }
        let next_base = u64::from(inner.base) + u64::from(inner.last_depth) + 3;
        if next_base + n as u64 + 1 >= u64::from(UNVISITED) {
            for l in &inner.level_of {
                l.host_fill(UNVISITED);
            }
            inner.base = 1;
        } else {
            inner.base = next_base as u32;
        }
        while inner.level_of.len() < sources.len() {
            let l = device.pool_acquire_u32(n);
            // A recycled pool buffer may hold values that decode as
            // visited under the current base; neutralize once on acquire.
            l.host_fill(UNVISITED);
            inner.level_of.push(l);
        }
        let epoch = inner.epoch;
        let base = inner.base;
        let level_of = &inner.level_of[..sources.len()];

        device.reset_timeline();
        let _ = device.take_reports();
        device.set_phase("msbfs init");
        // Seed: sources may coincide; OR their bits. ≤ 64 entries, sorted
        // by vertex — equivalent to the dedup'd init frontier.
        let mut seeds: Vec<(u32, u64)> = Vec::with_capacity(sources.len());
        for (i, &s) in sources.iter().enumerate() {
            level_of[i].store(s as usize, base);
            match seeds.binary_search_by_key(&s, |&(v, _)| v) {
                Ok(p) => seeds[p].1 |= 1 << i,
                Err(p) => seeds.insert(p, (s, 1 << i)),
            }
        }
        for (i, &(v, bits)) in seeds.iter().enumerate() {
            inner.frontier.store(i, v);
            inner.seen.store(v as usize, bits);
            inner.stamp.store(v as usize, epoch);
        }
        device.charge_transfer(0, 12 * (seeds.len() as u64 + 1));
        let budget_us = deadline_ms.map(|d| d * 1000.0);
        let mut qlen = seeds.len();
        let mut level = 0u32;
        let mut deepest = 0u32;

        while qlen > 0 {
            let idx = level as usize;
            while inner.labels.len() <= idx {
                inner
                    .labels
                    .push(format!("msbfs level {}", inner.labels.len()));
            }
            device.set_phase(inner.labels[idx].as_str());
            device.fill_u32(0, &inner.counters, 0);
            device.launch(
                0,
                LaunchCfg::new("msbfs_expand", qlen).with_registers(56),
                |w| {
                    expand_kernel(
                        w,
                        graph,
                        &inner.seen,
                        &inner.stamp,
                        &inner.fresh,
                        &inner.frontier,
                        qlen,
                        epoch,
                    )
                },
            );
            // Fold: merge fresh bits into seen, record levels, build the
            // next union frontier, and zero the fresh entries consumed.
            let enc = base + level + 1;
            device.launch(0, LaunchCfg::new("msbfs_fold", n).with_registers(40), |w| {
                fold_kernel(
                    w,
                    &inner.seen,
                    &inner.stamp,
                    &inner.fresh,
                    &inner.next_frontier,
                    &inner.counters,
                    level_of,
                    enc,
                    epoch,
                )
            });
            device.sync();
            device.charge_transfer(0, 4);
            let produced = inner.counters.load(0) as usize;
            if produced > 0 {
                deepest = level + 1;
            }
            // Pointer-swap frontiers (free on real hardware).
            std::mem::swap(&mut inner.frontier, &mut inner.next_frontier);
            inner.swapped = !inner.swapped;
            qlen = produced;
            level += 1;
            if let Some(budget) = budget_us {
                let t1 = device.elapsed_us();
                // A batch that completes on its last level is never a
                // timeout — only abort while work remains. The fold pass
                // already zeroed `fresh`, so the engine stays reusable.
                if qlen > 0 && t1 > budget {
                    inner.last_depth = deepest;
                    return Err(XbfsError::DeadlineExceeded {
                        level: level - 1,
                        elapsed_us: t1 as u64,
                        deadline_us: budget as u64,
                    });
                }
            }
        }
        inner.last_depth = deepest;

        let total_ms = device.elapsed_us() / 1000.0;
        let levels: Vec<Vec<u32>> = level_of
            .iter()
            .map(|b| {
                b.to_host()
                    .into_iter()
                    .map(|raw| {
                        if raw == UNVISITED || raw < base {
                            UNVISITED
                        } else {
                            raw - base
                        }
                    })
                    .collect()
            })
            .collect();
        let slot_edges: Vec<u64> = levels
            .iter()
            .map(|ls| {
                ls.iter()
                    .zip(&self.degrees)
                    .filter(|&(&l, _)| l != UNVISITED)
                    .map(|(_, &d)| u64::from(d))
                    .sum::<u64>()
            })
            .collect();
        let traversed_edges = slot_edges.iter().sum();
        let gteps = if total_ms > 0.0 {
            traversed_edges as f64 / (total_ms * 1e-3) / 1e9
        } else {
            0.0
        };
        Ok(MsBfsRun {
            sources: sources.to_vec(),
            levels,
            slot_edges,
            total_ms,
            traversed_edges,
            gteps,
        })
    }
}

impl<D: Borrow<Device>> Drop for MsBfs<D> {
    /// Release every pooled buffer in reverse acquisition order so the
    /// pool's LIFO free lists hand each one back to the same role on the
    /// next build — the bit-identical warm-rebuild invariant.
    fn drop(&mut self) {
        let device: &Device = self.device.borrow();
        let inner = self.inner.get_mut();
        if inner.swapped {
            std::mem::swap(&mut inner.frontier, &mut inner.next_frontier);
            inner.swapped = false;
        }
        for l in inner.level_of.drain(..).rev() {
            device.pool_release_u32(l);
        }
        device.pool_release_u32(std::mem::replace(
            &mut inner.counters,
            BufU32::placeholder(),
        ));
        device.pool_release_u32(std::mem::replace(
            &mut inner.next_frontier,
            BufU32::placeholder(),
        ));
        device.pool_release_u32(std::mem::replace(
            &mut inner.frontier,
            BufU32::placeholder(),
        ));
        device.pool_release_u32(std::mem::replace(&mut inner.stamp, BufU32::placeholder()));
        device.pool_release_u64(std::mem::replace(&mut inner.fresh, BufU64::placeholder()));
        device.pool_release_u64(std::mem::replace(&mut inner.seen, BufU64::placeholder()));
        self.graph.release_to_pool(device);
    }
}

/// Result of a concurrent run.
#[derive(Debug, Clone)]
pub struct MsBfsRun {
    /// The batch's sources, in slot order.
    pub sources: Vec<u32>,
    /// `levels[i][v]` = BFS level of `v` from `sources[i]`.
    pub levels: Vec<Vec<u32>>,
    /// Per-slot traversed edges (Graph500 convention).
    pub slot_edges: Vec<u64>,
    /// Modeled end-to-end time for the whole batch, ms.
    pub total_ms: f64,
    /// Sum of per-source traversed edges.
    pub traversed_edges: u64,
    /// Aggregate GTEPS across the batch.
    pub gteps: f64,
}

impl MsBfsRun {
    /// Slots in the batch.
    pub fn width(&self) -> usize {
        self.sources.len()
    }

    /// Timing-independent per-slot digest — bit-identical to
    /// [`crate::stats::BfsRun::result_digest`] of a solo run from the
    /// same source on the same graph. This is what batched serving
    /// answers with, so batching is invisible in the response payload.
    pub fn result_digest(&self, slot: usize) -> u64 {
        levels_digest(self.sources[slot], &self.levels[slot])
    }

    /// BFS depth of one slot (deepest finite level).
    pub fn slot_depth(&self, slot: usize) -> u32 {
        self.levels[slot]
            .iter()
            .filter(|&&l| l != UNVISITED)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Vertices one slot reached.
    pub fn slot_reached(&self, slot: usize) -> u64 {
        self.levels[slot]
            .iter()
            .filter(|&&l| l != UNVISITED)
            .count() as u64
    }

    /// Per-slot GTEPS share (slot edges over the shared batch time).
    pub fn slot_gteps(&self, slot: usize) -> f64 {
        if self.total_ms > 0.0 {
            self.slot_edges[slot] as f64 / (self.total_ms * 1e-3) / 1e9
        } else {
            0.0
        }
    }
}

/// Run up to [`MAX_CONCURRENT`] BFS instances in one shared traversal.
///
/// One-shot convenience over [`MsBfs`]: builds the engine (upload +
/// buffers) and runs a single batch. Batched drivers should keep an
/// [`MsBfs`] alive instead.
pub fn ms_bfs(device: &Device, graph: &Csr, sources: &[u32]) -> MsBfsRun {
    MsBfs::new(device, graph)
        .expect("one-shot ms_bfs requires a non-empty graph")
        .run_batch(sources)
}

/// Expansion: each frontier vertex pushes `its bits & !seen` to neighbors
/// with a 64-bit `atomicOr` into `fresh`. Neighbor masks are gated by the
/// epoch stamp: a stale stamp means the mask is leftover from an earlier
/// batch and reads as empty.
#[allow(clippy::too_many_arguments)]
fn expand_kernel(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    seen: &BufU64,
    stamp: &BufU32,
    fresh: &BufU64,
    frontier: &BufU32,
    qlen: usize,
    epoch: u32,
) {
    let gids: Vec<usize> = w.lanes().filter(|&i| i < qlen).collect();
    if gids.is_empty() {
        return;
    }
    let mut us = Vec::with_capacity(gids.len());
    w.vload32(frontier, &gids, &mut us);
    let uidx: Vec<usize> = us.iter().map(|&u| u as usize).collect();
    // Frontier vertices were stamped when they were discovered, so their
    // own masks need no gate.
    let mut ubits = Vec::with_capacity(uidx.len());
    w.vload64(seen, &uidx, &mut ubits);
    let mut offs = Vec::with_capacity(uidx.len());
    w.vload64(&g.offsets, &uidx, &mut offs);
    let mut degs = Vec::with_capacity(uidx.len());
    w.vload32(&g.degrees, &uidx, &mut degs);
    struct Lane {
        bits: u64,
        off: u64,
        deg: u32,
    }
    let mut lanes: Vec<Lane> = ubits
        .iter()
        .zip(offs.iter().zip(&degs))
        .map(|(&bits, (&off, &deg))| Lane { bits, off, deg })
        .collect();
    let mut k = 0u32;
    loop {
        lanes.retain(|l| k < l.deg);
        if lanes.is_empty() {
            break;
        }
        let aidx: Vec<usize> = lanes
            .iter()
            .map(|l| (l.off + u64::from(k)) as usize)
            .collect();
        let mut vs = Vec::with_capacity(aidx.len());
        w.vload32(&g.adjacency, &aidx, &mut vs);
        let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
        let mut sts = Vec::with_capacity(sidx.len());
        w.vload32(stamp, &sidx, &mut sts);
        let mut svs = Vec::with_capacity(sidx.len());
        w.vload64(seen, &sidx, &mut svs);
        w.alu(2);
        let ops: Vec<(usize, u64)> = sidx
            .iter()
            .zip(lanes.iter().zip(sts.iter().zip(&svs)))
            .filter_map(|(&i, (l, (&st, &sv)))| {
                let sb = if st == epoch { sv } else { 0 };
                let new = l.bits & !sb;
                (new != 0).then_some((i, new))
            })
            .collect();
        w.vor64(fresh, &ops);
        k += 1;
    }
}

/// Fold: for every vertex with fresh bits, merge into `seen` (stamping
/// the epoch), record the level for each new bit, enqueue into the next
/// union frontier — and zero the fresh entry, restoring the all-zero
/// invariant without a per-level fill kernel.
#[allow(clippy::too_many_arguments)]
fn fold_kernel(
    w: &mut WaveCtx,
    seen: &BufU64,
    stamp: &BufU32,
    fresh: &BufU64,
    next_frontier: &BufU32,
    counters: &BufU32,
    level_of: &[BufU32],
    enc_level: u32,
    epoch: u32,
) {
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut fb = Vec::with_capacity(gids.len());
    w.vload64(fresh, &gids, &mut fb);
    w.alu(1);
    let pending: Vec<(usize, u64)> = gids
        .iter()
        .zip(&fb)
        .filter(|&(_, &b)| b != 0)
        .map(|(&v, &b)| (v, b))
        .collect();
    if pending.is_empty() {
        return;
    }
    let sidx: Vec<usize> = pending.iter().map(|&(v, _)| v).collect();
    let mut sts = Vec::with_capacity(sidx.len());
    w.vload32(stamp, &sidx, &mut sts);
    let mut sbits = Vec::with_capacity(sidx.len());
    w.vload64(seen, &sidx, &mut sbits);
    let mut members: Vec<u32> = Vec::new();
    let mut seen_writes: Vec<(usize, u64)> = Vec::new();
    let mut stamp_writes: Vec<(usize, u32)> = Vec::new();
    let mut fresh_clears: Vec<(usize, u64)> = Vec::with_capacity(pending.len());
    let mut level_writes: Vec<Vec<(usize, u32)>> = vec![Vec::new(); level_of.len()];
    for (&(v, b), (&st, &raw_sb)) in pending.iter().zip(sts.iter().zip(&sbits)) {
        fresh_clears.push((v, 0));
        let sb = if st == epoch { raw_sb } else { 0 };
        let new = b & !sb;
        if new == 0 {
            continue;
        }
        seen_writes.push((v, sb | new));
        stamp_writes.push((v, epoch));
        members.push(v as u32);
        let mut bits = new;
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            level_writes[s].push((v, enc_level));
            bits &= bits - 1;
        }
        w.alu(1);
    }
    w.vstore64(fresh, &fresh_clears);
    w.vstore64(seen, &seen_writes);
    w.vstore32(stamp, &stamp_writes);
    for (s, writes) in level_writes.iter().enumerate() {
        if !writes.is_empty() {
            w.vstore32(&level_of[s], writes);
        }
    }
    if members.is_empty() {
        return;
    }
    let base = w.wave_add32(counters, 0, members.len() as u32) as usize;
    let writes: Vec<(usize, u32)> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| (base + i, v))
        .collect();
    w.vstore32(next_frontier, &writes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::bfs_levels_serial;
    use xbfs_graph::generators::{barabasi_albert, erdos_renyi, rmat_graph, RmatParams};
    use xbfs_graph::stats::pick_sources;

    #[test]
    fn each_source_matches_reference() {
        let g = erdos_renyi(400, 1600, 9);
        let sources = pick_sources(&g, 8, 3);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                run.levels[i],
                bfs_levels_serial(&g, s),
                "source {s} (slot {i})"
            );
        }
    }

    #[test]
    fn duplicate_and_single_sources() {
        let g = barabasi_albert(300, 3, 1);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &[7, 7, 12]);
        assert_eq!(run.levels[0], run.levels[1]);
        assert_eq!(run.result_digest(0), run.result_digest(1));
        assert_eq!(run.levels[0], bfs_levels_serial(&g, 7));
        assert_eq!(run.levels[2], bfs_levels_serial(&g, 12));

        let run1 = ms_bfs(&dev, &g, &[5]);
        assert_eq!(run1.levels[0], bfs_levels_serial(&g, 5));
    }

    #[test]
    fn full_width_batch() {
        let g = rmat_graph(RmatParams::graph500(9), 2);
        let sources = pick_sources(&g, MAX_CONCURRENT, 5);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        assert_eq!(run.levels.len(), MAX_CONCURRENT);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(run.levels[i], bfs_levels_serial(&g, s), "source {s}");
        }
        assert!(run.gteps > 0.0);
    }

    #[test]
    fn sharing_beats_sequential_runs() {
        // The iBFS claim: one shared traversal for k sources beats k
        // independent traversals.
        let g = rmat_graph(RmatParams::graph500(12), 4);
        let sources = pick_sources(&g, 16, 11);
        let dev = Device::mi250x();
        let shared = ms_bfs(&dev, &g, &sources);
        let xbfs = crate::Xbfs::new(&dev, &g, crate::XbfsConfig::default()).unwrap();
        let sequential_ms: f64 = sources.iter().map(|&s| xbfs.run(s).unwrap().total_ms).sum();
        assert!(
            shared.total_ms < 0.5 * sequential_ms,
            "shared {} ms should be well under sequential {} ms",
            shared.total_ms,
            sequential_ms
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_oversized_batch() {
        let g = erdos_renyi(50, 100, 1);
        let dev = Device::mi250x();
        let sources: Vec<u32> = (0..65).collect();
        ms_bfs(&dev, &g, &sources);
    }

    #[test]
    fn pooled_engine_reuse_is_bit_identical() {
        // The tentpole invariant: an engine reused across many batches
        // (epoch resets, no fills) answers exactly like a fresh one-shot
        // engine, batch after batch — including interleaved widths.
        let g = rmat_graph(RmatParams::graph500(10), 6);
        let dev = Device::mi250x();
        let engine = MsBfs::new(&dev, &g).unwrap();
        let batches: Vec<Vec<u32>> = vec![
            pick_sources(&g, 64, 1),
            pick_sources(&g, 3, 2),
            pick_sources(&g, 64, 1), // repeat of batch 0
            vec![0, 0, 1],
            pick_sources(&g, 17, 9),
        ];
        let first = engine.run_batch(&batches[0]);
        for (bi, sources) in batches.iter().enumerate() {
            let warm = engine.run_batch(sources);
            let fresh = ms_bfs(&Device::mi250x(), &g, sources);
            assert_eq!(warm.levels, fresh.levels, "batch {bi} levels diverged");
            for slot in 0..sources.len() {
                assert_eq!(
                    warm.result_digest(slot),
                    fresh.result_digest(slot),
                    "batch {bi} slot {slot} digest diverged"
                );
            }
        }
        let again = engine.run_batch(&batches[0]);
        assert_eq!(first.levels, again.levels);
    }

    #[test]
    fn governed_deadline_aborts_and_engine_stays_reusable() {
        let g = rmat_graph(RmatParams::graph500(11), 3);
        let dev = Device::mi250x();
        let engine = MsBfs::new(&dev, &g).unwrap();
        let sources = pick_sources(&g, 32, 4);
        // An absurdly small budget must abort between levels...
        let err = engine
            .run_governed(&sources, Some(1e-6), false)
            .expect_err("1ns budget must abort");
        assert!(matches!(err, XbfsError::DeadlineExceeded { .. }));
        // ...and the engine must remain consistent for the next batch.
        let (run, _) = engine.run_governed(&sources, None, false).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(run.levels[i], bfs_levels_serial(&g, s), "source {s}");
        }
    }

    #[test]
    fn governed_verify_certifies_every_slot() {
        let g = rmat_graph(RmatParams::graph500(9), 8);
        let dev = Device::mi250x();
        let engine = MsBfs::new(&dev, &g).unwrap();
        let sources = pick_sources(&g, 16, 7);
        let (run, certs) = engine.run_governed(&sources, None, true).unwrap();
        let certs = certs.expect("verify produces certificates");
        assert_eq!(certs.len(), sources.len());
        for (i, c) in certs.iter().enumerate() {
            assert_eq!(c.visited, run.slot_reached(i));
            assert_eq!(c.levels_checksum, run.result_digest(i));
        }
    }

    #[test]
    fn batched_digest_matches_solo_xbfs_result_digest() {
        // The serving contract: a batched response's digest is
        // bit-identical to what a solo single-source run would answer.
        let g = rmat_graph(RmatParams::graph500(10), 12);
        let dev = Device::mi250x();
        let engine = MsBfs::new(&dev, &g).unwrap();
        let sources = pick_sources(&g, 24, 13);
        let run = engine.run_batch(&sources);
        let solo_dev = Device::mi250x();
        let xbfs = crate::Xbfs::new(&solo_dev, &g, crate::XbfsConfig::default()).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let solo = xbfs.run(s).unwrap();
            assert_eq!(
                run.result_digest(i),
                solo.result_digest(),
                "slot {i} source {s}"
            );
        }
    }
}
