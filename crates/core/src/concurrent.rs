//! Concurrent multi-source BFS (iBFS-style).
//!
//! The paper's introduction cites the authors' iBFS work: many BFS
//! instances — e.g. the 64 search keys of a Graph500 run, or an all-pairs
//! sweep for betweenness centrality — can share one traversal. This module
//! implements the bit-parallel formulation on the simulated GCD: each
//! vertex carries a 32-bit *visited mask* (one bit per concurrent source),
//! a frontier level expands the union frontier once, and newly discovered
//! `(vertex, source)` pairs are the bits that survive
//! `frontier_bits & !seen_bits`, propagated with `atomicOr`.
//!
//! Sharing pays because hub vertices are touched once per *level* instead
//! of once per *source* — the same locality argument as the paper's
//! degree-aware re-arrangement, one level up.

use crate::device_graph::DeviceGraph;
use crate::state::UNVISITED;
use gcd_sim::{BufU32, Device, LaunchCfg, WaveCtx};
use xbfs_graph::Csr;

/// Maximum sources per batch (bits in the visited mask).
pub const MAX_CONCURRENT: usize = 32;

/// Result of a concurrent run.
#[derive(Debug, Clone)]
pub struct MsBfsRun {
    /// `levels[i][v]` = BFS level of `v` from `sources[i]`.
    pub levels: Vec<Vec<u32>>,
    /// Modeled end-to-end time for the whole batch, ms.
    pub total_ms: f64,
    /// Sum of per-source traversed edges (Graph500 convention).
    pub traversed_edges: u64,
    /// Aggregate GTEPS across the batch.
    pub gteps: f64,
}

/// Run up to [`MAX_CONCURRENT`] BFS instances in one shared traversal.
pub fn ms_bfs(device: &Device, graph: &Csr, sources: &[u32]) -> MsBfsRun {
    assert!(!sources.is_empty(), "need at least one source");
    assert!(
        sources.len() <= MAX_CONCURRENT,
        "at most {MAX_CONCURRENT} concurrent sources"
    );
    let n = graph.num_vertices();
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
    }
    let g = DeviceGraph::upload(device, graph);

    device.reset_timeline();
    device.set_phase("msbfs init");
    let seen = device.alloc_u32(n); // bit s = visited by source s
    let fresh = device.alloc_u32(n); // bits claimed during this level
    let mut frontier = device.alloc_u32(n); // union frontier (vertex ids)
    let mut next_frontier = device.alloc_u32(n);
    let counters = device.alloc_u32(2); // [0] = next frontier len
    let level_of: Vec<BufU32> = (0..sources.len()).map(|_| device.alloc_u32(n)).collect();
    for l in &level_of {
        device.fill_u32(0, l, UNVISITED);
    }
    // Seed: sources may coincide; OR their bits.
    let mut seed_mask = vec![0u32; n];
    for (i, &s) in sources.iter().enumerate() {
        seed_mask[s as usize] |= 1 << i;
        level_of[i].store(s as usize, 0);
    }
    let mut init_frontier: Vec<u32> = sources.to_vec();
    init_frontier.sort_unstable();
    init_frontier.dedup();
    for (i, &v) in init_frontier.iter().enumerate() {
        frontier.store(i, v);
        seen.store(v as usize, seed_mask[v as usize]);
    }
    device.charge_transfer(0, 4 * (init_frontier.len() as u64 + 1));
    let mut qlen = init_frontier.len();
    let mut level = 0u32;

    // Reusable frontier/seen swap not needed: `fresh` is zeroed per level.
    while qlen > 0 {
        device.set_phase(format!("msbfs level {level}"));
        device.fill_u32(0, &fresh, 0);
        device.fill_u32(0, &counters, 0);
        device.launch(
            0,
            LaunchCfg::new("msbfs_expand", qlen).with_registers(48),
            |w| expand_kernel(w, &g, &seen, &fresh, &frontier, qlen),
        );
        // Fold: merge fresh bits into seen, record levels, build the next
        // union frontier.
        let lvl = level + 1;
        device.launch(
            0,
            LaunchCfg::new("msbfs_fold", n).with_registers(32),
            |w| fold_kernel(w, &seen, &fresh, &next_frontier, &counters, &level_of, lvl),
        );
        device.sync();
        device.charge_transfer(0, 4);
        qlen = counters.load(0) as usize;
        // Pointer-swap frontiers (free on real hardware).
        std::mem::swap(&mut frontier, &mut next_frontier);
        level += 1;
    }

    let total_ms = device.elapsed_us() / 1000.0;
    let levels: Vec<Vec<u32>> = level_of.iter().map(|b| b.to_host()).collect();
    let traversed_edges: u64 = levels
        .iter()
        .map(|ls| {
            ls.iter()
                .enumerate()
                .filter(|(_, &l)| l != UNVISITED)
                .map(|(v, _)| graph.degree(v as u32) as u64)
                .sum::<u64>()
        })
        .sum();
    let gteps = if total_ms > 0.0 {
        traversed_edges as f64 / (total_ms * 1e-3) / 1e9
    } else {
        0.0
    };
    MsBfsRun {
        levels,
        total_ms,
        traversed_edges,
        gteps,
    }
}

/// Expansion: each frontier vertex pushes `its bits & !seen` to neighbors
/// with `atomicOr` into `fresh`.
fn expand_kernel(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    seen: &BufU32,
    fresh: &BufU32,
    frontier: &BufU32,
    qlen: usize,
) {
    let gids: Vec<usize> = w.lanes().filter(|&i| i < qlen).collect();
    if gids.is_empty() {
        return;
    }
    let mut us = Vec::with_capacity(gids.len());
    w.vload32(frontier, &gids, &mut us);
    let uidx: Vec<usize> = us.iter().map(|&u| u as usize).collect();
    let mut ubits = Vec::with_capacity(uidx.len());
    w.vload32(seen, &uidx, &mut ubits);
    let mut offs = Vec::with_capacity(uidx.len());
    w.vload64(&g.offsets, &uidx, &mut offs);
    let mut degs = Vec::with_capacity(uidx.len());
    w.vload32(&g.degrees, &uidx, &mut degs);
    struct Lane {
        bits: u32,
        off: u64,
        deg: u32,
    }
    let mut lanes: Vec<Lane> = ubits
        .iter()
        .zip(offs.iter().zip(&degs))
        .map(|(&bits, (&off, &deg))| Lane { bits, off, deg })
        .collect();
    let mut k = 0u32;
    loop {
        lanes.retain(|l| k < l.deg);
        if lanes.is_empty() {
            break;
        }
        let aidx: Vec<usize> = lanes
            .iter()
            .map(|l| (l.off + u64::from(k)) as usize)
            .collect();
        let mut vs = Vec::with_capacity(aidx.len());
        w.vload32(&g.adjacency, &aidx, &mut vs);
        let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
        let mut svs = Vec::with_capacity(sidx.len());
        w.vload32(seen, &sidx, &mut svs);
        w.alu(1);
        let ops: Vec<(usize, u32)> = sidx
            .iter()
            .zip(lanes.iter().zip(&svs))
            .filter_map(|(&i, (l, &sb))| {
                let new = l.bits & !sb;
                (new != 0).then_some((i, new))
            })
            .collect();
        w.vor32(fresh, &ops);
        k += 1;
    }
}

/// Fold: for every vertex with fresh bits, merge into `seen`, record the
/// level for each new bit, enqueue into the next union frontier.
fn fold_kernel(
    w: &mut WaveCtx,
    seen: &BufU32,
    fresh: &BufU32,
    next_frontier: &BufU32,
    counters: &BufU32,
    level_of: &[BufU32],
    level: u32,
) {
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut fb = Vec::with_capacity(gids.len());
    w.vload32(fresh, &gids, &mut fb);
    w.alu(1);
    // Bits might already be seen (a racing OR from a vertex claimed earlier
    // this level cannot happen — expand reads `seen` of the *previous*
    // level — but a source bit seeded at init can overlap).
    let pending: Vec<(usize, u32)> = gids
        .iter()
        .zip(&fb)
        .filter(|&(_, &b)| b != 0)
        .map(|(&v, &b)| (v, b))
        .collect();
    if pending.is_empty() {
        return;
    }
    let sidx: Vec<usize> = pending.iter().map(|&(v, _)| v).collect();
    let mut sbits = Vec::with_capacity(sidx.len());
    w.vload32(seen, &sidx, &mut sbits);
    let mut members: Vec<u32> = Vec::new();
    let mut seen_writes: Vec<(usize, u32)> = Vec::new();
    let mut level_writes: Vec<Vec<(usize, u32)>> = vec![Vec::new(); level_of.len()];
    for (&(v, b), &sb) in pending.iter().zip(&sbits) {
        let new = b & !sb;
        if new == 0 {
            continue;
        }
        seen_writes.push((v, sb | new));
        members.push(v as u32);
        let mut bits = new;
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            level_writes[s].push((v, level));
            bits &= bits - 1;
        }
        w.alu(1);
    }
    w.vstore32(seen, &seen_writes);
    for (s, writes) in level_writes.iter().enumerate() {
        if !writes.is_empty() {
            w.vstore32(&level_of[s], writes);
        }
    }
    if members.is_empty() {
        return;
    }
    let base = w.wave_add32(counters, 0, members.len() as u32) as usize;
    let writes: Vec<(usize, u32)> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| (base + i, v))
        .collect();
    w.vstore32(next_frontier, &writes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::bfs_levels_serial;
    use xbfs_graph::generators::{barabasi_albert, erdos_renyi, rmat_graph, RmatParams};
    use xbfs_graph::stats::pick_sources;

    #[test]
    fn each_source_matches_reference() {
        let g = erdos_renyi(400, 1600, 9);
        let sources = pick_sources(&g, 8, 3);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                run.levels[i],
                bfs_levels_serial(&g, s),
                "source {s} (slot {i})"
            );
        }
    }

    #[test]
    fn duplicate_and_single_sources() {
        let g = barabasi_albert(300, 3, 1);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &[7, 7, 12]);
        assert_eq!(run.levels[0], run.levels[1]);
        assert_eq!(run.levels[0], bfs_levels_serial(&g, 7));
        assert_eq!(run.levels[2], bfs_levels_serial(&g, 12));

        let run1 = ms_bfs(&dev, &g, &[5]);
        assert_eq!(run1.levels[0], bfs_levels_serial(&g, 5));
    }

    #[test]
    fn full_width_batch() {
        let g = rmat_graph(RmatParams::graph500(9), 2);
        let sources = pick_sources(&g, MAX_CONCURRENT, 5);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        assert_eq!(run.levels.len(), MAX_CONCURRENT);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(run.levels[i], bfs_levels_serial(&g, s), "source {s}");
        }
        assert!(run.gteps > 0.0);
    }

    #[test]
    fn sharing_beats_sequential_runs() {
        // The iBFS claim: one shared traversal for k sources beats k
        // independent traversals.
        let g = rmat_graph(RmatParams::graph500(12), 4);
        let sources = pick_sources(&g, 16, 11);
        let dev = Device::mi250x();
        let shared = ms_bfs(&dev, &g, &sources);
        let xbfs = crate::Xbfs::new(&dev, &g, crate::XbfsConfig::default()).unwrap();
        let sequential_ms: f64 = sources
            .iter()
            .map(|&s| xbfs.run(s).unwrap().total_ms)
            .sum();
        assert!(
            shared.total_ms < 0.5 * sequential_ms,
            "shared {} ms should be well under sequential {} ms",
            shared.total_ms,
            sequential_ms
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_oversized_batch() {
        let g = erdos_renyi(50, 100, 1);
        let dev = Device::mi250x();
        let sources: Vec<u32> = (0..33).collect();
        ms_bfs(&dev, &g, &sources);
    }
}
