//! Concurrent multi-source BFS (iBFS-style).
//!
//! The paper's introduction cites the authors' iBFS work: many BFS
//! instances — e.g. the 64 search keys of a Graph500 run, or an all-pairs
//! sweep for betweenness centrality — can share one traversal. This module
//! implements the bit-parallel formulation on the simulated GCD: each
//! vertex carries a 32-bit *visited mask* (one bit per concurrent source),
//! a frontier level expands the union frontier once, and newly discovered
//! `(vertex, source)` pairs are the bits that survive
//! `frontier_bits & !seen_bits`, propagated with `atomicOr`.
//!
//! Sharing pays because hub vertices are touched once per *level* instead
//! of once per *source* — the same locality argument as the paper's
//! degree-aware re-arrangement, one level up.

use crate::device_graph::DeviceGraph;
use crate::state::UNVISITED;
use gcd_sim::{BufU32, Device, LaunchCfg, WaveCtx};
use xbfs_graph::Csr;

/// Maximum sources per batch (bits in the visited mask).
pub const MAX_CONCURRENT: usize = 32;

/// A persistent multi-source engine: the graph upload and every device
/// buffer are built **once**, and each [`MsBfs::run_batch`] reuses them —
/// repeat batches over one graph pay only the traversal itself. The
/// free-standing [`ms_bfs`] is a one-shot convenience wrapper.
pub struct MsBfs<'d> {
    device: &'d Device,
    g: DeviceGraph,
    degrees: Vec<u32>,
    seen: BufU32,
    fresh: BufU32,
    frontier: BufU32,
    next_frontier: BufU32,
    counters: BufU32,
    /// Per-slot level arrays, grown lazily to the widest batch seen.
    level_of: Vec<BufU32>,
    /// Cached `"msbfs level N"` phase labels.
    labels: Vec<String>,
}

impl<'d> MsBfs<'d> {
    /// Upload `graph` and allocate the reusable traversal state.
    pub fn new(device: &'d Device, graph: &Csr) -> Self {
        let n = graph.num_vertices();
        Self {
            device,
            g: DeviceGraph::upload(device, graph),
            degrees: (0..n as u32).map(|v| graph.degree(v)).collect(),
            seen: device.alloc_u32(n),
            fresh: device.alloc_u32(n),
            frontier: device.alloc_u32(n),
            next_frontier: device.alloc_u32(n),
            counters: device.alloc_u32(2),
            level_of: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Run up to [`MAX_CONCURRENT`] BFS instances in one shared traversal.
    pub fn run_batch(&mut self, sources: &[u32]) -> MsBfsRun {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(
            sources.len() <= MAX_CONCURRENT,
            "at most {MAX_CONCURRENT} concurrent sources"
        );
        let n = self.g.num_vertices();
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range");
        }
        let device = self.device;
        while self.level_of.len() < sources.len() {
            self.level_of.push(device.alloc_u32(n));
        }
        let level_of = &self.level_of[..sources.len()];

        device.reset_timeline();
        device.set_phase("msbfs init");
        // Untimed host-side zeroing mirrors the zeroed-on-alloc semantics
        // the one-shot path used to get from fresh buffers.
        self.seen.host_fill(0);
        self.fresh.host_fill(0);
        for l in level_of {
            device.fill_u32(0, l, UNVISITED);
        }
        // Seed: sources may coincide; OR their bits. ≤ 32 entries, sorted
        // by vertex — equivalent to the dedup'd init frontier.
        let mut seeds: Vec<(u32, u32)> = Vec::with_capacity(sources.len());
        for (i, &s) in sources.iter().enumerate() {
            level_of[i].store(s as usize, 0);
            match seeds.binary_search_by_key(&s, |&(v, _)| v) {
                Ok(p) => seeds[p].1 |= 1 << i,
                Err(p) => seeds.insert(p, (s, 1 << i)),
            }
        }
        for (i, &(v, bits)) in seeds.iter().enumerate() {
            self.frontier.store(i, v);
            self.seen.store(v as usize, bits);
        }
        device.charge_transfer(0, 4 * (seeds.len() as u64 + 1));
        let mut qlen = seeds.len();
        let mut level = 0u32;

        while qlen > 0 {
            let idx = level as usize;
            while self.labels.len() <= idx {
                self.labels
                    .push(format!("msbfs level {}", self.labels.len()));
            }
            device.set_phase(self.labels[idx].as_str());
            device.fill_u32(0, &self.fresh, 0);
            device.fill_u32(0, &self.counters, 0);
            device.launch(
                0,
                LaunchCfg::new("msbfs_expand", qlen).with_registers(48),
                |w| expand_kernel(w, &self.g, &self.seen, &self.fresh, &self.frontier, qlen),
            );
            // Fold: merge fresh bits into seen, record levels, build the
            // next union frontier.
            let lvl = level + 1;
            device.launch(0, LaunchCfg::new("msbfs_fold", n).with_registers(32), |w| {
                fold_kernel(
                    w,
                    &self.seen,
                    &self.fresh,
                    &self.next_frontier,
                    &self.counters,
                    level_of,
                    lvl,
                )
            });
            device.sync();
            device.charge_transfer(0, 4);
            qlen = self.counters.load(0) as usize;
            // Pointer-swap frontiers (free on real hardware).
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            level += 1;
        }

        let total_ms = device.elapsed_us() / 1000.0;
        let levels: Vec<Vec<u32>> = level_of.iter().map(|b| b.to_host()).collect();
        let traversed_edges: u64 = levels
            .iter()
            .map(|ls| {
                ls.iter()
                    .zip(&self.degrees)
                    .filter(|&(&l, _)| l != UNVISITED)
                    .map(|(_, &d)| u64::from(d))
                    .sum::<u64>()
            })
            .sum();
        let gteps = if total_ms > 0.0 {
            traversed_edges as f64 / (total_ms * 1e-3) / 1e9
        } else {
            0.0
        };
        MsBfsRun {
            levels,
            total_ms,
            traversed_edges,
            gteps,
        }
    }
}

/// Result of a concurrent run.
#[derive(Debug, Clone)]
pub struct MsBfsRun {
    /// `levels[i][v]` = BFS level of `v` from `sources[i]`.
    pub levels: Vec<Vec<u32>>,
    /// Modeled end-to-end time for the whole batch, ms.
    pub total_ms: f64,
    /// Sum of per-source traversed edges (Graph500 convention).
    pub traversed_edges: u64,
    /// Aggregate GTEPS across the batch.
    pub gteps: f64,
}

/// Run up to [`MAX_CONCURRENT`] BFS instances in one shared traversal.
///
/// One-shot convenience over [`MsBfs`]: builds the engine (upload +
/// buffers) and runs a single batch. Batched drivers should keep an
/// [`MsBfs`] alive instead.
pub fn ms_bfs(device: &Device, graph: &Csr, sources: &[u32]) -> MsBfsRun {
    MsBfs::new(device, graph).run_batch(sources)
}

/// Expansion: each frontier vertex pushes `its bits & !seen` to neighbors
/// with `atomicOr` into `fresh`.
fn expand_kernel(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    seen: &BufU32,
    fresh: &BufU32,
    frontier: &BufU32,
    qlen: usize,
) {
    let gids: Vec<usize> = w.lanes().filter(|&i| i < qlen).collect();
    if gids.is_empty() {
        return;
    }
    let mut us = Vec::with_capacity(gids.len());
    w.vload32(frontier, &gids, &mut us);
    let uidx: Vec<usize> = us.iter().map(|&u| u as usize).collect();
    let mut ubits = Vec::with_capacity(uidx.len());
    w.vload32(seen, &uidx, &mut ubits);
    let mut offs = Vec::with_capacity(uidx.len());
    w.vload64(&g.offsets, &uidx, &mut offs);
    let mut degs = Vec::with_capacity(uidx.len());
    w.vload32(&g.degrees, &uidx, &mut degs);
    struct Lane {
        bits: u32,
        off: u64,
        deg: u32,
    }
    let mut lanes: Vec<Lane> = ubits
        .iter()
        .zip(offs.iter().zip(&degs))
        .map(|(&bits, (&off, &deg))| Lane { bits, off, deg })
        .collect();
    let mut k = 0u32;
    loop {
        lanes.retain(|l| k < l.deg);
        if lanes.is_empty() {
            break;
        }
        let aidx: Vec<usize> = lanes
            .iter()
            .map(|l| (l.off + u64::from(k)) as usize)
            .collect();
        let mut vs = Vec::with_capacity(aidx.len());
        w.vload32(&g.adjacency, &aidx, &mut vs);
        let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
        let mut svs = Vec::with_capacity(sidx.len());
        w.vload32(seen, &sidx, &mut svs);
        w.alu(1);
        let ops: Vec<(usize, u32)> = sidx
            .iter()
            .zip(lanes.iter().zip(&svs))
            .filter_map(|(&i, (l, &sb))| {
                let new = l.bits & !sb;
                (new != 0).then_some((i, new))
            })
            .collect();
        w.vor32(fresh, &ops);
        k += 1;
    }
}

/// Fold: for every vertex with fresh bits, merge into `seen`, record the
/// level for each new bit, enqueue into the next union frontier.
fn fold_kernel(
    w: &mut WaveCtx,
    seen: &BufU32,
    fresh: &BufU32,
    next_frontier: &BufU32,
    counters: &BufU32,
    level_of: &[BufU32],
    level: u32,
) {
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut fb = Vec::with_capacity(gids.len());
    w.vload32(fresh, &gids, &mut fb);
    w.alu(1);
    // Bits might already be seen (a racing OR from a vertex claimed earlier
    // this level cannot happen — expand reads `seen` of the *previous*
    // level — but a source bit seeded at init can overlap).
    let pending: Vec<(usize, u32)> = gids
        .iter()
        .zip(&fb)
        .filter(|&(_, &b)| b != 0)
        .map(|(&v, &b)| (v, b))
        .collect();
    if pending.is_empty() {
        return;
    }
    let sidx: Vec<usize> = pending.iter().map(|&(v, _)| v).collect();
    let mut sbits = Vec::with_capacity(sidx.len());
    w.vload32(seen, &sidx, &mut sbits);
    let mut members: Vec<u32> = Vec::new();
    let mut seen_writes: Vec<(usize, u32)> = Vec::new();
    let mut level_writes: Vec<Vec<(usize, u32)>> = vec![Vec::new(); level_of.len()];
    for (&(v, b), &sb) in pending.iter().zip(&sbits) {
        let new = b & !sb;
        if new == 0 {
            continue;
        }
        seen_writes.push((v, sb | new));
        members.push(v as u32);
        let mut bits = new;
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            level_writes[s].push((v, level));
            bits &= bits - 1;
        }
        w.alu(1);
    }
    w.vstore32(seen, &seen_writes);
    for (s, writes) in level_writes.iter().enumerate() {
        if !writes.is_empty() {
            w.vstore32(&level_of[s], writes);
        }
    }
    if members.is_empty() {
        return;
    }
    let base = w.wave_add32(counters, 0, members.len() as u32) as usize;
    let writes: Vec<(usize, u32)> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| (base + i, v))
        .collect();
    w.vstore32(next_frontier, &writes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::bfs_levels_serial;
    use xbfs_graph::generators::{barabasi_albert, erdos_renyi, rmat_graph, RmatParams};
    use xbfs_graph::stats::pick_sources;

    #[test]
    fn each_source_matches_reference() {
        let g = erdos_renyi(400, 1600, 9);
        let sources = pick_sources(&g, 8, 3);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                run.levels[i],
                bfs_levels_serial(&g, s),
                "source {s} (slot {i})"
            );
        }
    }

    #[test]
    fn duplicate_and_single_sources() {
        let g = barabasi_albert(300, 3, 1);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &[7, 7, 12]);
        assert_eq!(run.levels[0], run.levels[1]);
        assert_eq!(run.levels[0], bfs_levels_serial(&g, 7));
        assert_eq!(run.levels[2], bfs_levels_serial(&g, 12));

        let run1 = ms_bfs(&dev, &g, &[5]);
        assert_eq!(run1.levels[0], bfs_levels_serial(&g, 5));
    }

    #[test]
    fn full_width_batch() {
        let g = rmat_graph(RmatParams::graph500(9), 2);
        let sources = pick_sources(&g, MAX_CONCURRENT, 5);
        let dev = Device::mi250x();
        let run = ms_bfs(&dev, &g, &sources);
        assert_eq!(run.levels.len(), MAX_CONCURRENT);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(run.levels[i], bfs_levels_serial(&g, s), "source {s}");
        }
        assert!(run.gteps > 0.0);
    }

    #[test]
    fn sharing_beats_sequential_runs() {
        // The iBFS claim: one shared traversal for k sources beats k
        // independent traversals.
        let g = rmat_graph(RmatParams::graph500(12), 4);
        let sources = pick_sources(&g, 16, 11);
        let dev = Device::mi250x();
        let shared = ms_bfs(&dev, &g, &sources);
        let xbfs = crate::Xbfs::new(&dev, &g, crate::XbfsConfig::default()).unwrap();
        let sequential_ms: f64 = sources.iter().map(|&s| xbfs.run(s).unwrap().total_ms).sum();
        assert!(
            shared.total_ms < 0.5 * sequential_ms,
            "shared {} ms should be well under sequential {} ms",
            shared.total_ms,
            sequential_ms
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_oversized_batch() {
        let g = erdos_renyi(50, 100, 1);
        let dev = Device::mi250x();
        let sources: Vec<u32> = (0..33).collect();
        ms_bfs(&dev, &g, &sources);
    }
}
