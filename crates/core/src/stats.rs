//! Per-run and per-level statistics — the raw material for every table and
//! figure in the paper's evaluation.

use crate::strategy::Strategy;
use gcd_sim::KernelReport;
use serde::{Deserialize, Serialize};

/// What happened at one BFS level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelStats {
    /// BFS level this row describes.
    pub level: u32,
    /// Strategy the controller (or forced mode) selected.
    pub strategy: Strategy,
    /// Whether the No-Frontier-Generation shortcut applied (no generation
    /// scan ran before the expansion).
    pub used_nfg: bool,
    /// Edge ratio of the expanded frontier (`frontier_edges / |E|`).
    pub ratio: f64,
    /// Vertices in the expanded frontier.
    pub frontier_count: u64,
    /// Sum of their degrees.
    pub frontier_edges: u64,
    /// Modeled wall time of the level (kernels + syncs + readbacks), ms.
    pub time_ms: f64,
    /// rocprof-style rows for every kernel launched this level.
    pub kernels: Vec<KernelReport>,
}

impl LevelStats {
    /// Total HBM fetch across this level's kernels, KB.
    pub fn fetch_kb(&self) -> f64 {
        self.kernels.iter().map(|k| k.fetch_kb).sum()
    }

    /// Total kernel runtime (excludes syncs/readbacks), ms.
    pub fn kernel_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.runtime_ms).sum()
    }
}

/// Result of one BFS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BfsRun {
    /// Source vertex of the run.
    pub source: u32,
    /// Per-vertex levels (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Optional Graph500 parent array.
    pub parents: Option<Vec<u32>>,
    /// Per-level statistics in level order.
    pub level_stats: Vec<LevelStats>,
    /// End-to-end modeled time (the paper's "n to n" window), ms.
    pub total_ms: f64,
    /// Edges traversed under the Graph500 TEPS convention.
    pub traversed_edges: u64,
    /// Giga-traversed-edges per second.
    pub gteps: f64,
}

/// FNV-1a digest over a source vertex and a per-vertex level array —
/// the backend-independent part of a BFS result. Two runs with equal
/// digests found the same levels from the same source, regardless of
/// which engine (single-GCD, pooled, or partitioned cluster) produced
/// them or how long it took; this is the value cross-backend
/// bit-identity checks compare.
pub fn levels_digest(source: u32, levels: &[u32]) -> u64 {
    fn mix(acc: u64, v: u64) -> u64 {
        (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h = mix(0xcbf2_9ce4_8422_2325, u64::from(source));
    for &l in levels {
        h = mix(h, u64::from(l));
    }
    h
}

impl BfsRun {
    /// BFS depth (number of levels with a non-empty frontier).
    pub fn depth(&self) -> usize {
        self.level_stats.len()
    }

    /// Total HBM fetch over the whole run, KB.
    pub fn total_fetch_kb(&self) -> f64 {
        self.level_stats.iter().map(|l| l.fetch_kb()).sum()
    }

    /// Strategy sequence over the levels.
    pub fn strategy_trace(&self) -> Vec<Strategy> {
        self.level_stats.iter().map(|l| l.strategy).collect()
    }

    /// FNV-1a digest over source, modeled total time, and the full level
    /// array. Two runs with equal digests are bit-identical in everything
    /// the sweep and serving layers compare — the replay/bit-identity
    /// checks in the sweep supervisor and the serve protocol both quote
    /// this value.
    pub fn digest(&self) -> u64 {
        fn mix(acc: u64, v: u64) -> u64 {
            (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3)
        }
        let mut h = mix(0xcbf2_9ce4_8422_2325, u64::from(self.source));
        h = mix(h, self.total_ms.to_bits());
        for &l in &self.levels {
            h = mix(h, u64::from(l));
        }
        h
    }

    /// Backend-independent result digest: [`levels_digest`] over this
    /// run's source and levels. Unlike [`BfsRun::digest`] it excludes
    /// the modeled time, so a cluster run (whose timeline includes
    /// exchange, checkpoint, and recovery costs) can be compared
    /// bit-for-bit against a single-device run of the same traversal.
    pub fn result_digest(&self) -> u64 {
        levels_digest(self.source, &self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd_sim::WaveStats;

    fn kr(rt: f64, fetch: f64) -> KernelReport {
        KernelReport {
            name: "k".into(),
            phase: String::new(),
            runtime_ms: rt,
            l2_hit_pct: 0.0,
            mem_busy_pct: 0.0,
            fetch_kb: fetch,
            stats: WaveStats::default(),
            occupancy: 1.0,
        }
    }

    #[test]
    fn level_aggregates() {
        let l = LevelStats {
            level: 0,
            strategy: Strategy::ScanFree,
            used_nfg: true,
            ratio: 0.5,
            frontier_count: 1,
            frontier_edges: 2,
            time_ms: 3.0,
            kernels: vec![kr(1.0, 10.0), kr(0.5, 20.0)],
        };
        assert!((l.fetch_kb() - 30.0).abs() < 1e-12);
        assert!((l.kernel_ms() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn result_digest_ignores_timing_but_not_levels() {
        let mk = |total_ms: f64, levels: Vec<u32>| BfsRun {
            source: 3,
            levels,
            parents: None,
            level_stats: vec![],
            total_ms,
            traversed_edges: 0,
            gteps: 0.0,
        };
        let a = mk(1.0, vec![0, 1, 1, 2]);
        let b = mk(9.5, vec![0, 1, 1, 2]);
        assert_ne!(a.digest(), b.digest(), "full digest covers total_ms");
        assert_eq!(a.result_digest(), b.result_digest());
        assert_eq!(a.result_digest(), levels_digest(3, &[0, 1, 1, 2]));
        let c = mk(1.0, vec![0, 1, 2, 2]);
        assert_ne!(a.result_digest(), c.result_digest());
        assert_ne!(levels_digest(3, &[0, 1]), levels_digest(4, &[0, 1]));
    }
}
