//! Bandwidth-efficiency analysis (paper §V-F).
//!
//! The paper predicts a full BFS must read `8·2|V| + 4|M|` bytes (status
//! twice at 8 bytes of offset data per vertex, adjacency once) and derives
//! two efficiency figures for Rmat25: 13.7% of peak bandwidth from the
//! prediction and 16.2% from rocprofiler's measured fetch volume.

use crate::stats::BfsRun;
use gcd_sim::ArchProfile;
use serde::{Deserialize, Serialize};

/// Efficiency figures for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Efficiency {
    /// `16|V| + 4|M|` bytes.
    pub predicted_bytes: u64,
    /// Total HBM fetch the profiler observed, bytes.
    pub measured_bytes: u64,
    /// Predicted bytes / runtime, as a fraction of peak bandwidth.
    pub predicted_fraction_of_peak: f64,
    /// Measured bytes / runtime, as a fraction of peak bandwidth.
    pub measured_fraction_of_peak: f64,
}

/// Compute §V-F's two efficiency numbers for a run on `arch`.
pub fn bandwidth_efficiency(
    run: &BfsRun,
    num_vertices: usize,
    num_edges: usize,
    arch: &ArchProfile,
) -> Efficiency {
    let predicted_bytes = 16 * num_vertices as u64 + 4 * num_edges as u64;
    let measured_bytes = (run.total_fetch_kb() * 1024.0) as u64;
    let secs = run.total_ms / 1e3;
    let peak = arch.mem_bw_gbps * 1e9;
    let frac = |bytes: u64| {
        if secs > 0.0 {
            (bytes as f64 / secs) / peak
        } else {
            0.0
        }
    };
    Efficiency {
        predicted_bytes,
        measured_bytes,
        predicted_fraction_of_peak: frac(predicted_bytes),
        measured_fraction_of_peak: frac(measured_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LevelStats;
    use crate::strategy::Strategy;
    use gcd_sim::{KernelReport, WaveStats};

    fn fake_run(total_ms: f64, fetch_kb: f64) -> BfsRun {
        BfsRun {
            source: 0,
            levels: vec![0],
            parents: None,
            level_stats: vec![LevelStats {
                level: 0,
                strategy: Strategy::ScanFree,
                used_nfg: true,
                ratio: 0.0,
                frontier_count: 1,
                frontier_edges: 1,
                time_ms: total_ms,
                kernels: vec![KernelReport {
                    name: "k".into(),
                    phase: String::new(),
                    runtime_ms: total_ms,
                    l2_hit_pct: 0.0,
                    mem_busy_pct: 0.0,
                    fetch_kb,
                    stats: WaveStats::default(),
                    occupancy: 1.0,
                }],
            }],
            total_ms,
            traversed_edges: 0,
            gteps: 0.0,
        }
    }

    #[test]
    fn paper_formula() {
        // 1 ms run moving the predicted volume on a 1.6 TB/s part.
        let arch = ArchProfile::mi250x_gcd();
        let v = 1_000_000usize;
        let m = 16_000_000usize;
        let predicted = 16 * v as u64 + 4 * m as u64; // 80 MB
        let run = fake_run(1.0, predicted as f64 / 1024.0);
        let eff = bandwidth_efficiency(&run, v, m, &arch);
        assert_eq!(eff.predicted_bytes, predicted);
        // 80 MB in 1 ms = 80 GB/s = 5% of 1600 GB/s.
        assert!((eff.predicted_fraction_of_peak - 0.05).abs() < 1e-3);
        assert!((eff.measured_fraction_of_peak - 0.05).abs() < 1e-3);
    }

    #[test]
    fn zero_runtime_is_safe() {
        let arch = ArchProfile::mi250x_gcd();
        let run = fake_run(0.0, 100.0);
        let eff = bandwidth_efficiency(&run, 10, 10, &arch);
        assert_eq!(eff.predicted_fraction_of_peak, 0.0);
    }
}
