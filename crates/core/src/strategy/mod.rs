//! The three XBFS frontier-queue-generation strategies and the per-level
//! kernel-launch orchestration.

pub mod bottom_up;
pub mod topdown;

use crate::config::XbfsConfig;
use crate::device_graph::DeviceGraph;
use crate::state::{ctr, ectr, BfsState, BinThresholds, QueueState};
use gcd_sim::{Device, GroupCfg, LaunchCfg};
use serde::{Deserialize, Serialize};

pub use bottom_up::BottomUpOpts;
pub use topdown::{TopDownOpts, GROUP_WAVES};

/// Register budgets the kernels "compile" to (drives the occupancy model;
/// the bottom-up expander is the register-hungry kernel whose footprint
/// separates clang from hipcc in §IV-A).
mod regs {
    pub const SCAN: u32 = 16;
    pub const TOP_DOWN_EXPAND: u32 = 48;
    pub const BOTTOM_UP_EXPAND: u32 = 110;
    pub const PREFIX: u32 = 16;
    pub const RESET: u32 = 8;
}

/// One of XBFS's frontier-queue-generation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Atomic status claim + wave-aggregated atomic enqueue; no status
    /// scan. Best at very small edge ratios (§III-A).
    ScanFree,
    /// Plain status writes during expansion; one status scan builds the
    /// queue (skippable via NFG). Best at moderate ratios (§III-B).
    SingleScan,
    /// Double-scan queue of unvisited vertices + early-terminating pull.
    /// Best above `α` (§III-C).
    BottomUp,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::ScanFree => "scan-free",
            Strategy::SingleScan => "single-scan",
            Strategy::BottomUp => "bottom-up",
        };
        write!(f, "{s}")
    }
}

/// Reset the per-level counter block (models the small `hipMemsetAsync`
/// XBFS issues between levels).
pub fn launch_reset_counters(dev: &Device, stream: usize, st: &BfsState) {
    dev.launch(
        stream,
        LaunchCfg::new("reset_counters", ctr::N).with_registers(regs::RESET),
        |w| {
            let writes: Vec<(usize, u32)> = w.lanes().map(|g| (g, 0)).collect();
            w.vstore32(&st.counters, &writes);
            if w.wave_id() == 0 {
                let writes64: Vec<(usize, u64)> = (0..ectr::N).map(|i| (i, 0)).collect();
                w.vstore64(&st.edge_counters, &writes64);
            }
        },
    );
}

/// Launch the frontier-generation scan (single-scan kernel 1): builds the
/// *current* frontier into `next_queues` from the status array. The caller
/// syncs, reads the lengths, and swaps queues.
pub fn launch_generation_scan(
    dev: &Device,
    stream: usize,
    g: &DeviceGraph,
    st: &BfsState,
    level: u32,
    cfg: &XbfsConfig,
) {
    let thresholds = BinThresholds::for_width(dev.arch().wavefront_size);
    let balancing = cfg.balancing_top_down;
    dev.launch(
        stream,
        LaunchCfg::new("fq_generate", g.num_vertices()).with_registers(regs::SCAN),
        move |w| topdown::generation_scan(w, g, st, level, balancing, thresholds),
    );
}

/// Launch the top-down expansion of the current frontier.
///
/// `qstate` selects the input: degree-binned exact queues (one kernel per
/// non-empty bin, optionally on separate streams) or the stale bottom-up
/// superset with a status filter.
pub fn launch_top_down_expand(
    dev: &Device,
    g: &DeviceGraph,
    st: &BfsState,
    level: u32,
    qstate: QueueState,
    atomic_claim: bool,
    cfg: &XbfsConfig,
) {
    let thresholds = BinThresholds::for_width(dev.arch().wavefront_size);
    let width = dev.arch().wavefront_size;
    let opts = TopDownOpts {
        level,
        atomic_claim,
        // Scan-free builds the next queue during expansion.
        enqueue: atomic_claim,
        filter: false,
        balancing: cfg.balancing_top_down,
        thresholds,
    };
    match qstate {
        QueueState::Exact(lens) => {
            for (b, &len) in lens.iter().enumerate() {
                if len == 0 {
                    continue;
                }
                let stream = if cfg.multi_stream { b } else { 0 };
                let q = &st.queues[b];
                match b {
                    0 => {
                        dev.launch(
                            stream,
                            LaunchCfg::new("fq_expand_thread", len)
                                .with_registers(regs::TOP_DOWN_EXPAND),
                            move |w| topdown::expand_thread(w, g, st, q, &opts),
                        );
                    }
                    1 => {
                        dev.launch(
                            stream,
                            LaunchCfg::new("fq_expand_wave", len * width)
                                .with_registers(regs::TOP_DOWN_EXPAND),
                            move |w| topdown::expand_wave(w, g, st, q, len, &opts),
                        );
                    }
                    _ => {
                        // Block-centric updating (§IV-A): a workgroup per
                        // very-high-degree vertex, claims staged in LDS.
                        dev.launch_groups(
                            stream,
                            GroupCfg::new("fq_expand_block", len)
                                .with_waves(GROUP_WAVES)
                                .with_registers(regs::TOP_DOWN_EXPAND),
                            move |grp| topdown::expand_block(grp, g, st, q, len, &opts),
                        );
                    }
                }
            }
        }
        QueueState::Superset(len) => {
            if len == 0 {
                return;
            }
            let opts = TopDownOpts {
                filter: true,
                ..opts
            };
            let q = &st.bu_queue;
            dev.launch(
                0,
                LaunchCfg::new("fq_expand_filtered", len).with_registers(regs::TOP_DOWN_EXPAND),
                move |w| topdown::expand_thread(w, g, st, q, &opts),
            );
        }
        QueueState::None => panic!("top-down expansion requires a queue"),
    }
}

/// Launch the five bottom-up kernels for one level. Returns nothing; the
/// caller reads `counters[BU_LEN]`, `CLAIMED` and `PROACTIVE` after sync.
pub fn launch_bottom_up_level(
    dev: &Device,
    g: &DeviceGraph,
    st: &BfsState,
    level: u32,
    cfg: &XbfsConfig,
) {
    let n = g.num_vertices();
    let width = dev.arch().wavefront_size;
    let n_segs = st.seg_counts.len();
    dev.launch(
        0,
        LaunchCfg::new("bu_count", n_segs).with_registers(regs::SCAN),
        move |w| bottom_up::bu_count(w, st, n),
    );
    dev.launch(
        0,
        LaunchCfg::new("bu_reduce", st.block_sums.len() * width).with_registers(regs::PREFIX),
        move |w| bottom_up::bu_reduce(w, st),
    );
    dev.launch(
        0,
        LaunchCfg::new("bu_scan", width).with_registers(regs::PREFIX),
        move |w| bottom_up::bu_scan(w, st),
    );
    dev.launch(
        0,
        LaunchCfg::new("bu_place", n_segs).with_registers(regs::SCAN),
        move |w| bottom_up::bu_place(w, st, n),
    );
    // The queue length lives on-device; launching the expansion over the
    // worst case (|V|) would distort costs, so the runner performs a tiny
    // readback (charged) to size the launch — mirroring XBFS, which reads
    // the frontier count back every level anyway to drive the controller.
    dev.charge_transfer(0, 4);
    let bu_len = st.counters.load(ctr::BU_LEN) as usize;
    let opts = BottomUpOpts {
        level,
        proactive: cfg.proactive,
    };
    if bu_len == 0 {
        return;
    }
    if cfg.balancing_bottom_up {
        dev.launch(
            0,
            LaunchCfg::new("bu_expand_wave", bu_len * width).with_registers(regs::BOTTOM_UP_EXPAND),
            move |w| bottom_up::bu_expand_wave(w, g, st, bu_len, &opts),
        );
    } else {
        dev.launch(
            0,
            LaunchCfg::new("bu_expand", bu_len).with_registers(regs::BOTTOM_UP_EXPAND),
            move |w| bottom_up::bu_expand_thread(w, g, st, bu_len, &opts),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::UNVISITED;
    use xbfs_graph::generators::erdos_renyi;

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::ScanFree.to_string(), "scan-free");
        assert_eq!(Strategy::SingleScan.to_string(), "single-scan");
        assert_eq!(Strategy::BottomUp.to_string(), "bottom-up");
    }

    #[test]
    fn reset_counters_zeroes_everything() {
        let dev = Device::mi250x();
        let st = BfsState::new(&dev, 100, false, 64);
        st.counters.host_fill(9);
        st.edge_counters.host_fill(9);
        launch_reset_counters(&dev, 0, &st);
        assert!(st.counters.to_host().iter().all(|&v| v == 0));
        assert!(st.edge_counters.to_host().iter().all(|&v| v == 0));
    }

    #[test]
    fn bottom_up_level_runs_five_kernels() {
        let g = erdos_renyi(500, 2500, 1);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        let st = BfsState::new(&dev, g.num_vertices(), false, 64);
        st.status.host_fill(UNVISITED);
        st.status.store(0, 0);
        let cfg = XbfsConfig::default();
        launch_bottom_up_level(&dev, &dg, &st, 0, &cfg);
        let reports = dev.take_reports();
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["bu_count", "bu_reduce", "bu_scan", "bu_place", "bu_expand"]
        );
        assert!(st.counters.load(ctr::CLAIMED) > 0);
    }

    #[test]
    #[should_panic(expected = "requires a queue")]
    fn top_down_from_none_panics() {
        let g = erdos_renyi(50, 100, 2);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        let st = BfsState::new(&dev, 50, false, 64);
        let cfg = XbfsConfig::default();
        launch_top_down_expand(&dev, &dg, &st, 0, QueueState::None, true, &cfg);
    }
}
