//! Bottom-up ("double-scan") frontier generation and expansion (§III-C).
//!
//! Five kernels, matching the five rows per level in the paper's Table V:
//!
//! 1. `bu_count` — scan the status array, count unvisited vertices per
//!    segment (`O(|V|)` reads),
//! 2. `bu_reduce` — per-block partial sums of the segment counts,
//! 3. `bu_scan` — exclusive scan of the block sums (single wave),
//! 4. `bu_place` — rescan the status array and place unvisited vertices
//!    into the bottom-up queue at their global offsets (`O(|V|)` reads),
//! 5. `bu_expand` — each unvisited vertex probes its adjacency list until
//!    it finds a parent at the current level (**early termination**), in
//!    the worst case `O(|M|)`.
//!
//! Segments are striped across a wavefront so the status scans stay
//! coalesced (a deliberate deviation from XBFS's contiguous segments —
//! noted in DESIGN.md — that preserves the `O(|V|)` fetch volume the paper
//! reports while keeping the queue dense and region-ordered).
//!
//! Kernel 5 also implements the paper's *proactive* update: a vertex that
//! finds no level-`L` neighbor but observes a neighbor already claimed at
//! `L+1` during this same pass claims itself at `L+2`.

use crate::device_graph::DeviceGraph;
use crate::state::{ctr, ectr, is_unvisited, BfsState};
use gcd_sim::WaveCtx;

/// Kernel 1: per-segment unvisited counts. Launch with
/// `items = number of segments`; segment `t` of wave `w` is the stripe
/// `{region(w) + j·width + lane(t)}`.
pub fn bu_count(w: &mut WaveCtx, st: &BfsState, n: usize) {
    let width = w.width();
    let seg_len = st.seg_len;
    let region = w.wave_id() * width * seg_len;
    if region >= n {
        return;
    }
    let lanes: Vec<usize> = w.lanes().collect();
    // Stripe stride = actual lane count so partial trailing waves still
    // cover their region contiguously (and coalesced).
    let nl = lanes.len();
    let mut counts = vec![0u32; nl];
    for j in 0..seg_len {
        let mut idxs = Vec::with_capacity(nl);
        let mut lane_of = Vec::with_capacity(nl);
        for l in 0..nl {
            let i = region + j * nl + l;
            if i < n {
                idxs.push(i);
                lane_of.push(l);
            }
        }
        if idxs.is_empty() {
            break;
        }
        let mut sts = Vec::with_capacity(idxs.len());
        w.vload32(&st.status, &idxs, &mut sts);
        w.alu(1);
        for (&l, &s) in lane_of.iter().zip(&sts) {
            if is_unvisited(s, st.base) {
                counts[l] += 1;
            }
        }
    }
    let writes: Vec<(usize, u32)> = lanes
        .iter()
        .zip(&counts)
        .map(|(&gid, &c)| (gid, c))
        .collect();
    w.vstore32(&st.seg_counts, &writes);
}

/// Kernel 2: block partial sums. Launch with
/// `items = number of blocks × width`; wave `b` reduces segment counts
/// `[b·width, (b+1)·width)`.
pub fn bu_reduce(w: &mut WaveCtx, st: &BfsState) {
    let width = w.width();
    let b = w.wave_id();
    if b >= st.block_sums.len() {
        return;
    }
    let start = b * width;
    let end = ((b + 1) * width).min(st.seg_counts.len());
    if start >= end {
        w.sstore32(&st.block_sums, b, 0);
        return;
    }
    let idxs: Vec<usize> = (start..end).collect();
    let mut counts = Vec::with_capacity(idxs.len());
    w.vload32(&st.seg_counts, &idxs, &mut counts);
    let sum = w.wave_reduce_add(&counts);
    w.sstore32(&st.block_sums, b, sum as u32);
}

/// Kernel 3: exclusive scan of the block sums, performed by a single wave
/// that walks the array in width-sized chunks carrying the running total.
/// Also publishes the grand total (the bottom-up queue length) to
/// `counters[BU_LEN]`. Launch with `items = width`.
pub fn bu_scan(w: &mut WaveCtx, st: &BfsState) {
    if w.wave_id() != 0 {
        return;
    }
    let width = w.width();
    let nb = st.block_sums.len();
    let mut carry = 0u32;
    let mut chunk = 0;
    while chunk < nb {
        let end = (chunk + width).min(nb);
        let idxs: Vec<usize> = (chunk..end).collect();
        let mut vals = Vec::with_capacity(idxs.len());
        w.vload32(&st.block_sums, &idxs, &mut vals);
        let mut pref = Vec::with_capacity(vals.len());
        let total = w.wave_prefix_sum(&vals, &mut pref);
        let writes: Vec<(usize, u32)> = idxs
            .iter()
            .zip(&pref)
            .map(|(&i, &p)| (i, carry + p))
            .collect();
        w.vstore32(&st.block_sums, &writes);
        carry += total;
        chunk = end;
    }
    w.sstore32(&st.counters, ctr::BU_LEN, carry);
}

/// Kernel 4: rescan the status array and place unvisited vertex ids into
/// the bottom-up queue. Launch with `items = number of segments` (same
/// striping as [`bu_count`]).
pub fn bu_place(w: &mut WaveCtx, st: &BfsState, n: usize) {
    let width = w.width();
    let seg_len = st.seg_len;
    let region = w.wave_id() * width * seg_len;
    if region >= n {
        return;
    }
    let lanes: Vec<usize> = w.lanes().collect();
    // Per-lane start offset = block offset + exclusive prefix of this
    // wave's segment counts.
    let block = w.wave_id();
    let base = w.sload32(&st.block_sums, block);
    let cidx: Vec<usize> = lanes.clone();
    let mut counts = Vec::with_capacity(cidx.len());
    w.vload32(&st.seg_counts, &cidx, &mut counts);
    let mut pref = Vec::with_capacity(counts.len());
    w.wave_prefix_sum(&counts, &mut pref);
    let mut cursors: Vec<usize> = pref.iter().map(|&p| (base + p) as usize).collect();

    let nl = lanes.len();
    for j in 0..seg_len {
        let mut idxs = Vec::with_capacity(nl);
        let mut lane_of = Vec::with_capacity(nl);
        for l in 0..nl {
            let i = region + j * nl + l;
            if i < n {
                idxs.push(i);
                lane_of.push(l);
            }
        }
        if idxs.is_empty() {
            break;
        }
        let mut sts = Vec::with_capacity(idxs.len());
        w.vload32(&st.status, &idxs, &mut sts);
        w.alu(1);
        let mut writes = Vec::new();
        for ((&i, &l), &s) in idxs.iter().zip(&lane_of).zip(&sts) {
            if is_unvisited(s, st.base) {
                writes.push((cursors[l], i as u32));
                cursors[l] += 1;
            }
        }
        w.vstore32(&st.bu_queue, &writes);
    }
}

/// Options for the bottom-up expansion kernel.
#[derive(Debug, Clone, Copy)]
pub struct BottomUpOpts {
    /// Current level: vertices whose neighbor is at `level` claim `level+1`.
    pub level: u32,
    /// Enable the proactive `level+2` claim (§III-C).
    pub proactive: bool,
}

/// Kernel 5 (AMD-tuned form): thread-per-vertex expansion with early
/// termination. Launch with `items = bottom-up queue length`.
pub fn bu_expand_thread(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    bu_len: usize,
    opts: &BottomUpOpts,
) {
    debug_assert!(bu_len <= st.bu_queue.len());
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut vs = Vec::with_capacity(gids.len());
    w.vload32(&st.bu_queue, &gids, &mut vs);
    // A vertex may have been claimed by a previous level's pass while the
    // queue is stale; skip those.
    let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
    let mut cur = Vec::with_capacity(sidx.len());
    w.vload32(&st.status, &sidx, &mut cur);
    w.alu(1);
    let vs: Vec<u32> = vs
        .iter()
        .zip(&cur)
        .filter(|&(_, &s)| is_unvisited(s, st.base))
        .map(|(&v, _)| v)
        .collect();
    if vs.is_empty() {
        return;
    }
    let vidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
    let mut offs = Vec::with_capacity(vidx.len());
    w.vload64(&g.offsets, &vidx, &mut offs);
    let mut degs = Vec::with_capacity(vidx.len());
    w.vload32(&g.degrees, &vidx, &mut degs);

    struct Lane {
        v: u32,
        off: u64,
        deg: u32,
        k: u32,
        /// First neighbor observed at `level + 1` (proactive candidate).
        next_parent: Option<u32>,
    }
    let mut lanes: Vec<Lane> = vs
        .iter()
        .zip(offs.iter().zip(&degs))
        .filter(|&(_, (_, &deg))| deg > 0) // isolated vertices are unreachable
        .map(|(&v, (&off, &deg))| Lane {
            v,
            off,
            deg,
            k: 0,
            next_parent: None,
        })
        .collect();

    let next = opts.level + 1;
    let mut claimed: Vec<(u32, u32, bool)> = Vec::new(); // (v, parent, proactive)
    while !lanes.is_empty() {
        let aidx: Vec<usize> = lanes
            .iter()
            .map(|l| (l.off + u64::from(l.k)) as usize)
            .collect();
        let mut nbrs = Vec::with_capacity(aidx.len());
        w.vload32(&g.adjacency, &aidx, &mut nbrs);
        let nsidx: Vec<usize> = nbrs.iter().map(|&v| v as usize).collect();
        let mut nsts = Vec::with_capacity(nsidx.len());
        w.vload32(&st.status, &nsidx, &mut nsts);
        w.alu(2);
        let mut writes: Vec<(usize, u32)> = Vec::new();
        let mut i = 0;
        lanes.retain_mut(|l| {
            let nb = nbrs[i];
            let s = nsts[i];
            i += 1;
            if s == opts.level {
                // Early termination: parent found.
                writes.push((l.v as usize, next));
                claimed.push((l.v, nb, false));
                return false;
            }
            if opts.proactive && s == next && l.next_parent.is_none() {
                l.next_parent = Some(nb);
            }
            l.k += 1;
            if l.k >= l.deg {
                // Exhausted: maybe a proactive claim.
                if let Some(p) = l.next_parent {
                    writes.push((l.v as usize, next + 1));
                    claimed.push((l.v, p, true));
                }
                return false;
            }
            true
        });
        if !writes.is_empty() {
            w.vstore32(&st.status, &writes);
        }
    }

    if claimed.is_empty() {
        return;
    }
    if let Some(parents) = &st.parents {
        let writes: Vec<(usize, u32)> = claimed.iter().map(|&(v, p, _)| (v as usize, p)).collect();
        w.vstore32(parents, &writes);
    }
    let didx: Vec<usize> = claimed.iter().map(|&(v, _, _)| v as usize).collect();
    let mut cdegs = Vec::with_capacity(didx.len());
    w.vload32(&g.degrees, &didx, &mut cdegs);
    let (mut n_now, mut n_pro) = (0u32, 0u32);
    let (mut e_now, mut e_pro) = (0u64, 0u64);
    for (&(_, _, pro), &d) in claimed.iter().zip(&cdegs) {
        if pro {
            n_pro += 1;
            e_pro += u64::from(d);
        } else {
            n_now += 1;
            e_now += u64::from(d);
        }
    }
    w.alu(1);
    if n_now > 0 {
        w.wave_add32(&st.counters, ctr::CLAIMED, n_now);
        w.wave_add64(&st.edge_counters, ectr::CLAIMED_EDGES, e_now);
    }
    if n_pro > 0 {
        w.wave_add32(&st.counters, ctr::PROACTIVE, n_pro);
        w.wave_add64(&st.edge_counters, ectr::PROACTIVE_EDGES, e_pro);
    }
}

/// Kernel 5 (naive-port form, §IV-A): wavefront-per-vertex expansion. Early
/// termination typically fires within the first probe, so 63 of 64 lanes
/// idle — this is the configuration the paper found *degrades* performance
/// on AMD's wider waves. Launch with `items = bu_len × width`.
pub fn bu_expand_wave(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    bu_len: usize,
    opts: &BottomUpOpts,
) {
    let vid = w.wave_id();
    if vid >= bu_len {
        return;
    }
    let v = w.sload32(&st.bu_queue, vid);
    if !is_unvisited(w.sload32(&st.status, v as usize), st.base) {
        return;
    }
    let off = w.sload64(&g.offsets, v as usize);
    let deg = w.sload32(&g.degrees, v as usize) as usize;
    let width = w.width();
    let next = opts.level + 1;
    let mut next_parent: Option<u32> = None;
    let mut base = 0usize;
    let mut claim: Option<(u32, u32)> = None; // (level, parent)
    while base < deg {
        let count = width.min(deg - base);
        let aidx: Vec<usize> = (0..count).map(|l| off as usize + base + l).collect();
        let mut nbrs = Vec::with_capacity(count);
        w.vload32(&g.adjacency, &aidx, &mut nbrs);
        let nsidx: Vec<usize> = nbrs.iter().map(|&v| v as usize).collect();
        let mut nsts = Vec::with_capacity(count);
        w.vload32(&st.status, &nsidx, &mut nsts);
        let found = w.ballot(&nsts.iter().map(|&s| s == opts.level).collect::<Vec<_>>());
        if found != 0 {
            let lane = found.trailing_zeros() as usize;
            claim = Some((next, nbrs[lane]));
            break;
        }
        if opts.proactive && next_parent.is_none() {
            if let Some(l) = nsts.iter().position(|&s| s == next) {
                next_parent = Some(nbrs[l]);
            }
        }
        base += width;
    }
    if claim.is_none() && opts.proactive {
        if let Some(p) = next_parent {
            claim = Some((next + 1, p));
        }
    }
    let Some((lvl, parent)) = claim else { return };
    w.sstore32(&st.status, v as usize, lvl);
    if let Some(parents) = &st.parents {
        w.sstore32(parents, v as usize, parent);
    }
    let d = w.sload32(&g.degrees, v as usize);
    if lvl == next {
        w.wave_add32(&st.counters, ctr::CLAIMED, 1);
        w.wave_add64(&st.edge_counters, ectr::CLAIMED_EDGES, u64::from(d));
    } else {
        w.wave_add32(&st.counters, ctr::PROACTIVE, 1);
        w.wave_add64(&st.edge_counters, ectr::PROACTIVE_EDGES, u64::from(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::UNVISITED;
    use gcd_sim::{Device, LaunchCfg};
    use xbfs_graph::generators::erdos_renyi;
    use xbfs_graph::Csr;

    fn setup(n: usize) -> (Device, BfsState) {
        let dev = Device::mi250x();
        let st = BfsState::new(&dev, n, true, 64);
        st.status.host_fill(UNVISITED);
        (dev, st)
    }

    fn run_double_scan(dev: &Device, st: &BfsState, n: usize) -> Vec<u32> {
        let width = dev.arch().wavefront_size;
        let n_segs = st.seg_counts.len();
        dev.launch(0, LaunchCfg::new("bu_count", n_segs), |w| {
            bu_count(w, st, n);
        });
        dev.launch(
            0,
            LaunchCfg::new("bu_reduce", st.block_sums.len() * width),
            |w| bu_reduce(w, st),
        );
        dev.launch(0, LaunchCfg::new("bu_scan", width), |w| bu_scan(w, st));
        dev.launch(0, LaunchCfg::new("bu_place", n_segs), |w| {
            bu_place(w, st, n);
        });
        let len = st.counters.load(ctr::BU_LEN) as usize;
        let mut q = st.bu_queue.to_host();
        q.truncate(len);
        q
    }

    #[test]
    fn double_scan_collects_all_unvisited() {
        let n = 1000;
        let (dev, st) = setup(n);
        // Visit a scattered subset.
        for v in [0usize, 5, 63, 64, 500, 999] {
            st.status.store(v, 2);
        }
        let q = run_double_scan(&dev, &st, n);
        assert_eq!(q.len(), n - 6);
        let mut sorted = q.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), q.len(), "duplicates in bottom-up queue");
        assert!(!sorted.contains(&0));
        assert!(!sorted.contains(&64));
        assert!(sorted.contains(&1));
    }

    #[test]
    fn double_scan_empty_and_full() {
        let n = 300;
        let (dev, st) = setup(n);
        // All unvisited.
        let q = run_double_scan(&dev, &st, n);
        assert_eq!(q.len(), n);
        // All visited.
        st.status.host_fill(1);
        let q = run_double_scan(&dev, &st, n);
        assert!(q.is_empty());
    }

    #[test]
    fn expand_claims_from_frontier() {
        let g = erdos_renyi(400, 2000, 7);
        let n = g.num_vertices();
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        let st = BfsState::new(&dev, n, true, 64);
        st.status.host_fill(UNVISITED);
        st.status.store(0, 0);
        let q = run_double_scan(&dev, &st, n);
        let opts = BottomUpOpts {
            level: 0,
            proactive: false,
        };
        dev.launch(0, LaunchCfg::new("bu_expand", q.len()), |w| {
            bu_expand_thread(w, &dg, &st, q.len(), &opts);
        });
        let status = st.status.to_host();
        for v in 0..n as u32 {
            let expect = if v == 0 {
                0
            } else if g.neighbors(v).contains(&0) {
                1
            } else {
                UNVISITED
            };
            assert_eq!(status[v as usize], expect, "vertex {v}");
        }
        let claimed = st.counters.load(ctr::CLAIMED) as usize;
        assert_eq!(claimed, g.neighbors(0).len());
    }

    #[test]
    fn proactive_claims_two_levels() {
        // Source 3; 4 is 3's neighbor (level 1); 0 is adjacent to {1, 2, 4}.
        // Within one bottom-up pass at level 0: lane(4) claims level 1 on
        // its second probe (k = 1); lane(0) probes 1, 2, then reads 4 at
        // k = 2 — after 4's claim landed — and proactively claims level 2.
        // Vertices 1, 2 stay unvisited this pass (true level 3).
        let g = Csr::from_parts(vec![0, 3, 4, 5, 6, 8], vec![1, 2, 4, 0, 0, 4, 0, 3]).unwrap();
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        let st = BfsState::new(&dev, 5, true, 64);
        st.status.host_fill(UNVISITED);
        st.status.store(3, 0);
        let q = run_double_scan(&dev, &st, 5);
        assert_eq!(q.len(), 4);
        let opts = BottomUpOpts {
            level: 0,
            proactive: true,
        };
        dev.launch(0, LaunchCfg::new("bu_expand", q.len()), |w| {
            bu_expand_thread(w, &dg, &st, q.len(), &opts);
        });
        let status = st.status.to_host();
        assert_eq!(status, vec![2, UNVISITED, UNVISITED, 0, 1]);
        assert_eq!(st.counters.load(ctr::CLAIMED), 1);
        assert_eq!(st.counters.load(ctr::PROACTIVE), 1);
        // Parent of the proactive claim is the level-1 neighbor.
        assert_eq!(st.parents.as_ref().unwrap().load(0), 4);
    }

    #[test]
    fn wave_variant_matches_thread_variant() {
        let g = erdos_renyi(300, 1500, 9);
        let n = g.num_vertices();
        let run = |wave: bool| {
            let dev = Device::mi250x();
            let dg = DeviceGraph::upload(&dev, &g);
            let st = BfsState::new(&dev, n, false, 64);
            st.status.host_fill(UNVISITED);
            st.status.store(7, 0);
            let q = run_double_scan(&dev, &st, n);
            let opts = BottomUpOpts {
                level: 0,
                proactive: false,
            };
            let width = dev.arch().wavefront_size;
            let r = if wave {
                dev.launch(0, LaunchCfg::new("bu_w", q.len() * width), |w| {
                    bu_expand_wave(w, &dg, &st, q.len(), &opts);
                })
            } else {
                dev.launch(0, LaunchCfg::new("bu_t", q.len()), |w| {
                    bu_expand_thread(w, &dg, &st, q.len(), &opts);
                })
            };
            (st.status.to_host(), r.stats.instructions)
        };
        let (s_thread, i_thread) = run(false);
        let (s_wave, i_wave) = run(true);
        assert_eq!(s_thread, s_wave);
        // The wave-per-vertex variant wastes lanes: far more instructions
        // for identical output (the §IV-A degradation).
        assert!(i_wave > 3 * i_thread, "wave {i_wave} vs thread {i_thread}");
    }
}
