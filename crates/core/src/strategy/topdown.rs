//! Shared top-down expansion kernels.
//!
//! Both top-down strategies (scan-free and single-scan) expand the current
//! frontier; they differ in how statuses are claimed (atomic CAS vs plain
//! store) and in whether the next queue is built during expansion (the
//! scan-free atomic enqueue) or by a later scan.
//!
//! Warp-centric dynamic workload balancing (§IV-A) maps frontier vertices
//! to execution resources by degree: thread-per-vertex for the small bin,
//! wavefront-per-vertex for the medium bin, and a 4-wave group per vertex
//! for the large bin.

use crate::device_graph::DeviceGraph;
use crate::state::{ctr, ectr, is_unvisited, BfsState, BinThresholds};
use gcd_sim::{BufU32, WaveCtx};

/// Waves cooperating on one large-bin vertex.
pub const GROUP_WAVES: usize = 4;

/// Options threaded through every top-down expansion kernel.
#[derive(Debug, Clone, Copy)]
pub struct TopDownOpts {
    /// Level being expanded (frontier vertices are at this level).
    pub level: u32,
    /// Claim neighbors with CAS (scan-free) instead of plain stores
    /// (single-scan's synchronization-free update).
    pub atomic_claim: bool,
    /// Enqueue claimed vertices into the next queues during expansion
    /// (scan-free frontier generation).
    pub enqueue: bool,
    /// The input queue is a superset (stale bottom-up queue): skip entries
    /// whose status is not `level`.
    pub filter: bool,
    /// Bin enqueued vertices by degree (warp-centric balancing).
    pub balancing: bool,
    /// Degree-bin boundaries.
    pub thresholds: BinThresholds,
}

/// A vertex claimed during expansion: `(vertex, parent, observed_status)`.
/// The observed (stale-epoch or `UNVISITED`) status is what a CAS claim
/// must compare against: `next = base + level + 1` can never collide with a
/// pre-epoch value, so CAS-from-observed keeps exactly-once claiming.
type Claim = (u32, u32, u32);

/// Claim the unvisited members of `cands` and append winners to `claimed`.
fn claim_candidates(
    w: &mut WaveCtx,
    st: &BfsState,
    opts: &TopDownOpts,
    cands: &[Claim],
    claimed: &mut Vec<Claim>,
) {
    if cands.is_empty() {
        return;
    }
    let next = opts.level + 1;
    if opts.atomic_claim {
        let ops: Vec<(usize, u32, u32)> = cands
            .iter()
            .map(|&(v, _, observed)| (v as usize, observed, next))
            .collect();
        let mut results = Vec::with_capacity(ops.len());
        w.vcas32(&st.status, &ops, &mut results);
        for (c, r) in cands.iter().zip(&results) {
            if r.is_ok() {
                claimed.push(*c);
            }
        }
    } else {
        // Plain stores: benign same-value races (single-scan, §III-B).
        let writes: Vec<(usize, u32)> = cands.iter().map(|&(v, _, _)| (v as usize, next)).collect();
        w.vstore32(&st.status, &writes);
        claimed.extend_from_slice(cands);
    }
}

/// Tail work common to every expansion kernel: record parents, bump the
/// claimed counters, and (scan-free) enqueue into the binned next queues.
fn commit_claims(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    opts: &TopDownOpts,
    claimed: &[Claim],
) {
    if claimed.is_empty() {
        return;
    }
    if let Some(parents) = &st.parents {
        let writes: Vec<(usize, u32)> = claimed.iter().map(|&(v, p, _)| (v as usize, p)).collect();
        w.vstore32(parents, &writes);
    }
    // Degrees of claimed vertices: needed for the edge-ratio counter and,
    // when balancing, for bin selection.
    let didx: Vec<usize> = claimed.iter().map(|&(v, _, _)| v as usize).collect();
    let mut cdegs = Vec::with_capacity(didx.len());
    w.vload32(&g.degrees, &didx, &mut cdegs);
    let deg_sum = w.wave_reduce_add(&cdegs);
    w.wave_add32(&st.counters, ctr::CLAIMED, claimed.len() as u32);
    w.wave_add64(&st.edge_counters, ectr::CLAIMED_EDGES, deg_sum);
    if opts.enqueue {
        enqueue_binned(w, st, opts, claimed, &cdegs);
    }
}

/// Wave-aggregated enqueue: one atomic per (wave, bin), then a coalesced
/// scatter — the XBFS replacement for per-thread atomic enqueues.
fn enqueue_binned(
    w: &mut WaveCtx,
    st: &BfsState,
    opts: &TopDownOpts,
    claimed: &[Claim],
    degs: &[u32],
) {
    let mut bins: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (&(v, _, _), &d) in claimed.iter().zip(degs) {
        let b = if opts.balancing {
            opts.thresholds.bin(d)
        } else {
            0
        };
        bins[b].push(v);
    }
    for (b, members) in bins.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let base = w.wave_add32(&st.counters, ctr::QUEUE_LEN[b], members.len() as u32);
        let writes: Vec<(usize, u32)> = members
            .iter()
            .enumerate()
            .map(|(i, &v)| (base as usize + i, v))
            .collect();
        w.vstore32(&st.next_queues[b], &writes);
    }
}

/// Load and optionally filter the frontier vertices a set of lanes handles.
/// Returns `(vertex, offset, degree)` triples for surviving lanes.
fn load_frontier(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    gids: &[usize],
    opts: &TopDownOpts,
) -> Vec<(u32, u64, u32)> {
    let mut us = Vec::with_capacity(gids.len());
    w.vload32(queue, gids, &mut us);
    let mut kept: Vec<u32> = if opts.filter {
        let sidx: Vec<usize> = us.iter().map(|&u| u as usize).collect();
        let mut sts = Vec::with_capacity(sidx.len());
        w.vload32(&st.status, &sidx, &mut sts);
        w.alu(1);
        us.iter()
            .zip(&sts)
            .filter(|&(_, &s)| s == opts.level)
            .map(|(&u, _)| u)
            .collect()
    } else {
        us
    };
    if kept.is_empty() {
        return Vec::new();
    }
    kept.dedup(); // cheap guard; exact queues contain no duplicates anyway
    let uidx: Vec<usize> = kept.iter().map(|&u| u as usize).collect();
    let mut offs = Vec::with_capacity(uidx.len());
    w.vload64(&g.offsets, &uidx, &mut offs);
    let mut degs = Vec::with_capacity(uidx.len());
    w.vload32(&g.degrees, &uidx, &mut degs);
    kept.iter()
        .zip(offs.iter().zip(&degs))
        .map(|(&u, (&o, &d))| (u, o, d))
        .collect()
}

/// Thread-per-vertex expansion: each lane walks its own adjacency list.
/// Lockstep iterations cost the wave its longest lane — the divergence
/// model. Launch with `items = queue length`.
pub fn expand_thread(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    opts: &TopDownOpts,
) {
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut lanes = load_frontier(w, g, st, queue, &gids, opts);
    let mut claimed: Vec<Claim> = Vec::new();
    let mut k = 0u32;
    loop {
        let active: Vec<&(u32, u64, u32)> = lanes.iter().filter(|&&(_, _, d)| k < d).collect();
        if active.is_empty() {
            break;
        }
        let aidx: Vec<usize> = active
            .iter()
            .map(|&&(_, o, _)| (o + u64::from(k)) as usize)
            .collect();
        let parents: Vec<u32> = active.iter().map(|&&(u, _, _)| u).collect();
        let mut vs = Vec::with_capacity(aidx.len());
        w.vload32(&g.adjacency, &aidx, &mut vs);
        let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
        let mut svs = Vec::with_capacity(sidx.len());
        w.vload32(&st.status, &sidx, &mut svs);
        w.alu(1);
        let cands: Vec<Claim> = vs
            .iter()
            .zip(&parents)
            .zip(&svs)
            .filter(|&(_, &s)| is_unvisited(s, st.base))
            .map(|((&v, &p), &s)| (v, p, s))
            .collect();
        claim_candidates(w, st, opts, &cands, &mut claimed);
        k += 1;
        // Retire finished lanes eagerly so the filter above stays cheap.
        lanes.retain(|&(_, _, d)| k < d);
    }
    commit_claims(w, g, st, opts, &claimed);
}

/// Wavefront-per-vertex expansion (medium bin): the wave's lanes stride one
/// vertex's adjacency list. Launch with `items = queue length × width`.
pub fn expand_wave(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    qlen: usize,
    opts: &TopDownOpts,
) {
    expand_cooperative(w, g, st, queue, qlen, opts, 1);
}

/// Multi-wave ("CTA") expansion (large bin): `GROUP_WAVES` waves stride one
/// vertex's adjacency list together. Launch with
/// `items = queue length × width × GROUP_WAVES`.
pub fn expand_group(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    qlen: usize,
    opts: &TopDownOpts,
) {
    expand_cooperative(w, g, st, queue, qlen, opts, GROUP_WAVES);
}

fn expand_cooperative(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    qlen: usize,
    opts: &TopDownOpts,
    waves_per_vertex: usize,
) {
    let vid = w.wave_id() / waves_per_vertex;
    let sub = w.wave_id() % waves_per_vertex;
    if vid >= qlen {
        return;
    }
    let u = w.sload32(queue, vid);
    if opts.filter {
        let s = w.sload32(&st.status, u as usize);
        w.alu(1);
        if s != opts.level {
            return;
        }
    }
    let off = w.sload64(&g.offsets, u as usize);
    let deg = w.sload32(&g.degrees, u as usize) as usize;
    let width = w.width();
    let stride = width * waves_per_vertex;
    let mut claimed: Vec<Claim> = Vec::new();
    let mut base = sub * width;
    while base < deg {
        let count = width.min(deg - base);
        let aidx: Vec<usize> = (0..count).map(|l| (off as usize) + base + l).collect();
        let mut vs = Vec::with_capacity(count);
        w.vload32(&g.adjacency, &aidx, &mut vs);
        let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
        let mut svs = Vec::with_capacity(count);
        w.vload32(&st.status, &sidx, &mut svs);
        w.alu(1);
        let cands: Vec<Claim> = vs
            .iter()
            .zip(&svs)
            .filter(|&(_, &s)| is_unvisited(s, st.base))
            .map(|(&v, &s)| (v, u, s))
            .collect();
        claim_candidates(w, st, opts, &cands, &mut claimed);
        base += stride;
    }
    commit_claims(w, g, st, opts, &claimed);
}

/// Block-centric expansion (large bin): a whole workgroup cooperates on
/// one vertex. Claims are staged in LDS and committed once per group —
/// the "block-centric updating" tier of §IV-A, which beats [`expand_group`]'s
/// per-wave commits on very-high-degree vertices by amortizing the queue
/// atomics across the block.
///
/// LDS layout: word 0 = staged-claim count, then `(vertex, parent)` pairs.
/// Launch with `GroupCfg { groups: queue length, .. }`.
pub fn expand_block(
    g: &mut gcd_sim::GroupCtx,
    dg: &DeviceGraph,
    st: &BfsState,
    queue: &BufU32,
    qlen: usize,
    opts: &TopDownOpts,
) {
    let gid = g.group_id();
    if gid >= qlen {
        return;
    }
    let wpg = g.waves_per_group();
    let width = g.width();
    let stage_cap = (g.lds_len() - 1) / 2;
    g.lds_scatter(&[(0, 0)]);
    g.barrier();

    // Each wave strides the vertex's adjacency; claims are staged in LDS
    // (overflow commits directly from the owning wave — the slow path).
    for wave in 0..wpg {
        // Collected per wave, then staged after its loop.
        let mut claimed: Vec<Claim> = Vec::new();
        let mut skip = false;
        g.wave(wave, |w| {
            let u = w.sload32(queue, gid);
            if opts.filter {
                let s = w.sload32(&st.status, u as usize);
                w.alu(1);
                if s != opts.level {
                    skip = true;
                    return;
                }
            }
            let off = w.sload64(&dg.offsets, u as usize);
            let deg = w.sload32(&dg.degrees, u as usize) as usize;
            let stride = width * wpg;
            let mut base = wave * width;
            while base < deg {
                let count = width.min(deg - base);
                let aidx: Vec<usize> = (0..count).map(|l| off as usize + base + l).collect();
                let mut vs = Vec::with_capacity(count);
                w.vload32(&dg.adjacency, &aidx, &mut vs);
                let sidx: Vec<usize> = vs.iter().map(|&v| v as usize).collect();
                let mut svs = Vec::with_capacity(count);
                w.vload32(&st.status, &sidx, &mut svs);
                w.alu(1);
                let cands: Vec<Claim> = vs
                    .iter()
                    .zip(&svs)
                    .filter(|&(_, &s)| is_unvisited(s, st.base))
                    .map(|(&v, &s)| (v, u, s))
                    .collect();
                claim_candidates(w, st, opts, &cands, &mut claimed);
                base += stride;
            }
        });
        if skip {
            return;
        }
        if claimed.is_empty() {
            continue;
        }
        // Stage into LDS (DS-atomic append); overflow commits directly.
        let mut head = Vec::new();
        g.lds_gather(&[0], &mut head);
        let mut cursor = head[0] as usize;
        let mut writes: Vec<(usize, u32)> = Vec::new();
        let mut overflow: Vec<Claim> = Vec::new();
        for &(v, p, s) in &claimed {
            if cursor < stage_cap {
                writes.push((1 + 2 * cursor, v));
                writes.push((2 + 2 * cursor, p));
                cursor += 1;
            } else {
                overflow.push((v, p, s));
            }
        }
        writes.push((0, cursor as u32));
        g.lds_scatter(&writes);
        if !overflow.is_empty() {
            g.wave(wave, |w| commit_claims(w, dg, st, opts, &overflow));
        }
    }
    g.barrier();

    // Wave 0 drains the staging area: one commit for the whole block.
    let mut head = Vec::new();
    g.lds_gather(&[0], &mut head);
    let n_staged = head[0] as usize;
    if n_staged == 0 {
        return;
    }
    let idxs: Vec<usize> = (0..2 * n_staged).map(|i| 1 + i).collect();
    let mut flat = Vec::with_capacity(idxs.len());
    g.lds_gather(&idxs, &mut flat);
    // Observed statuses aren't staged: the block commit never re-claims.
    let staged: Vec<Claim> = flat.chunks_exact(2).map(|c| (c[0], c[1], 0)).collect();
    g.wave(0, |w| commit_claims(w, dg, st, opts, &staged));
}

/// Frontier-queue generation scan (single-scan kernel 1): sweep the status
/// array and enqueue every vertex at `level` into the (binned) next queues.
/// Launch with `items = |V|`.
pub fn generation_scan(
    w: &mut WaveCtx,
    g: &DeviceGraph,
    st: &BfsState,
    level: u32,
    balancing: bool,
    thresholds: BinThresholds,
) {
    let gids: Vec<usize> = w.lanes().collect();
    if gids.is_empty() {
        return;
    }
    let mut sts = Vec::with_capacity(gids.len());
    w.vload32(&st.status, &gids, &mut sts);
    w.alu(1);
    let members: Vec<u32> = gids
        .iter()
        .zip(&sts)
        .filter(|&(_, &s)| s == level)
        .map(|(&v, _)| v as u32)
        .collect();
    if members.is_empty() {
        return;
    }
    let opts = TopDownOpts {
        level,
        atomic_claim: false,
        enqueue: true,
        filter: false,
        balancing,
        thresholds,
    };
    let claims: Vec<Claim> = members.iter().map(|&v| (v, 0, 0)).collect();
    let didx: Vec<usize> = members.iter().map(|&v| v as usize).collect();
    let mut degs = Vec::with_capacity(didx.len());
    w.vload32(&g.degrees, &didx, &mut degs);
    enqueue_binned(w, st, &opts, &claims, &degs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::UNVISITED;
    use gcd_sim::{Device, LaunchCfg};
    use xbfs_graph::generators::erdos_renyi;
    use xbfs_graph::Csr;

    fn setup(g: &Csr, source: u32) -> (Device, DeviceGraph, BfsState) {
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, g);
        let st = BfsState::new(&dev, g.num_vertices(), true, 64);
        st.status.host_fill(UNVISITED);
        st.status.store(source as usize, 0);
        st.queues[0].store(0, source);
        (dev, dg, st)
    }

    fn opts(atomic: bool) -> TopDownOpts {
        TopDownOpts {
            level: 0,
            atomic_claim: atomic,
            enqueue: true,
            filter: false,
            balancing: false,
            thresholds: BinThresholds::for_width(64),
        }
    }

    #[test]
    fn thread_expansion_claims_neighbors() {
        let g = erdos_renyi(200, 800, 1);
        let (dev, dg, st) = setup(&g, 0);
        let o = opts(true);
        dev.launch(0, LaunchCfg::new("expand", 1), |w| {
            expand_thread(w, &dg, &st, &st.queues[0], &o);
        });
        let status = st.status.to_host();
        for &v in g.neighbors(0) {
            assert_eq!(status[v as usize], 1, "neighbor {v} not claimed");
        }
        let claimed = st.counters.load(ctr::CLAIMED) as usize;
        assert_eq!(claimed, g.neighbors(0).len());
        let qlen = st.counters.load(ctr::QUEUE_LEN[0]) as usize;
        assert_eq!(qlen, claimed);
        // Parent of every claimed vertex is the source.
        let parents = st.parents.as_ref().unwrap().to_host();
        for &v in g.neighbors(0) {
            assert_eq!(parents[v as usize], 0);
        }
        // Degree-sum counter matches.
        let expect: u64 = g.neighbors(0).iter().map(|&v| g.degree(v) as u64).sum();
        assert_eq!(st.edge_counters.load(ectr::CLAIMED_EDGES), expect);
    }

    #[test]
    fn wave_and_group_match_thread() {
        let g = erdos_renyi(300, 3000, 2);
        let run = |mode: usize| {
            let (dev, dg, st) = setup(&g, 5);
            let o = opts(true);
            let width = dev.arch().wavefront_size;
            match mode {
                0 => {
                    dev.launch(0, LaunchCfg::new("t", 1), |w| {
                        expand_thread(w, &dg, &st, &st.queues[0], &o);
                    });
                }
                1 => {
                    dev.launch(0, LaunchCfg::new("w", width), |w| {
                        expand_wave(w, &dg, &st, &st.queues[0], 1, &o);
                    });
                }
                _ => {
                    dev.launch(0, LaunchCfg::new("g", width * GROUP_WAVES), |w| {
                        expand_group(w, &dg, &st, &st.queues[0], 1, &o);
                    });
                }
            }
            let mut q: Vec<u32> = st.queues[0].to_host(); // unchanged input
            q.truncate(1);
            (st.status.to_host(), st.counters.load(ctr::CLAIMED))
        };
        let (s0, c0) = run(0);
        let (s1, c1) = run(1);
        let (s2, c2) = run(2);
        assert_eq!(s0, s1);
        assert_eq!(s0, s2);
        assert_eq!(c0, c1);
        assert_eq!(c0, c2);
    }

    #[test]
    fn block_expansion_matches_thread_expansion() {
        use gcd_sim::GroupCfg;
        let g = erdos_renyi(400, 6000, 11);
        let run_block = |filter: bool| {
            let (dev, dg, st) = setup(&g, 5);
            let mut o = opts(true);
            o.filter = filter;
            dev.launch_groups(0, GroupCfg::new("b", 1).with_waves(GROUP_WAVES), |grp| {
                expand_block(grp, &dg, &st, &st.queues[0], 1, &o)
            });
            (st.status.to_host(), st.counters.load(ctr::CLAIMED))
        };
        let run_thread = || {
            let (dev, dg, st) = setup(&g, 5);
            let o = opts(true);
            dev.launch(0, LaunchCfg::new("t", 1), |w| {
                expand_thread(w, &dg, &st, &st.queues[0], &o);
            });
            (st.status.to_host(), st.counters.load(ctr::CLAIMED))
        };
        assert_eq!(run_block(false), run_thread());
        // With the filter on and a valid level-0 source, results also match.
        assert_eq!(run_block(true), run_thread());
    }

    #[test]
    fn block_expansion_overflow_path() {
        use gcd_sim::GroupCfg;
        // Hub with more neighbors than the LDS staging area: force the
        // slow-path commits.
        let n = 9000usize;
        let mut b = xbfs_graph::CsrBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        let g = b.build(xbfs_graph::BuildOptions::default());
        let (dev, dg, st) = setup(&g, 0);
        let o = opts(true);
        dev.launch_groups(
            0,
            // Tiny LDS: stage at most (256/4 - 1)/2 = 31 claims.
            GroupCfg::new("b", 1).with_waves(GROUP_WAVES).with_lds(256),
            |grp| expand_block(grp, &dg, &st, &st.queues[0], 1, &o),
        );
        assert_eq!(st.counters.load(ctr::CLAIMED) as usize, n - 1);
        let status = st.status.to_host();
        assert!(status[1..].iter().all(|&s| s == 1));
        // All claimed vertices must be enqueued exactly once.
        let lens: usize = (0..3)
            .map(|b| st.counters.load(ctr::QUEUE_LEN[b]) as usize)
            .sum();
        assert_eq!(lens, n - 1);
    }

    #[test]
    fn plain_claim_writes_without_cas() {
        let g = erdos_renyi(100, 300, 3);
        let (dev, dg, st) = setup(&g, 0);
        let mut o = opts(false);
        o.enqueue = false;
        let r = dev.launch(0, LaunchCfg::new("plain", 1), |w| {
            expand_thread(w, &dg, &st, &st.queues[0], &o);
        });
        // Single-scan expansion: claims but no enqueue, CAS-free.
        assert_eq!(st.counters.load(ctr::QUEUE_LEN[0]), 0);
        assert!(st.counters.load(ctr::CLAIMED) > 0);
        // Only the counter aggregation atomics remain (2 per wave).
        assert!(r.stats.atomics <= 2);
    }

    #[test]
    fn filter_skips_stale_entries() {
        let g = erdos_renyi(100, 400, 4);
        let (dev, dg, st) = setup(&g, 0);
        // Queue holds [0 (level 0), 1 (unvisited)]; filter must skip 1.
        st.queues[0].store(1, 1);
        let mut o = opts(true);
        o.filter = true;
        dev.launch(0, LaunchCfg::new("f", 2), |w| {
            expand_thread(w, &dg, &st, &st.queues[0], &o);
        });
        let status = st.status.to_host();
        // Neighbors of 1 that aren't neighbors of 0 must stay unvisited.
        for &v in g.neighbors(1) {
            if !g.neighbors(0).contains(&v) && v != 0 && status[v as usize] != UNVISITED {
                panic!("vertex {v} expanded from filtered-out entry");
            }
        }
    }

    #[test]
    fn generation_scan_rebuilds_queue() {
        let g = erdos_renyi(500, 2000, 5);
        let (dev, dg, st) = setup(&g, 0);
        // Mark a known set at level 3.
        let marked = [4u32, 99, 250, 499];
        for &v in &marked {
            st.status.store(v as usize, 3);
        }
        dev.launch(0, LaunchCfg::new("gen", g.num_vertices()), |w| {
            generation_scan(w, &dg, &st, 3, false, BinThresholds::for_width(64));
        });
        let n = st.counters.load(ctr::QUEUE_LEN[0]) as usize;
        assert_eq!(n, marked.len());
        let mut q = st.next_queues[0].to_host();
        q.truncate(n);
        q.sort_unstable();
        assert_eq!(q, marked);
    }

    #[test]
    fn balanced_enqueue_bins_by_degree() {
        // Star graph: center has high degree, leaves degree 1.
        let n = 5000usize;
        let mut b = xbfs_graph::CsrBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        let g = b.build(xbfs_graph::BuildOptions::default());
        let (dev, dg, st) = setup(&g, 1); // start at a leaf
        let mut o = opts(true);
        o.balancing = true;
        dev.launch(0, LaunchCfg::new("e", 1), |w| {
            expand_thread(w, &dg, &st, &st.queues[0], &o);
        });
        // The center (degree 4999) must land in the large bin.
        assert_eq!(st.counters.load(ctr::QUEUE_LEN[2]), 1);
        assert_eq!(st.next_queues[2].load(0), 0);
        assert_eq!(st.counters.load(ctr::QUEUE_LEN[0]), 0);
    }
}
