//! Silent-data-corruption detection for the single-GCD serving path:
//! seedable device-memory bit-flip injection, an O(|V|+|E|) BFS result
//! *certificate* validator, and the typed [`IntegrityError`] the CLI and
//! sweep supervisor act on.
//!
//! PR 1's fault framework models *crash* faults (a GCD dies mid-collective
//! and the cluster recovers). This module models *silent* faults: a bit
//! flips in device memory and every downstream number is quietly wrong
//! unless something checks. Three complementary detectors cover the state
//! a flip can land in (DESIGN.md §9):
//!
//! * **CSR checksum** ([`crate::DeviceGraph::verify`]) — FNV-1a over the
//!   uploaded topology; any single-word corruption always changes the
//!   digest (the mix is bijective per word).
//! * **Pool checksums + canaries** (`gcd_sim::Device::verify_pool`) — the
//!   same guarantee for buffers parked between runs.
//! * **The certificate** ([`certify_run`]) — semantic validation of live
//!   run output: level histogram bounded by the runner's claims-based
//!   frontier counters, edge relaxation (`level[v] ≤ level[u] + 1` across
//!   every edge, no visited→unvisited neighbors), predecessor existence,
//!   and full parent-tree checks when parents are recorded.
//!
//! The injector ([`apply_sabotage`]) deliberately emulates an adversarial
//! single-event upset *that matters*: it flips bits whose corruption is
//! semantically visible (e.g. it skips a parents flip that would land on a
//! valid alternative parent), so "detected in 100% of injected runs" is a
//! meaningful property rather than vacuously counting masked flips.

use crate::concurrent::MsBfsRun;
use crate::device_graph::DeviceGraph;
use crate::state::{is_unvisited, BfsState, UNVISITED};
use crate::stats::{levels_digest, BfsRun};
use gcd_sim::{fnv1a, splitmix64, Device, PoolError};
use std::fmt;

/// How many seeded bit flips to inject into each kind of device state.
///
/// Parsed from / rendered to the CLI spec syntax
/// `status[:N],parents[:N],csr[:N],pool[:N],seed=S` (mirroring the crash
/// fault specs of `xbfs cluster --inject-faults`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitflipPlan {
    /// Flips into the epoch-encoded status (level) array.
    pub status: u32,
    /// Flips into the parent array (requires `record_parents`).
    pub parents: u32,
    /// Flips into the uploaded CSR (offsets or adjacency).
    pub csr: u32,
    /// Flips into buffers parked in the device pool.
    pub pool: u32,
    /// Seed for target selection.
    pub seed: u64,
}

impl BitflipPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            status: 0,
            parents: 0,
            csr: 0,
            pool: 0,
            seed: 0,
        }
    }

    /// True if the plan injects no flips at all.
    pub fn is_empty(&self) -> bool {
        self.status == 0 && self.parents == 0 && self.csr == 0 && self.pool == 0
    }

    /// Parse a spec like `status:2,csr,seed=7` (a bare kind means one
    /// flip). Unknown kinds and malformed counts are errors, reported in
    /// the shared ``token `X`: why`` shape of [`xbfs_spec`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::none();
        for tok in xbfs_spec::tokenize(spec) {
            match tok {
                xbfs_spec::Token::Assign {
                    key: "seed", value, ..
                } => {
                    plan.seed = tok.num("seed", value).map_err(|e| e.to_string())?;
                }
                xbfs_spec::Token::Assign { .. } => {
                    return Err(tok
                        .err("unknown assignment (expected seed=<n>)")
                        .to_string())
                }
                xbfs_spec::Token::Item { kind, .. } => {
                    let count = tok.arg_count(1).map_err(|e| e.to_string())?;
                    match kind {
                        "status" => plan.status += count,
                        "parents" => plan.parents += count,
                        "csr" => plan.csr += count,
                        "pool" => plan.pool += count,
                        _ => {
                            return Err(tok
                                .err("unknown bitflip target (expected status|parents|csr|pool)")
                                .to_string())
                        }
                    }
                }
            }
        }
        Ok(plan)
    }

    /// Render back to the spec syntax `parse` accepts (for JSON exports).
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        for (kind, count) in [
            ("status", self.status),
            ("parents", self.parents),
            ("csr", self.csr),
            ("pool", self.pool),
        ] {
            match count {
                0 => {}
                1 => parts.push(kind.to_string()),
                c => parts.push(format!("{kind}:{c}")),
            }
        }
        parts.push(format!("seed={}", self.seed));
        parts.join(",")
    }
}

/// A bit-flip plan bound to one run: `salt` (e.g. the source vertex in a
/// sweep) decorrelates targets across runs sharing one plan.
#[derive(Debug, Clone, Copy)]
pub struct Sabotage<'a> {
    /// The flip counts and seed.
    pub plan: &'a BitflipPlan,
    /// Mixed into the seed so each run of a sweep corrupts differently.
    pub salt: u64,
}

/// True if `parent -> v` would pass every certificate parent check — used
/// by the injector to skip semantically masked parents flips.
fn is_valid_parent(g: &DeviceGraph, levels: &[u32], parent: u32, v: usize) -> bool {
    let n = g.num_vertices();
    if parent as usize >= n {
        return false;
    }
    let lv = levels[v];
    if lv == 0 {
        return parent as usize == v; // the source parents itself
    }
    if levels[parent as usize] != lv - 1 {
        return false;
    }
    let beg = g.offsets.load(parent as usize) as usize;
    let end = g.offsets.load(parent as usize + 1) as usize;
    (beg..end).any(|e| g.adjacency.load(e) as usize == v)
}

/// Inject the plan's bit flips into live device state. Called by the
/// runner inside the run (after the level loop, before host readback), so
/// the flips model corruption the measured window never observed.
///
/// Targets are chosen so every applied flip is detectable by the
/// certificate / checksum layer (see the module docs); the return value is
/// the number of flips actually applied (a plan can come up short only
/// when its target state does not exist, e.g. `parents` flips on a run
/// without parents, or `pool` flips with an empty pool).
pub fn apply_sabotage(dev: &Device, g: &DeviceGraph, st: &BfsState, sab: &Sabotage) -> u32 {
    let mut s = sab
        .plan
        .seed
        .wrapping_add(sab.salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut applied = 0u32;
    let n = g.num_vertices();

    // Host-side snapshot of the decoded levels for target selection
    // (host reads are untraced, so modeled timings are unaffected).
    let raw: Vec<u32> = st.status.to_host();
    let visited: Vec<usize> = (0..n).filter(|&v| !is_unvisited(raw[v], st.base)).collect();
    let levels: Vec<u32> = raw
        .iter()
        .map(|&r| crate::state::decode_level(r, st.base))
        .collect();

    // Status flips: any bit of any *visited* entry. Flipping a visited
    // entry always moves the vertex's decoded level, and a moved level is
    // always caught: out of range trips LevelOutOfRange, UNVISITED trips
    // UnreachedNeighbor (or SourceNotLevelZero), and an in-range move
    // breaks NoPredecessor or LevelSkip because a true BFS level is
    // exactly 1 + the minimum neighbor level. Flips on unvisited entries
    // could be invisible (stale epochs are already arbitrary), so the
    // injector never wastes a flip there.
    for _ in 0..sab.plan.status {
        if visited.is_empty() {
            break;
        }
        let v = visited[splitmix64(&mut s) as usize % visited.len()];
        let bit = (splitmix64(&mut s) % 32) as u32;
        st.status.store(v, raw[v] ^ (1 << bit));
        applied += 1;
    }

    // Parents flips: pick a visited vertex and a bit whose flip yields an
    // *invalid* parent (out of range, wrong level, or no such edge). A
    // flip that lands on a valid alternative parent is semantically
    // masked — no validator can reject a correct BFS tree — so it would
    // make the 100%-detection property meaningless, not stronger.
    if let Some(parents) = &st.parents {
        'flips: for _ in 0..sab.plan.parents {
            if visited.is_empty() {
                break;
            }
            let start = splitmix64(&mut s) as usize % visited.len();
            let bit0 = splitmix64(&mut s) % 32;
            for i in 0..visited.len() {
                let v = visited[(start + i) % visited.len()];
                let p = parents.load(v);
                for b in 0..32u64 {
                    let bit = ((bit0 + b) % 32) as u32;
                    let flipped = p ^ (1 << bit);
                    if !is_valid_parent(g, &levels, flipped, v) {
                        parents.store(v, flipped);
                        applied += 1;
                        continue 'flips;
                    }
                }
            }
            break; // every candidate flip is masked (degenerate graph)
        }
    }

    // CSR flips: any bit anywhere in the topology — the FNV-1a re-check
    // in `DeviceGraph::verify` detects every single-word corruption.
    for _ in 0..sab.plan.csr {
        let pick = splitmix64(&mut s);
        if pick.is_multiple_of(2) && !g.adjacency.is_empty() {
            let w = splitmix64(&mut s) as usize % g.adjacency.len();
            let bit = (splitmix64(&mut s) % 32) as u32;
            g.adjacency.store(w, g.adjacency.load(w) ^ (1 << bit));
        } else {
            let w = splitmix64(&mut s) as usize % g.offsets.len();
            let bit = (splitmix64(&mut s) % 64) as u32;
            g.offsets.store(w, g.offsets.load(w) ^ (1u64 << bit));
        }
        applied += 1;
    }

    // Pool flips: corrupt a buffer parked in the device pool (detected by
    // the pool's release-time checksums on the next acquire/verify).
    for _ in 0..sab.plan.pool {
        if dev.corrupt_parked(splitmix64(&mut s)).is_some() {
            applied += 1;
        }
    }
    applied
}

/// Proof that a run's output passed the certificate validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Vertices the run visited.
    pub visited: u64,
    /// BFS depth (levels with a non-empty frontier).
    pub depth: u32,
    /// FNV-1a digest of the level array (certified-result fingerprint).
    pub levels_checksum: u64,
}

/// Why a run's output failed certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertViolation {
    /// Output array length does not match the graph.
    LengthMismatch {
        /// Expected entries (|V|).
        expected: usize,
        /// Entries found.
        actual: usize,
    },
    /// The source vertex is not at level 0.
    SourceNotLevelZero {
        /// The run's source.
        source: u32,
        /// Its recorded level.
        level: u32,
    },
    /// A visited vertex's level is at or beyond the run's depth.
    LevelOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// Its recorded level.
        level: u32,
        /// Levels the run reported.
        depth: usize,
    },
    /// A level holds more vertices than the runner's claims-based
    /// frontier counter for it — the counter over-counts benign duplicate
    /// claims but can never under-count, so this is always corruption.
    HistogramMismatch {
        /// The level.
        level: u32,
        /// Vertices the output places there.
        counted: u64,
        /// Claims the runner counted there.
        reported: u64,
    },
    /// An edge leads from a visited vertex to an unvisited one — a
    /// complete BFS cannot leave reachable vertices unreached.
    UnreachedNeighbor {
        /// Visited tail of the edge.
        vertex: u32,
        /// Unvisited head.
        neighbor: u32,
    },
    /// An edge spans more than one level (`level[to] > level[from] + 1`).
    LevelSkip {
        /// Tail of the edge.
        from: u32,
        /// Head of the edge.
        to: u32,
        /// Tail's level.
        from_level: u32,
        /// Head's level.
        to_level: u32,
    },
    /// A visited vertex at level ≥ 1 has no in-neighbor one level up.
    NoPredecessor {
        /// The orphaned vertex.
        vertex: u32,
        /// Its recorded level.
        level: u32,
    },
    /// An unvisited vertex carries a parent entry.
    ParentOfUnvisited {
        /// The offending vertex.
        vertex: u32,
    },
    /// The source's parent entry is not itself.
    SourceParent {
        /// The run's source.
        source: u32,
        /// Its recorded parent.
        parent: u32,
    },
    /// A parent entry does not name a vertex.
    ParentOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// Its recorded parent.
        parent: u32,
    },
    /// `level[v] != level[parent[v]] + 1`.
    ParentLevel {
        /// The offending vertex.
        vertex: u32,
        /// Its recorded parent.
        parent: u32,
        /// The vertex's level.
        vertex_level: u32,
        /// The parent's level.
        parent_level: u32,
    },
    /// The recorded parent has no edge to the vertex.
    ParentNotEdge {
        /// The offending vertex.
        vertex: u32,
        /// Its recorded parent.
        parent: u32,
    },
    /// Traversed-edge count recomputed from the output disagrees with the
    /// run's reported figure.
    TraversedEdgesMismatch {
        /// Recomputed count.
        counted: u64,
        /// Reported count.
        reported: u64,
    },
}

impl fmt::Display for CertViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { expected, actual } => {
                write!(f, "output has {actual} entries, graph has {expected}")
            }
            Self::SourceNotLevelZero { source, level } => {
                write!(f, "source {source} at level {level}, expected 0")
            }
            Self::LevelOutOfRange {
                vertex,
                level,
                depth,
            } => write!(f, "vertex {vertex} at level {level} beyond depth {depth}"),
            Self::HistogramMismatch {
                level,
                counted,
                reported,
            } => write!(
                f,
                "level {level} holds {counted} vertices, runner counted {reported}"
            ),
            Self::UnreachedNeighbor { vertex, neighbor } => write!(
                f,
                "visited vertex {vertex} has unvisited neighbor {neighbor}"
            ),
            Self::LevelSkip {
                from,
                to,
                from_level,
                to_level,
            } => write!(
                f,
                "edge {from}->{to} skips levels ({from_level} -> {to_level})"
            ),
            Self::NoPredecessor { vertex, level } => write!(
                f,
                "vertex {vertex} at level {level} has no predecessor at level {}",
                level - 1
            ),
            Self::ParentOfUnvisited { vertex } => {
                write!(f, "unvisited vertex {vertex} has a parent entry")
            }
            Self::SourceParent { source, parent } => {
                write!(f, "source {source} has parent {parent}, expected itself")
            }
            Self::ParentOutOfRange { vertex, parent } => {
                write!(f, "vertex {vertex} has out-of-range parent {parent}")
            }
            Self::ParentLevel {
                vertex,
                parent,
                vertex_level,
                parent_level,
            } => write!(
                f,
                "vertex {vertex} (level {vertex_level}) has parent {parent} \
                 (level {parent_level}), expected level {}",
                vertex_level.wrapping_sub(1)
            ),
            Self::ParentNotEdge { vertex, parent } => {
                write!(f, "parent {parent} of vertex {vertex} has no such edge")
            }
            Self::TraversedEdgesMismatch { counted, reported } => write!(
                f,
                "recomputed {counted} traversed edges, run reported {reported}"
            ),
        }
    }
}

/// A detected integrity violation, by detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The uploaded CSR no longer matches its upload-time checksum.
    GraphChecksum {
        /// Digest recorded at upload.
        expected: u64,
        /// Digest recomputed from device memory.
        actual: u64,
    },
    /// The device buffer pool detected corruption or a misuse.
    Pool(PoolError),
    /// The run's output failed certificate validation.
    Certificate(CertViolation),
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GraphChecksum { expected, actual } => write!(
                f,
                "CSR corrupted in device memory: checksum {actual:#018x}, \
                 expected {expected:#018x}"
            ),
            Self::Pool(e) => write!(f, "buffer pool: {e}"),
            Self::Certificate(v) => write!(f, "certificate violation: {v}"),
        }
    }
}

impl std::error::Error for IntegrityError {}

impl From<PoolError> for IntegrityError {
    fn from(e: PoolError) -> Self {
        Self::Pool(e)
    }
}

impl From<CertViolation> for IntegrityError {
    fn from(v: CertViolation) -> Self {
        Self::Certificate(v)
    }
}

/// Validate a run's output against the graph in O(|V| + |E|): source at
/// level 0, per-level histogram bounded by the runner's claims-based
/// frontier counters (duplicate claims over-count, never under-count),
/// every edge relaxed (`level[to] ≤ level[from] + 1`, no visited→unvisited
/// neighbors), every non-source visited vertex owning a predecessor one
/// level up, the parent tree exact when recorded, and the traversed-edge
/// count reproducible. Returns a [`Certificate`] carrying the certified
/// result fingerprint.
pub fn certify_run(
    offsets: &[u64],
    adjacency: &[u32],
    run: &BfsRun,
) -> Result<Certificate, CertViolation> {
    let n = offsets.len().saturating_sub(1);
    let levels = &run.levels;
    if levels.len() != n {
        return Err(CertViolation::LengthMismatch {
            expected: n,
            actual: levels.len(),
        });
    }
    let src = run.source as usize;
    if src >= n || levels[src] != 0 {
        return Err(CertViolation::SourceNotLevelZero {
            source: run.source,
            level: levels.get(src).copied().unwrap_or(UNVISITED),
        });
    }

    // Histogram vs the runner's own per-level frontier counters. The
    // counter is claims-based: single-scan's non-atomic claims can count
    // benign duplicates, so it is an *upper bound* on the true level
    // population (scan-free queues, CAS claims, and proactive bottom-up
    // claims are all exactly-once). A histogram that exceeds the counter
    // is therefore impossible in a clean run. Equality is not required —
    // status flips that move a vertex between in-range levels are caught
    // by the NoPredecessor/LevelSkip edge checks below instead (a true
    // BFS level is 1 + the minimum neighbor level, so a moved vertex
    // either lacks a predecessor or sits ≥ 2 levels from a neighbor).
    let depth = run.level_stats.len();
    let mut hist = vec![0u64; depth];
    let mut visited_count = 0u64;
    for (v, &l) in levels.iter().enumerate() {
        if l == UNVISITED {
            continue;
        }
        visited_count += 1;
        if (l as usize) >= depth {
            return Err(CertViolation::LevelOutOfRange {
                vertex: v as u32,
                level: l,
                depth,
            });
        }
        hist[l as usize] += 1;
    }
    for (l, ls) in run.level_stats.iter().enumerate() {
        if hist[l] > ls.frontier_count {
            return Err(CertViolation::HistogramMismatch {
                level: l as u32,
                counted: hist[l],
                reported: ls.frontier_count,
            });
        }
    }

    // One pass over every edge: relaxation, completeness, predecessor
    // marking, and the traversed-edge recount.
    let mut has_pred = vec![false; n];
    has_pred[src] = true;
    let mut traversed = 0u64;
    for u in 0..n {
        let lu = levels[u];
        if lu == UNVISITED {
            continue;
        }
        let beg = offsets[u] as usize;
        let end = offsets[u + 1] as usize;
        traversed += (end - beg) as u64;
        for &v in &adjacency[beg..end] {
            let lv = levels[v as usize];
            if lv == UNVISITED {
                return Err(CertViolation::UnreachedNeighbor {
                    vertex: u as u32,
                    neighbor: v,
                });
            }
            if lv > lu + 1 {
                return Err(CertViolation::LevelSkip {
                    from: u as u32,
                    to: v,
                    from_level: lu,
                    to_level: lv,
                });
            }
            if lv == lu + 1 {
                has_pred[v as usize] = true;
            }
        }
    }
    for v in 0..n {
        if levels[v] != UNVISITED && !has_pred[v] {
            return Err(CertViolation::NoPredecessor {
                vertex: v as u32,
                level: levels[v],
            });
        }
    }
    if traversed != run.traversed_edges {
        return Err(CertViolation::TraversedEdgesMismatch {
            counted: traversed,
            reported: run.traversed_edges,
        });
    }

    // Parent tree, when recorded.
    if let Some(parents) = &run.parents {
        if parents.len() != n {
            return Err(CertViolation::LengthMismatch {
                expected: n,
                actual: parents.len(),
            });
        }
        for (v, (&p, &lv)) in parents.iter().zip(levels).enumerate() {
            if lv == UNVISITED {
                if p != UNVISITED {
                    return Err(CertViolation::ParentOfUnvisited { vertex: v as u32 });
                }
                continue;
            }
            if v == src {
                if p as usize != src {
                    return Err(CertViolation::SourceParent {
                        source: run.source,
                        parent: p,
                    });
                }
                continue;
            }
            if p as usize >= n {
                return Err(CertViolation::ParentOutOfRange {
                    vertex: v as u32,
                    parent: p,
                });
            }
            let lp = levels[p as usize];
            if lp == UNVISITED || lp + 1 != lv {
                return Err(CertViolation::ParentLevel {
                    vertex: v as u32,
                    parent: p,
                    vertex_level: lv,
                    parent_level: lp,
                });
            }
            let beg = offsets[p as usize] as usize;
            let end = offsets[p as usize + 1] as usize;
            if !adjacency[beg..end].contains(&(v as u32)) {
                return Err(CertViolation::ParentNotEdge {
                    vertex: v as u32,
                    parent: p,
                });
            }
        }
    }

    Ok(Certificate {
        visited: visited_count,
        depth: depth as u32,
        levels_checksum: fnv1a(levels.iter().map(|&l| u64::from(l))),
    })
}

/// Validate a multi-source batch's output against the graph: level-edge
/// consistency for **every slot** over the shared visited mask. Per slot
/// this is the sourced subset of [`certify_run`] — source at level 0 (and
/// nothing else at level 0), every edge relaxed (`level[to] ≤
/// level[from] + 1`, no visited→unvisited neighbors), and every visited
/// non-source vertex owning a predecessor one level up. The batch shares
/// one edge sweep; slot checks ride along bit-parallel, so the cost is
/// O(|V| + |E| · W) for a W-wide batch.
///
/// Returns one [`Certificate`] per slot. A slot certificate's
/// `levels_checksum` is the slot's [`MsBfsRun::result_digest`] — the same
/// levels-only fingerprint a solo run of that source would answer with,
/// which is what lets batched serving prove response equivalence.
pub fn certify_ms_run(
    offsets: &[u64],
    adjacency: &[u32],
    run: &MsBfsRun,
) -> Result<Vec<Certificate>, CertViolation> {
    let n = offsets.len().saturating_sub(1);
    let width = run.sources.len();
    for (slot, levels) in run.levels.iter().enumerate() {
        if levels.len() != n {
            return Err(CertViolation::LengthMismatch {
                expected: n,
                actual: levels.len(),
            });
        }
        let src = run.sources[slot] as usize;
        if src >= n || levels[src] != 0 {
            return Err(CertViolation::SourceNotLevelZero {
                source: run.sources[slot],
                level: levels.get(src).copied().unwrap_or(UNVISITED),
            });
        }
    }

    // One pass over every edge; per-slot predecessor marks live in a
    // 64-bit mask per vertex (bit i = slot i found a predecessor).
    let mut has_pred = vec![0u64; n];
    for (slot, &s) in run.sources.iter().enumerate() {
        has_pred[s as usize] |= 1 << slot;
    }
    for u in 0..n {
        let beg = offsets[u] as usize;
        let end = offsets[u + 1] as usize;
        for &v in &adjacency[beg..end] {
            for slot in 0..width {
                let lu = run.levels[slot][u];
                if lu == UNVISITED {
                    continue;
                }
                let lv = run.levels[slot][v as usize];
                if lv == UNVISITED {
                    return Err(CertViolation::UnreachedNeighbor {
                        vertex: u as u32,
                        neighbor: v,
                    });
                }
                if lv > lu + 1 {
                    return Err(CertViolation::LevelSkip {
                        from: u as u32,
                        to: v,
                        from_level: lu,
                        to_level: lv,
                    });
                }
                if lv == lu + 1 {
                    has_pred[v as usize] |= 1 << slot;
                }
            }
        }
    }

    let mut certs = Vec::with_capacity(width);
    for (slot, levels) in run.levels.iter().enumerate() {
        let src = run.sources[slot] as usize;
        let mut visited = 0u64;
        let mut depth = 0u32;
        for (v, &l) in levels.iter().enumerate() {
            if l == UNVISITED {
                continue;
            }
            visited += 1;
            depth = depth.max(l);
            // A non-source vertex at level 0, or any visited vertex whose
            // claimed level no in-neighbor supports, is corruption.
            if v != src && (l == 0 || has_pred[v] & (1 << slot) == 0) {
                return Err(CertViolation::NoPredecessor {
                    vertex: v as u32,
                    level: l,
                });
            }
        }
        certs.push(Certificate {
            visited,
            depth,
            levels_checksum: levels_digest(run.sources[slot], levels),
        });
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XbfsConfig;
    use crate::runner::Xbfs;
    use xbfs_graph::generators::{erdos_renyi, rmat_graph, RmatParams};

    fn sample_run() -> (Vec<u64>, Vec<u32>, BfsRun) {
        let g = rmat_graph(RmatParams::graph500(8), 11);
        let dev = Device::mi250x();
        let cfg = XbfsConfig {
            record_parents: true,
            ..XbfsConfig::default()
        };
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        let run = xbfs.run(0).unwrap();
        (g.offsets().to_vec(), g.adjacency().to_vec(), run)
    }

    #[test]
    fn clean_run_certifies() {
        let (off, adj, run) = sample_run();
        let cert = certify_run(&off, &adj, &run).expect("clean run must certify");
        assert_eq!(cert.depth as usize, run.level_stats.len());
        assert_eq!(
            cert.visited,
            run.levels.iter().filter(|&&l| l != UNVISITED).count() as u64
        );
    }

    #[test]
    fn status_corruption_fails_certification() {
        let (off, adj, mut run) = sample_run();
        let v = run
            .levels
            .iter()
            .position(|&l| l != UNVISITED && l != 0)
            .unwrap();
        run.levels[v] ^= 1 << 7;
        assert!(certify_run(&off, &adj, &run).is_err());
    }

    #[test]
    fn parent_corruption_fails_certification() {
        let (off, adj, mut run) = sample_run();
        let parents = run.parents.as_mut().unwrap();
        let v = run.levels.iter().position(|&l| l == 1).unwrap();
        parents[v] = u32::MAX - 1; // out of range
        let err = certify_run(&off, &adj, &run).unwrap_err();
        assert!(
            matches!(err, CertViolation::ParentOutOfRange { .. }),
            "{err}"
        );
    }

    #[test]
    fn frontier_counter_mismatch_fails_certification() {
        // The claims counter is an upper bound on the level population
        // (duplicate claims over-count, never under-count), so corruption
        // is a counter that dropped *below* the histogram.
        let (off, adj, mut run) = sample_run();
        run.level_stats[1].frontier_count = 0;
        let err = certify_run(&off, &adj, &run).unwrap_err();
        assert!(
            matches!(err, CertViolation::HistogramMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn bitflip_plan_spec_round_trips() {
        for spec in ["status:2,csr,seed=7", "pool:3,parents,seed=0", "seed=9"] {
            let plan = BitflipPlan::parse(spec).unwrap();
            assert_eq!(BitflipPlan::parse(&plan.to_spec()).unwrap(), plan);
        }
        assert_eq!(
            BitflipPlan::parse("status,status").unwrap().status,
            2,
            "repeats accumulate"
        );
        assert!(BitflipPlan::parse("bogus").is_err());
        assert!(BitflipPlan::parse("status:x").is_err());
        assert!(BitflipPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn isolated_source_certifies() {
        // A source with no edges: depth 1, one visited vertex.
        let g = erdos_renyi(10, 0, 1);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let run = xbfs.run(3).unwrap();
        let cert = certify_run(g.offsets(), g.adjacency(), &run).unwrap();
        assert_eq!(cert.visited, 1);
    }

    fn sample_ms_run() -> (Vec<u64>, Vec<u32>, MsBfsRun) {
        let g = rmat_graph(RmatParams::graph500(8), 11);
        let dev = Device::mi250x();
        let eng = crate::concurrent::MsBfs::new(&dev, &g).unwrap();
        let run = eng.run_batch(&[0, 5, 9, 5]);
        (g.offsets().to_vec(), g.adjacency().to_vec(), run)
    }

    #[test]
    fn clean_batch_certifies_every_slot_with_solo_digest() {
        let (off, adj, run) = sample_ms_run();
        let certs = certify_ms_run(&off, &adj, &run).expect("clean batch must certify");
        assert_eq!(certs.len(), run.sources.len());
        for (slot, cert) in certs.iter().enumerate() {
            assert_eq!(
                cert.levels_checksum,
                run.result_digest(slot),
                "slot {slot}: certificate must quote the levels digest a solo run answers with"
            );
            assert_eq!(
                cert.visited,
                run.levels[slot].iter().filter(|&&l| l != UNVISITED).count() as u64
            );
            assert_eq!(cert.depth, run.slot_depth(slot));
        }
        // Duplicate sources (slots 1 and 3) certify identically.
        assert_eq!(certs[1], certs[3]);
    }

    #[test]
    fn corrupting_one_slot_fails_batch_certification() {
        let (off, adj, mut run) = sample_ms_run();
        let v = run.levels[2]
            .iter()
            .position(|&l| l != UNVISITED && l != 0)
            .unwrap();
        run.levels[2][v] ^= 1 << 6;
        assert!(certify_ms_run(&off, &adj, &run).is_err());
    }

    #[test]
    fn batch_source_not_at_level_zero_is_a_violation() {
        let (off, adj, mut run) = sample_ms_run();
        let src = run.sources[1] as usize;
        run.levels[1][src] = 3;
        let err = certify_ms_run(&off, &adj, &run).unwrap_err();
        assert!(
            matches!(err, CertViolation::SourceNotLevelZero { .. }),
            "{err}"
        );
    }
}
