//! Adaptive strategy selection — the core XBFS contribution.
//!
//! Per level, the controller compares the edge ratio
//! `r = (edges incident to the current frontier) / |E|` with two
//! thresholds derived from the paper's Table VI study:
//!
//! * `r > α` (paper: 0.1) → **bottom-up**: the frontier is so large that
//!   pulling from unvisited vertices with early termination reads far less
//!   memory than pushing the frontier;
//! * `r < scan_free_max_ratio` (≈ 1e-3 from Table VI: scan-free wins at
//!   levels 0–1 and 6–7 where r ≤ 2.4e-3, single-scan wins at level 2
//!   where r = 5.4e-3) → **scan-free**: the frontier is tiny, so atomic
//!   claims and atomic enqueues beat any status scan;
//! * otherwise → **single-scan**: moderate frontiers amortize one `O(|V|)`
//!   scan against synchronization-free status updates.

use crate::strategy::Strategy;

/// Strategy selector.
#[derive(Debug, Clone, Copy)]
pub struct Controller {
    /// Bottom-up threshold (the paper's `α`).
    pub alpha: f64,
    /// Scan-free upper bound on the ratio.
    pub scan_free_max_ratio: f64,
}

impl Controller {
    /// Build from thresholds.
    pub fn new(alpha: f64, scan_free_max_ratio: f64) -> Self {
        assert!(alpha > 0.0 && scan_free_max_ratio > 0.0);
        assert!(
            scan_free_max_ratio <= alpha,
            "scan-free threshold must not exceed alpha"
        );
        Self {
            alpha,
            scan_free_max_ratio,
        }
    }

    /// Pick the strategy for a level whose frontier has edge ratio `ratio`.
    pub fn choose(&self, ratio: f64) -> Strategy {
        if ratio > self.alpha {
            Strategy::BottomUp
        } else if ratio < self.scan_free_max_ratio {
            Strategy::ScanFree
        } else {
            Strategy::SingleScan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table6_choices() {
        // The per-level ratios of the paper's Rmat25 run (Tables III–VI)
        // and the strategies §V-E says win at each level.
        let c = Controller::new(0.1, 1e-3);
        let ratios = [
            (1.86e-9, Strategy::ScanFree),   // level 0
            (1.02e-6, Strategy::ScanFree),   // level 1
            (5.44e-3, Strategy::SingleScan), // level 2
            (0.725, Strategy::BottomUp),     // level 3
            (0.267, Strategy::BottomUp),     // level 4
            (2.40e-3, Strategy::SingleScan), // level 5
            (1.35e-5, Strategy::ScanFree),   // level 6
            (8.38e-8, Strategy::ScanFree),   // level 7
        ];
        for (r, expect) in ratios {
            assert_eq!(c.choose(r), expect, "ratio {r}");
        }
    }

    #[test]
    fn boundaries() {
        let c = Controller::new(0.1, 1e-3);
        assert_eq!(c.choose(0.1), Strategy::SingleScan); // not strictly greater
        assert_eq!(c.choose(0.100001), Strategy::BottomUp);
        assert_eq!(c.choose(1e-3), Strategy::SingleScan);
        assert_eq!(c.choose(0.99e-3), Strategy::ScanFree);
    }

    #[test]
    #[should_panic(expected = "must not exceed alpha")]
    fn rejects_inverted_thresholds() {
        Controller::new(0.01, 0.1);
    }
}
