#![warn(missing_docs)]

//! `xbfs-core` — the paper's primary contribution: XBFS, the adaptive
//! frontier-queue BFS, ported to (simulated) AMD MI250X GCDs with the
//! Frontier-specific optimizations of §IV.
//!
//! The crate implements, on top of the [`gcd_sim`] substrate:
//!
//! * the three frontier-queue-generation strategies — scan-free,
//!   single-scan (with the No-Frontier-Generation shortcut) and bottom-up
//!   double-scan with early termination and proactive claims
//!   ([`strategy`]),
//! * warp-centric dynamic workload balancing with degree-binned
//!   thread/wave/group kernels ([`strategy::topdown`]),
//! * the adaptive `α`-controller ([`controller`]),
//! * the host-side runner with per-level sync, counter readback and the
//!   single-stream consolidation of §IV-B ([`runner`]), and
//! * the §V-F bandwidth-efficiency analysis ([`efficiency`]).
//!
//! # Quick start
//!
//! ```
//! use gcd_sim::Device;
//! use xbfs_core::{Xbfs, XbfsConfig};
//! use xbfs_graph::generators::{rmat_graph, RmatParams};
//!
//! let graph = rmat_graph(RmatParams::graph500(10), 42);
//! let device = Device::mi250x();
//! let xbfs = Xbfs::new(&device, &graph, XbfsConfig::default()).unwrap();
//! let run = xbfs.run(0).unwrap();
//! println!("depth {} in {:.3} ms → {:.2} GTEPS",
//!          run.depth(), run.total_ms, run.gteps);
//! assert_eq!(run.levels[0], 0);
//! ```

pub mod concurrent;
pub mod config;
pub mod controller;
pub mod device_graph;
pub mod efficiency;
pub mod error;
pub mod integrity;
pub mod run_ctx;
pub mod runner;
pub mod state;
pub mod stats;
pub mod strategy;
pub mod tuner;

pub use concurrent::{ms_bfs, MsBfs, MsBfsRun, MAX_CONCURRENT};
pub use config::XbfsConfig;
pub use controller::Controller;
pub use device_graph::DeviceGraph;
pub use efficiency::{bandwidth_efficiency, Efficiency};
pub use error::XbfsError;
pub use integrity::{
    apply_sabotage, certify_ms_run, certify_run, BitflipPlan, CertViolation, Certificate,
    IntegrityError, Sabotage,
};
pub use run_ctx::RunCtx;
pub use runner::Xbfs;
pub use state::{decode_level, is_unvisited, BfsState, BinThresholds, QueueState, UNVISITED};
pub use stats::{levels_digest, BfsRun, LevelStats};
pub use strategy::Strategy;
pub use tuner::{tune_alpha, TuneResult};
