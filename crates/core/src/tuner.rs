//! α auto-tuning — the paper's §V-D methodology ("Test of best α") as an
//! API: sweep candidate thresholds on sample sources and keep the fastest.
//!
//! The paper derives α = 0.1 for Frontier from the per-level study and
//! notes that "the actual processing time depends on system-specific
//! features, such as the cost of atomic operations and irregular memory
//! access patterns" — i.e. the best α is a property of the (graph,
//! hardware) pair, which is exactly what this tuner measures.

use crate::config::XbfsConfig;
use crate::runner::Xbfs;
use gcd_sim::Device;
use xbfs_graph::Csr;

/// Result of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning threshold.
    pub best_alpha: f64,
    /// `(alpha, total ms over the sample sources)` for every candidate.
    pub sweep: Vec<(f64, f64)>,
}

/// The candidate grid the paper's study effectively explores.
pub const DEFAULT_CANDIDATES: [f64; 7] = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8];

/// Sweep `candidates` (or the default grid) over `sources` and return the
/// α minimizing total modeled time. The returned config is `base` with the
/// winning α installed.
pub fn tune_alpha(
    device: &Device,
    graph: &Csr,
    sources: &[u32],
    base: XbfsConfig,
    candidates: Option<&[f64]>,
) -> (XbfsConfig, TuneResult) {
    assert!(!sources.is_empty(), "need at least one sample source");
    let candidates = candidates.unwrap_or(&DEFAULT_CANDIDATES);
    assert!(!candidates.is_empty(), "need at least one candidate alpha");
    let mut sweep = Vec::with_capacity(candidates.len());
    for &alpha in candidates {
        assert!(alpha > 0.0, "alpha must be positive");
        let cfg = XbfsConfig {
            alpha,
            scan_free_max_ratio: base.scan_free_max_ratio.min(alpha),
            ..base
        };
        let xbfs = Xbfs::new(device, graph, cfg).expect("tuner inputs validated by caller");
        let total_ms: f64 = sources
            .iter()
            .map(|&s| {
                xbfs.run(s)
                    .expect("tuner sources validated by caller")
                    .total_ms
            })
            .sum();
        sweep.push((alpha, total_ms));
    }
    let (best_alpha, _) = sweep
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let tuned = XbfsConfig {
        alpha: best_alpha,
        scan_free_max_ratio: base.scan_free_max_ratio.min(best_alpha),
        ..base
    };
    (tuned, TuneResult { best_alpha, sweep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::generators::{rmat_graph, RmatParams};
    use xbfs_graph::stats::pick_sources;

    #[test]
    fn picks_a_candidate_and_configures_it() {
        let g = rmat_graph(RmatParams::graph500(12), 3);
        let dev = Device::mi250x();
        let sources = pick_sources(&g, 3, 1);
        let (cfg, result) = tune_alpha(&dev, &g, &sources, XbfsConfig::default(), None);
        assert!(DEFAULT_CANDIDATES.contains(&result.best_alpha));
        assert_eq!(cfg.alpha, result.best_alpha);
        assert!(cfg.scan_free_max_ratio <= cfg.alpha);
        assert_eq!(result.sweep.len(), DEFAULT_CANDIDATES.len());
        // The winner's time is minimal over the sweep.
        let best_time = result
            .sweep
            .iter()
            .find(|&&(a, _)| a == result.best_alpha)
            .unwrap()
            .1;
        assert!(result.sweep.iter().all(|&(_, t)| t >= best_time));
    }

    #[test]
    fn tuned_alpha_engages_bottom_up_on_rmat() {
        // On R-MAT the winning alpha must allow bottom-up at the hump.
        let g = rmat_graph(RmatParams::graph500(12), 5);
        let dev = Device::mi250x();
        let sources = pick_sources(&g, 2, 2);
        let (cfg, _) = tune_alpha(&dev, &g, &sources, XbfsConfig::default(), None);
        let run = Xbfs::new(&dev, &g, cfg).unwrap().run(sources[0]).unwrap();
        assert!(run.strategy_trace().contains(&crate::Strategy::BottomUp));
    }

    #[test]
    fn custom_candidates() {
        let g = rmat_graph(RmatParams::graph500(9), 1);
        let dev = Device::mi250x();
        let sources = pick_sources(&g, 1, 1);
        let (_, result) = tune_alpha(&dev, &g, &sources, XbfsConfig::default(), Some(&[0.3, 0.6]));
        assert!(result.best_alpha == 0.3 || result.best_alpha == 0.6);
        assert_eq!(result.sweep.len(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_candidate() {
        let g = rmat_graph(RmatParams::graph500(8), 1);
        let dev = Device::mi250x();
        tune_alpha(&dev, &g, &[0], XbfsConfig::default(), Some(&[0.0]));
    }
}
