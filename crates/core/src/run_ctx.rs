//! Shared per-graph run context: everything a multi-source driver should
//! build **once** and reuse across runs — the device binding, the uploaded
//! device-resident graph, and the host-side degree table.
//!
//! Before PR 3 every multi-source loop (Graph500 harness, the analytics in
//! `xbfs-apps`, the bench tables, the baseline engines) re-uploaded the
//! CSR and re-derived degrees per source. A [`RunCtx`] hoists that work
//! out of the loop; engines take `&RunCtx` per run and touch only
//! O(|frontier work|) state.

use crate::device_graph::DeviceGraph;
use gcd_sim::Device;
use xbfs_graph::Csr;

/// A device + uploaded graph + host degree table, built once per
/// (device, graph) pair and shared by every run against that pair.
pub struct RunCtx<'d> {
    device: &'d Device,
    graph: DeviceGraph,
    host_degrees: Vec<u32>,
}

impl<'d> RunCtx<'d> {
    /// Upload `g` to `device` and cache its degree table.
    pub fn new(device: &'d Device, g: &Csr) -> Self {
        let host_degrees = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        Self {
            device,
            graph: DeviceGraph::upload(device, g),
            host_degrees,
        }
    }

    /// The device runs execute on.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The device-resident graph.
    pub fn graph(&self) -> &DeviceGraph {
        &self.graph
    }

    /// Host-side degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.host_degrees[v as usize]
    }

    /// The full host-side degree table.
    pub fn degrees(&self) -> &[u32] {
        &self.host_degrees
    }

    /// Vertex count of the uploaded graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Edge count of the uploaded graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Sum of degrees over vertices whose BFS level is not `sentinel` —
    /// the Graph500 "traversed edges" convention shared by the XBFS runner
    /// and every baseline.
    pub fn traversed_edges(&self, levels: &[u32], sentinel: u32) -> u64 {
        levels
            .iter()
            .zip(&self.host_degrees)
            .filter(|&(&l, _)| l != sentinel)
            .map(|(_, &d)| u64::from(d))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::generators::erdos_renyi;

    #[test]
    fn ctx_caches_graph_and_degrees() {
        let g = erdos_renyi(100, 400, 3);
        let dev = Device::mi250x();
        let ctx = RunCtx::new(&dev, &g);
        assert_eq!(ctx.num_vertices(), 100);
        assert_eq!(ctx.num_edges(), g.num_edges());
        for v in 0..100u32 {
            assert_eq!(ctx.degree(v), g.degree(v));
        }
        let levels = vec![u32::MAX; 100];
        assert_eq!(ctx.traversed_edges(&levels, u32::MAX), 0);
        let zeros = vec![0u32; 100];
        assert_eq!(
            ctx.traversed_edges(&zeros, u32::MAX),
            (0..100u32).map(|v| u64::from(g.degree(v))).sum::<u64>()
        );
    }
}
