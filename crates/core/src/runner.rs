//! The XBFS runner: the host-side loop that drives adaptive BFS on the
//! simulated GCD, exactly mirroring the structure of the ported code —
//! per-level counter memset, strategy dispatch, device sync, counter
//! readback, controller decision.

use crate::config::XbfsConfig;
use crate::controller::Controller;
use crate::error::XbfsError;
use crate::device_graph::DeviceGraph;
use crate::state::{ctr, ectr, BfsState, QueueState, UNVISITED};
use crate::stats::{BfsRun, LevelStats};
use crate::strategy::{
    launch_bottom_up_level, launch_generation_scan, launch_reset_counters,
    launch_top_down_expand, Strategy,
};
use gcd_sim::Device;
use xbfs_graph::Csr;
use xbfs_telemetry::{names, AttrValue, Recorder};

/// An XBFS instance bound to a device-resident graph.
pub struct Xbfs<'a> {
    device: &'a Device,
    graph: DeviceGraph,
    cfg: XbfsConfig,
    host_degrees: Vec<u32>,
}

impl<'a> Xbfs<'a> {
    /// Upload `g` and prepare a runner. The device must have at least
    /// [`XbfsConfig::required_streams`] streams.
    ///
    /// Like the original XBFS (whose inputs are symmetrized Graph500/SNAP
    /// graphs), the bottom-up strategy pulls through **out**-edges, so
    /// results are exact on directed graphs only with a configuration that
    /// never selects bottom-up — use [`XbfsConfig::directed`] for those.
    pub fn new(device: &'a Device, g: &Csr, cfg: XbfsConfig) -> Result<Self, XbfsError> {
        if device.num_streams() < cfg.required_streams() {
            return Err(XbfsError::InsufficientStreams {
                required: cfg.required_streams(),
                available: device.num_streams(),
            });
        }
        if g.num_vertices() == 0 {
            return Err(XbfsError::EmptyGraph);
        }
        let host_degrees = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        Ok(Self {
            device,
            graph: DeviceGraph::upload(device, g),
            cfg,
            host_degrees,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &XbfsConfig {
        &self.cfg
    }

    /// Run one BFS from `source`, returning levels plus full per-level
    /// statistics. Models the paper's "n to n" measured window: status
    /// initialization through final sync.
    pub fn run(&self, source: u32) -> Result<BfsRun, XbfsError> {
        self.run_traced(source, &Recorder::disabled())
    }

    /// Like [`Xbfs::run`], but records structured telemetry into `rec`:
    /// a `run > level > {queue_gen, expand} > kernel` span tree on the
    /// modeled device timeline, per-level strategy-choice events, and
    /// frontier/fetch counter series. With a disabled recorder every
    /// telemetry call is a single relaxed atomic load, so this is the
    /// same hot path `run` uses.
    pub fn run_traced(&self, source: u32, rec: &Recorder) -> Result<BfsRun, XbfsError> {
        let dev = self.device;
        let g = &self.graph;
        let n = g.num_vertices();
        if (source as usize) >= n {
            return Err(XbfsError::SourceOutOfRange {
                source,
                num_vertices: n,
            });
        }
        let controller = Controller::new(self.cfg.alpha, self.cfg.scan_free_max_ratio);

        let mut st = BfsState::new(dev, n, self.cfg.record_parents, self.cfg.seg_len);
        dev.reset_timeline();
        let _ = dev.take_reports();

        let run_span = rec.begin_span(None, names::span::RUN, 0, 0.0);
        rec.span_attr(run_span, "engine", AttrValue::Str("xbfs".into()));
        rec.span_attr(run_span, "source", AttrValue::U64(u64::from(source)));
        rec.span_attr(run_span, "vertices", AttrValue::U64(n as u64));
        rec.span_attr(run_span, "edges", AttrValue::U64(self.graph.num_edges() as u64));
        rec.span_attr(run_span, "alpha", AttrValue::F64(self.cfg.alpha));

        // --- measured window starts ---
        let init_span = rec.begin_span(Some(run_span), names::span::INIT, 0, 0.0);
        dev.set_phase("init");
        dev.fill_u32(0, &st.status, UNVISITED);
        if let Some(parents) = &st.parents {
            dev.fill_u32(0, parents, UNVISITED);
            parents.store(source as usize, source);
        }
        st.status.store(source as usize, 0);
        st.queues[0].store(0, source);
        dev.charge_transfer(0, 8); // seed the source + queue head
        rec.end_span(init_span, dev.elapsed_us());

        let m = g.num_edges().max(1) as f64;
        let mut exact: Option<[usize; 3]> = Some([1, 0, 0]);
        let mut superset: Option<usize> = None;
        let mut frontier_count = 1u64;
        let mut frontier_edges = u64::from(self.host_degrees[source as usize]);
        // Proactive bottom-up claims targeting the level after next:
        // (count, degree sum), plus whether the *current* frontier contains
        // proactively claimed vertices (then stale exact queues are unusable).
        let mut pending_pro = (0u64, 0u64);
        let mut frontier_has_proactive = false;
        let mut level = 0u32;
        let mut level_stats: Vec<LevelStats> = Vec::new();

        loop {
            let ratio = frontier_edges as f64 / m;
            let strategy = self.cfg.forced.unwrap_or_else(|| controller.choose(ratio));
            dev.set_phase(format!("level {level}"));
            let t0 = dev.elapsed_us();
            let mut used_nfg = true;

            let lvl_span = rec.begin_span(Some(run_span), names::span::LEVEL, 0, t0);
            rec.event(
                Some(lvl_span),
                names::event::STRATEGY_CHOICE,
                0,
                t0,
                vec![
                    ("strategy".into(), AttrValue::Str(strategy.to_string())),
                    ("ratio".into(), AttrValue::F64(ratio)),
                    ("alpha".into(), AttrValue::F64(self.cfg.alpha)),
                    ("forced".into(), AttrValue::Bool(self.cfg.forced.is_some())),
                ],
            );
            rec.counter(names::metric::FRONTIER_SIZE, 0, t0, frontier_count as f64);
            rec.counter(names::metric::FRONTIER_EDGES, 0, t0, frontier_edges as f64);
            rec.counter(names::metric::FRONTIER_RATIO, 0, t0, ratio);
            let mut expand_start = t0;

            match strategy {
                Strategy::BottomUp => {
                    launch_reset_counters(dev, 0, &st);
                    launch_bottom_up_level(dev, g, &st, level, &self.cfg);
                }
                Strategy::ScanFree | Strategy::SingleScan => {
                    let mut qstate = if !self.cfg.nfg {
                        QueueState::None
                    } else if frontier_has_proactive {
                        // Stale exact queues miss proactive claims; the
                        // superset (or a fresh scan) covers them.
                        superset.map(QueueState::Superset).unwrap_or(QueueState::None)
                    } else if let Some(lens) = exact {
                        QueueState::Exact(lens)
                    } else if let Some(len) = superset {
                        QueueState::Superset(len)
                    } else {
                        QueueState::None
                    };
                    if qstate == QueueState::None {
                        // Frontier-queue generation scan (single-scan
                        // kernel 1; also the fallback scan-free pays when
                        // no queue survived).
                        used_nfg = false;
                        launch_reset_counters(dev, 0, &st);
                        launch_generation_scan(dev, 0, g, &st, level, &self.cfg);
                        dev.sync();
                        dev.charge_transfer(0, 12);
                        let lens = st.next_queue_lens();
                        st.swap_queues();
                        qstate = QueueState::Exact(lens);
                        let q1 = dev.elapsed_us();
                        let qg = rec.begin_span(Some(lvl_span), names::span::QUEUE_GEN, 0, t0);
                        rec.end_span(qg, q1);
                        expand_start = q1;
                    }
                    launch_reset_counters(dev, 0, &st);
                    let atomic_claim = strategy == Strategy::ScanFree;
                    launch_top_down_expand(dev, g, &st, level, qstate, atomic_claim, &self.cfg);
                }
            }

            dev.sync();
            let expand_span = rec.begin_span(Some(lvl_span), names::span::EXPAND, 0, expand_start);
            rec.end_span(expand_span, dev.elapsed_us());
            dev.charge_transfer(0, 48); // counter readback
            let claimed = u64::from(st.counters.load(ctr::CLAIMED));
            let proactive = u64::from(st.counters.load(ctr::PROACTIVE));
            let claimed_edges = st.edge_counters.load(ectr::CLAIMED_EDGES);
            let proactive_edges = st.edge_counters.load(ectr::PROACTIVE_EDGES);

            match strategy {
                Strategy::ScanFree => {
                    let lens = st.next_queue_lens();
                    st.swap_queues();
                    exact = Some(lens);
                }
                Strategy::SingleScan => {
                    exact = None;
                }
                Strategy::BottomUp => {
                    superset = Some(st.counters.load(ctr::BU_LEN) as usize);
                    exact = None;
                }
            }

            let t1 = dev.elapsed_us();
            level_stats.push(LevelStats {
                level,
                strategy,
                used_nfg,
                ratio,
                frontier_count,
                frontier_edges,
                time_ms: (t1 - t0) / 1000.0,
                kernels: dev.take_reports(),
            });
            if rec.is_enabled() {
                let ls = level_stats.last().expect("just pushed");
                // Lay the level's kernel reports out as sequential child
                // spans so chrome://tracing shows the dispatch stream.
                let mut cursor = t0;
                for k in &ls.kernels {
                    let ks = rec.begin_span(Some(lvl_span), names::span::KERNEL, 0, cursor);
                    rec.span_attr(ks, "phase", AttrValue::Str(k.phase.clone()));
                    rec.span_attr(ks, "kernel", AttrValue::Str(k.name.clone()));
                    rec.span_attr(ks, "l2_hit_pct", AttrValue::F64(k.l2_hit_pct));
                    rec.span_attr(ks, "mem_busy_pct", AttrValue::F64(k.mem_busy_pct));
                    rec.span_attr(ks, "fetch_kb", AttrValue::F64(k.fetch_kb));
                    rec.span_attr(ks, "instructions", AttrValue::U64(k.stats.instructions));
                    rec.span_attr(ks, "atomics", AttrValue::U64(k.stats.atomics));
                    rec.span_attr(ks, "hbm_lines", AttrValue::U64(k.stats.hbm_lines));
                    rec.span_attr(ks, "occupancy", AttrValue::F64(k.occupancy));
                    cursor = (cursor + (k.runtime_ms * 1000.0).max(0.0)).min(t1);
                    rec.end_span(ks, cursor);
                }
                rec.counter(names::metric::FETCH_KB, 0, t1, ls.fetch_kb());
                rec.counter(
                    names::metric::ATOMICS,
                    0,
                    t1,
                    ls.kernels.iter().map(|k| k.stats.atomics).sum::<u64>() as f64,
                );
                rec.span_attr(lvl_span, "level", AttrValue::U64(u64::from(level)));
                rec.span_attr(lvl_span, "strategy", AttrValue::Str(strategy.to_string()));
                rec.span_attr(lvl_span, "used_nfg", AttrValue::Bool(used_nfg));
                rec.span_attr(lvl_span, "ratio", AttrValue::F64(ratio));
                rec.span_attr(lvl_span, "frontier_count", AttrValue::U64(frontier_count));
                rec.span_attr(lvl_span, "frontier_edges", AttrValue::U64(frontier_edges));
            }
            rec.end_span(lvl_span, t1);

            let next_count = claimed + pending_pro.0;
            let next_edges = claimed_edges + pending_pro.1;
            frontier_has_proactive = pending_pro.0 > 0;
            pending_pro = (proactive, proactive_edges);
            if next_count == 0 {
                break;
            }
            frontier_count = next_count;
            frontier_edges = next_edges;
            level = level.checked_add(1).expect("level overflow");
        }
        let total_us = dev.elapsed_us();
        // --- measured window ends ---

        let levels = st.status.to_host();
        let parents = st.parents.as_ref().map(|p| p.to_host());
        let traversed_edges: u64 = levels
            .iter()
            .zip(&self.host_degrees)
            .filter(|(&l, _)| l != UNVISITED)
            .map(|(_, &d)| u64::from(d))
            .sum();
        let total_ms = total_us / 1000.0;
        let gteps = if total_us > 0.0 {
            traversed_edges as f64 / (total_us * 1e-6) / 1e9
        } else {
            0.0
        };
        rec.span_attr(run_span, "depth", AttrValue::U64(level_stats.len() as u64));
        rec.span_attr(run_span, "total_ms", AttrValue::F64(total_ms));
        rec.span_attr(run_span, "traversed_edges", AttrValue::U64(traversed_edges));
        rec.span_attr(run_span, "gteps", AttrValue::F64(gteps));
        rec.end_span(run_span, total_us);
        Ok(BfsRun {
            source,
            levels,
            parents,
            level_stats,
            total_ms,
            traversed_edges,
            gteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd_sim::{ArchProfile, ExecMode};
    use xbfs_graph::generators::{barabasi_albert, erdos_renyi, rmat_graph, RmatParams};
    use xbfs_graph::{bfs_levels_serial, validate_bfs_tree};

    fn check_against_reference(g: &Csr, cfg: XbfsConfig, sources: &[u32]) {
        let dev = Device::new(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            cfg.required_streams(),
        );
        let xbfs = Xbfs::new(&dev, g, cfg).unwrap();
        for &s in sources {
            let run = xbfs.run(s).unwrap();
            assert_eq!(
                run.levels,
                bfs_levels_serial(g, s),
                "levels mismatch from source {s}"
            );
        }
    }

    #[test]
    fn adaptive_matches_reference_on_rmat() {
        let g = rmat_graph(RmatParams::graph500(10), 3);
        check_against_reference(&g, XbfsConfig::default(), &[0, 17, 513]);
    }

    #[test]
    fn adaptive_matches_reference_on_er_and_ba() {
        let er = erdos_renyi(2000, 8000, 5);
        check_against_reference(&er, XbfsConfig::default(), &[0, 999]);
        let ba = barabasi_albert(3000, 5, 1);
        check_against_reference(&ba, XbfsConfig::default(), &[0, 2999]);
    }

    #[test]
    fn every_forced_strategy_matches_reference() {
        let g = rmat_graph(RmatParams::graph500(9), 8);
        for strat in [Strategy::ScanFree, Strategy::SingleScan, Strategy::BottomUp] {
            check_against_reference(&g, XbfsConfig::forced(strat), &[3, 250]);
        }
    }

    #[test]
    fn naive_port_config_matches_reference() {
        let g = rmat_graph(RmatParams::graph500(9), 2);
        check_against_reference(&g, XbfsConfig::naive_port(), &[0, 100]);
    }

    #[test]
    fn ablations_match_reference() {
        let g = barabasi_albert(1500, 6, 9);
        for cfg in [
            XbfsConfig {
                nfg: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                proactive: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                balancing_top_down: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                balancing_bottom_up: true,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                record_parents: true,
                ..XbfsConfig::default()
            },
        ] {
            check_against_reference(&g, cfg, &[0, 700]);
        }
    }

    #[test]
    fn parent_array_validates() {
        let g = rmat_graph(RmatParams::graph500(9), 4);
        let dev = Device::mi250x();
        let cfg = XbfsConfig {
            record_parents: true,
            ..XbfsConfig::default()
        };
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        let run = xbfs.run(42).unwrap();
        let parents = run.parents.expect("parents requested");
        let levels = validate_bfs_tree(&g, 42, &parents).expect("invalid BFS tree");
        assert_eq!(levels, run.levels);
    }

    #[test]
    fn adaptive_visits_all_three_strategies_on_rmat() {
        // R-MAT has the hockey-stick ratio curve: tiny ratios early, a
        // bottom-up hump, then a tail — the paper's Fig. 6/7 story.
        let g = rmat_graph(RmatParams::graph500(12), 1);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let run = xbfs.run(0).unwrap();
        let trace = run.strategy_trace();
        assert!(trace.contains(&Strategy::ScanFree), "trace {trace:?}");
        assert!(trace.contains(&Strategy::BottomUp), "trace {trace:?}");
        assert!(run.gteps > 0.0);
        assert!(run.total_ms > 0.0);
        assert_eq!(run.depth(), run.level_stats.len());
    }

    #[test]
    fn unreachable_component_stays_unvisited() {
        // Two disjoint triangles.
        let g = Csr::from_parts(
            vec![0, 2, 4, 6, 8, 10, 12],
            vec![1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4],
        )
        .unwrap();
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let run = xbfs.run(0).unwrap();
        assert_eq!(run.levels[3..], [UNVISITED; 3]);
        assert_eq!(run.traversed_edges, 6);
    }

    #[test]
    fn rejects_bad_source_with_typed_error() {
        let g = erdos_renyi(10, 20, 1);
        let dev = Device::mi250x();
        assert_eq!(
            Xbfs::new(&dev, &g, XbfsConfig::default())
                .unwrap()
                .run(10)
                .unwrap_err(),
            XbfsError::SourceOutOfRange {
                source: 10,
                num_vertices: 10
            }
        );
    }

    #[test]
    fn rejects_insufficient_streams_with_typed_error() {
        let g = erdos_renyi(10, 20, 1);
        let dev = Device::mi250x(); // 1 stream
        let err = Xbfs::new(&dev, &g, XbfsConfig::naive_port()).err().unwrap();
        assert!(matches!(err, XbfsError::InsufficientStreams { available: 1, .. }));
    }

    #[test]
    fn rejects_empty_graph_with_typed_error() {
        let g = Csr::from_parts(vec![0], vec![]).unwrap();
        let dev = Device::mi250x();
        assert_eq!(
            Xbfs::new(&dev, &g, XbfsConfig::default()).err(),
            Some(XbfsError::EmptyGraph)
        );
    }
}
