//! The XBFS runner: the host-side loop that drives adaptive BFS on the
//! simulated GCD, exactly mirroring the structure of the ported code —
//! per-level counter memset, strategy dispatch, device sync, counter
//! readback, controller decision.
//!
//! Since PR 3 the runner is a *throughput engine*: BFS state is acquired
//! from the device buffer pool once at construction, reset between runs in
//! O(1) by advancing an epoch bias (no O(|V|) fill kernels), and per-level
//! scratch (phase-label strings) is cached across runs. Back-to-back runs
//! from different sources therefore cost O(|frontier work|), not O(|V|).

use crate::config::XbfsConfig;
use crate::controller::Controller;
use crate::device_graph::DeviceGraph;
use crate::error::XbfsError;
use crate::integrity::{apply_sabotage, certify_run, Certificate, Sabotage};
use crate::state::{ctr, decode_level, ectr, BfsState, QueueState, UNVISITED};
use crate::stats::{BfsRun, LevelStats};
use crate::strategy::{
    launch_bottom_up_level, launch_generation_scan, launch_reset_counters, launch_top_down_expand,
    Strategy,
};
use gcd_sim::Device;
use parking_lot::Mutex;
use std::borrow::Borrow;
use xbfs_graph::Csr;
use xbfs_telemetry::{names, AttrValue, Recorder};

/// Per-engine mutable run context, reused across runs: the pooled BFS
/// state, the previous run's depth (how far to advance the epoch), and
/// cached per-level phase labels so the steady-state level loop performs
/// no scratch allocation.
struct RunInner {
    /// `Some` until drop, when the buffers return to the device pool.
    st: Option<BfsState>,
    /// Depth of the previous run; bounds the epoch advance on reset.
    last_depth: u32,
    /// `labels[l] == "level l"`, grown lazily and kept across runs.
    labels: Vec<String>,
    /// How many times the scratch grew (label allocations). Steady-state
    /// repeat runs must not bump this — asserted in tests.
    scratch_allocs: u64,
}

/// Return the cached phase label for `level`, allocating only the first
/// time this engine reaches a given depth.
fn phase_label<'s>(labels: &'s mut Vec<String>, scratch_allocs: &mut u64, level: u32) -> &'s str {
    let idx = level as usize;
    while labels.len() <= idx {
        labels.push(format!("level {}", labels.len()));
        *scratch_allocs += 1;
    }
    labels[idx].as_str()
}

/// An XBFS instance bound to a device-resident graph.
///
/// Generic over how it holds the device: `Xbfs<&Device>` borrows a device
/// owned elsewhere (the common case, inferred from `Xbfs::new(&dev, ..)`),
/// while `Xbfs<Device>` owns one outright — used by long-lived engines
/// (e.g. `xbfs-apps`) that would otherwise be self-referential.
pub struct Xbfs<D: Borrow<Device>> {
    device: D,
    graph: DeviceGraph,
    cfg: XbfsConfig,
    host_degrees: Vec<u32>,
    inner: Mutex<RunInner>,
}

impl<D: Borrow<Device>> Xbfs<D> {
    /// Upload `g` and prepare a runner. The device must have at least
    /// [`XbfsConfig::required_streams`] streams.
    ///
    /// Like the original XBFS (whose inputs are symmetrized Graph500/SNAP
    /// graphs), the bottom-up strategy pulls through **out**-edges, so
    /// results are exact on directed graphs only with a configuration that
    /// never selects bottom-up — use [`XbfsConfig::directed`] for those.
    pub fn new(device: D, g: &Csr, cfg: XbfsConfig) -> Result<Self, XbfsError> {
        let dev: &Device = device.borrow();
        if dev.num_streams() < cfg.required_streams() {
            return Err(XbfsError::InsufficientStreams {
                required: cfg.required_streams(),
                available: dev.num_streams(),
            });
        }
        if g.num_vertices() == 0 {
            return Err(XbfsError::EmptyGraph);
        }
        let host_degrees = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        let graph = DeviceGraph::upload(dev, g);
        let st = BfsState::from_pool(dev, g.num_vertices(), cfg.record_parents, cfg.seg_len);
        Ok(Self {
            graph,
            cfg,
            host_degrees,
            inner: Mutex::new(RunInner {
                st: Some(st),
                last_depth: 0,
                labels: Vec::new(),
                scratch_allocs: 0,
            }),
            device,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &XbfsConfig {
        &self.cfg
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        self.device.borrow()
    }

    /// Number of times the reusable per-run scratch had to grow. After a
    /// warm-up run, repeat runs of no greater depth keep this constant —
    /// the level loop performs no scratch allocation.
    pub fn scratch_allocs(&self) -> u64 {
        self.inner.lock().scratch_allocs
    }

    /// Run one BFS from `source`, returning levels plus full per-level
    /// statistics. Models the paper's "n to n" measured window: status
    /// initialization through final sync.
    pub fn run(&self, source: u32) -> Result<BfsRun, XbfsError> {
        self.run_traced(source, &Recorder::disabled())
    }

    /// Like [`Xbfs::run`], but records structured telemetry into `rec`:
    /// a `run > level > {queue_gen, expand} > kernel` span tree on the
    /// modeled device timeline, per-level strategy-choice events, and
    /// frontier/fetch counter series. With a disabled recorder every
    /// telemetry call is a single relaxed atomic load, so this is the
    /// same hot path `run` uses.
    pub fn run_traced(&self, source: u32, rec: &Recorder) -> Result<BfsRun, XbfsError> {
        self.run_impl(source, rec, None, None)
    }

    /// [`Xbfs::run`] under a modeled-time budget: between levels the device
    /// clock is checked against `deadline_ms`, and a run that crosses it
    /// aborts with [`XbfsError::DeadlineExceeded`] instead of finishing.
    /// The pooled state stays reusable after an abort — the next run's
    /// epoch reset clears the partial traversal in O(1).
    pub fn run_with_deadline(&self, source: u32, deadline_ms: f64) -> Result<BfsRun, XbfsError> {
        self.run_impl(source, &Recorder::disabled(), None, Some(deadline_ms))
    }

    /// Run with certificate validation: the pool and CSR are checksummed
    /// around the run and the output is validated by
    /// [`crate::integrity::certify_run`]; any detection surfaces as
    /// [`XbfsError::Integrity`]. The run itself is the exact hot path
    /// [`Xbfs::run`] executes, so certified fault-free results are
    /// bit-identical to unverified ones.
    pub fn run_certified(&self, source: u32) -> Result<(BfsRun, Certificate), XbfsError> {
        self.run_certified_traced(source, &Recorder::disabled())
    }

    /// [`Xbfs::run_certified`] with telemetry (see [`Xbfs::run_traced`]).
    pub fn run_certified_traced(
        &self,
        source: u32,
        rec: &Recorder,
    ) -> Result<(BfsRun, Certificate), XbfsError> {
        self.run_verified(source, rec, None)
    }

    /// Run with bit-flip injection but *no* verification — the "what does
    /// corruption do when nothing checks" baseline the CLI exposes as
    /// `--inject-bitflips` without `--verify`.
    pub fn run_with_sabotage(
        &self,
        source: u32,
        rec: &Recorder,
        sabotage: &Sabotage<'_>,
    ) -> Result<BfsRun, XbfsError> {
        self.run_impl(source, rec, Some(sabotage), None)
    }

    /// The serving layer's entry point: one run under every governor at
    /// once. `deadline_ms` bounds the modeled clock (see
    /// [`Xbfs::run_with_deadline`]), `verify` turns on the full
    /// [`Xbfs::run_verified`] pipeline (pool sweeps, CSR re-check,
    /// certificate), and `sabotage` injects faults for chaos testing.
    /// With `verify` off the certificate is `None` and the run is the
    /// exact unverified hot path.
    pub fn run_governed(
        &self,
        source: u32,
        rec: &Recorder,
        sabotage: Option<&Sabotage<'_>>,
        deadline_ms: Option<f64>,
        verify: bool,
    ) -> Result<(BfsRun, Option<Certificate>), XbfsError> {
        if verify {
            self.run_checked(source, rec, sabotage, deadline_ms)
                .map(|(run, cert)| (run, Some(cert)))
        } else {
            self.run_impl(source, rec, sabotage, deadline_ms)
                .map(|run| (run, None))
        }
    }

    /// The full verified pipeline: pre-run pool sweep, the (optionally
    /// sabotaged) run, CSR checksum re-check, certificate validation, and
    /// a post-run pool sweep. Injection, when requested, happens inside
    /// the run — this is how the detection path is exercised end to end.
    pub fn run_verified(
        &self,
        source: u32,
        rec: &Recorder,
        sabotage: Option<&Sabotage<'_>>,
    ) -> Result<(BfsRun, Certificate), XbfsError> {
        self.run_checked(source, rec, sabotage, None)
    }

    fn run_checked(
        &self,
        source: u32,
        rec: &Recorder,
        sabotage: Option<&Sabotage<'_>>,
        deadline_ms: Option<f64>,
    ) -> Result<(BfsRun, Certificate), XbfsError> {
        let dev: &Device = self.device.borrow();
        // Surface corruption the pool already quarantined (e.g. during
        // engine construction) before investing in a run.
        if let Some(f) = dev.take_pool_faults().into_iter().next() {
            return Err(crate::integrity::IntegrityError::Pool(f).into());
        }
        dev.verify_pool()
            .map_err(crate::integrity::IntegrityError::Pool)?;
        let run = self.run_impl(source, rec, sabotage, deadline_ms)?;
        self.graph.verify()?;
        let cert = certify_run(
            &self.graph.offsets.to_host(),
            &self.graph.adjacency.to_host(),
            &run,
        )
        .map_err(crate::integrity::IntegrityError::Certificate)?;
        // Catch corruption of buffers that sat parked during the run, and
        // any quarantine the run's own acquires performed.
        dev.verify_pool()
            .map_err(crate::integrity::IntegrityError::Pool)?;
        if let Some(f) = dev.take_pool_faults().into_iter().next() {
            return Err(crate::integrity::IntegrityError::Pool(f).into());
        }
        Ok((run, cert))
    }

    fn run_impl(
        &self,
        source: u32,
        rec: &Recorder,
        sabotage: Option<&Sabotage<'_>>,
        deadline_ms: Option<f64>,
    ) -> Result<BfsRun, XbfsError> {
        let dev: &Device = self.device.borrow();
        let g = &self.graph;
        let n = g.num_vertices();
        if (source as usize) >= n {
            return Err(XbfsError::SourceOutOfRange {
                source,
                num_vertices: n,
            });
        }
        let controller = Controller::new(self.cfg.alpha, self.cfg.scan_free_max_ratio);

        let mut guard = self.inner.lock();
        let RunInner {
            st,
            last_depth,
            labels,
            scratch_allocs,
        } = &mut *guard;
        let st = st.as_mut().expect("state is released only on drop");
        // O(1) between-run reset: advance the epoch past everything the
        // previous run stored instead of re-filling O(|V|) arrays.
        st.reset_in_place(*last_depth);
        dev.reset_timeline();
        let _ = dev.take_reports();

        let run_span = rec.begin_span(None, names::span::RUN, 0, 0.0);
        rec.span_attr(run_span, "engine", AttrValue::Str("xbfs".into()));
        rec.span_attr(run_span, "source", AttrValue::U64(u64::from(source)));
        rec.span_attr(run_span, "vertices", AttrValue::U64(n as u64));
        rec.span_attr(
            run_span,
            "edges",
            AttrValue::U64(self.graph.num_edges() as u64),
        );
        rec.span_attr(run_span, "alpha", AttrValue::F64(self.cfg.alpha));

        // --- measured window starts ---
        // Epoch-versioned state needs no O(|V|) fill kernels here: entries
        // from older epochs read as unvisited, and the parent array decode
        // is gated on visited-ness, so seeding the source is the whole
        // initialization (satellite of the paper's "n to n" window).
        let init_span = rec.begin_span(Some(run_span), names::span::INIT, 0, 0.0);
        dev.set_phase("init");
        if let Some(parents) = &st.parents {
            parents.store(source as usize, source);
        }
        st.status.store(source as usize, st.base); // level 0, epoch-encoded
        st.queues[0].store(0, source);
        dev.charge_transfer(0, 8); // seed the source + queue head
        rec.end_span(init_span, dev.elapsed_us());

        let m = g.num_edges().max(1) as f64;
        let mut exact: Option<[usize; 3]> = Some([1, 0, 0]);
        let mut superset: Option<usize> = None;
        let mut frontier_count = 1u64;
        let mut frontier_edges = u64::from(self.host_degrees[source as usize]);
        // Proactive bottom-up claims targeting the level after next:
        // (count, degree sum), plus whether the *current* frontier contains
        // proactively claimed vertices (then stale exact queues are unusable).
        let mut pending_pro = (0u64, 0u64);
        let mut frontier_has_proactive = false;
        let mut level = 0u32;
        let mut level_stats: Vec<LevelStats> = Vec::new();

        loop {
            let ratio = frontier_edges as f64 / m;
            let strategy = self.cfg.forced.unwrap_or_else(|| controller.choose(ratio));
            dev.set_phase(phase_label(labels, scratch_allocs, level));
            let t0 = dev.elapsed_us();
            let mut used_nfg = true;

            let lvl_span = rec.begin_span(Some(run_span), names::span::LEVEL, 0, t0);
            rec.event(
                Some(lvl_span),
                names::event::STRATEGY_CHOICE,
                0,
                t0,
                vec![
                    ("strategy".into(), AttrValue::Str(strategy.to_string())),
                    ("ratio".into(), AttrValue::F64(ratio)),
                    ("alpha".into(), AttrValue::F64(self.cfg.alpha)),
                    ("forced".into(), AttrValue::Bool(self.cfg.forced.is_some())),
                ],
            );
            rec.counter(names::metric::FRONTIER_SIZE, 0, t0, frontier_count as f64);
            rec.counter(names::metric::FRONTIER_EDGES, 0, t0, frontier_edges as f64);
            rec.counter(names::metric::FRONTIER_RATIO, 0, t0, ratio);
            let mut expand_start = t0;

            match strategy {
                Strategy::BottomUp => {
                    launch_reset_counters(dev, 0, st);
                    launch_bottom_up_level(dev, g, st, st.base + level, &self.cfg);
                }
                Strategy::ScanFree | Strategy::SingleScan => {
                    let mut qstate = if !self.cfg.nfg {
                        QueueState::None
                    } else if frontier_has_proactive {
                        // Stale exact queues miss proactive claims; the
                        // superset (or a fresh scan) covers them.
                        superset
                            .map(QueueState::Superset)
                            .unwrap_or(QueueState::None)
                    } else if let Some(lens) = exact {
                        QueueState::Exact(lens)
                    } else if let Some(len) = superset {
                        QueueState::Superset(len)
                    } else {
                        QueueState::None
                    };
                    if qstate == QueueState::None {
                        // Frontier-queue generation scan (single-scan
                        // kernel 1; also the fallback scan-free pays when
                        // no queue survived).
                        used_nfg = false;
                        launch_reset_counters(dev, 0, st);
                        launch_generation_scan(dev, 0, g, st, st.base + level, &self.cfg);
                        dev.sync();
                        dev.charge_transfer(0, 12);
                        let lens = st.next_queue_lens();
                        st.swap_queues();
                        qstate = QueueState::Exact(lens);
                        let q1 = dev.elapsed_us();
                        let qg = rec.begin_span(Some(lvl_span), names::span::QUEUE_GEN, 0, t0);
                        rec.end_span(qg, q1);
                        expand_start = q1;
                    }
                    launch_reset_counters(dev, 0, st);
                    let atomic_claim = strategy == Strategy::ScanFree;
                    launch_top_down_expand(
                        dev,
                        g,
                        st,
                        st.base + level,
                        qstate,
                        atomic_claim,
                        &self.cfg,
                    );
                }
            }

            dev.sync();
            let expand_span = rec.begin_span(Some(lvl_span), names::span::EXPAND, 0, expand_start);
            rec.end_span(expand_span, dev.elapsed_us());
            dev.charge_transfer(0, 48); // counter readback
            let claimed = u64::from(st.counters.load(ctr::CLAIMED));
            let proactive = u64::from(st.counters.load(ctr::PROACTIVE));
            let claimed_edges = st.edge_counters.load(ectr::CLAIMED_EDGES);
            let proactive_edges = st.edge_counters.load(ectr::PROACTIVE_EDGES);

            match strategy {
                Strategy::ScanFree => {
                    let lens = st.next_queue_lens();
                    st.swap_queues();
                    exact = Some(lens);
                }
                Strategy::SingleScan => {
                    exact = None;
                }
                Strategy::BottomUp => {
                    superset = Some(st.counters.load(ctr::BU_LEN) as usize);
                    exact = None;
                }
            }

            let t1 = dev.elapsed_us();
            level_stats.push(LevelStats {
                level,
                strategy,
                used_nfg,
                ratio,
                frontier_count,
                frontier_edges,
                time_ms: (t1 - t0) / 1000.0,
                kernels: dev.take_reports(),
            });
            if rec.is_enabled() {
                let ls = level_stats.last().expect("just pushed");
                // Lay the level's kernel reports out as sequential child
                // spans so chrome://tracing shows the dispatch stream.
                let mut cursor = t0;
                for k in &ls.kernels {
                    let ks = rec.begin_span(Some(lvl_span), names::span::KERNEL, 0, cursor);
                    rec.span_attr(ks, "phase", AttrValue::Str(k.phase.clone()));
                    rec.span_attr(ks, "kernel", AttrValue::Str(k.name.clone()));
                    rec.span_attr(ks, "l2_hit_pct", AttrValue::F64(k.l2_hit_pct));
                    rec.span_attr(ks, "mem_busy_pct", AttrValue::F64(k.mem_busy_pct));
                    rec.span_attr(ks, "fetch_kb", AttrValue::F64(k.fetch_kb));
                    rec.span_attr(ks, "instructions", AttrValue::U64(k.stats.instructions));
                    rec.span_attr(ks, "atomics", AttrValue::U64(k.stats.atomics));
                    rec.span_attr(ks, "hbm_lines", AttrValue::U64(k.stats.hbm_lines));
                    rec.span_attr(ks, "occupancy", AttrValue::F64(k.occupancy));
                    cursor = (cursor + (k.runtime_ms * 1000.0).max(0.0)).min(t1);
                    rec.end_span(ks, cursor);
                }
                rec.counter(names::metric::FETCH_KB, 0, t1, ls.fetch_kb());
                rec.counter(
                    names::metric::ATOMICS,
                    0,
                    t1,
                    ls.kernels.iter().map(|k| k.stats.atomics).sum::<u64>() as f64,
                );
                rec.span_attr(lvl_span, "level", AttrValue::U64(u64::from(level)));
                rec.span_attr(lvl_span, "strategy", AttrValue::Str(strategy.to_string()));
                rec.span_attr(lvl_span, "used_nfg", AttrValue::Bool(used_nfg));
                rec.span_attr(lvl_span, "ratio", AttrValue::F64(ratio));
                rec.span_attr(lvl_span, "frontier_count", AttrValue::U64(frontier_count));
                rec.span_attr(lvl_span, "frontier_edges", AttrValue::U64(frontier_edges));
            }
            rec.end_span(lvl_span, t1);

            let next_count = claimed + pending_pro.0;
            let next_edges = claimed_edges + pending_pro.1;
            frontier_has_proactive = pending_pro.0 > 0;
            pending_pro = (proactive, proactive_edges);
            if next_count == 0 {
                break;
            }
            // Deadline gate, between levels only: a run that completes on
            // its last level is never a timeout. The abort leaves partial
            // marks up to two levels past the last recorded one (proactive
            // claims), which `reset_in_place`'s +3 epoch skip already
            // covers — the state is fully reusable by the next run.
            if let Some(budget_ms) = deadline_ms {
                let budget_us = budget_ms * 1000.0;
                if t1 > budget_us {
                    *last_depth = level_stats.len() as u32;
                    rec.span_attr(run_span, "deadline_ms", AttrValue::F64(budget_ms));
                    rec.span_attr(run_span, "timed_out", AttrValue::Bool(true));
                    rec.end_span(run_span, t1);
                    return Err(XbfsError::DeadlineExceeded {
                        level,
                        elapsed_us: t1 as u64,
                        deadline_us: budget_us as u64,
                    });
                }
            }
            frontier_count = next_count;
            frontier_edges = next_edges;
            level = level.checked_add(1).expect("level overflow");
        }
        let total_us = dev.elapsed_us();
        // --- measured window ends ---
        *last_depth = level_stats.len() as u32;

        // Fault injection point: corrupt live device state after the level
        // loop but before host readback, modeling an SDC the measured
        // window never observed. A `None` plan leaves the path untouched,
        // so clean runs are bit-identical with or without verification.
        if let Some(sab) = sabotage {
            apply_sabotage(dev, g, st, sab);
        }

        // Decode epoch-encoded status back to plain levels; parent entries
        // are only meaningful for vertices this run actually visited.
        let mut levels = st.status.to_host();
        for l in &mut levels {
            *l = decode_level(*l, st.base);
        }
        let parents = st.parents.as_ref().map(|p| {
            let mut ps = p.to_host();
            for (pv, &l) in ps.iter_mut().zip(&levels) {
                if l == UNVISITED {
                    *pv = UNVISITED;
                }
            }
            ps
        });
        let traversed_edges: u64 = levels
            .iter()
            .zip(&self.host_degrees)
            .filter(|(&l, _)| l != UNVISITED)
            .map(|(_, &d)| u64::from(d))
            .sum();
        let total_ms = total_us / 1000.0;
        let gteps = if total_us > 0.0 {
            traversed_edges as f64 / (total_us * 1e-6) / 1e9
        } else {
            0.0
        };
        rec.span_attr(run_span, "depth", AttrValue::U64(level_stats.len() as u64));
        rec.span_attr(run_span, "total_ms", AttrValue::F64(total_ms));
        rec.span_attr(run_span, "traversed_edges", AttrValue::U64(traversed_edges));
        rec.span_attr(run_span, "gteps", AttrValue::F64(gteps));
        rec.end_span(run_span, total_us);
        Ok(BfsRun {
            source,
            levels,
            parents,
            level_stats,
            total_ms,
            traversed_edges,
            gteps,
        })
    }
}

impl<D: Borrow<Device>> Drop for Xbfs<D> {
    /// Return the BFS state and graph buffers to the device pool so the
    /// next engine of the same shape on this device reuses them (same
    /// addresses, hence bit-identical modeled timings). State goes back
    /// first — it was acquired last, and the pool's free lists are LIFO.
    fn drop(&mut self) {
        if let Some(st) = self.inner.get_mut().st.take() {
            st.release_to_pool(self.device.borrow());
        }
        self.graph.release_to_pool(self.device.borrow());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd_sim::{ArchProfile, ExecMode};
    use xbfs_graph::generators::{barabasi_albert, erdos_renyi, rmat_graph, RmatParams};
    use xbfs_graph::{bfs_levels_serial, validate_bfs_tree};

    fn check_against_reference(g: &Csr, cfg: XbfsConfig, sources: &[u32]) {
        let dev = Device::new(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            cfg.required_streams(),
        );
        let xbfs = Xbfs::new(&dev, g, cfg).unwrap();
        for &s in sources {
            let run = xbfs.run(s).unwrap();
            assert_eq!(
                run.levels,
                bfs_levels_serial(g, s),
                "levels mismatch from source {s}"
            );
        }
    }

    #[test]
    fn adaptive_matches_reference_on_rmat() {
        let g = rmat_graph(RmatParams::graph500(10), 3);
        check_against_reference(&g, XbfsConfig::default(), &[0, 17, 513]);
    }

    #[test]
    fn adaptive_matches_reference_on_er_and_ba() {
        let er = erdos_renyi(2000, 8000, 5);
        check_against_reference(&er, XbfsConfig::default(), &[0, 999]);
        let ba = barabasi_albert(3000, 5, 1);
        check_against_reference(&ba, XbfsConfig::default(), &[0, 2999]);
    }

    #[test]
    fn every_forced_strategy_matches_reference() {
        let g = rmat_graph(RmatParams::graph500(9), 8);
        for strat in [Strategy::ScanFree, Strategy::SingleScan, Strategy::BottomUp] {
            check_against_reference(&g, XbfsConfig::forced(strat), &[3, 250]);
        }
    }

    #[test]
    fn naive_port_config_matches_reference() {
        let g = rmat_graph(RmatParams::graph500(9), 2);
        check_against_reference(&g, XbfsConfig::naive_port(), &[0, 100]);
    }

    #[test]
    fn ablations_match_reference() {
        let g = barabasi_albert(1500, 6, 9);
        for cfg in [
            XbfsConfig {
                nfg: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                proactive: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                balancing_top_down: false,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                balancing_bottom_up: true,
                ..XbfsConfig::default()
            },
            XbfsConfig {
                record_parents: true,
                ..XbfsConfig::default()
            },
        ] {
            check_against_reference(&g, cfg, &[0, 700]);
        }
    }

    #[test]
    fn parent_array_validates() {
        let g = rmat_graph(RmatParams::graph500(9), 4);
        let dev = Device::mi250x();
        let cfg = XbfsConfig {
            record_parents: true,
            ..XbfsConfig::default()
        };
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        let run = xbfs.run(42).unwrap();
        let parents = run.parents.expect("parents requested");
        let levels = validate_bfs_tree(&g, 42, &parents).expect("invalid BFS tree");
        assert_eq!(levels, run.levels);
    }

    #[test]
    fn adaptive_visits_all_three_strategies_on_rmat() {
        // R-MAT has the hockey-stick ratio curve: tiny ratios early, a
        // bottom-up hump, then a tail — the paper's Fig. 6/7 story.
        let g = rmat_graph(RmatParams::graph500(12), 1);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let run = xbfs.run(0).unwrap();
        let trace = run.strategy_trace();
        assert!(trace.contains(&Strategy::ScanFree), "trace {trace:?}");
        assert!(trace.contains(&Strategy::BottomUp), "trace {trace:?}");
        assert!(run.gteps > 0.0);
        assert!(run.total_ms > 0.0);
        assert_eq!(run.depth(), run.level_stats.len());
    }

    #[test]
    fn unreachable_component_stays_unvisited() {
        // Two disjoint triangles.
        let g = Csr::from_parts(
            vec![0, 2, 4, 6, 8, 10, 12],
            vec![1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4],
        )
        .unwrap();
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let run = xbfs.run(0).unwrap();
        assert_eq!(run.levels[3..], [UNVISITED; 3]);
        assert_eq!(run.traversed_edges, 6);
    }

    #[test]
    fn rejects_bad_source_with_typed_error() {
        let g = erdos_renyi(10, 20, 1);
        let dev = Device::mi250x();
        assert_eq!(
            Xbfs::new(&dev, &g, XbfsConfig::default())
                .unwrap()
                .run(10)
                .unwrap_err(),
            XbfsError::SourceOutOfRange {
                source: 10,
                num_vertices: 10
            }
        );
    }

    #[test]
    fn rejects_insufficient_streams_with_typed_error() {
        let g = erdos_renyi(10, 20, 1);
        let dev = Device::mi250x(); // 1 stream
        let err = Xbfs::new(&dev, &g, XbfsConfig::naive_port()).err().unwrap();
        assert!(matches!(
            err,
            XbfsError::InsufficientStreams { available: 1, .. }
        ));
    }

    #[test]
    fn rejects_empty_graph_with_typed_error() {
        let g = Csr::from_parts(vec![0], vec![]).unwrap();
        let dev = Device::mi250x();
        assert_eq!(
            Xbfs::new(&dev, &g, XbfsConfig::default()).err(),
            Some(XbfsError::EmptyGraph)
        );
    }

    #[test]
    fn tight_deadline_aborts_with_typed_error() {
        let g = rmat_graph(RmatParams::graph500(10), 3);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let full = xbfs.run(0).unwrap();
        assert!(full.depth() > 2, "need a multi-level run to abort");
        // A budget below the full runtime must fire between levels.
        let err = xbfs
            .run_with_deadline(0, full.total_ms / 100.0)
            .unwrap_err();
        match err {
            XbfsError::DeadlineExceeded {
                level,
                elapsed_us,
                deadline_us,
            } => {
                assert!((level as usize) < full.depth());
                assert!(elapsed_us > deadline_us);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn pooled_state_survives_deadline_abort() {
        // An aborted run must leave the epoch-versioned state reusable:
        // the very next run on the same engine is bit-identical to a run
        // on a fresh engine.
        let g = rmat_graph(RmatParams::graph500(9), 7);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let reference = xbfs.run(5).unwrap();
        assert!(xbfs.run_with_deadline(5, 1e-6).is_err());
        let after_abort = xbfs.run(5).unwrap();
        assert_eq!(after_abort.levels, reference.levels);
        assert_eq!(after_abort.digest(), reference.digest());
        // And a generous budget behaves exactly like no budget at all.
        let roomy = xbfs
            .run_with_deadline(5, reference.total_ms * 100.0)
            .unwrap();
        assert_eq!(roomy.digest(), reference.digest());
    }

    #[test]
    fn run_governed_composes_deadline_and_verification() {
        let g = erdos_renyi(2000, 8000, 5);
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default()).unwrap();
        let rec = Recorder::disabled();
        let (run, cert) = xbfs.run_governed(0, &rec, None, Some(1e9), true).unwrap();
        assert!(cert.is_some(), "verify=true must yield a certificate");
        assert_eq!(run.levels, bfs_levels_serial(&g, 0));
        let (fast, no_cert) = xbfs.run_governed(0, &rec, None, None, false).unwrap();
        assert!(no_cert.is_none());
        assert_eq!(fast.digest(), run.digest());
        let err = xbfs
            .run_governed(0, &rec, None, Some(1e-6), true)
            .unwrap_err();
        assert!(matches!(err, XbfsError::DeadlineExceeded { .. }));
    }
}
