//! Mutable BFS state on the device: status array, degree-binned frontier
//! queues, the bottom-up queue, and the small counter block every kernel
//! aggregates into.

use gcd_sim::{BufU32, BufU64, Device};

/// `status[v]` holds the BFS level of `v`, or this sentinel.
pub const UNVISITED: u32 = u32::MAX;

/// Counter-block indices (a single `BufU32` so one memset clears them all).
pub mod ctr {
    /// Lengths of the three degree-binned next-frontier queues.
    pub const QUEUE_LEN: [usize; 3] = [0, 1, 2];
    /// Vertices claimed for the next level during this level.
    pub const CLAIMED: usize = 3;
    /// Vertices proactively claimed two levels ahead (bottom-up, §III-C).
    pub const PROACTIVE: usize = 4;
    /// Length of the bottom-up (unvisited) queue.
    pub const BU_LEN: usize = 5;
    /// Total counter slots.
    pub const N: usize = 8;
}

/// 64-bit counter indices.
pub mod ectr {
    /// Sum of degrees of vertices claimed for the next level.
    pub const CLAIMED_EDGES: usize = 0;
    /// Sum of degrees of proactively claimed vertices.
    pub const PROACTIVE_EDGES: usize = 1;
    /// Total 64-bit counter slots.
    pub const N: usize = 2;
}

/// Degree-bin boundaries for warp-centric workload balancing: a claimed
/// vertex goes to the small bin (thread-per-vertex) below the wavefront
/// width, to the large bin (multi-wave) above `width²`, else medium
/// (wave-per-vertex).
#[derive(Debug, Clone, Copy)]
pub struct BinThresholds {
    /// Largest degree still handled thread-per-vertex.
    pub small_max: u32,
    /// Largest degree still handled wave-per-vertex.
    pub medium_max: u32,
}

impl BinThresholds {
    /// Thresholds derived from the wavefront width, as the port re-tuned
    /// them for 64-wide waves (§IV-A parameter tuning).
    pub fn for_width(width: usize) -> Self {
        Self {
            small_max: width as u32,
            medium_max: (width * width) as u32,
        }
    }

    /// Bin index (0 = small, 1 = medium, 2 = large) for a degree.
    #[inline]
    pub fn bin(&self, degree: u32) -> usize {
        if degree < self.small_max {
            0
        } else if degree < self.medium_max {
            1
        } else {
            2
        }
    }
}

/// Device-resident BFS state.
pub struct BfsState {
    /// Per-vertex level (or [`UNVISITED`]).
    pub status: BufU32,
    /// Optional parent array (Graph500 output).
    pub parents: Option<BufU32>,
    /// Current frontier, split by degree bin (bin 0 holds everything when
    /// balancing is off).
    pub queues: [BufU32; 3],
    /// Next frontier being built.
    pub next_queues: [BufU32; 3],
    /// Bottom-up (unvisited-vertex) queue.
    pub bu_queue: BufU32,
    /// Per-segment unvisited counts (bottom-up kernel 1).
    pub seg_counts: BufU32,
    /// Per-block partial sums (bottom-up kernel 2).
    pub block_sums: BufU32,
    /// Exclusive per-segment offsets (bottom-up kernel 3 output).
    pub seg_offsets: BufU32,
    /// 32-bit counter block (see [`ctr`]).
    pub counters: BufU32,
    /// 64-bit counter block (see [`ectr`]).
    pub edge_counters: BufU64,
    /// Segment length for the double-scan, in vertices.
    pub seg_len: usize,
}

impl BfsState {
    /// Allocate state for an `n`-vertex graph.
    pub fn new(device: &Device, n: usize, record_parents: bool, seg_len: usize) -> Self {
        assert!(seg_len >= 1);
        let n_segs = n.div_ceil(seg_len);
        let width = device.arch().wavefront_size;
        let n_blocks = n_segs.div_ceil(width);
        Self {
            status: device.alloc_u32(n),
            parents: record_parents.then(|| device.alloc_u32(n)),
            queues: [
                device.alloc_u32(n),
                device.alloc_u32(n),
                device.alloc_u32(n),
            ],
            next_queues: [
                device.alloc_u32(n),
                device.alloc_u32(n),
                device.alloc_u32(n),
            ],
            bu_queue: device.alloc_u32(n),
            seg_counts: device.alloc_u32(n_segs),
            block_sums: device.alloc_u32(n_blocks),
            seg_offsets: device.alloc_u32(n_segs),
            counters: device.alloc_u32(ctr::N),
            edge_counters: device.alloc_u64(ectr::N),
            seg_len,
        }
    }

    /// Swap current and next queues (level transition).
    pub fn swap_queues(&mut self) {
        std::mem::swap(&mut self.queues, &mut self.next_queues);
    }

    /// Read the three next-queue lengths (host side).
    pub fn next_queue_lens(&self) -> [usize; 3] {
        [
            self.counters.load(ctr::QUEUE_LEN[0]) as usize,
            self.counters.load(ctr::QUEUE_LEN[1]) as usize,
            self.counters.load(ctr::QUEUE_LEN[2]) as usize,
        ]
    }
}

/// What the runner knows about the current frontier queue — the state
/// machine behind the No-Frontier-Generation optimization (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// `queues` hold exactly the current frontier (lengths given).
    Exact([usize; 3]),
    /// `bu_queue` (length given) holds a superset of the frontier: every
    /// vertex that was unvisited when the last double-scan ran. Expansion
    /// must filter by `status[v] == level`.
    Superset(usize),
    /// No usable queue; a generation scan is required.
    None,
}

impl QueueState {
    /// Total candidate count a kernel launched over this queue must cover.
    pub fn total(&self) -> usize {
        match *self {
            QueueState::Exact(lens) => lens.iter().sum(),
            QueueState::Superset(len) => len,
            QueueState::None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_thresholds() {
        let b = BinThresholds::for_width(64);
        assert_eq!(b.bin(0), 0);
        assert_eq!(b.bin(63), 0);
        assert_eq!(b.bin(64), 1);
        assert_eq!(b.bin(4095), 1);
        assert_eq!(b.bin(4096), 2);
    }

    #[test]
    fn state_allocation_sizes() {
        let dev = Device::mi250x();
        let st = BfsState::new(&dev, 1000, true, 64);
        assert_eq!(st.status.len(), 1000);
        assert_eq!(st.parents.as_ref().unwrap().len(), 1000);
        assert_eq!(st.seg_counts.len(), 16); // ceil(1000/64)
        assert_eq!(st.block_sums.len(), 1); // ceil(16/64)
        assert_eq!(st.counters.len(), ctr::N);
    }

    #[test]
    fn queue_state_totals() {
        assert_eq!(QueueState::Exact([1, 2, 3]).total(), 6);
        assert_eq!(QueueState::Superset(9).total(), 9);
        assert_eq!(QueueState::None.total(), 0);
    }

    #[test]
    fn swap_queues_exchanges() {
        let dev = Device::mi250x();
        let mut st = BfsState::new(&dev, 16, false, 64);
        st.queues[0].store(0, 42);
        st.swap_queues();
        assert_eq!(st.next_queues[0].load(0), 42);
    }
}
