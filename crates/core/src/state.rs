//! Mutable BFS state on the device: status array, degree-binned frontier
//! queues, the bottom-up queue, and the small counter block every kernel
//! aggregates into.

use gcd_sim::{BufU32, BufU64, Device};

/// `status[v]` holds the BFS level of `v`, or this sentinel.
pub const UNVISITED: u32 = u32::MAX;

/// Epoch-versioned unvisited test: a status entry counts as unvisited
/// unless it belongs to the current run's epoch (`raw >= base`). With
/// `base == 0` this degenerates to the classic `raw == UNVISITED` check, so
/// freshly allocated (zeroed or `UNVISITED`-filled) state behaves exactly
/// as before epochs existed.
#[inline]
pub fn is_unvisited(raw: u32, base: u32) -> bool {
    raw == UNVISITED || raw < base
}

/// Decode an epoch-encoded status entry back to a plain BFS level
/// (`UNVISITED` for entries from older epochs).
#[inline]
pub fn decode_level(raw: u32, base: u32) -> u32 {
    if is_unvisited(raw, base) {
        UNVISITED
    } else {
        raw - base
    }
}

/// Counter-block indices (a single `BufU32` so one memset clears them all).
pub mod ctr {
    /// Lengths of the three degree-binned next-frontier queues.
    pub const QUEUE_LEN: [usize; 3] = [0, 1, 2];
    /// Vertices claimed for the next level during this level.
    pub const CLAIMED: usize = 3;
    /// Vertices proactively claimed two levels ahead (bottom-up, §III-C).
    pub const PROACTIVE: usize = 4;
    /// Length of the bottom-up (unvisited) queue.
    pub const BU_LEN: usize = 5;
    /// Total counter slots.
    pub const N: usize = 8;
}

/// 64-bit counter indices.
pub mod ectr {
    /// Sum of degrees of vertices claimed for the next level.
    pub const CLAIMED_EDGES: usize = 0;
    /// Sum of degrees of proactively claimed vertices.
    pub const PROACTIVE_EDGES: usize = 1;
    /// Total 64-bit counter slots.
    pub const N: usize = 2;
}

/// Degree-bin boundaries for warp-centric workload balancing: a claimed
/// vertex goes to the small bin (thread-per-vertex) below the wavefront
/// width, to the large bin (multi-wave) above `width²`, else medium
/// (wave-per-vertex).
#[derive(Debug, Clone, Copy)]
pub struct BinThresholds {
    /// Largest degree still handled thread-per-vertex.
    pub small_max: u32,
    /// Largest degree still handled wave-per-vertex.
    pub medium_max: u32,
}

impl BinThresholds {
    /// Thresholds derived from the wavefront width, as the port re-tuned
    /// them for 64-wide waves (§IV-A parameter tuning).
    pub fn for_width(width: usize) -> Self {
        Self {
            small_max: width as u32,
            medium_max: (width * width) as u32,
        }
    }

    /// Bin index (0 = small, 1 = medium, 2 = large) for a degree.
    #[inline]
    pub fn bin(&self, degree: u32) -> usize {
        if degree < self.small_max {
            0
        } else if degree < self.medium_max {
            1
        } else {
            2
        }
    }
}

/// Device-resident BFS state.
pub struct BfsState {
    /// Per-vertex level (or [`UNVISITED`]).
    pub status: BufU32,
    /// Optional parent array (Graph500 output).
    pub parents: Option<BufU32>,
    /// Current frontier, split by degree bin (bin 0 holds everything when
    /// balancing is off).
    pub queues: [BufU32; 3],
    /// Next frontier being built.
    pub next_queues: [BufU32; 3],
    /// Bottom-up (unvisited-vertex) queue.
    pub bu_queue: BufU32,
    /// Per-segment unvisited counts (bottom-up kernel 1).
    pub seg_counts: BufU32,
    /// Per-block partial sums (bottom-up kernel 2).
    pub block_sums: BufU32,
    /// Exclusive per-segment offsets (bottom-up kernel 3 output).
    pub seg_offsets: BufU32,
    /// 32-bit counter block (see [`ctr`]).
    pub counters: BufU32,
    /// 64-bit counter block (see [`ectr`]).
    pub edge_counters: BufU64,
    /// Segment length for the double-scan, in vertices.
    pub seg_len: usize,
    /// Epoch bias: level `L` of the current run is stored as `base + L`,
    /// and any entry below `base` (or `UNVISITED`) is unvisited. `0` gives
    /// the legacy un-versioned semantics.
    pub base: u32,
}

impl BfsState {
    /// Allocate state for an `n`-vertex graph.
    pub fn new(device: &Device, n: usize, record_parents: bool, seg_len: usize) -> Self {
        assert!(seg_len >= 1);
        let n_segs = n.div_ceil(seg_len);
        let width = device.arch().wavefront_size;
        let n_blocks = n_segs.div_ceil(width);
        Self {
            status: device.alloc_u32(n),
            parents: record_parents.then(|| device.alloc_u32(n)),
            queues: [
                device.alloc_u32(n),
                device.alloc_u32(n),
                device.alloc_u32(n),
            ],
            next_queues: [
                device.alloc_u32(n),
                device.alloc_u32(n),
                device.alloc_u32(n),
            ],
            bu_queue: device.alloc_u32(n),
            seg_counts: device.alloc_u32(n_segs),
            block_sums: device.alloc_u32(n_blocks),
            seg_offsets: device.alloc_u32(n_segs),
            counters: device.alloc_u32(ctr::N),
            edge_counters: device.alloc_u64(ectr::N),
            seg_len,
            base: 0,
        }
    }

    /// Build state from the device buffer pool (epoch-versioned from the
    /// start). Pool buffers may hold stale contents; every buffer other
    /// than `status` is fully rewritten before it is read (queues are
    /// bounded by host-tracked lengths, counters are reset per level,
    /// `seg_counts`/`block_sums`/`bu_queue` are rewritten by the
    /// double-scan, parents decode is gated on status), so only `status`
    /// needs one host-side zeroing to establish epoch `1 > 0`.
    pub fn from_pool(device: &Device, n: usize, record_parents: bool, seg_len: usize) -> Self {
        assert!(seg_len >= 1);
        let n_segs = n.div_ceil(seg_len);
        let width = device.arch().wavefront_size;
        let n_blocks = n_segs.div_ceil(width);
        let status = device.pool_acquire_u32(n);
        status.host_fill(0);
        Self {
            status,
            parents: record_parents.then(|| device.pool_acquire_u32(n)),
            queues: [
                device.pool_acquire_u32(n),
                device.pool_acquire_u32(n),
                device.pool_acquire_u32(n),
            ],
            next_queues: [
                device.pool_acquire_u32(n),
                device.pool_acquire_u32(n),
                device.pool_acquire_u32(n),
            ],
            bu_queue: device.pool_acquire_u32(n),
            seg_counts: device.pool_acquire_u32(n_segs),
            block_sums: device.pool_acquire_u32(n_blocks),
            seg_offsets: device.pool_acquire_u32(n_segs),
            counters: device.pool_acquire_u32(ctr::N),
            edge_counters: device.pool_acquire_u64(ectr::N),
            seg_len,
            base: 1,
        }
    }

    /// Return every buffer to the device pool so the next
    /// [`BfsState::from_pool`] of the same shape reuses them. Buffers are
    /// released in reverse acquisition order: the pool's free lists are
    /// LIFO, so a rebuilt state pops each buffer back into the same role —
    /// repeat engine constructions see an identical memory layout.
    pub fn release_to_pool(self, device: &Device) {
        device.pool_release_u64(self.edge_counters);
        device.pool_release_u32(self.counters);
        device.pool_release_u32(self.seg_offsets);
        device.pool_release_u32(self.block_sums);
        device.pool_release_u32(self.seg_counts);
        device.pool_release_u32(self.bu_queue);
        let [nq0, nq1, nq2] = self.next_queues;
        let [q0, q1, q2] = self.queues;
        device.pool_release_u32(nq2);
        device.pool_release_u32(nq1);
        device.pool_release_u32(nq0);
        device.pool_release_u32(q2);
        device.pool_release_u32(q1);
        device.pool_release_u32(q0);
        if let Some(p) = self.parents {
            device.pool_release_u32(p);
        }
        device.pool_release_u32(self.status);
    }

    /// O(1) reset between runs: advance the epoch past every value the
    /// previous run (of `prev_depth` levels) can have stored, instead of
    /// re-filling O(|V|) arrays. Proactive bottom-up claims write up to
    /// `base + L + 2` at level `L ≤ prev_depth`, so `prev_depth + 3` clears
    /// them all.
    ///
    /// Overflow guard: the *next* run's deepest possible store is
    /// `base + (n - 1) + 2` (BFS depth is bounded by the vertex count, and
    /// proactive claims reach two levels ahead). If that worst case could
    /// wrap u32 or collide with the [`UNVISITED`] sentinel — which would
    /// make stale entries read as visited — fall back to one real
    /// host-side zeroing and restart the epoch at 1. The check is done in
    /// u64 so the comparison itself cannot overflow.
    pub fn reset_in_place(&mut self, prev_depth: u32) {
        let next = u64::from(self.base) + u64::from(prev_depth) + 3;
        if next + self.status.len() as u64 + 1 < u64::from(UNVISITED) {
            self.base = next as u32;
        } else {
            self.status.host_fill(0);
            self.base = 1;
        }
    }

    /// Swap current and next queues (level transition).
    pub fn swap_queues(&mut self) {
        std::mem::swap(&mut self.queues, &mut self.next_queues);
    }

    /// Read the three next-queue lengths (host side).
    pub fn next_queue_lens(&self) -> [usize; 3] {
        [
            self.counters.load(ctr::QUEUE_LEN[0]) as usize,
            self.counters.load(ctr::QUEUE_LEN[1]) as usize,
            self.counters.load(ctr::QUEUE_LEN[2]) as usize,
        ]
    }
}

/// What the runner knows about the current frontier queue — the state
/// machine behind the No-Frontier-Generation optimization (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// `queues` hold exactly the current frontier (lengths given).
    Exact([usize; 3]),
    /// `bu_queue` (length given) holds a superset of the frontier: every
    /// vertex that was unvisited when the last double-scan ran. Expansion
    /// must filter by `status[v] == level`.
    Superset(usize),
    /// No usable queue; a generation scan is required.
    None,
}

impl QueueState {
    /// Total candidate count a kernel launched over this queue must cover.
    pub fn total(&self) -> usize {
        match *self {
            QueueState::Exact(lens) => lens.iter().sum(),
            QueueState::Superset(len) => len,
            QueueState::None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_thresholds() {
        let b = BinThresholds::for_width(64);
        assert_eq!(b.bin(0), 0);
        assert_eq!(b.bin(63), 0);
        assert_eq!(b.bin(64), 1);
        assert_eq!(b.bin(4095), 1);
        assert_eq!(b.bin(4096), 2);
    }

    #[test]
    fn state_allocation_sizes() {
        let dev = Device::mi250x();
        let st = BfsState::new(&dev, 1000, true, 64);
        assert_eq!(st.status.len(), 1000);
        assert_eq!(st.parents.as_ref().unwrap().len(), 1000);
        assert_eq!(st.seg_counts.len(), 16); // ceil(1000/64)
        assert_eq!(st.block_sums.len(), 1); // ceil(16/64)
        assert_eq!(st.counters.len(), ctr::N);
    }

    #[test]
    fn queue_state_totals() {
        assert_eq!(QueueState::Exact([1, 2, 3]).total(), 6);
        assert_eq!(QueueState::Superset(9).total(), 9);
        assert_eq!(QueueState::None.total(), 0);
    }

    #[test]
    fn swap_queues_exchanges() {
        let dev = Device::mi250x();
        let mut st = BfsState::new(&dev, 16, false, 64);
        st.queues[0].store(0, 42);
        st.swap_queues();
        assert_eq!(st.next_queues[0].load(0), 42);
    }

    #[test]
    fn epoch_predicates() {
        assert!(is_unvisited(UNVISITED, 0));
        assert!(!is_unvisited(0, 0)); // legacy semantics at base 0
        assert!(is_unvisited(0, 1)); // stale zero under epoch 1
        assert!(is_unvisited(9, 10));
        assert!(!is_unvisited(10, 10));
        assert_eq!(decode_level(12, 10), 2);
        assert_eq!(decode_level(3, 10), UNVISITED);
        assert_eq!(decode_level(UNVISITED, 10), UNVISITED);
    }

    #[test]
    fn reset_in_place_advances_epoch_and_falls_back_safely() {
        let dev = Device::mi250x();
        let mut st = BfsState::from_pool(&dev, 8, false, 64);
        assert_eq!(st.base, 1);
        st.status.store(2, st.base + 4); // visited at level 4
        st.reset_in_place(4);
        assert_eq!(st.base, 8); // 1 + 4 + 3
        assert!(is_unvisited(st.status.load(2), st.base));
        // Near the bias ceiling the reset falls back to a real clear.
        st.base = u32::MAX - 20;
        st.reset_in_place(10);
        assert_eq!(st.base, 1);
        assert!(st.status.to_host().iter().all(|&s| s == 0));
    }

    #[test]
    fn epoch_never_wraps_after_thousands_of_resets() {
        let dev = Device::mi250x();
        let mut st = BfsState::from_pool(&dev, 8, false, 64);
        // Pathologically deep runs push the bias toward the u32 ceiling in
        // ~1000 resets; 5000 iterations force several refill fallbacks.
        let deep = u32::MAX / 1024;
        for round in 0..5000u32 {
            // Simulate a run that stored its deepest possible level.
            st.status.store(3, st.base.wrapping_add(deep));
            st.reset_in_place(deep);
            assert!(st.base >= 1, "round {round}");
            // Headroom invariant: even a worst-case next run (depth n-1,
            // proactive claims two levels ahead) cannot reach UNVISITED.
            assert!(
                u64::from(st.base) + st.status.len() as u64 + 1 < u64::from(UNVISITED),
                "round {round}: base {} leaves no headroom",
                st.base
            );
            // The previous run's deepest write must now read as unvisited.
            assert!(
                is_unvisited(st.status.load(3), st.base),
                "round {round}: stale level leaked into the new epoch"
            );
        }
        st.release_to_pool(&dev);
    }

    #[test]
    fn pooled_state_round_trips_with_stable_addresses() {
        let dev = Device::mi250x();
        let st = BfsState::from_pool(&dev, 100, true, 64);
        let status_addr = st.status.addr(0);
        let q1_addr = st.queues[1].addr(0);
        st.release_to_pool(&dev);
        let st2 = BfsState::from_pool(&dev, 100, true, 64);
        assert_eq!(st2.status.addr(0), status_addr);
        assert_eq!(st2.queues[1].addr(0), q1_addr);
        let (hits, misses) = dev.pool_stats();
        assert_eq!(hits, 14); // every buffer of the rebuild came from the pool
        assert_eq!(misses, 14);
    }
}
