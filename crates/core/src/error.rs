//! Typed errors for the single-GCD runner.
//!
//! Construction and run failures surface as [`XbfsError`] values instead of
//! panics, so library users and the CLI can map them to messages and exit
//! codes.

use std::fmt;

/// Why an XBFS operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbfsError {
    /// The device exposes fewer streams than the configuration needs.
    InsufficientStreams {
        /// Streams the configuration requires.
        required: usize,
        /// Streams the device has.
        available: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
    /// The BFS source does not exist in the graph.
    SourceOutOfRange {
        /// Requested source vertex.
        source: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
}

impl fmt::Display for XbfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientStreams {
                required,
                available,
            } => write!(
                f,
                "config requires {required} streams, device has {available}"
            ),
            Self::EmptyGraph => write!(f, "graph has no vertices"),
            Self::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source vertex {source} out of range (graph has {num_vertices} vertices)"
            ),
        }
    }
}

impl std::error::Error for XbfsError {}
