//! Typed errors for the single-GCD runner.
//!
//! Construction and run failures surface as [`XbfsError`] values instead of
//! panics, so library users and the CLI can map them to messages and exit
//! codes.

use crate::integrity::IntegrityError;
use std::fmt;

/// Why an XBFS operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbfsError {
    /// The device exposes fewer streams than the configuration needs.
    InsufficientStreams {
        /// Streams the configuration requires.
        required: usize,
        /// Streams the device has.
        available: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
    /// The BFS source does not exist in the graph.
    SourceOutOfRange {
        /// Requested source vertex.
        source: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
    /// Silent data corruption was detected by a checksum, a pool guard,
    /// or the result certificate (see [`IntegrityError`]).
    Integrity(IntegrityError),
}

impl fmt::Display for XbfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientStreams {
                required,
                available,
            } => write!(
                f,
                "config requires {required} streams, device has {available}"
            ),
            Self::EmptyGraph => write!(f, "graph has no vertices"),
            Self::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source vertex {source} out of range (graph has {num_vertices} vertices)"
            ),
            Self::Integrity(e) => write!(f, "integrity violation: {e}"),
        }
    }
}

impl std::error::Error for XbfsError {}

impl From<IntegrityError> for XbfsError {
    fn from(e: IntegrityError) -> Self {
        Self::Integrity(e)
    }
}
