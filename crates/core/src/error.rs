//! Typed errors for the single-GCD runner.
//!
//! Construction and run failures surface as [`XbfsError`] values instead of
//! panics, so library users and the CLI can map them to messages and exit
//! codes.

use crate::integrity::IntegrityError;
use std::fmt;

/// Why an XBFS operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbfsError {
    /// The device exposes fewer streams than the configuration needs.
    InsufficientStreams {
        /// Streams the configuration requires.
        required: usize,
        /// Streams the device has.
        available: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
    /// The BFS source does not exist in the graph.
    SourceOutOfRange {
        /// Requested source vertex.
        source: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
    /// Silent data corruption was detected by a checksum, a pool guard,
    /// or the result certificate (see [`IntegrityError`]).
    Integrity(IntegrityError),
    /// The run's modeled clock crossed its deadline budget between levels.
    /// Times are integer microseconds so the error stays `Eq`-comparable.
    DeadlineExceeded {
        /// Last BFS level that completed before the abort.
        level: u32,
        /// Modeled device time when the deadline check fired, µs.
        elapsed_us: u64,
        /// The budget the run was given, µs.
        deadline_us: u64,
    },
}

impl fmt::Display for XbfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientStreams {
                required,
                available,
            } => write!(
                f,
                "config requires {required} streams, device has {available}"
            ),
            Self::EmptyGraph => write!(f, "graph has no vertices"),
            Self::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source vertex {source} out of range (graph has {num_vertices} vertices)"
            ),
            Self::Integrity(e) => write!(f, "integrity violation: {e}"),
            Self::DeadlineExceeded {
                level,
                elapsed_us,
                deadline_us,
            } => write!(
                f,
                "deadline exceeded after level {level}: {elapsed_us}us elapsed, budget {deadline_us}us"
            ),
        }
    }
}

impl std::error::Error for XbfsError {}

impl From<IntegrityError> for XbfsError {
    fn from(e: IntegrityError) -> Self {
        Self::Integrity(e)
    }
}
