//! Runner configuration: the knobs the paper tunes while porting XBFS to
//! AMD GPUs, each defaulting to the Frontier-optimized setting.

use crate::strategy::Strategy;

/// XBFS configuration.
#[derive(Debug, Clone, Copy)]
pub struct XbfsConfig {
    /// Bottom-up threshold on the edge ratio (paper §V-F uses `α = 0.1`).
    pub alpha: f64,
    /// Below this ratio the scan-free strategy is selected; between this
    /// and `alpha`, single-scan (derived from the Table VI study).
    pub scan_free_max_ratio: f64,
    /// Warp-centric dynamic workload balancing for top-down expansion
    /// (degree-binned thread/wave/group kernels). Beneficial on both
    /// vendors (§IV-A).
    pub balancing_top_down: bool,
    /// The same balancing applied to bottom-up expansion. Helped on 32-wide
    /// NVIDIA warps, *degrades* 64-wide AMD waves (§IV-A) — off in the
    /// optimized configuration.
    pub balancing_bottom_up: bool,
    /// Run the three degree bins on three HIP streams (the original CUDA
    /// design). On AMD the per-stream sync cost dominates, so the
    /// optimized port consolidates to one stream (§IV-B).
    pub multi_stream: bool,
    /// No-Frontier-Generation: reuse an existing exact/superset queue
    /// instead of re-scanning the status array (§III-B).
    pub nfg: bool,
    /// Proactive next-level claims during bottom-up (§III-C).
    pub proactive: bool,
    /// Record a Graph500-style parent array (extra writes).
    pub record_parents: bool,
    /// Force a single strategy for every level (Fig. 7 / Tables III–VI).
    pub forced: Option<Strategy>,
    /// Bottom-up double-scan segment length, in vertices per thread.
    pub seg_len: usize,
}

impl Default for XbfsConfig {
    fn default() -> Self {
        Self::optimized_amd()
    }
}

impl XbfsConfig {
    /// The Frontier-optimized configuration (paper Fig. 5c).
    pub fn optimized_amd() -> Self {
        Self {
            alpha: 0.1,
            scan_free_max_ratio: 1e-3,
            balancing_top_down: true,
            balancing_bottom_up: false,
            multi_stream: false,
            nfg: true,
            proactive: true,
            record_parents: false,
            forced: None,
            seg_len: 64,
        }
    }

    /// XBFS as it lands after `hipify` with bugs fixed but nothing re-tuned
    /// (paper Fig. 5b): NVIDIA-era settings on AMD hardware.
    pub fn naive_port() -> Self {
        Self {
            // Thresholds tuned for the P6000 memory system.
            alpha: 0.05,
            scan_free_max_ratio: 1e-4,
            balancing_top_down: true,
            balancing_bottom_up: true,
            multi_stream: true,
            nfg: true,
            proactive: true,
            record_parents: false,
            forced: None,
            seg_len: 64,
        }
    }

    /// The original CUDA XBFS configuration (paper Fig. 5a, run on the
    /// P6000 profile where these choices are appropriate).
    pub fn cuda_original() -> Self {
        Self {
            alpha: 0.05,
            scan_free_max_ratio: 1e-4,
            balancing_top_down: true,
            balancing_bottom_up: true,
            multi_stream: true,
            nfg: true,
            proactive: true,
            record_parents: false,
            forced: None,
            seg_len: 64,
        }
    }

    /// Configuration for *directed* graphs: the bottom-up strategy pulls a
    /// vertex's level through its **out**-edges, which equals pull-by-in-
    /// edges only when the adjacency is symmetric (the paper's Graph500
    /// setting). On directed inputs bottom-up must never engage, so this
    /// preset pins `α = ∞` (top-down only).
    pub fn directed() -> Self {
        Self {
            alpha: f64::INFINITY,
            ..Self::optimized_amd()
        }
    }

    /// Force one strategy at every level.
    pub fn forced(strategy: Strategy) -> Self {
        Self {
            forced: Some(strategy),
            ..Self::optimized_amd()
        }
    }

    /// Number of device streams this configuration requires.
    pub fn required_streams(&self) -> usize {
        if self.multi_stream {
            3
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_defaults_match_paper() {
        let c = XbfsConfig::default();
        assert_eq!(c.alpha, 0.1);
        assert!(!c.multi_stream);
        assert!(!c.balancing_bottom_up);
        assert!(c.nfg && c.proactive);
        assert_eq!(c.required_streams(), 1);
    }

    #[test]
    fn naive_port_keeps_cuda_era_choices() {
        let c = XbfsConfig::naive_port();
        assert!(c.multi_stream);
        assert!(c.balancing_bottom_up);
        assert_eq!(c.required_streams(), 3);
    }

    #[test]
    fn forced_builder() {
        let c = XbfsConfig::forced(Strategy::BottomUp);
        assert_eq!(c.forced, Some(Strategy::BottomUp));
    }
}
