//! Graph residing in (simulated) device memory.
//!
//! Mirrors the XBFS device layout: 8-byte row offsets (`beg_pos`), 4-byte
//! adjacency (`csr`), plus a precomputed 4-byte degree array that XBFS keeps
//! to avoid loading two offsets per vertex in expansion kernels.

use gcd_sim::{BufU32, BufU64, Device};
use xbfs_graph::Csr;

/// A CSR graph uploaded to the device.
pub struct DeviceGraph {
    /// Row offsets, `|V| + 1` entries of 8 bytes.
    pub offsets: BufU64,
    /// Adjacency, `|M|` entries of 4 bytes.
    pub adjacency: BufU32,
    /// Out-degrees, `|V|` entries of 4 bytes.
    pub degrees: BufU32,
    num_vertices: usize,
    num_edges: usize,
}

impl DeviceGraph {
    /// Upload `g` (untimed — the paper's measured window starts after the
    /// graph is resident, matching its n-to-n protocol). Buffers come from
    /// the device pool: re-uploading an identically shaped graph after a
    /// [`DeviceGraph::release_to_pool`] reuses the same device addresses,
    /// which keeps modeled timings bit-identical across engine rebuilds.
    pub fn upload(device: &Device, g: &Csr) -> Self {
        let degrees: Vec<u32> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        let offsets = device.pool_acquire_u64(g.offsets().len());
        offsets.host_write(g.offsets());
        let adjacency = device.pool_acquire_u32(g.adjacency().len());
        adjacency.host_write(g.adjacency());
        let degree_buf = device.pool_acquire_u32(degrees.len());
        degree_buf.host_write(&degrees);
        Self {
            offsets,
            adjacency,
            degrees: degree_buf,
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
        }
    }

    /// Park the graph's buffers in the device pool, in reverse upload
    /// order so the pool's LIFO free lists hand each one back to the same
    /// role on the next upload. Call after releasing any state acquired
    /// later than the upload (see `BfsState::release_to_pool`).
    pub fn release_to_pool(&mut self, device: &Device) {
        device.pool_release_u32(std::mem::replace(&mut self.degrees, BufU32::placeholder()));
        device.pool_release_u32(std::mem::replace(
            &mut self.adjacency,
            BufU32::placeholder(),
        ));
        device.pool_release_u64(std::mem::replace(&mut self.offsets, BufU64::placeholder()));
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::generators::erdos_renyi;

    #[test]
    fn upload_preserves_structure() {
        let g = erdos_renyi(128, 400, 3);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        assert_eq!(dg.num_vertices(), 128);
        assert_eq!(dg.num_edges(), g.num_edges());
        assert_eq!(dg.offsets.to_host(), g.offsets());
        assert_eq!(dg.adjacency.to_host(), g.adjacency());
        let deg = dg.degrees.to_host();
        for v in 0..128u32 {
            assert_eq!(deg[v as usize], g.degree(v));
        }
    }
}
