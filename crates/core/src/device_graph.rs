//! Graph residing in (simulated) device memory.
//!
//! Mirrors the XBFS device layout: 8-byte row offsets (`beg_pos`), 4-byte
//! adjacency (`csr`), plus a precomputed 4-byte degree array that XBFS keeps
//! to avoid loading two offsets per vertex in expansion kernels.

use gcd_sim::{BufU32, BufU64, Device};
use xbfs_graph::Csr;

/// A CSR graph uploaded to the device.
pub struct DeviceGraph {
    /// Row offsets, `|V| + 1` entries of 8 bytes.
    pub offsets: BufU64,
    /// Adjacency, `|M|` entries of 4 bytes.
    pub adjacency: BufU32,
    /// Out-degrees, `|V|` entries of 4 bytes.
    pub degrees: BufU32,
    num_vertices: usize,
    num_edges: usize,
}

impl DeviceGraph {
    /// Upload `g` (untimed — the paper's measured window starts after the
    /// graph is resident, matching its n-to-n protocol).
    pub fn upload(device: &Device, g: &Csr) -> Self {
        let degrees: Vec<u32> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        Self {
            offsets: device.upload_u64(g.offsets()),
            adjacency: device.upload_u32(g.adjacency()),
            degrees: device.upload_u32(&degrees),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::generators::erdos_renyi;

    #[test]
    fn upload_preserves_structure() {
        let g = erdos_renyi(128, 400, 3);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        assert_eq!(dg.num_vertices(), 128);
        assert_eq!(dg.num_edges(), g.num_edges());
        assert_eq!(dg.offsets.to_host(), g.offsets());
        assert_eq!(dg.adjacency.to_host(), g.adjacency());
        let deg = dg.degrees.to_host();
        for v in 0..128u32 {
            assert_eq!(deg[v as usize], g.degree(v));
        }
    }
}
