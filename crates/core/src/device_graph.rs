//! Graph residing in (simulated) device memory.
//!
//! Mirrors the XBFS device layout: 8-byte row offsets (`beg_pos`), 4-byte
//! adjacency (`csr`), plus a precomputed 4-byte degree array that XBFS keeps
//! to avoid loading two offsets per vertex in expansion kernels.

use crate::integrity::IntegrityError;
use gcd_sim::{fnv1a, BufU32, BufU64, Device};
use xbfs_graph::Csr;

/// A CSR graph uploaded to the device.
pub struct DeviceGraph {
    /// Row offsets, `|V| + 1` entries of 8 bytes.
    pub offsets: BufU64,
    /// Adjacency, `|M|` entries of 4 bytes.
    pub adjacency: BufU32,
    /// Out-degrees, `|V|` entries of 4 bytes.
    pub degrees: BufU32,
    num_vertices: usize,
    num_edges: usize,
    /// FNV-1a digest of the topology at upload time; [`DeviceGraph::verify`]
    /// re-derives it from device memory to detect in-place corruption.
    checksum: u64,
}

/// Digest the full topology (shape first, then every word). The per-word
/// FNV-1a mix is bijective, so any single-word corruption in offsets,
/// adjacency, or degrees always changes the digest.
fn csr_digest(
    num_vertices: usize,
    num_edges: usize,
    offsets: impl Iterator<Item = u64>,
    adjacency: impl Iterator<Item = u32>,
    degrees: impl Iterator<Item = u32>,
) -> u64 {
    fnv1a(
        [num_vertices as u64, num_edges as u64]
            .into_iter()
            .chain(offsets)
            .chain(adjacency.map(u64::from))
            .chain(degrees.map(u64::from)),
    )
}

impl DeviceGraph {
    /// Upload `g` (untimed — the paper's measured window starts after the
    /// graph is resident, matching its n-to-n protocol). Buffers come from
    /// the device pool: re-uploading an identically shaped graph after a
    /// [`DeviceGraph::release_to_pool`] reuses the same device addresses,
    /// which keeps modeled timings bit-identical across engine rebuilds.
    pub fn upload(device: &Device, g: &Csr) -> Self {
        let degrees: Vec<u32> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        let offsets = device.pool_acquire_u64(g.offsets().len());
        offsets.host_write(g.offsets());
        let adjacency = device.pool_acquire_u32(g.adjacency().len());
        adjacency.host_write(g.adjacency());
        let degree_buf = device.pool_acquire_u32(degrees.len());
        degree_buf.host_write(&degrees);
        let checksum = csr_digest(
            g.num_vertices(),
            g.num_edges(),
            g.offsets().iter().copied(),
            g.adjacency().iter().copied(),
            degrees.iter().copied(),
        );
        Self {
            offsets,
            adjacency,
            degrees: degree_buf,
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            checksum,
        }
    }

    /// The topology digest recorded at upload.
    #[inline]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Re-derive the topology digest from device memory and compare it to
    /// the upload-time record — an O(|V| + |E|) sweep that detects any
    /// single-word corruption of the resident CSR.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let actual = csr_digest(
            self.num_vertices,
            self.num_edges,
            (0..self.offsets.len()).map(|i| self.offsets.load(i)),
            (0..self.adjacency.len()).map(|i| self.adjacency.load(i)),
            (0..self.degrees.len()).map(|i| self.degrees.load(i)),
        );
        if actual == self.checksum {
            Ok(())
        } else {
            Err(IntegrityError::GraphChecksum {
                expected: self.checksum,
                actual,
            })
        }
    }

    /// Park the graph's buffers in the device pool, in reverse upload
    /// order so the pool's LIFO free lists hand each one back to the same
    /// role on the next upload. Call after releasing any state acquired
    /// later than the upload (see `BfsState::release_to_pool`).
    pub fn release_to_pool(&mut self, device: &Device) {
        device.pool_release_u32(std::mem::replace(&mut self.degrees, BufU32::placeholder()));
        device.pool_release_u32(std::mem::replace(
            &mut self.adjacency,
            BufU32::placeholder(),
        ));
        device.pool_release_u64(std::mem::replace(&mut self.offsets, BufU64::placeholder()));
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::generators::erdos_renyi;

    #[test]
    fn upload_preserves_structure() {
        let g = erdos_renyi(128, 400, 3);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        assert_eq!(dg.num_vertices(), 128);
        assert_eq!(dg.num_edges(), g.num_edges());
        assert_eq!(dg.offsets.to_host(), g.offsets());
        assert_eq!(dg.adjacency.to_host(), g.adjacency());
        let deg = dg.degrees.to_host();
        for v in 0..128u32 {
            assert_eq!(deg[v as usize], g.degree(v));
        }
    }

    #[test]
    fn verify_detects_any_single_bit_flip() {
        let g = erdos_renyi(64, 200, 7);
        let dev = Device::mi250x();
        let dg = DeviceGraph::upload(&dev, &g);
        assert!(dg.verify().is_ok());
        // Flip one bit in each region; every flip must change the digest.
        dg.adjacency.store(5, dg.adjacency.load(5) ^ (1 << 13));
        assert!(dg.verify().is_err());
        dg.adjacency.store(5, dg.adjacency.load(5) ^ (1 << 13));
        dg.offsets.store(10, dg.offsets.load(10) ^ (1 << 40));
        assert!(dg.verify().is_err());
        dg.offsets.store(10, dg.offsets.load(10) ^ (1 << 40));
        dg.degrees.store(0, dg.degrees.load(0) ^ 1);
        assert!(dg.verify().is_err());
        dg.degrees.store(0, dg.degrees.load(0) ^ 1);
        assert!(dg.verify().is_ok(), "restored graph verifies again");
    }
}
