//! Circuit breaker for the serving layer.
//!
//! Consecutive *uncorrected* failures (a request that exhausted its
//! quarantine-and-replay retries) trip the breaker. While open, BFS
//! requests are rejected immediately with a backoff hint — burning a
//! worker rebuild per request on a substrate that keeps failing helps
//! nobody. After a cooldown the breaker goes half-open: one probe request
//! is admitted; success closes the breaker, failure re-opens it for
//! another cooldown.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { since: Instant },
    HalfOpen { probe_out: bool },
}

struct Inner {
    state: State,
    consecutive_failures: u32,
    trips: u64,
    fast_rejects: u64,
    /// State-kind changes (closed/open/half-open), any direction.
    transitions: u64,
}

impl Inner {
    /// Change state, counting it as a transition when the state *kind*
    /// changes (probe_out toggles within half-open don't count).
    fn set_state(&mut self, next: State) {
        let changed = !matches!(
            (self.state, next),
            (State::Closed, State::Closed)
                | (State::Open { .. }, State::Open { .. })
                | (State::HalfOpen { .. }, State::HalfOpen { .. })
        );
        if changed {
            self.transitions += 1;
        }
        self.state = next;
    }
}

/// Trip-after-N-consecutive-failures breaker with cooldown + half-open
/// probing. All methods are O(1) under one small mutex.
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// Trips after `threshold` consecutive failures; stays open for
    /// `cooldown_ms` before letting a probe through.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                state: State::Closed,
                consecutive_failures: 0,
                trips: 0,
                fast_rejects: 0,
                transitions: 0,
            }),
            threshold: threshold.max(1),
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// May this request proceed? `Err(retry_after_ms)` means reject fast.
    pub fn admit(&self) -> Result<(), u64> {
        let mut g = self.lock();
        match g.state {
            State::Closed => Ok(()),
            State::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    g.set_state(State::HalfOpen { probe_out: true });
                    Ok(()) // this caller is the probe
                } else {
                    g.fast_rejects += 1;
                    let left = self.cooldown - elapsed;
                    Err((left.as_millis() as u64).max(1))
                }
            }
            State::HalfOpen { probe_out: false } => {
                g.set_state(State::HalfOpen { probe_out: true });
                Ok(())
            }
            State::HalfOpen { probe_out: true } => {
                g.fast_rejects += 1;
                Err((self.cooldown.as_millis() as u64).max(1))
            }
        }
    }

    /// Report a request that ended well (certified, or cleanly typed).
    pub fn record_success(&self) {
        let mut g = self.lock();
        g.consecutive_failures = 0;
        g.set_state(State::Closed);
    }

    /// Report a request that exhausted its retries. Returns `true` when
    /// this failure tripped the breaker open.
    pub fn record_failure(&self) -> bool {
        let mut g = self.lock();
        g.consecutive_failures += 1;
        let should_trip = match g.state {
            State::Closed => g.consecutive_failures >= self.threshold,
            // A failed half-open probe re-opens immediately.
            State::HalfOpen { .. } => true,
            State::Open { .. } => false,
        };
        if should_trip {
            g.set_state(State::Open {
                since: Instant::now(),
            });
            g.trips += 1;
        }
        should_trip
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    /// Requests rejected fast while the breaker was open.
    pub fn fast_rejects(&self) -> u64 {
        self.lock().fast_rejects
    }

    /// Is the breaker currently rejecting (open and still cooling down)?
    pub fn is_open(&self) -> bool {
        let g = self.lock();
        matches!(g.state, State::Open { since } if since.elapsed() < self.cooldown)
    }

    /// Current state as a stable gauge code: 0 = closed, 1 = half-open,
    /// 2 = open.
    pub fn state_code(&self) -> u8 {
        match self.lock().state {
            State::Closed => 0,
            State::HalfOpen { .. } => 1,
            State::Open { .. } => 2,
        }
    }

    /// State-kind changes since creation (closed ↔ open ↔ half-open in
    /// any direction) — the live-plane transition counter.
    pub fn transitions(&self) -> u64 {
        self.lock().transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_rejects_fast() {
        let b = CircuitBreaker::new(3, 10_000);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure());
        assert_eq!(b.trips(), 1);
        assert!(b.admit().is_err());
        assert!(b.fast_rejects() >= 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(2, 10_000);
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure(), "streak must restart after success");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(1, 0); // cooldown elapses immediately
        assert!(b.record_failure());
        assert!(b.admit().is_ok(), "post-cooldown admit is the probe");
        b.record_success();
        assert!(b.admit().is_ok());
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, 0);
        b.record_failure();
        assert!(b.admit().is_ok());
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn state_codes_and_transitions_track_the_lifecycle() {
        let b = CircuitBreaker::new(1, 0);
        assert_eq!(b.state_code(), 0);
        assert_eq!(b.transitions(), 0);
        assert!(b.record_failure()); // closed -> open
        assert_eq!(b.state_code(), 2);
        assert_eq!(b.transitions(), 1);
        assert!(b.admit().is_ok()); // open -> half-open (probe)
        assert_eq!(b.state_code(), 1);
        assert_eq!(b.transitions(), 2);
        b.record_success(); // half-open -> closed
        assert_eq!(b.state_code(), 0);
        assert_eq!(b.transitions(), 3);
        // Redundant success: no state-kind change, no transition.
        b.record_success();
        assert_eq!(b.transitions(), 3);
    }
}
