//! `xbfs top` — a live terminal dashboard over the metrics plane.
//!
//! Polls a running server with the wire `metrics` op, parses the
//! `xbfs-metrics-v1` snapshot it returns, and renders one frame per poll:
//! queue / worker / breaker / pool / rank state, with per-second rates
//! computed from *successive* snapshots (so the dashboard shows current
//! throughput, not lifetime averages). Parsing and rendering are pure
//! functions over [`TopSnapshot`] — the socket loop in [`run_top`] is the
//! only I/O — so frames are unit-testable without a server.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use xbfs_telemetry::json::JsonValue;
use xbfs_telemetry::names::live;

/// One scrape, reduced to flat lookup tables keyed by
/// `name{label=value,…}` (labels in snapshot order, which the registry
/// keeps sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopSnapshot {
    /// Milliseconds since the server's registry was created — the time
    /// base for rate computation between successive snapshots.
    pub uptime_ms: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// `(count, sum, p50, p99)` per histogram series.
    hists: BTreeMap<String, (u64, f64, f64, f64)>,
}

fn series_key(name: &str, labels: &JsonValue) -> String {
    let mut key = String::from(name);
    key.push('{');
    if let Some(obj) = labels.as_obj() {
        for (i, (k, v)) in obj.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v.as_str().unwrap_or(""));
        }
    }
    key.push('}');
    key
}

impl TopSnapshot {
    /// Parse a decoded `xbfs-metrics-v1` object (the value under
    /// `"metrics"` in a `metrics` response, or a whole `/metrics.json`
    /// body). Returns `None` when the format marker is wrong.
    pub fn parse(v: &JsonValue) -> Option<TopSnapshot> {
        if v.get("format").and_then(|f| f.as_str()) != Some("xbfs-metrics-v1") {
            return None;
        }
        let mut snap = TopSnapshot {
            uptime_ms: v.get("uptime_ms").and_then(|u| u.as_f64()).unwrap_or(0.0),
            ..TopSnapshot::default()
        };
        let empty = JsonValue::parse("{}").ok()?;
        for s in v.get("series").and_then(|s| s.as_arr()).unwrap_or(&[]) {
            let name = s.get("name").and_then(|n| n.as_str()).unwrap_or("");
            let key = series_key(name, s.get("labels").unwrap_or(&empty));
            match s.get("kind").and_then(|k| k.as_str()) {
                Some("counter") => {
                    let v = s.get("value").and_then(|x| x.as_f64()).unwrap_or(0.0);
                    snap.counters.insert(key, v as u64);
                }
                Some("gauge") => {
                    let v = s.get("value").and_then(|x| x.as_f64()).unwrap_or(0.0);
                    snap.gauges.insert(key, v);
                }
                Some("histogram") => {
                    let f = |k: &str| s.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
                    snap.hists
                        .insert(key, (f("count") as u64, f("sum"), f("p50"), f("p99")));
                }
                _ => {}
            }
        }
        Some(snap)
    }

    /// Counter value for exact labels (sorted order), 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let mut key = String::from(name);
        key.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key.push('}');
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Sum of a counter family across all label sets.
    pub fn counter_family(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.counters
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Gauge value for exact labels, `None` when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut key = String::from(name);
        key.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key.push('}');
        self.gauges.get(&key).copied()
    }

    /// `(count, sum, p50, p99)` for a histogram series, `None` if absent.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, f64, f64, f64)> {
        let mut key = String::from(name);
        key.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key.push('}');
        self.hists.get(&key).copied()
    }

    /// `(worker_index, state_code)` for every worker-state gauge.
    pub fn worker_states(&self) -> Vec<(usize, f64)> {
        let prefix = format!("{}{{worker=", live::WORKER_STATE);
        let mut out: Vec<(usize, f64)> = self
            .gauges
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .filter_map(|(k, v)| {
                let idx: usize = k[prefix.len()..].trim_end_matches('}').parse().ok()?;
                Some((idx, *v))
            })
            .collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Per-second rate of a counter between two snapshots ("" when no
/// previous snapshot or no time elapsed).
fn rate(prev: Option<&TopSnapshot>, curr: &TopSnapshot, now_v: u64, prev_v: u64) -> String {
    let Some(p) = prev else {
        return String::new();
    };
    let dt = (curr.uptime_ms - p.uptime_ms) / 1000.0;
    if dt <= 0.0 {
        return String::new();
    }
    format!(" (+{:.1}/s)", (now_v.saturating_sub(prev_v)) as f64 / dt)
}

fn state_name(code: f64) -> &'static str {
    match code as i64 {
        0 => "idle",
        1 => "running",
        2 => "quarantined",
        _ => "?",
    }
}

fn breaker_name(code: f64) -> &'static str {
    match code as i64 {
        0 => "closed",
        1 => "half-open",
        2 => "open",
        _ => "?",
    }
}

/// Render one dashboard frame. `prev` (the previous poll) turns lifetime
/// counters into current rates; the first frame shows totals only.
pub fn render(prev: Option<&TopSnapshot>, curr: &TopSnapshot, addr: &str) -> String {
    let c = |name: &str, labels: &[(&str, &str)]| curr.counter(name, labels);
    let pc = |name: &str, labels: &[(&str, &str)]| prev.map_or(0, |p| p.counter(name, labels));
    let mut out = String::new();

    out.push_str(&format!(
        "xbfs top — {addr}   uptime {:.1}s\n",
        curr.uptime_ms / 1000.0
    ));

    let ok = c(live::REQUESTS_TOTAL, &[("status", "ok")]);
    let to = c(live::REQUESTS_TOTAL, &[("status", "timeout")]);
    let er = c(live::REQUESTS_TOTAL, &[("status", "error")]);
    let (_, _, p50, p99) = curr
        .hist(live::REQUEST_LATENCY_MS, &[("status", "ok")])
        .unwrap_or((0, 0.0, 0.0, 0.0));
    out.push_str(&format!(
        "requests   ok {ok}{}  timeout {to}  error {er}   p50 {p50:.2}ms  p99 {p99:.2}ms\n",
        rate(
            prev,
            curr,
            ok,
            pc(live::REQUESTS_TOTAL, &[("status", "ok")])
        )
    ));

    let depth = curr.gauge(live::QUEUE_DEPTH, &[]).unwrap_or(0.0);
    let adm = c(live::ADMITTED_TOTAL, &[]);
    let shed_q = c(live::SHED_TOTAL, &[("reason", "queue")]);
    let shed_b = c(live::SHED_TOTAL, &[("reason", "breaker")]);
    out.push_str(&format!(
        "admission  depth {depth:.0}  admitted {adm}{}  shed queue={shed_q} breaker={shed_b}  \
         draining {}  deduped {}\n",
        rate(prev, curr, adm, pc(live::ADMITTED_TOTAL, &[])),
        c(live::REJECTED_DRAINING_TOTAL, &[]),
        c(live::DEDUPED_TOTAL, &[]),
    ));

    let bstate = curr.gauge(live::BREAKER_STATE, &[]).unwrap_or(0.0);
    out.push_str(&format!(
        "breaker    {}  transitions {}  trips {}\n",
        breaker_name(bstate),
        c(live::BREAKER_TRANSITIONS_TOTAL, &[]),
        c(live::BREAKER_TRIPS_TOTAL, &[]),
    ));

    out.push_str("workers   ");
    for (idx, code) in curr.worker_states() {
        out.push_str(&format!(" w{idx}={}", state_name(code)));
    }
    out.push_str(&format!(
        "  panics {}  rebuilds {}\n",
        curr.counter_family(live::WORKER_PANICS_TOTAL),
        curr.counter_family(live::WORKER_REBUILDS_TOTAL),
    ));

    let pool_bytes: f64 = {
        let prefix = format!("{}{{", live::POOL_BYTES);
        curr.gauges
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    };
    out.push_str(&format!(
        "pool       bytes {}  hits {}  misses {}  pressure {}\n",
        fmt_bytes(pool_bytes),
        curr.counter_family(live::POOL_HITS_TOTAL),
        curr.counter_family(live::POOL_MISSES_TOTAL),
        curr.counter_family(live::POOL_PRESSURE_TOTAL),
    ));

    // Batching stage: only rendered once a batch has actually launched,
    // so solo (--batch-width 1) servers keep the familiar frame layout.
    let batches = c(live::BATCHES_TOTAL, &[]);
    if batches > 0 {
        let (_, bsum, bp50, _) = curr
            .hist(live::BATCH_SIZE, &[])
            .unwrap_or((0, 0.0, 0.0, 0.0));
        let occ = curr.gauge(live::BATCH_OCCUPANCY_PCT, &[]).unwrap_or(0.0);
        let (_, _, lp50, lp99) = curr
            .hist(live::LINGER_WAIT_MS, &[])
            .unwrap_or((0, 0.0, 0.0, 0.0));
        out.push_str(&format!(
            "batching   batches {batches}{}  mean size {:.1} (p50 {bp50:.0})  \
             occupancy {occ:.0}%  linger p50 {lp50:.2}ms p99 {lp99:.2}ms\n",
            rate(prev, curr, batches, pc(live::BATCHES_TOTAL, &[])),
            bsum / batches.max(1) as f64,
        ));
    }

    let crashes = curr.counter_family(live::RANK_CRASHES_TOTAL);
    let restores = curr.counter_family(live::RANK_RESTORES_TOTAL);
    let retx = curr.counter_family(live::RANK_RETRANSMITTED_BYTES_TOTAL);
    let exp = c(live::CLUSTER_EXPAND_US_TOTAL, &[]);
    let exch = c(live::CLUSTER_EXCHANGE_US_TOTAL, &[]);
    if crashes + restores + retx + exp + exch > 0 {
        let total = (exp + exch).max(1) as f64;
        out.push_str(&format!(
            "cluster    crashes {crashes}  restores {restores}  retx {}  \
             expand {:.0}% exchange {:.0}%\n",
            fmt_bytes(retx as f64),
            exp as f64 / total * 100.0,
            exch as f64 / total * 100.0,
        ));
    }

    // Durability stage: only rendered when a journal is in play (an
    // append this life, or a replay from a previous one), so unjournaled
    // servers keep the familiar frame layout.
    let j_appends = c(live::JOURNAL_APPENDS_TOTAL, &[]);
    let replayed = c(live::REPLAYED_REQUESTS_TOTAL, &[]);
    if j_appends + replayed > 0 {
        out.push_str(&format!(
            "journal    appends {j_appends}{}  fsyncs {}  bytes {}  \
             replayed {replayed}  recovery {:.1}ms\n",
            rate(prev, curr, j_appends, pc(live::JOURNAL_APPENDS_TOTAL, &[])),
            c(live::JOURNAL_FSYNCS_TOTAL, &[]),
            fmt_bytes(c(live::JOURNAL_BYTES_TOTAL, &[]) as f64),
            curr.gauge(live::RECOVERY_MS, &[]).unwrap_or(0.0),
        ));
    }

    out.push_str(&format!(
        "flight     dumps {}\n",
        c(live::FLIGHT_DUMPS_TOTAL, &[])
    ));
    out
}

/// Poll `addr` every `interval` and print one frame per poll to `out`
/// (at most `frames` frames; `None` = until the connection closes).
/// Returns the number of frames rendered.
pub fn run_top(
    addr: &str,
    interval: Duration,
    frames: Option<u64>,
    out: &mut dyn Write,
) -> std::io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut prev: Option<TopSnapshot> = None;
    let mut rendered = 0u64;
    let mut line = String::new();
    loop {
        if frames.is_some_and(|f| rendered >= f) {
            return Ok(rendered);
        }
        writeln!(
            writer,
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"metrics\",\"id\":{rendered}}}"
        )?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(rendered); // server drained away
        }
        let snap = JsonValue::parse(line.trim())
            .ok()
            .and_then(|v| v.get("metrics").and_then(TopSnapshot::parse));
        let Some(snap) = snap else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response did not carry an xbfs-metrics-v1 snapshot",
            ));
        };
        rendered += 1;
        write!(out, "{}", render(prev.as_ref(), &snap, addr))?;
        out.flush()?;
        prev = Some(snap);
        if frames.is_some_and(|f| rendered >= f) {
            return Ok(rendered);
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(uptime_ms: f64, ok: u64) -> TopSnapshot {
        let json = format!(
            "{{\"format\":\"xbfs-metrics-v1\",\"uptime_ms\":{uptime_ms},\"series\":[\
             {{\"name\":\"serve.requests_total\",\"labels\":{{\"status\":\"ok\"}},\
              \"unit\":\"count\",\"kind\":\"counter\",\"value\":{ok}}},\
             {{\"name\":\"serve.queue_depth\",\"labels\":{{}},\
              \"unit\":\"count\",\"kind\":\"gauge\",\"value\":3}},\
             {{\"name\":\"worker.state\",\"labels\":{{\"worker\":\"0\"}},\
              \"unit\":\"state\",\"kind\":\"gauge\",\"value\":1}},\
             {{\"name\":\"worker.state\",\"labels\":{{\"worker\":\"1\"}},\
              \"unit\":\"state\",\"kind\":\"gauge\",\"value\":2}},\
             {{\"name\":\"serve.request_latency_ms\",\"labels\":{{\"status\":\"ok\"}},\
              \"unit\":\"ms\",\"kind\":\"histogram\",\"count\":{ok},\"sum\":12.0,\
              \"p50\":1.5,\"p99\":9.75,\"buckets\":[[100,{ok}]]}}]}}"
        );
        TopSnapshot::parse(&JsonValue::parse(&json).unwrap()).unwrap()
    }

    #[test]
    fn parse_reduces_series_to_lookups() {
        let s = snap(2000.0, 40);
        assert_eq!(s.counter("serve.requests_total", &[("status", "ok")]), 40);
        assert_eq!(s.counter_family("serve.requests_total"), 40);
        assert_eq!(s.gauge("serve.queue_depth", &[]), Some(3.0));
        assert_eq!(s.worker_states(), vec![(0, 1.0), (1, 2.0)]);
        let (count, sum, p50, p99) = s
            .hist("serve.request_latency_ms", &[("status", "ok")])
            .unwrap();
        assert_eq!(count, 40);
        assert!((sum - 12.0).abs() < 1e-9);
        assert!((p50 - 1.5).abs() < 1e-9 && (p99 - 9.75).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_wrong_format() {
        let v = JsonValue::parse("{\"format\":\"nope\",\"series\":[]}").unwrap();
        assert!(TopSnapshot::parse(&v).is_none());
    }

    #[test]
    fn render_computes_rates_from_successive_snapshots() {
        let a = snap(1000.0, 10);
        let b = snap(3000.0, 50);
        let frame = render(Some(&a), &b, "test:0");
        // 40 more oks over 2 s = +20.0/s.
        assert!(frame.contains("ok 50 (+20.0/s)"), "frame:\n{frame}");
        assert!(frame.contains("w0=running"), "frame:\n{frame}");
        assert!(frame.contains("w1=quarantined"), "frame:\n{frame}");
        assert!(frame.contains("p99 9.75ms"), "frame:\n{frame}");
    }

    #[test]
    fn first_frame_has_totals_but_no_rates() {
        let b = snap(3000.0, 50);
        let frame = render(None, &b, "test:0");
        assert!(frame.contains("ok 50 "), "frame:\n{frame}");
        assert!(!frame.contains("/s)"), "frame:\n{frame}");
        // Solo servers never launch a batch, so the batching row is absent.
        assert!(!frame.contains("batching"), "frame:\n{frame}");
    }

    #[test]
    fn journal_row_appears_once_journaling_is_live() {
        let json = "{\"format\":\"xbfs-metrics-v1\",\"uptime_ms\":1000,\"series\":[\
             {\"name\":\"serve.journal_appends_total\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"counter\",\"value\":12},\
             {\"name\":\"serve.journal_fsyncs_total\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"counter\",\"value\":2},\
             {\"name\":\"serve.journal_bytes_total\",\"labels\":{},\
              \"unit\":\"bytes\",\"kind\":\"counter\",\"value\":2048},\
             {\"name\":\"serve.replayed_requests_total\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"counter\",\"value\":3},\
             {\"name\":\"serve.recovery_ms\",\"labels\":{},\
              \"unit\":\"ms\",\"kind\":\"gauge\",\"value\":7.5}]}";
        let s = TopSnapshot::parse(&JsonValue::parse(json).unwrap()).unwrap();
        let frame = render(None, &s, "test:0");
        assert!(frame.contains("journal    appends 12"), "frame:\n{frame}");
        assert!(frame.contains("fsyncs 2"), "frame:\n{frame}");
        assert!(frame.contains("bytes 2.0KB"), "frame:\n{frame}");
        assert!(frame.contains("replayed 3"), "frame:\n{frame}");
        assert!(frame.contains("recovery 7.5ms"), "frame:\n{frame}");
        // Unjournaled frames keep the familiar layout.
        let bare = render(None, &snap(1000.0, 1), "test:0");
        assert!(!bare.contains("journal"), "frame:\n{bare}");
    }

    #[test]
    fn batching_row_appears_once_batches_launch() {
        let json = "{\"format\":\"xbfs-metrics-v1\",\"uptime_ms\":1000,\"series\":[\
             {\"name\":\"serve.batches_total\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"counter\",\"value\":4},\
             {\"name\":\"serve.batch_size\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"histogram\",\"count\":4,\"sum\":20.0,\
              \"p50\":5.0,\"p99\":8.0,\"buckets\":[[8,4]]},\
             {\"name\":\"serve.batch_occupancy_pct\",\"labels\":{},\
              \"unit\":\"count\",\"kind\":\"gauge\",\"value\":75},\
             {\"name\":\"serve.linger_wait_ms\",\"labels\":{},\
              \"unit\":\"ms\",\"kind\":\"histogram\",\"count\":4,\"sum\":4.0,\
              \"p50\":0.5,\"p99\":1.75,\"buckets\":[[2,4]]}]}";
        let s = TopSnapshot::parse(&JsonValue::parse(json).unwrap()).unwrap();
        let frame = render(None, &s, "test:0");
        assert!(frame.contains("batching   batches 4"), "frame:\n{frame}");
        assert!(frame.contains("mean size 5.0"), "frame:\n{frame}");
        assert!(frame.contains("occupancy 75%"), "frame:\n{frame}");
        assert!(
            frame.contains("linger p50 0.50ms p99 1.75ms"),
            "frame:\n{frame}"
        );
    }
}
