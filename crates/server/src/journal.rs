//! Write-ahead request journal: the durability layer that lets a served
//! workload survive the *process* dying.
//!
//! Every robustness layer below this one heals inside a living server —
//! quarantined workers, checkpointed rank crashes, certified re-runs. A
//! SIGKILL defeats them all: every admitted-but-unanswered request simply
//! vanishes. The journal closes that gap with the classic write-ahead
//! contract:
//!
//! - an **admit record** is appended when a request is accepted by the
//!   admission queue (id, source, deadline budget, opts), *before* any
//!   work happens;
//! - a **completion record** is appended when the terminal response is
//!   produced (id, status, result digest, and — for cacheable `ok`
//!   responses — the verbatim response line), *before* it is delivered.
//!
//! On restart the journal is replayed: completion records warm-start the
//! [`DedupCache`](crate::dedup::DedupCache) so reconnecting clients that
//! resend completed ids are answered `"deduped":true` without
//! recomputation, and every admit without a matching completion is
//! re-enqueued ahead of new traffic. Replay is torn-tail-tolerant: each
//! record is CRC32-framed, and a truncated or corrupt *trailing* record —
//! the only kind a crash mid-append can produce — is discarded, never
//! panicked on. The recovered prefix is exactly the longest valid record
//! sequence, which the torn-journal property test asserts for every
//! possible truncation offset.
//!
//! ## Framing
//!
//! ```text
//! file   := header record*
//! header := "xbfs-journal-v1\n"                      (16 bytes)
//! record := len:u32le crc:u32le payload[len]          (crc = CRC32(payload))
//! ```
//!
//! Payloads are single-line JSON objects (the workspace's std-only JSON),
//! so a journal is greppable with standard tools despite the binary
//! framing: `{"t":"a",...}` admits, `{"t":"d",...}` completions.
//!
//! ## Fsync policies and their loss windows
//!
//! `--journal-fsync` picks how often appends reach stable storage:
//!
//! - `always` — fsync after every record. Loss window: nothing (a machine
//!   crash loses at most the record being written, which the CRC frame
//!   discards on replay).
//! - `batch=N` — fsync after every N unsynced records. Loss window: up to
//!   N−1 admits/completions on a *machine* crash; a mere process SIGKILL
//!   loses nothing (the OS page cache survives the process).
//! - `off` — never fsync explicitly. Loss window: whatever the OS has not
//!   written back; still SIGKILL-safe for the same reason.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use xbfs_spec::{tokenize, SpecError, Token};
use xbfs_telemetry::json::{escape, JsonValue};

use crate::protocol::BfsRequest;

/// File magic + format version. A journal that does not start with this
/// is not ours and replay treats it as empty rather than guessing.
pub const HEADER: &[u8; 16] = b"xbfs-journal-v1\n";

/// Per-record frame overhead: 4-byte LE payload length + 4-byte LE CRC32.
pub const FRAME_BYTES: usize = 8;

/// Sanity bound on a single payload. A frame length beyond this is
/// corruption (or not a journal), not a real record.
const MAX_PAYLOAD: u32 = 1 << 20;

// IEEE CRC-32 (the zlib/gzip polynomial), table-driven, std-only.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum in every record frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// How often journal appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record (no loss window, slowest).
    Always,
    /// fsync once per N unsynced records (loss window ≤ N−1 records on a
    /// machine crash; process kills lose nothing).
    Batch(u32),
    /// Never fsync explicitly; the OS writes back on its own schedule.
    Off,
}

impl FsyncPolicy {
    /// Parse a `--journal-fsync` spec with the workspace spec grammar:
    /// `always` | `off` | `batch=N` (also accepted as `batch:N`, and bare
    /// `batch` defaults to 8).
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let mut out = None;
        for tok in tokenize(spec) {
            let policy = match tok {
                Token::Assign {
                    key: "batch",
                    value,
                    ..
                } => FsyncPolicy::Batch(tok.num("batch", value)?),
                Token::Assign { .. } => {
                    return Err(tok.err("unknown fsync setting (try always, batch=N, or off)"))
                }
                Token::Item {
                    kind: "always",
                    at: None,
                    arg: None,
                    ..
                } => FsyncPolicy::Always,
                Token::Item {
                    kind: "off",
                    at: None,
                    arg: None,
                    ..
                } => FsyncPolicy::Off,
                Token::Item { kind: "batch", .. } => FsyncPolicy::Batch(tok.arg_count(8)?),
                Token::Item { .. } => {
                    return Err(tok.err("unknown fsync policy (try always, batch=N, or off)"))
                }
            };
            if let FsyncPolicy::Batch(0) = policy {
                return Err(tok.err("batch size must be at least 1"));
            }
            if out.is_some() {
                return Err(tok.err("fsync policy takes a single token"));
            }
            out = Some(policy);
        }
        out.ok_or_else(|| SpecError::new(spec, "empty fsync policy (try always, batch=N, or off)"))
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch={n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A request was admitted to the queue.
    Admit(BfsRequest),
    /// A terminal response was produced for an admitted request.
    Done(DoneRecord),
}

/// A completion record: the request is finished and (when cacheable) its
/// verbatim response line rides along for dedup warm-start.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneRecord {
    /// Correlation id of the completed request.
    pub id: u64,
    /// Source vertex (part of the dedup key).
    pub source: u32,
    /// Terminal status: `ok`, `timeout`, or `error`.
    pub status: String,
    /// Result digest (`{:#018x}` hex) for `ok` responses.
    pub digest: Option<String>,
    /// The verbatim response line, present only for `ok` responses that
    /// are dedup-cacheable (i.e. chaos-free) — exactly what the warm
    /// cache should answer a replayed id with.
    pub line: Option<String>,
}

impl Record {
    /// Serialize to the single-line JSON payload that goes inside a frame.
    pub fn payload(&self) -> String {
        match self {
            Record::Admit(req) => {
                let mut s = format!("{{\"t\":\"a\",\"id\":{},\"source\":{}", req.id, req.source);
                if let Some(d) = req.deadline_ms {
                    s.push_str(&format!(",\"deadline_ms\":{d}"));
                }
                if let Some(v) = req.verify {
                    s.push_str(&format!(",\"verify\":{v}"));
                }
                if let Some(c) = &req.chaos {
                    s.push_str(&format!(",\"chaos\":{}", escape(c)));
                }
                s.push('}');
                s
            }
            Record::Done(d) => {
                let mut s = format!(
                    "{{\"t\":\"d\",\"id\":{},\"source\":{},\"status\":{}",
                    d.id,
                    d.source,
                    escape(&d.status)
                );
                if let Some(dg) = &d.digest {
                    s.push_str(&format!(",\"digest\":{}", escape(dg)));
                }
                if let Some(l) = &d.line {
                    s.push_str(&format!(",\"line\":{}", escape(l)));
                }
                s.push('}');
                s
            }
        }
    }

    /// Decode one payload. `None` means the payload is not a record this
    /// version understands — replay treats that as corruption and stops.
    pub fn decode(payload: &str) -> Option<Record> {
        let v = JsonValue::parse(payload).ok()?;
        let id = v.get("id")?.as_f64()? as u64;
        let source = v.get("source")?.as_f64()? as u32;
        match v.get("t")?.as_str()? {
            "a" => Some(Record::Admit(BfsRequest {
                id,
                source,
                deadline_ms: v.get("deadline_ms").and_then(|d| d.as_f64()),
                verify: v.get("verify").and_then(|b| b.as_bool()),
                chaos: v.get("chaos").and_then(|c| c.as_str()).map(String::from),
            })),
            "d" => Some(Record::Done(DoneRecord {
                id,
                source,
                status: v.get("status")?.as_str()?.to_string(),
                digest: v.get("digest").and_then(|d| d.as_str()).map(String::from),
                line: v.get("line").and_then(|l| l.as_str()).map(String::from),
            })),
            _ => None,
        }
    }

    /// Frame the record for appending: length + CRC + payload.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.payload();
        let bytes = payload.as_bytes();
        let mut out = Vec::with_capacity(FRAME_BYTES + bytes.len());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(bytes).to_le_bytes());
        out.extend_from_slice(bytes);
        out
    }
}

/// Everything a replay recovers from an existing journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayedJournal {
    /// Completion records, in journal order. Entries with a `line` warm
    /// the dedup cache.
    pub completed: Vec<DoneRecord>,
    /// Admitted requests with no matching completion, in admit order —
    /// these re-enter the queue ahead of new traffic.
    pub incomplete: Vec<BfsRequest>,
    /// Valid records decoded (admits + completions).
    pub records: u64,
    /// Bytes discarded past the valid prefix (torn tail).
    pub torn_bytes: u64,
    /// File offset where the valid prefix ends — the journal is truncated
    /// here before appending resumes.
    pub valid_len: u64,
}

/// Decode the longest valid record prefix of `buf`. Never panics: a
/// missing/short header yields an empty replay, and the first frame that
/// is truncated, oversized, CRC-mismatched, or undecodable ends the scan
/// with everything after it counted as torn.
pub fn replay_bytes(buf: &[u8]) -> ReplayedJournal {
    let mut out = ReplayedJournal::default();
    if buf.len() < HEADER.len() || &buf[..HEADER.len()] != HEADER {
        out.torn_bytes = buf.len() as u64;
        return out;
    }
    // Pending admits keyed like the dedup cache; order preserved so the
    // re-enqueue keeps the original admission order. A key that has ever
    // completed stays completed: admit and done records race on separate
    // threads (a fast worker can journal the completion before the
    // handler journals the admit), and a completed key must never be
    // resurrected as incomplete by a late admit.
    let mut pending: Vec<(u64, u32)> = Vec::new();
    let mut admits: HashMap<(u64, u32), BfsRequest> = HashMap::new();
    let mut done_keys: std::collections::HashSet<(u64, u32)> = std::collections::HashSet::new();
    let mut pos = HEADER.len();
    loop {
        if buf.len() - pos < FRAME_BYTES {
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break;
        }
        let body_start = pos + FRAME_BYTES;
        let Some(body_end) = body_start.checked_add(len as usize) else {
            break;
        };
        if body_end > buf.len() {
            break;
        }
        let payload = &buf[body_start..body_end];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = std::str::from_utf8(payload).ok().and_then(Record::decode) else {
            break;
        };
        match record {
            Record::Admit(req) => {
                let key = (req.id, req.source);
                // A duplicate admit (client resend that was re-executed)
                // still completes once; keep a single pending entry, and
                // never resurrect a key that already completed.
                if !done_keys.contains(&key) && admits.insert(key, req).is_none() {
                    pending.push(key);
                }
            }
            Record::Done(done) => {
                let key = (done.id, done.source);
                done_keys.insert(key);
                admits.remove(&key);
                pending.retain(|k| *k != key);
                out.completed.push(done);
            }
        }
        out.records += 1;
        pos = body_end;
    }
    out.valid_len = pos as u64;
    out.torn_bytes = (buf.len() - pos) as u64;
    out.incomplete = pending
        .into_iter()
        .filter_map(|k| admits.remove(&k))
        .collect();
    out
}

/// The append side of the journal: an open file positioned past the
/// valid prefix, an fsync policy, and lock-free counters for the metrics
/// plane. Appends serialize on one mutex — the frame write must be a
/// single contiguous `write_all` so a crash can only tear the *tail*.
pub struct Journal {
    path: PathBuf,
    policy: FsyncPolicy,
    file: Mutex<AppendState>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
}

struct AppendState {
    file: File,
    unsynced: u32,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("appends", &self.appends.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// Open (or create) the journal at `path`: replay the existing
    /// content torn-tail-tolerantly, truncate the torn tail so appends
    /// resume from a consistent prefix, and return both halves.
    pub fn open(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Journal, ReplayedJournal)> {
        let path = path.as_ref().to_path_buf();
        let existing = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replay = replay_bytes(&existing);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if replay.valid_len == 0 {
            // Fresh (or unrecognizable) journal: start a clean file.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(HEADER)?;
        } else {
            // Discard the torn tail; everything before it is intact.
            file.set_len(replay.valid_len)?;
            file.seek(SeekFrom::Start(replay.valid_len))?;
        }
        if policy != FsyncPolicy::Off {
            file.sync_data()?;
        }
        let journal = Journal {
            path,
            policy,
            file: Mutex::new(AppendState { file, unsynced: 0 }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        };
        Ok((journal, replay))
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Append an admit record for a freshly accepted request.
    pub fn append_admit(&self, req: &BfsRequest) -> std::io::Result<()> {
        self.append(&Record::Admit(req.clone()))
    }

    /// Append a completion record. `line` should be `Some` only for
    /// dedup-cacheable `ok` responses — it is what a restarted server
    /// answers a replayed id with.
    pub fn append_done(
        &self,
        id: u64,
        source: u32,
        status: &str,
        digest: Option<&str>,
        line: Option<&str>,
    ) -> std::io::Result<()> {
        self.append(&Record::Done(DoneRecord {
            id,
            source,
            status: status.to_string(),
            digest: digest.map(String::from),
            line: line.map(String::from),
        }))
    }

    /// Append one framed record and apply the fsync policy.
    pub fn append(&self, record: &Record) -> std::io::Result<()> {
        let frame = record.frame();
        let mut g = self.file.lock().unwrap_or_else(|e| e.into_inner());
        g.file.write_all(&frame)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => {
                g.file.sync_data()?;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            FsyncPolicy::Batch(n) => {
                g.unsynced += 1;
                if g.unsynced >= n {
                    g.file.sync_data()?;
                    g.unsynced = 0;
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage (drain path).
    pub fn sync(&self) -> std::io::Result<()> {
        let mut g = self.file.lock().unwrap_or_else(|e| e.into_inner());
        g.file.sync_data()?;
        g.unsynced = 0;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Records appended over this journal's life (this process only).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Explicit fsyncs issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Bytes appended (frames included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, source: u32) -> BfsRequest {
        BfsRequest {
            id,
            source,
            deadline_ms: None,
            verify: None,
            chaos: None,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xbfs-journal-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_grammar() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("batch=32").unwrap(),
            FsyncPolicy::Batch(32)
        );
        assert_eq!(
            FsyncPolicy::parse("batch:4").unwrap(),
            FsyncPolicy::Batch(4)
        );
        assert_eq!(FsyncPolicy::parse("batch").unwrap(), FsyncPolicy::Batch(8));
        for bad in ["", "sometimes", "batch=0", "batch=x", "always,off", "al@2"] {
            let e = FsyncPolicy::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad} must be rejected");
        }
        assert_eq!(FsyncPolicy::Batch(8).to_string(), "batch=8");
    }

    #[test]
    fn record_round_trip() {
        let full = BfsRequest {
            id: 42,
            source: 7,
            deadline_ms: Some(250.5),
            verify: Some(true),
            chaos: Some("panic:3".into()),
        };
        for r in [
            Record::Admit(req(1, 2)),
            Record::Admit(full),
            Record::Done(DoneRecord {
                id: 42,
                source: 7,
                status: "ok".into(),
                digest: Some("0x00ab".into()),
                line: Some("{\"id\":42,\"status\":\"ok\"}".into()),
            }),
            Record::Done(DoneRecord {
                id: 9,
                source: 1,
                status: "timeout".into(),
                digest: None,
                line: None,
            }),
        ] {
            assert_eq!(Record::decode(&r.payload()).as_ref(), Some(&r));
        }
    }

    #[test]
    fn replay_pairs_admits_with_completions() {
        let mut buf = HEADER.to_vec();
        buf.extend(Record::Admit(req(1, 10)).frame());
        buf.extend(Record::Admit(req(2, 20)).frame());
        buf.extend(
            Record::Done(DoneRecord {
                id: 1,
                source: 10,
                status: "ok".into(),
                digest: Some("0x1".into()),
                line: Some("{}".into()),
            })
            .frame(),
        );
        buf.extend(Record::Admit(req(3, 30)).frame());
        let r = replay_bytes(&buf);
        assert_eq!(r.records, 4);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.valid_len, buf.len() as u64);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(
            r.incomplete.iter().map(|q| q.id).collect::<Vec<_>>(),
            [2, 3],
            "incomplete admits keep admission order"
        );
    }

    #[test]
    fn replay_tolerates_crc_mismatch_as_torn_tail() {
        let mut buf = HEADER.to_vec();
        buf.extend(Record::Admit(req(1, 1)).frame());
        let keep = buf.len();
        let mut bad = Record::Admit(req(2, 2)).frame();
        let flip = bad.len() - 1;
        bad[flip] ^= 0x40; // corrupt the payload; CRC no longer matches
        buf.extend(bad);
        let r = replay_bytes(&buf);
        assert_eq!(r.records, 1);
        assert_eq!(r.valid_len, keep as u64);
        assert_eq!(r.torn_bytes, (buf.len() - keep) as u64);
        assert_eq!(r.incomplete.len(), 1);
    }

    #[test]
    fn replay_tolerates_double_completion() {
        let done = Record::Done(DoneRecord {
            id: 5,
            source: 2,
            status: "ok".into(),
            digest: Some("0xaa".into()),
            line: Some("{\"id\":5}".into()),
        });
        let mut buf = HEADER.to_vec();
        buf.extend(Record::Admit(req(5, 2)).frame());
        buf.extend(done.frame());
        buf.extend(done.frame()); // a crash between journal+deliver replays
        let r = replay_bytes(&buf);
        assert_eq!(r.records, 3);
        assert!(r.incomplete.is_empty());
        // Both completions surface; dedup.record is idempotent on the key.
        assert_eq!(r.completed.len(), 2);
    }

    #[test]
    fn replay_tolerates_done_before_admit() {
        // Admit and done records are appended from different threads; a
        // fast worker can journal the completion first. The late admit
        // must not resurrect the request as incomplete.
        let mut buf = HEADER.to_vec();
        buf.extend(
            Record::Done(DoneRecord {
                id: 7,
                source: 3,
                status: "ok".into(),
                digest: None,
                line: Some("{\"id\":7}".into()),
            })
            .frame(),
        );
        buf.extend(Record::Admit(req(7, 3)).frame());
        let r = replay_bytes(&buf);
        assert_eq!(r.records, 2);
        assert!(r.incomplete.is_empty(), "completed key stays completed");
        assert_eq!(r.completed.len(), 1);
    }

    #[test]
    fn replay_of_garbage_is_empty_not_a_panic() {
        for garbage in [
            &b""[..],
            &b"xb"[..],
            &b"not a journal at all, much longer than the header"[..],
        ] {
            let r = replay_bytes(garbage);
            assert_eq!(r.records, 0);
            assert_eq!(r.valid_len, 0);
            assert_eq!(r.torn_bytes, garbage.len() as u64);
        }
        // Valid header, then a frame claiming an absurd length.
        let mut buf = HEADER.to_vec();
        buf.extend((u32::MAX).to_le_bytes());
        buf.extend(0u32.to_le_bytes());
        buf.extend([0u8; 32]);
        let r = replay_bytes(&buf);
        assert_eq!(r.records, 0);
        assert_eq!(r.valid_len, HEADER.len() as u64);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        {
            let (j, r) = Journal::open(&path, FsyncPolicy::Off).unwrap();
            assert_eq!(r.records, 0);
            j.append_admit(&req(1, 4)).unwrap();
            j.append_done(1, 4, "ok", Some("0xbeef"), Some("{\"id\":1}"))
                .unwrap();
            j.append_admit(&req(2, 5)).unwrap();
            assert_eq!(j.appends(), 3);
            assert!(j.bytes_written() > 0);
        }
        // Tear the tail mid-record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        {
            let (j, r) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(r.records, 2, "torn admit discarded");
            assert!(r.torn_bytes > 0);
            assert!(r.incomplete.is_empty());
            assert_eq!(r.completed.len(), 1);
            assert_eq!(r.completed[0].line.as_deref(), Some("{\"id\":1}"));
            // Appending after truncation yields a parseable journal again.
            j.append_admit(&req(3, 6)).unwrap();
            assert_eq!(j.fsyncs(), 1);
        }
        let r = replay_bytes(&std::fs::read(&path).unwrap());
        assert_eq!(r.records, 3);
        assert_eq!(r.incomplete.iter().map(|q| q.id).collect::<Vec<_>>(), [3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_policy_syncs_every_n() {
        let path = tmp("batch");
        let _ = std::fs::remove_file(&path);
        let (j, _) = Journal::open(&path, FsyncPolicy::Batch(3)).unwrap();
        for i in 0..7 {
            j.append_admit(&req(i, 0)).unwrap();
        }
        assert_eq!(j.fsyncs(), 2, "7 appends at batch=3 → 2 syncs");
        j.sync().unwrap();
        assert_eq!(j.fsyncs(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
