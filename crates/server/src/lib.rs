//! Resilient BFS serving layer.
//!
//! A long-running daemon (`xbfs serve`) loads the graph once, keeps warm
//! pooled [`xbfs_core::Xbfs`] engines across worker threads, and serves BFS
//! requests over a JSON-lines-over-TCP protocol (`xbfs-serve-v1`). The
//! robustness story is the point:
//!
//! - **Admission control** — a bounded queue ([`AdmissionQueue`]) sheds
//!   load explicitly (`overloaded` + `retry_after_ms`) instead of letting
//!   latency collapse under backlog.
//! - **Deadlines** — per-request wall budgets: queue wait is charged
//!   against the budget, the remainder rides into the run loop as a
//!   modeled-time deadline ([`xbfs_core::Xbfs::run_governed`]), and
//!   exceedances surface as typed `timeout` responses.
//! - **Panic isolation** — worker threads wrap execution in
//!   `catch_unwind`; a panicking engine is quarantined (engine *and*
//!   device discarded — a corrupted pool must not survive), rebuilt
//!   fresh, and the request replayed. Replayed results are bit-identical
//!   to a single-shot run: that is the pool-reuse invariant PR 3/4
//!   established, and the e2e tests re-assert it through the socket.
//! - **Circuit breaker** — consecutive uncorrected integrity failures
//!   trip the breaker ([`CircuitBreaker`]); while open, BFS requests are
//!   rejected fast instead of burning a poisoned substrate.
//! - **Graceful drain** — `shutdown` (or [`ServerHandle::initiate_drain`])
//!   stops admissions, completes everything already accepted, closes
//!   connections, and flushes one merged report.
//! - **Cluster serving** — `--cluster N` swaps each worker's engine for a
//!   partitioned multi-GCD [`xbfs_multi_gcd::GcdCluster`]: the graph is
//!   partitioned once, per-request runs reuse the partitioning, injected
//!   rank crashes are recovered mid-request by level-synchronous
//!   checkpoint/restart *within the deadline budget*, and per-rank
//!   health (crashes, restores, retransmitted bytes) lands in the serve
//!   report. Responses carry the backend-independent levels-only digest,
//!   bit-identical to a fault-free single-device run.
//! - **Idempotent replay** — completed request ids are remembered in a
//!   small LRU ([`DedupCache`]); a client that reconnects after a timeout
//!   and resends an id gets the cached response (`"deduped":true`)
//!   instead of double-executing.
//! - **Durability** — an optional CRC-framed write-ahead journal
//!   ([`journal::Journal`]) records every admitted request and every
//!   terminal response; a restart on the same `--journal` path replays
//!   it torn-tail-tolerantly, warm-starts the dedup cache from
//!   completion records, and re-enqueues incomplete requests ahead of
//!   new traffic — so even SIGKILL of the process loses nothing.
//! - **Live metrics plane** — an always-on, lock-light registry
//!   ([`metrics::ServerMetrics`]) instrumenting every stage (admission,
//!   workers, breaker, pools, cluster health), scrapeable mid-load via
//!   the wire `metrics` op or a dedicated `--metrics-addr` listener
//!   (Prometheus text + `xbfs-metrics-v1` JSON), plus a crash-forensics
//!   flight recorder dumped on panic/quarantine/breaker-open and a live
//!   terminal dashboard ([`top`]).
//!
//! The load generator ([`loadgen`]) is the other half: an open-loop
//! client that drives a server past capacity on purpose and reports
//! shed/accepted counts and p50/p99/p999 latency from *scheduled* send
//! times (so coordinated omission cannot hide queueing delay).

pub mod breaker;
pub mod chaos;
pub mod dedup;
pub mod journal;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod top;
pub mod worker;

pub use breaker::CircuitBreaker;
pub use chaos::{ChaosAction, ChaosPlan};
pub use dedup::DedupCache;
pub use journal::{replay_bytes, FsyncPolicy, Journal, Record, ReplayedJournal};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use protocol::{BfsRequest, Request, ResponseSummary, PROTOCOL};
pub use queue::{Admission, AdmissionQueue, QueueStats};
pub use server::{DeviceFactory, ServeConfig, ServeReport, Server, ServerHandle};
