//! Chaos injection plans for the serving layer.
//!
//! The **load generator** owns the plan: `--chaos` takes a spec in the
//! shared [`xbfs_spec`] grammar (the same tokenizer behind
//! `--inject-faults` and `--inject-bitflips`), decides deterministically
//! which requests carry which action, and stamps a single action token
//! into the request's `chaos` field. The **server** only ever sees that
//! per-request token, and honors it solely when started with
//! `--allow-chaos` — a production server ignores (and counts) stamped
//! chaos instead of executing it.
//!
//! Spec grammar (comma-separated):
//!
//! - `panic[:N]`   — every Nth selected request panics inside the worker
//! - `bitflip[:N]` — every Nth selected request runs under seeded bit
//!   flips in device status words (exercises certify-and-retry)
//! - `slow[@MS][:N]` — every Nth selected request sleeps `MS` wall ms
//!   server-side before running (default 50)
//! - `crash[@L][:N]` — every Nth selected request carries a rank-crash
//!   injection for a `--cluster` server: the victim rank (default 0,
//!   set with `rank=R`) dies at level `L` (default 1) and is recovered
//!   by checkpoint/restart mid-request. The stamped wire token is the
//!   shared fault-plan grammar's `crash@<level>:rank<r>`.
//! - `rank=R`      — victim rank for `crash` injections
//! - `seed=S`      — phase-shifts the selection so repeated runs vary
//!
//! Periods are per-kind over the request index; precedence when several
//! kinds fire on the same index is crash > panic > bitflip > slow, so a
//! single request carries exactly one action.

use xbfs_spec::{tokenize, SpecError, Token};

/// What one request is asked to suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No injection.
    None,
    /// Deliberate panic inside the worker's run closure.
    Panic,
    /// Seeded bit flips in device state (detected by certification).
    Bitflip,
    /// Wall-clock sleep before the run, ms.
    Slow(u64),
    /// A GCD rank crash injected into the cluster engine's fault plan
    /// (cluster servers only): the rank dies at the given level and is
    /// recovered by level-synchronous checkpoint/restart mid-request.
    Crash {
        /// Level at which the rank dies.
        level: u32,
        /// Victim rank.
        rank: usize,
    },
}

impl ChaosAction {
    /// Wire encoding for the request's `chaos` field.
    pub fn token(self) -> Option<String> {
        match self {
            Self::None => None,
            Self::Panic => Some("panic".into()),
            Self::Bitflip => Some("bitflip".into()),
            Self::Slow(ms) => Some(format!("slow@{ms}")),
            Self::Crash { level, rank } => Some(format!("crash@{level}:rank{rank}")),
        }
    }

    /// Decode a request's `chaos` field. Unknown tokens are an error so
    /// a typo'd injection cannot silently become a no-op in a chaos test.
    pub fn from_token(tok: &str) -> Result<Self, String> {
        match tok {
            "panic" => Ok(Self::Panic),
            "bitflip" => Ok(Self::Bitflip),
            other => match other.strip_prefix("slow@") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(Self::Slow)
                    .map_err(|_| format!("bad slow duration in chaos token `{other}`")),
                None if other == "slow" => Ok(Self::Slow(50)),
                None => match other.strip_prefix("crash@") {
                    // The wire token reuses the fault-plan grammar:
                    // `crash@<level>:rank<r>`.
                    Some(rest) => {
                        let (level, rank) = rest.split_once(":rank").ok_or_else(|| {
                            format!("expected crash@<level>:rank<r>, got `{other}`")
                        })?;
                        Ok(Self::Crash {
                            level: level
                                .parse::<u32>()
                                .map_err(|_| format!("bad crash level in chaos token `{other}`"))?,
                            rank: rank
                                .parse::<usize>()
                                .map_err(|_| format!("bad crash rank in chaos token `{other}`"))?,
                        })
                    }
                    None => Err(format!("unknown chaos token `{other}`")),
                },
            },
        }
    }
}

/// A parsed `--chaos` spec: per-kind periods plus a selection seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Fire a panic every this-many requests (None = never).
    pub panic_every: Option<u64>,
    /// Fire bit flips every this-many requests.
    pub bitflip_every: Option<u64>,
    /// Fire a slowdown every this-many requests.
    pub slow_every: Option<u64>,
    /// Sleep duration for slowdowns, wall ms.
    pub slow_ms: u64,
    /// Fire a cluster rank crash every this-many requests.
    pub crash_every: Option<u64>,
    /// Level at which injected crashes fire.
    pub crash_level: u32,
    /// Victim rank for injected crashes.
    pub crash_rank: usize,
    /// Phase shift for the periodic selection.
    pub seed: u64,
}

impl ChaosPlan {
    /// Parse the comma-separated spec (see module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let mut plan = Self {
            slow_ms: 50,
            crash_level: 1,
            ..Self::default()
        };
        let mut any = false;
        for tok in tokenize(spec) {
            any = true;
            match tok {
                Token::Assign {
                    key: "seed", value, ..
                } => {
                    plan.seed = tok.num("seed", value)?;
                }
                Token::Assign {
                    key: "rank", value, ..
                } => {
                    plan.crash_rank = tok.num("rank", value)?;
                }
                Token::Assign { key, .. } => {
                    return Err(tok.err(format!("unknown key `{key}` (expected seed=, rank=)")));
                }
                Token::Item { kind: "panic", .. } => {
                    plan.panic_every = Some(u64::from(tok.arg_count(1)?.max(1)));
                }
                Token::Item {
                    kind: "bitflip", ..
                } => {
                    plan.bitflip_every = Some(u64::from(tok.arg_count(1)?.max(1)));
                }
                Token::Item {
                    kind: "slow",
                    at,
                    arg,
                    ..
                } => {
                    if let Some(ms) = at {
                        plan.slow_ms = tok.num("slow duration (ms)", ms)?;
                    }
                    let every: u64 = match arg {
                        Some(n) => tok.num("slow period", n)?,
                        None => 1,
                    };
                    plan.slow_every = Some(every.max(1));
                }
                Token::Item {
                    kind: "crash",
                    at,
                    arg,
                    ..
                } => {
                    if let Some(level) = at {
                        plan.crash_level = tok.num("crash level", level)?;
                    }
                    let every: u64 = match arg {
                        Some(n) => tok.num("crash period", n)?,
                        None => 1,
                    };
                    plan.crash_every = Some(every.max(1));
                }
                Token::Item { kind, .. } => {
                    return Err(tok.err(format!(
                        "unknown chaos kind `{kind}` (expected panic, bitflip, slow, crash)"
                    )));
                }
            }
        }
        if !any {
            return Err(SpecError {
                token: spec.trim().to_string(),
                why: "empty chaos spec".into(),
            });
        }
        Ok(plan)
    }

    /// Deterministic per-request selection: request `index` under this
    /// plan suffers exactly one action (or none). Periods are phase
    /// shifted by the seed so `seed=` varies which requests are hit
    /// without changing the hit *rate*.
    pub fn action(&self, index: u64) -> ChaosAction {
        let hit = |period: Option<u64>, salt: u64| {
            period.is_some_and(|p| (index + self.seed + salt).is_multiple_of(p))
        };
        if hit(self.crash_every, 3) {
            ChaosAction::Crash {
                level: self.crash_level,
                rank: self.crash_rank,
            }
        } else if hit(self.panic_every, 0) {
            ChaosAction::Panic
        } else if hit(self.bitflip_every, 1) {
            ChaosAction::Bitflip
        } else if hit(self.slow_every, 2) {
            ChaosAction::Slow(self.slow_ms)
        } else {
            ChaosAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = ChaosPlan::parse("panic:10,bitflip:7,slow@120:3,seed=42").unwrap();
        assert_eq!(p.panic_every, Some(10));
        assert_eq!(p.bitflip_every, Some(7));
        assert_eq!(p.slow_every, Some(3));
        assert_eq!(p.slow_ms, 120);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn defaults_and_bare_kinds() {
        let p = ChaosPlan::parse("slow").unwrap();
        assert_eq!(p.slow_every, Some(1));
        assert_eq!(p.slow_ms, 50);
        assert_eq!(p.action(0), ChaosAction::Slow(50));
    }

    #[test]
    fn rejects_unknown_kind_and_key() {
        assert!(ChaosPlan::parse("meltdown:3").is_err());
        assert!(ChaosPlan::parse("salt=9").is_err());
        assert!(ChaosPlan::parse("").is_err());
        assert!(ChaosPlan::parse("panic:x").is_err());
        assert!(ChaosPlan::parse("crash@x:3").is_err());
        assert!(ChaosPlan::parse("rank=y").is_err());
    }

    #[test]
    fn crash_plan_parses_and_takes_precedence() {
        let p = ChaosPlan::parse("crash@2:5,rank=1,panic:1").unwrap();
        assert_eq!(p.crash_every, Some(5));
        assert_eq!(p.crash_level, 2);
        assert_eq!(p.crash_rank, 1);
        // Index 0 is hit by both (salt 3 shifts crash to indices ≡ 2 mod 5);
        // find a crash index and check it wins over the always-on panic.
        let crash_idx = (0..5)
            .find(|&i| matches!(p.action(i), ChaosAction::Crash { .. }))
            .unwrap();
        assert_eq!(
            p.action(crash_idx),
            ChaosAction::Crash { level: 2, rank: 1 }
        );
        let hits = (0..100)
            .filter(|&i| matches!(p.action(i), ChaosAction::Crash { .. }))
            .count();
        assert_eq!(hits, 20);
        // Bare crash defaults: level 1, rank 0, every request.
        let bare = ChaosPlan::parse("crash").unwrap();
        assert_eq!(bare.action(0), ChaosAction::Crash { level: 1, rank: 0 });
    }

    #[test]
    fn panic_takes_precedence_and_rate_is_periodic() {
        let p = ChaosPlan::parse("panic:4,slow:1").unwrap();
        let hits = (0..100)
            .filter(|&i| p.action(i) == ChaosAction::Panic)
            .count();
        assert_eq!(hits, 25);
        // Every non-panic request still slows: slow:1 fires always.
        assert!((0..100).all(|i| p.action(i) != ChaosAction::None));
    }

    #[test]
    fn action_tokens_round_trip() {
        for a in [
            ChaosAction::Panic,
            ChaosAction::Bitflip,
            ChaosAction::Slow(75),
            ChaosAction::Crash { level: 3, rank: 2 },
        ] {
            let tok = a.token().unwrap();
            assert_eq!(ChaosAction::from_token(&tok).unwrap(), a);
        }
        assert!(ChaosAction::from_token("meltdown").is_err());
        assert_eq!(ChaosAction::None.token(), None);
    }
}
