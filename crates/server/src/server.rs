//! The serving daemon: TCP listener, connection handlers, worker pool,
//! and the graceful-drain choreography.
//!
//! Thread layout: one accept thread, one handler thread per connection,
//! `workers` engine threads consuming the admission queue. A handler
//! never runs BFS itself — it parses requests, applies breaker/admission
//! policy, and forwards accepted jobs with a per-connection response
//! channel; completions are written back in finish order, matched by id.
//!
//! Drain: `initiate_drain` (or the wire `shutdown` op) flips the
//! draining flag, moves the queue to `Draining` (reject new, keep
//! serving queued), and pokes the accept loop awake with a
//! self-connection. Handlers close once their in-flight requests are
//! answered; workers exit when the queue runs dry; `join` then merges
//! everything into one [`ServeReport`]. Every accepted request is
//! answered before the process exits — the report's `drain_clean` says
//! so explicitly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcd_sim::Device;
use xbfs_graph::Csr;
use xbfs_multi_gcd::RankHealth;
use xbfs_telemetry::{names, AttrValue, Recorder};

use crate::breaker::CircuitBreaker;
use crate::dedup::DedupCache;
use crate::journal::{FsyncPolicy, Journal};
use crate::metrics::ServerMetrics;
use crate::protocol::{self, Request};
use crate::queue::{Admission, AdmissionQueue};
use crate::worker::{worker_loop, Job};

/// Builds one fresh device per engine generation. Fresh devices (not
/// clones) are what make a rebuilt engine's modeled timeline — and hence
/// its result digest — bit-identical to a single-shot run.
pub type DeviceFactory = Arc<dyn Fn() -> Device + Send + Sync>;

/// Serving-layer policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine worker threads (each owns one warm pooled engine).
    pub workers: usize,
    /// Admission-queue bound; beyond it requests are shed.
    pub queue_cap: usize,
    /// Base backoff hint attached to shed responses, ms.
    pub retry_after_ms: u64,
    /// Certify every run by default (per-request `verify` overrides).
    pub verify: bool,
    /// Honor chaos tokens stamped on requests (test servers only).
    pub allow_chaos: bool,
    /// Replays after quarantine before a request fails typed.
    pub max_retries: u32,
    /// Consecutive uncorrected failures that trip the breaker.
    pub breaker_threshold: u32,
    /// Breaker cooldown before the half-open probe, ms.
    pub breaker_cooldown_ms: u64,
    /// Deadline applied when a request does not carry one, ms.
    pub default_deadline_ms: Option<f64>,
    /// Coalesce up to this many admitted requests into one bit-parallel
    /// multi-source traversal per worker dispatch (1 = the classic solo
    /// engine; capped at [`xbfs_core::MAX_CONCURRENT`]). Mutually
    /// exclusive with `cluster`.
    pub batch_width: usize,
    /// How long a worker lingers for company after popping the first
    /// request of a batch, wall ms. A lone request is never parked
    /// longer than this.
    pub batch_window_ms: f64,
    /// Route requests through the partitioned multi-GCD engine with this
    /// many modeled GCDs per worker (`None` = single-device engine).
    pub cluster: Option<usize>,
    /// Cluster checkpoint cadence: snapshot status partitions every N
    /// levels so an injected rank crash restarts from the latest
    /// checkpoint instead of from scratch.
    pub checkpoint_every: u32,
    /// Completed responses remembered for idempotent replay (0 disables).
    pub dedup_cap: usize,
    /// Bind a second TCP listener here serving Prometheus-style text on
    /// `GET /metrics` and the `xbfs-metrics-v1` JSON snapshot on
    /// `GET /metrics.json` (`None` = main protocol's `metrics` op only).
    pub metrics_addr: Option<String>,
    /// Directory for flight-recorder dumps (`None` = a per-process dir
    /// under the system temp dir).
    pub flight_dir: Option<String>,
    /// Events remembered per flight-recorder lane.
    pub flight_ring: usize,
    /// Write-ahead request journal path (`None` = durability off). With a
    /// journal, every admitted request and every terminal response is
    /// CRC-framed to this file, and a restart on the same path replays
    /// incomplete requests ahead of new traffic.
    pub journal: Option<String>,
    /// How often journal appends are forced to stable storage.
    pub journal_fsync: FsyncPolicy,
    /// Close a connection after this many ms with no request and nothing
    /// in flight, so a stalled client cannot pin a handler thread forever
    /// (0 disables).
    pub idle_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 32,
            retry_after_ms: 25,
            verify: false,
            allow_chaos: false,
            max_retries: 2,
            breaker_threshold: 3,
            breaker_cooldown_ms: 250,
            default_deadline_ms: None,
            batch_width: 1,
            batch_window_ms: 2.0,
            cluster: None,
            checkpoint_every: 1,
            dedup_cap: 128,
            metrics_addr: None,
            flight_dir: None,
            flight_ring: 64,
            journal: None,
            journal_fsync: FsyncPolicy::Batch(8),
            idle_timeout_ms: 30_000,
        }
    }
}

/// Lock-free serving counters (relaxed; merged once at drain).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) ok: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) replayed: AtomicU64,
    pub(crate) panics_recovered: AtomicU64,
    pub(crate) rebuilds: AtomicU64,
    pub(crate) chaos_ignored: AtomicU64,
    pub(crate) undelivered: AtomicU64,
    pub(crate) breaker_trips_seen: AtomicU64,
    pub(crate) connections: AtomicU64,
    pub(crate) dropped_connections: AtomicU64,
    pub(crate) bad_lines: AtomicU64,
    pub(crate) deduped: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    pub(crate) replayed_requests: AtomicU64,
    pub(crate) recovery_us: AtomicU64,
    pub(crate) long_lines: AtomicU64,
    pub(crate) idle_disconnects: AtomicU64,
}

/// Everything handlers and workers share.
pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: AdmissionQueue<Job>,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) graph: Arc<Csr>,
    pub(crate) xcfg: xbfs_core::XbfsConfig,
    pub(crate) factory: DeviceFactory,
    pub(crate) stats: Counters,
    pub(crate) rec: Arc<Recorder>,
    pub(crate) draining: AtomicBool,
    pub(crate) dedup: DedupCache,
    /// Per-rank health merged from every worker's cluster engine (empty
    /// for single-device servers). Indexed by rank of the initial
    /// partitioning; Degrade leaves dead ranks' entries frozen.
    pub(crate) rank_health: std::sync::Mutex<Vec<RankHealth>>,
    /// The always-on live metrics plane + flight recorder.
    pub(crate) metrics: ServerMetrics,
    /// The write-ahead request journal (`None` = durability off).
    pub(crate) journal: Option<Journal>,
    started: Instant,
    addr: SocketAddr,
    /// Where the scrape listener is bound, for the drain wake-up poke.
    metrics_addr: Option<SocketAddr>,
}

impl Shared {
    pub(crate) fn now_us(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Flip to draining and wake the accept loop with a self-connection
    /// (idempotent; safe from any thread).
    pub(crate) fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.rec
            .event(None, names::event::DRAIN, 0, self.now_us(), vec![]);
        self.metrics.flight.note(
            self.metrics.flight.control_lane(),
            "drain",
            "graceful drain initiated",
        );
        self.queue.drain();
        // The accept loops block in accept(); a throwaway connection is
        // the std-only way to make them re-check the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(maddr) = self.metrics_addr {
            let _ = TcpStream::connect_timeout(&maddr, Duration::from_millis(200));
        }
    }

    /// Fold one cluster run's per-rank health into the server-wide view.
    pub(crate) fn merge_rank_health(&self, health: &[RankHealth]) {
        self.metrics.merge_rank_health(health);
        let mut acc = self.rank_health.lock().unwrap();
        if acc.len() < health.len() {
            acc.resize(health.len(), RankHealth::default());
        }
        for (a, h) in acc.iter_mut().zip(health) {
            a.crashes += h.crashes;
            a.checkpoints_restored += h.checkpoints_restored;
            a.retransmitted_bytes += h.retransmitted_bytes;
        }
    }

    /// One consistent scrape: refresh the sampled gauges (breaker state,
    /// queue depth — both read from their owners, not shadow-tracked),
    /// then freeze the registry. Runs entirely on the scraping thread;
    /// workers are never stopped or signaled.
    pub(crate) fn metrics_snapshot(&self) -> xbfs_telemetry::MetricsSnapshot {
        let m = &self.metrics;
        m.sync_breaker(
            self.breaker.state_code(),
            self.breaker.transitions(),
            self.breaker.trips(),
        );
        m.queue_depth.set(self.queue.depth() as f64);
        if let Some(j) = &self.journal {
            m.sync_journal(j.appends(), j.fsyncs(), j.bytes_written());
        }
        m.snapshot()
    }

    /// Journal a completion record (no-op without a journal). `line`
    /// rides along only for dedup-cacheable `ok` responses; an append
    /// failure is noted in the flight recorder, never fatal to serving.
    pub(crate) fn journal_done(
        &self,
        id: u64,
        source: u32,
        status: &str,
        line: &str,
        cacheable: bool,
    ) {
        let Some(journal) = &self.journal else {
            return;
        };
        let digest = extract_digest(line);
        let cached = if cacheable { Some(line) } else { None };
        if journal
            .append_done(id, source, status, digest, cached)
            .is_err()
        {
            self.metrics.flight.note(
                self.metrics.flight.control_lane(),
                "journal.error",
                format!("done append failed id={id}"),
            );
        }
    }
}

/// Pull the `"digest":"0x…"` value out of a response line without a full
/// JSON parse — the journal rides the hot path.
pub(crate) fn extract_digest(line: &str) -> Option<&str> {
    let start = line.find("\"digest\":\"")? + "\"digest\":\"".len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Merged end-of-life report: one line of truth per robustness claim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Requests admitted by the queue.
    pub accepted: u64,
    /// Requests shed (queue full).
    pub shed: u64,
    /// Requests rejected during drain.
    pub rejected_draining: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered `timeout` (queue or run budget).
    pub timeouts: u64,
    /// Requests answered `error`.
    pub errors: u64,
    /// `ok` responses that needed a quarantine replay first.
    pub replayed: u64,
    /// Worker panics contained by `catch_unwind`.
    pub panics_recovered: u64,
    /// Engine generations discarded + rebuilt.
    pub rebuilds: u64,
    /// Chaos tokens ignored because `--allow-chaos` was off.
    pub chaos_ignored: u64,
    /// Breaker trips over the server's life.
    pub breaker_trips: u64,
    /// Requests rejected fast while the breaker was open.
    pub breaker_fast_rejects: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections that died with an unanswered in-flight request.
    pub dropped_connections: u64,
    /// Unparsable request lines (answered with a typed error).
    pub bad_lines: u64,
    /// Deepest queue backlog observed.
    pub max_queue_depth: usize,
    /// Replayed ids answered from the idempotency cache (never
    /// re-executed, never re-queued).
    pub deduped: u64,
    /// Multi-source batches dispatched (0 unless `batch_width > 1`).
    pub batches: u64,
    /// Requests that rode a dispatched batch (ok, replayed, or shed
    /// in-batch — everything the batcher coalesced).
    pub batched_requests: u64,
    /// Widest batch actually coalesced.
    pub max_batch_size: u64,
    /// Configured coalescing width (1 = solo engine).
    pub batch_width: usize,
    /// Journal records appended (admits + completions; 0 without
    /// `--journal`).
    pub journal_appends: u64,
    /// Explicit fsyncs the journal issued under its policy.
    pub journal_fsyncs: u64,
    /// Journal bytes written, frames included.
    pub journal_bytes: u64,
    /// Incomplete requests recovered from the journal and re-enqueued
    /// ahead of new traffic at startup.
    pub replayed_requests: u64,
    /// Startup recovery time: journal replay + dedup warm-start +
    /// re-enqueue, in ms (0.0 without a journal).
    pub recovery_ms: f64,
    /// Request lines shed for exceeding the length bound.
    pub long_lines: u64,
    /// Connections closed by the idle read timeout.
    pub idle_disconnects: u64,
    /// Flight-recorder dump files written over the server's life
    /// (worker panics, quarantines, breaker opens), oldest first.
    pub flight_dumps: Vec<String>,
    /// Modeled GCDs per worker engine (0 = single-device).
    pub cluster: usize,
    /// Per-rank health across every cluster run served (empty for
    /// single-device servers): injected crashes observed, checkpoint
    /// restores performed, and bytes retransmitted over degraded links.
    pub rank_health: Vec<RankHealth>,
    /// Every accepted request was answered and nothing was lost.
    pub drain_clean: bool,
}

impl ServeReport {
    /// `xbfs-serve-report-v1` JSON object (single line).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"format\":\"xbfs-serve-report-v1\",\"accepted\":{},\"shed\":{},\
             \"rejected_draining\":{},\"ok\":{},\"timeouts\":{},\"errors\":{},\
             \"replayed\":{},\"panics_recovered\":{},\"rebuilds\":{},\
             \"chaos_ignored\":{},\"breaker_trips\":{},\"breaker_fast_rejects\":{},\
             \"connections\":{},\"dropped_connections\":{},\"bad_lines\":{},\
             \"max_queue_depth\":{},\"deduped\":{},\"batches\":{},\
             \"batched_requests\":{},\"max_batch_size\":{},\"batch_width\":{},\
             \"journal_appends\":{},\"journal_fsyncs\":{},\"journal_bytes\":{},\
             \"replayed_requests\":{},\"recovery_ms\":{},\
             \"long_lines\":{},\"idle_disconnects\":{},\
             \"cluster\":{},\"rank_health\":[",
            self.accepted,
            self.shed,
            self.rejected_draining,
            self.ok,
            self.timeouts,
            self.errors,
            self.replayed,
            self.panics_recovered,
            self.rebuilds,
            self.chaos_ignored,
            self.breaker_trips,
            self.breaker_fast_rejects,
            self.connections,
            self.dropped_connections,
            self.bad_lines,
            self.max_queue_depth,
            self.deduped,
            self.batches,
            self.batched_requests,
            self.max_batch_size,
            self.batch_width,
            self.journal_appends,
            self.journal_fsyncs,
            self.journal_bytes,
            self.replayed_requests,
            self.recovery_ms,
            self.long_lines,
            self.idle_disconnects,
            self.cluster,
        );
        for (rank, h) in self.rank_health.iter().enumerate() {
            if rank > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rank\":{rank},\"crashes\":{},\"checkpoints_restored\":{},\
                 \"retransmitted_bytes\":{}}}",
                h.crashes, h.checkpoints_restored, h.retransmitted_bytes
            ));
        }
        s.push_str("],\"flight_dumps\":[");
        for (i, path) in self.flight_dumps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&xbfs_telemetry::json::escape(path));
        }
        s.push_str(&format!("],\"drain_clean\":{}}}", self.drain_clean));
        s
    }
}

/// The daemon. [`Server::start`] returns a handle; the server lives
/// until a drain is initiated (wire `shutdown` or
/// [`ServerHandle::initiate_drain`]) and [`ServerHandle::join`] reaps it.
pub struct Server;

/// Running-server handle: address, drain trigger, and the join that
/// yields the merged report.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn workers + accept loop, and return immediately.
    pub fn start(
        cfg: ServeConfig,
        graph: Arc<Csr>,
        xcfg: xbfs_core::XbfsConfig,
        factory: DeviceFactory,
        rec: Arc<Recorder>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Bind the scrape listener up front so its address lands in
        // `Shared` (the drain poke needs it) and bind errors surface to
        // the caller instead of dying in a thread.
        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let flight_dir = cfg
            .flight_dir
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("xbfs-flight-{}", std::process::id()))
            });
        let metrics = ServerMetrics::new(cfg.workers.max(1), flight_dir, cfg.flight_ring);
        // Open + replay the journal before anything serves: completions
        // warm the dedup cache and incomplete admits are re-enqueued
        // below, strictly ahead of new traffic (the listener is bound but
        // the accept thread is not running yet — the OS backlog holds
        // early connections).
        let recovery_started = Instant::now();
        let journal_state = match &cfg.journal {
            Some(path) => Some(Journal::open(path, cfg.journal_fsync)?),
            None => None,
        };
        let (journal, replay) = match journal_state {
            Some((j, r)) => (Some(j), Some(r)),
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_cap, cfg.retry_after_ms),
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms),
            graph,
            xcfg,
            factory,
            stats: Counters::default(),
            rec,
            draining: AtomicBool::new(false),
            dedup: DedupCache::new(cfg.dedup_cap),
            rank_health: std::sync::Mutex::new(Vec::new()),
            metrics,
            journal,
            started: Instant::now(),
            addr,
            metrics_addr,
            cfg,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xbfs-worker-{i}"))
                    .spawn(move || worker_loop(sh, i))
                    .expect("spawn worker thread")
            })
            .collect();

        if let Some(replay) = replay {
            recover(&shared, replay, recovery_started);
        }

        let sh = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("xbfs-accept".into())
            .spawn(move || accept_loop(sh, listener))
            .expect("spawn accept thread");

        let metrics_thread = metrics_listener.map(|l| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xbfs-metrics".into())
                .spawn(move || metrics_loop(sh, l))
                .expect("spawn metrics thread")
        });

        Ok(ServerHandle {
            addr,
            shared,
            accept,
            workers,
            metrics_thread,
        })
    }
}

/// Apply a replayed journal to a freshly built server: warm the dedup
/// cache from completion records, then re-enqueue every incomplete
/// request. Runs after the workers are spawned (recovered requests can
/// outnumber the queue bound, so the queue must be draining while we
/// fill it) and before the accept thread starts (the OS listen backlog
/// holds new connections, so recovered requests are strictly ahead of
/// new traffic). Recovered responses flow to a sink thread — the
/// connections that asked for them died with the previous process; a
/// client that still cares will resend the id and hit the warm dedup
/// cache.
fn recover(shared: &Arc<Shared>, replay: crate::journal::ReplayedJournal, started: Instant) {
    for done in &replay.completed {
        if let Some(line) = &done.line {
            shared.dedup.record(done.id, done.source, line);
        }
    }
    let n = replay.incomplete.len() as u64;
    if n > 0 {
        let (tx, rx) = mpsc::channel::<String>();
        let _ = std::thread::Builder::new()
            .name("xbfs-recovery".into())
            .spawn(move || while rx.recv().is_ok() {});
        for req in replay.incomplete {
            // Recovery is the only submitter and workers only drain, so
            // a depth check below the bound guarantees admission.
            loop {
                if shared.queue.depth() >= shared.cfg.queue_cap {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let job = Job {
                    req: req.clone(),
                    enqueued: Instant::now(),
                    resp: tx.clone(),
                };
                match shared.queue.submit(job) {
                    Admission::Accepted { .. } => {
                        shared.metrics.admitted.add(1);
                        break;
                    }
                    Admission::Shed { .. } => std::thread::sleep(Duration::from_millis(1)),
                    Admission::Draining => return,
                }
            }
        }
    }
    shared.stats.replayed_requests.store(n, Ordering::Relaxed);
    shared.metrics.replayed_requests.add(n);
    let us = started.elapsed().as_micros() as u64;
    shared.stats.recovery_us.store(us, Ordering::Relaxed);
    shared.metrics.recovery_ms.set(us as f64 / 1000.0);
    shared.metrics.flight.note(
        shared.metrics.flight.control_lane(),
        "journal.recovered",
        format!(
            "records={} completed={} re-enqueued={n} torn_bytes={}",
            replay.records,
            replay.completed.len(),
            replay.torn_bytes
        ),
    );
}

impl ServerHandle {
    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where the scrape listener is bound, when `metrics_addr` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// Where flight-recorder dumps are written.
    pub fn flight_dir(&self) -> PathBuf {
        self.shared.metrics.flight_dir().to_path_buf()
    }

    /// Begin graceful drain from the host process (equivalent to the
    /// wire `shutdown` op). Idempotent.
    pub fn initiate_drain(&self) {
        self.shared.begin_drain();
    }

    /// Block until the drain completes and merge the final report.
    /// Joining without a drain in progress waits for a wire `shutdown`.
    pub fn join(self) -> ServeReport {
        // Accept loop exits once draining; it joins all handlers first,
        // and handlers only exit with zero in-flight requests.
        let _ = self.accept.join();
        // Queue is in Draining; workers exit when it runs dry.
        for w in self.workers {
            let _ = w.join();
        }
        // The scrape listener was poked awake by begin_drain.
        if let Some(m) = self.metrics_thread {
            let _ = m.join();
        }
        // Anything still queued now is a bug — close() surfaces it.
        let abandoned = self.shared.queue.close();
        // Final fsync: a drained journal is fully on stable storage no
        // matter the policy.
        if let Some(j) = &self.shared.journal {
            let _ = j.sync();
        }
        let q = self.shared.queue.stats();
        let s = &self.shared.stats;
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let (journal_appends, journal_fsyncs, journal_bytes) = match &self.shared.journal {
            Some(j) => (j.appends(), j.fsyncs(), j.bytes_written()),
            None => (0, 0, 0),
        };
        ServeReport {
            accepted: q.accepted,
            shed: q.shed,
            rejected_draining: q.rejected_draining,
            ok: ld(&s.ok),
            timeouts: ld(&s.timeouts),
            errors: ld(&s.errors),
            replayed: ld(&s.replayed),
            panics_recovered: ld(&s.panics_recovered),
            rebuilds: ld(&s.rebuilds),
            chaos_ignored: ld(&s.chaos_ignored),
            breaker_trips: self.shared.breaker.trips(),
            breaker_fast_rejects: self.shared.breaker.fast_rejects(),
            connections: ld(&s.connections),
            dropped_connections: ld(&s.dropped_connections),
            bad_lines: ld(&s.bad_lines),
            max_queue_depth: q.max_depth,
            deduped: ld(&s.deduped),
            batches: ld(&s.batches),
            batched_requests: ld(&s.batched_requests),
            max_batch_size: ld(&s.max_batch),
            batch_width: self.shared.cfg.batch_width.max(1),
            journal_appends,
            journal_fsyncs,
            journal_bytes,
            replayed_requests: ld(&s.replayed_requests),
            recovery_ms: ld(&s.recovery_us) as f64 / 1000.0,
            long_lines: ld(&s.long_lines),
            idle_disconnects: ld(&s.idle_disconnects),
            flight_dumps: self.shared.metrics.dump_paths(),
            cluster: self.shared.cfg.cluster.unwrap_or(0),
            rank_health: self.shared.rank_health.lock().unwrap().clone(),
            drain_clean: abandoned.is_empty()
                && ld(&s.undelivered) == 0
                && ld(&s.dropped_connections) == 0
                && q.accepted == ld(&s.ok) + ld(&s.timeouts) + ld(&s.errors),
        }
    }
}

/// Serve scrapes on the dedicated listener until drain. Scrapes run
/// entirely on this thread (snapshotting never stops a worker); one at a
/// time is plenty for a monitoring endpoint.
fn metrics_loop(shared: Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.is_draining() {
            break; // the begin_drain wake-up poke (or a late scraper)
        }
        if let Ok(stream) = conn {
            let _ = serve_scrape(&shared, stream);
        }
    }
}

/// Answer one minimal HTTP/1.0 scrape: `GET /metrics` returns the
/// Prometheus text exposition, `GET /metrics.json` the `xbfs-metrics-v1`
/// snapshot. Anything else is a 404.
fn serve_scrape(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let path = line.split_whitespace().nth(1).unwrap_or("");
    let (status, ctype, body) = if path == "/metrics.json" {
        (
            "200 OK",
            "application/json",
            shared.metrics_snapshot().to_json(),
        )
    } else if path == "/metrics" || path == "/" {
        (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.metrics_snapshot().to_prometheus(),
        )
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_string())
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if shared.is_draining() {
            break; // the wake-up connection (or a late client) is dropped
        }
        match conn {
            Ok(stream) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections.add(1);
                let sh = Arc::clone(&shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("xbfs-conn".into())
                    .spawn(move || handle_conn(sh, stream))
                {
                    handlers.push(h);
                }
            }
            Err(_) => continue,
        }
    }
    drop(listener);
    for h in handlers {
        let _ = h.join();
    }
}

/// Longest request line a handler will buffer. One BFS request is well
/// under a kilobyte; anything bigger is a confused or malicious client,
/// and bounding the read turns it into a typed shed instead of an
/// unbounded allocation.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Serve one connection until EOF (or until drain completes with no
/// in-flight requests). All socket writes happen on this thread;
/// completions arrive over the per-connection channel.
fn handle_conn(shared: Arc<Shared>, stream: TcpStream) {
    // A finite read timeout lets the handler poll the response channel
    // and the draining flag while the client is idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(mut writer) = stream.try_clone() else {
        shared
            .stats
            .dropped_connections
            .fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut reader = BufReader::new(stream);
    let (tx, rx) = mpsc::channel::<String>();
    let mut pending: usize = 0;
    let mut eof = false;
    let mut lost = false; // a completed response could not be delivered
    let mut line = String::new();
    let idle_ms = shared.cfg.idle_timeout_ms;
    let mut last_activity = Instant::now();

    'serve: loop {
        // 1. Flush any completed responses.
        while let Ok(resp) = rx.try_recv() {
            pending -= 1;
            if writeln!(writer, "{resp}").is_err() {
                lost = true;
                break 'serve;
            }
        }
        // 2. Exit once everything owed here is answered and either the
        //    client closed or the server is draining.
        if (eof || shared.is_draining()) && pending == 0 {
            break;
        }
        // 3. Read the next request line (timeout keeps us responsive;
        //    the `take` bound keeps a newline-less firehose from growing
        //    `line` without limit — one byte past the cap proves the
        //    line is overlong).
        if !eof {
            let before = line.len();
            let cap = (MAX_REQUEST_LINE + 1 - before) as u64;
            match (&mut reader).take(cap).read_line(&mut line) {
                Ok(_) if line.ends_with('\n') => {
                    last_activity = Instant::now();
                    let req = std::mem::take(&mut line);
                    dispatch_line(&shared, &tx, &mut writer, &mut pending, req.trim());
                }
                // Checked before the EOF arm: a cap-exhausted read also
                // returns `Ok(0)` and must shed, not close quietly.
                Ok(_) if line.len() > MAX_REQUEST_LINE => {
                    // Overlong: answer typed and close — the line framing
                    // is unrecoverable past the cap.
                    shared.stats.long_lines.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.long_lines.add(1);
                    let _ = writeln!(
                        writer,
                        "{}",
                        protocol::error_line(
                            0,
                            "overlong",
                            &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                        )
                    );
                    line.clear();
                    eof = true;
                }
                Ok(_) => eof = true, // EOF (0) or partial line at EOF
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if line.len() > before {
                        last_activity = Instant::now(); // partial bytes arrived
                    } else if idle_ms > 0
                        && pending == 0
                        && line.is_empty()
                        && last_activity.elapsed() >= Duration::from_millis(idle_ms)
                    {
                        // Nothing owed, nothing in progress, nothing said
                        // for the whole idle budget: stop pinning a thread.
                        shared
                            .stats
                            .idle_disconnects
                            .fetch_add(1, Ordering::Relaxed);
                        shared.metrics.idle_disconnects.add(1);
                        break 'serve;
                    }
                }
                Err(_) => eof = true,
            }
        } else {
            // EOF with responses still owed: wait on the channel.
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(resp) => {
                    pending -= 1;
                    if writeln!(writer, "{resp}").is_err() {
                        lost = true;
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    if lost || pending > 0 {
        // In-flight requests whose responses can no longer be delivered.
        shared
            .stats
            .dropped_connections
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Parse + answer one request line; `bfs` goes through breaker and
/// admission control, everything else is answered inline.
fn dispatch_line(
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<String>,
    writer: &mut TcpStream,
    pending: &mut usize,
    raw: &str,
) {
    if raw.is_empty() {
        return;
    }
    let reply = |writer: &mut TcpStream, s: String| {
        let _ = writeln!(writer, "{s}");
    };
    let req = match protocol::parse_request(raw) {
        Ok(r) => r,
        Err(e) => {
            shared.stats.bad_lines.fetch_add(1, Ordering::Relaxed);
            shared.metrics.bad_lines.add(1);
            reply(writer, protocol::error_line(0, "usage", &e));
            return;
        }
    };
    match req {
        Request::Ping { id } => reply(writer, protocol::pong_line(id)),
        Request::Info { id } => reply(
            writer,
            protocol::info_line(
                id,
                shared.graph.num_vertices(),
                shared.graph.num_edges(),
                shared.cfg.workers,
                shared.cfg.queue_cap,
            ),
        ),
        Request::Stats { id } => {
            let s = &shared.stats;
            let q = shared.queue.stats();
            let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
            reply(
                writer,
                format!(
                    "{{\"v\":\"{}\",\"id\":{id},\"status\":\"ok\",\"accepted\":{},\
                     \"shed\":{},\"ok\":{},\"timeouts\":{},\"errors\":{},\"depth\":{},\
                     \"breaker_open\":{}}}",
                    protocol::PROTOCOL,
                    q.accepted,
                    q.shed,
                    ld(&s.ok),
                    ld(&s.timeouts),
                    ld(&s.errors),
                    shared.queue.depth(),
                    shared.breaker.is_open()
                ),
            );
        }
        Request::Shutdown { id } => {
            reply(writer, protocol::shutdown_line(id));
            shared.begin_drain();
        }
        Request::Metrics { id } => {
            let snap = shared.metrics_snapshot();
            reply(writer, protocol::metrics_line(id, &snap.to_json()));
        }
        Request::Bfs(bfs) => {
            let id = bfs.id;
            // Idempotent replay: an id we already completed is answered
            // from cache — even while draining or with the breaker open,
            // since nothing re-executes. Chaos-carrying requests bypass
            // the cache so soaks always exercise the real path.
            if bfs.chaos.is_none() {
                if let Some(cached) = shared.dedup.lookup(id, bfs.source) {
                    shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.deduped.add(1);
                    shared.rec.event(
                        None,
                        names::event::DEDUP_HIT,
                        0,
                        shared.now_us(),
                        vec![("id".into(), AttrValue::U64(id))],
                    );
                    reply(writer, protocol::mark_deduped(&cached));
                    return;
                }
            }
            if shared.is_draining() {
                shared.metrics.rejected_draining.add(1);
                reply(
                    writer,
                    protocol::overloaded_line(id, "draining", shared.cfg.retry_after_ms),
                );
                return;
            }
            if let Err(retry_ms) = shared.breaker.admit() {
                shared.metrics.shed_breaker.add(1);
                shared.metrics.retry_after_ms.set(retry_ms as f64);
                shared.metrics.flight.note(
                    shared.metrics.flight.control_lane(),
                    "shed.breaker",
                    format!("id={id} retry_after_ms={retry_ms}"),
                );
                reply(
                    writer,
                    protocol::overloaded_line(id, "breaker-open", retry_ms),
                );
                return;
            }
            // The journal needs the request after `Job` takes ownership;
            // clone up front only when journaling is on.
            let journal_req = shared.journal.as_ref().map(|_| bfs.clone());
            let job = Job {
                req: bfs,
                enqueued: Instant::now(),
                resp: tx.clone(),
            };
            match shared.queue.submit(job) {
                Admission::Accepted { .. } => {
                    *pending += 1;
                    if let (Some(j), Some(req)) = (&shared.journal, &journal_req) {
                        if j.append_admit(req).is_err() {
                            shared.metrics.flight.note(
                                shared.metrics.flight.control_lane(),
                                "journal.error",
                                format!("admit append failed id={id}"),
                            );
                        }
                    }
                    shared.metrics.admitted.add(1);
                    shared.metrics.queue_depth.set(shared.queue.depth() as f64);
                    shared.rec.counter(
                        names::metric::QUEUE_DEPTH,
                        0,
                        shared.now_us(),
                        shared.queue.depth() as f64,
                    );
                }
                Admission::Shed { retry_after_ms } => {
                    shared.metrics.shed_queue.add(1);
                    shared.metrics.retry_after_ms.set(retry_after_ms as f64);
                    shared.metrics.flight.note(
                        shared.metrics.flight.control_lane(),
                        "shed.queue",
                        format!("id={id} retry_after_ms={retry_after_ms}"),
                    );
                    shared.rec.event(
                        None,
                        names::event::SHED,
                        0,
                        shared.now_us(),
                        vec![("id".into(), AttrValue::U64(id))],
                    );
                    reply(
                        writer,
                        protocol::overloaded_line(id, "queue-full", retry_after_ms),
                    );
                }
                Admission::Draining => {
                    shared.metrics.rejected_draining.add(1);
                    reply(
                        writer,
                        protocol::overloaded_line(id, "draining", shared.cfg.retry_after_ms),
                    );
                }
            }
        }
    }
}
