//! Open-loop load generator for `xbfs serve`.
//!
//! Open-loop means the send schedule is fixed up front from the target
//! RPS: request `i` is *due* at `start + i/rps`, and latency is measured
//! from that scheduled instant — not from when the socket write finally
//! happened. A closed-loop client slows down when the server does, which
//! silently hides queueing delay (coordinated omission); an open-loop
//! one keeps the pressure on and charges the server for every
//! millisecond a response was late relative to the schedule.
//!
//! The generator drives `connections` sockets round-robin, stamps chaos
//! actions from a [`ChaosPlan`] (server-side injection, honored only
//! under `--allow-chaos`), and reports accepted/shed/timeout counts,
//! p50/p99/p999 latency, and whether every `ok` digest was consistent
//! per source — a cheap cross-request determinism check on the server.
//!
//! Shed responses carry `retry_after_ms`; with `retries > 0` the
//! generator honors it: the request is resent after the hinted backoff
//! (doubled per attempt, plus deterministic jitter so retries from many
//! clients don't re-synchronize into the same burst), up to the cap.
//! Latency for a retried-then-ok request still counts from the original
//! scheduled send — retrying does not hide the wait. Only requests shed
//! on their final attempt count as `shed`; `retried_ok` reports how many
//! succeeded only thanks to a retry.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use xbfs_telemetry::LogHistogram;

use crate::chaos::ChaosPlan;
use crate::protocol::{self, PROTOCOL};

/// What to throw at the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Total requests to send.
    pub requests: u64,
    /// Target offered load, requests per second.
    pub rps: f64,
    /// Concurrent connections (requests round-robin across them).
    pub connections: usize,
    /// Sources are drawn uniformly from `0..source_max`.
    pub source_max: u32,
    /// RNG seed for the source mix.
    pub seed: u64,
    /// Per-request deadline to stamp, ms.
    pub deadline_ms: Option<f64>,
    /// Per-request verify override to stamp.
    pub verify: Option<bool>,
    /// Chaos plan; selected requests carry an action token.
    pub chaos: Option<ChaosPlan>,
    /// Send a `shutdown` after the last response (graceful drain).
    pub shutdown_after: bool,
    /// Give up waiting for stragglers after this long, ms.
    pub recv_timeout_ms: u64,
    /// Resend a shed request up to this many times, honoring the
    /// server's `retry_after_ms` hint with jittered backoff (0 = never).
    pub retries: u32,
    /// Print a one-line progress report (sent / ok / shed / p99-so-far)
    /// to stderr this often, ms (0 = silent).
    pub progress_every_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4000".into(),
            requests: 100,
            rps: 200.0,
            connections: 4,
            source_max: 1,
            seed: 1,
            deadline_ms: None,
            verify: None,
            chaos: None,
            shutdown_after: false,
            recv_timeout_ms: 30_000,
            retries: 0,
            progress_every_ms: 0,
        }
    }
}

/// What happened, from the client's side of the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Requests written to a socket.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Requests shed on their final attempt (retries, if any, exhausted).
    pub shed: u64,
    /// `timeout` responses.
    pub timeouts: u64,
    /// `error` responses.
    pub errors: u64,
    /// Requests with no response (connection died / straggler cutoff).
    pub lost: u64,
    /// `ok` responses that took more than one attempt (replayed after a
    /// quarantine server-side).
    pub replayed: u64,
    /// Requests that were shed at least once and then succeeded on a
    /// client-side retry.
    pub retried_ok: u64,
    /// Retry sends performed (beyond the original request writes).
    pub retries_sent: u64,
    /// Median latency from scheduled send, ms.
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th percentile latency, ms.
    pub p999_ms: f64,
    /// Worst observed latency, ms.
    pub max_ms: f64,
    /// Every `ok` digest agreed per source (server determinism held).
    pub digests_consistent: bool,
    /// Wall time of the whole drive, ms.
    pub elapsed_ms: f64,
    /// Offered load actually achieved, requests/second.
    pub achieved_rps: f64,
    /// `ok` responses per wall second — the throughput a batching server
    /// is judged on (shed and failed requests don't count as served).
    pub served_qps: f64,
}

impl LoadgenReport {
    /// Shed fraction of everything that got an answer or was sent.
    pub fn shed_pct(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 * 100.0 / self.sent as f64
        }
    }

    /// `xbfs-loadgen-v1` JSON object (single line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"format\":\"xbfs-loadgen-v1\",\"sent\":{},\"ok\":{},\"shed\":{},\
             \"timeouts\":{},\"errors\":{},\"lost\":{},\"replayed\":{},\
             \"retried_ok\":{},\"retries_sent\":{},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},\"max_ms\":{:.3},\
             \"shed_pct\":{:.2},\"digests_consistent\":{},\"elapsed_ms\":{:.1},\
             \"achieved_rps\":{:.1},\"served_qps\":{:.1}}}",
            self.sent,
            self.ok,
            self.shed,
            self.timeouts,
            self.errors,
            self.lost,
            self.replayed,
            self.retried_ok,
            self.retries_sent,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms,
            self.shed_pct(),
            self.digests_consistent,
            self.elapsed_ms,
            self.achieved_rps,
            self.served_qps
        )
    }
}

/// splitmix64: tiny, seedable, good enough for a source mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Nearest-rank percentile: the smallest sample with at least `q` of
/// the distribution at or below it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Sample {
    status: String,
    latency_ms: f64,
    source: u32,
    digest: Option<String>,
    attempts: u32,
    /// The request was resent at least once after a shed.
    retried: bool,
    /// Retry sends this request consumed.
    retries_used: u32,
}

/// Live counters behind the periodic progress line: updated by the
/// sender threads (`sent`) and the aggregator (`ok`/`shed`/latency),
/// read by the printer. The histogram makes p99-so-far O(1) to read.
struct Progress {
    sent: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    latency_ms: LogHistogram,
}

impl Progress {
    fn new() -> Self {
        Self {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency_ms: LogHistogram::new(),
        }
    }

    fn note(&self, s: &Sample) {
        match s.status.as_str() {
            "ok" => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency_ms.record(s.latency_ms);
            }
            "overloaded" => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn line(&self) -> String {
        format!(
            "loadgen: sent {} ok {} shed {} p99-so-far {:.1}ms",
            self.sent.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.latency_ms.snapshot().quantile(99.0).unwrap_or(0.0)
        )
    }
}

/// Drive one server. Blocks until all responses arrived (or the
/// straggler cutoff) and optionally drains the server afterwards.
pub fn run_loadgen(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let n_conns = cfg.connections.max(1);
    let start = Instant::now();
    let (agg_tx, agg_rx) = mpsc::channel::<Sample>();
    let progress = Arc::new(Progress::new());

    // The aggregator consumes samples *live* (not after the fact) so the
    // progress printer always has current ok/shed/p99 numbers.
    let collector = {
        let prog = Arc::clone(&progress);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while let Ok(s) = agg_rx.recv() {
                prog.note(&s);
                samples.push(s);
            }
            samples
        })
    };
    let stop_printer = Arc::new(AtomicBool::new(false));
    let printer = (cfg.progress_every_ms > 0).then(|| {
        let prog = Arc::clone(&progress);
        let stop = Arc::clone(&stop_printer);
        let every = Duration::from_millis(cfg.progress_every_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(every);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                eprintln!("{}", prog.line());
            }
        })
    });

    let mut threads = Vec::new();
    for c in 0..n_conns {
        // Connection c owns requests c, c+n, c+2n, … of the schedule.
        let stream = TcpStream::connect(&cfg.addr)?;
        stream.set_nodelay(true).ok();
        let cfg = cfg.clone();
        let agg = agg_tx.clone();
        let prog = Arc::clone(&progress);
        threads.push(std::thread::spawn(move || {
            drive_connection(&cfg, c, n_conns, stream, start, &agg, &prog)
        }));
    }
    drop(agg_tx);

    let mut sent = 0u64;
    for t in threads {
        sent += t.join().unwrap_or(0);
    }

    // Every sender is gone, so the collector's channel closes and it
    // returns the full sample set.
    let samples = collector.join().unwrap_or_default();
    // The run ends when the last response lands — clock it before the
    // printer teardown, whose sleep granularity would otherwise round
    // elapsed (and every rate derived from it) up to a whole tick.
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    stop_printer.store(true, Ordering::Relaxed);
    if let Some(p) = printer {
        let _ = p.join();
        eprintln!("{} (final)", progress.line());
    }

    let mut latencies = Vec::new();
    let mut report = LoadgenReport {
        sent,
        ..Default::default()
    };
    let mut digests: HashMap<u32, String> = HashMap::new();
    report.digests_consistent = true;
    let mut answered = 0u64;
    for s in samples {
        answered += 1;
        report.retries_sent += u64::from(s.retries_used);
        match s.status.as_str() {
            "ok" => {
                report.ok += 1;
                if s.attempts > 1 {
                    report.replayed += 1;
                }
                if s.retried {
                    report.retried_ok += 1;
                }
                latencies.push(s.latency_ms);
                if let Some(d) = s.digest {
                    match digests.get(&s.source) {
                        Some(prev) if *prev != d => report.digests_consistent = false,
                        Some(_) => {}
                        None => {
                            digests.insert(s.source, d);
                        }
                    }
                }
            }
            "overloaded" => report.shed += 1,
            "timeout" => report.timeouts += 1,
            _ => report.errors += 1,
        }
    }
    report.lost = sent.saturating_sub(answered);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report.p50_ms = percentile(&latencies, 0.50);
    report.p99_ms = percentile(&latencies, 0.99);
    report.p999_ms = percentile(&latencies, 0.999);
    report.max_ms = latencies.last().copied().unwrap_or(0.0);
    report.elapsed_ms = elapsed_ms;
    report.achieved_rps = if report.elapsed_ms > 0.0 {
        sent as f64 * 1000.0 / report.elapsed_ms
    } else {
        0.0
    };
    report.served_qps = if report.elapsed_ms > 0.0 {
        report.ok as f64 * 1000.0 / report.elapsed_ms
    } else {
        0.0
    };

    if cfg.shutdown_after {
        let _ = send_shutdown(&cfg.addr);
    }
    Ok(report)
}

/// Ask a server to drain (fire-and-confirm).
pub fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(2000)))
        .ok();
    writeln!(
        stream,
        "{{\"v\":\"{PROTOCOL}\",\"op\":\"shutdown\",\"id\":0}}"
    )?;
    let mut line = String::new();
    let _ = BufReader::new(stream).read_line(&mut line);
    Ok(())
}

/// Everything the reader needs about one in-flight request.
struct Pending {
    scheduled_ms: f64,
    source: u32,
    /// Full request line, kept so a shed can be resent verbatim.
    req: String,
    retries_left: u32,
    retries_used: u32,
}

/// One connection: a reader thread collects responses (and resends shed
/// requests after their hinted backoff) while this thread paces sends on
/// the global schedule. Returns how many were sent.
fn drive_connection(
    cfg: &LoadgenConfig,
    conn_idx: usize,
    n_conns: usize,
    stream: TcpStream,
    start: Instant,
    agg: &mpsc::Sender<Sample>,
    progress: &Progress,
) -> u64 {
    let rps = if cfg.rps > 0.0 { cfg.rps } else { 1000.0 };
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return 0,
    };
    reader_stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    // Writer and reader both send on the socket (paced requests here,
    // retries there); whole-line writes are serialized by this mutex.
    let writer = std::sync::Arc::new(std::sync::Mutex::new(stream));

    let (meta_tx, meta_rx) = mpsc::channel::<(u64, Pending)>();
    let agg = agg.clone();
    let cutoff = Duration::from_millis(cfg.recv_timeout_ms);
    let retry_writer = std::sync::Arc::clone(&writer);
    let mut retry_rng = cfg.seed ^ 0xdead_beef ^ (conn_idx as u64).wrapping_mul(0x85eb_ca6b);
    let max_retries = cfg.retries;
    let reader = std::thread::spawn(move || {
        let mut meta: HashMap<u64, Pending> = HashMap::new();
        let mut expected: Option<u64> = None; // set when writer finishes
        let mut resolved = 0u64;
        // Shed ids waiting out their backoff before a resend.
        let mut backlog: Vec<(Instant, u64)> = Vec::new();
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        let deadline = Instant::now() + cutoff;
        loop {
            // Absorb any new send metadata (non-blocking).
            loop {
                match meta_rx.try_recv() {
                    Ok((id, p)) => {
                        meta.insert(id, p);
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // Unresolved ids (including those awaiting a
                        // retry) are still in `meta`.
                        expected.get_or_insert(meta.len() as u64 + resolved);
                        break;
                    }
                }
            }
            if expected.is_some_and(|e| resolved >= e) || Instant::now() > deadline {
                break;
            }
            // Fire retries whose backoff elapsed.
            let now = Instant::now();
            let mut k = 0;
            while k < backlog.len() {
                if backlog[k].0 <= now {
                    let (_, id) = backlog.swap_remove(k);
                    if let Some(p) = meta.get_mut(&id) {
                        p.retries_used += 1;
                        let mut w = retry_writer.lock().unwrap();
                        let _ = writeln!(w, "{}", p.req);
                    }
                } else {
                    k += 1;
                }
            }
            match reader.read_line(&mut line) {
                Ok(0) => break, // server closed
                Ok(_) if line.ends_with('\n') => {
                    let raw = std::mem::take(&mut line);
                    if let Ok(resp) = protocol::parse_response(raw.trim()) {
                        // The writer registers metadata on a channel, and a
                        // fast server's response can outrun the absorb at
                        // the loop top (we were already blocked in
                        // `read_line`). Drain again before deciding whether
                        // this id is known, or the stale entry both dodges
                        // retry/latency accounting and inflates `expected`.
                        while let Ok((id, p)) = meta_rx.try_recv() {
                            meta.insert(id, p);
                        }
                        // A shed with retry budget left is not resolved:
                        // honor the server's backoff hint (doubled per
                        // attempt, jittered) and resend.
                        let retriable = resp.status == "overloaded"
                            && meta.get(&resp.id).is_some_and(|p| p.retries_left > 0);
                        if retriable {
                            let p = meta.get_mut(&resp.id).expect("checked above");
                            p.retries_left -= 1;
                            let attempt = max_retries - p.retries_left; // 1-based
                            let base = resp.retry_after_ms.unwrap_or(25).max(1);
                            let backoff = base << (attempt - 1).min(6);
                            let jitter = splitmix64(&mut retry_rng) % (base / 2 + 1);
                            backlog.push((
                                Instant::now() + Duration::from_millis(backoff + jitter),
                                resp.id,
                            ));
                        } else {
                            resolved += 1;
                            let (at_ms, source, retried, retries_used) = meta
                                .remove(&resp.id)
                                .map(|p| {
                                    (p.scheduled_ms, p.source, p.retries_used > 0, p.retries_used)
                                })
                                .unwrap_or((0.0, resp.source.unwrap_or(0), false, 0));
                            let now_ms = start.elapsed().as_secs_f64() * 1000.0;
                            let _ = agg.send(Sample {
                                status: resp.status,
                                latency_ms: (now_ms - at_ms).max(0.0),
                                source,
                                digest: resp.digest,
                                attempts: resp.attempts.unwrap_or(1),
                                retried,
                                retries_used,
                            });
                        }
                    }
                }
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    });

    let mut rng = cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9e37_79b9);
    let mut sent = 0u64;
    let mut i = conn_idx as u64;
    while i < cfg.requests {
        // Open loop: request i is due at start + i/rps, regardless of
        // how the server is doing.
        let due = Duration::from_secs_f64(i as f64 / rps);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let scheduled_ms = due.as_secs_f64() * 1000.0;
        let source = (splitmix64(&mut rng) % u64::from(cfg.source_max.max(1))) as u32;
        let mut req =
            format!("{{\"v\":\"{PROTOCOL}\",\"op\":\"bfs\",\"id\":{i},\"source\":{source}");
        if let Some(d) = cfg.deadline_ms {
            req.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(v) = cfg.verify {
            req.push_str(&format!(",\"verify\":{v}"));
        }
        if let Some(tok) = cfg.chaos.and_then(|p| p.action(i).token()) {
            req.push_str(&format!(",\"chaos\":\"{tok}\""));
        }
        req.push('}');
        // Register metadata before the write so the reader can never see
        // a response to an unknown id.
        let _ = meta_tx.send((
            i,
            Pending {
                scheduled_ms,
                source,
                req: req.clone(),
                retries_left: cfg.retries,
                retries_used: 0,
            },
        ));
        let write_ok = {
            let mut w = writer.lock().unwrap();
            writeln!(w, "{req}").is_ok()
        };
        if !write_ok {
            break;
        }
        sent += 1;
        progress.sent.fetch_add(1, Ordering::Relaxed);
        i += n_conns as u64;
    }
    drop(meta_tx); // reader learns the final expected count
    let _ = reader.join();
    // Reader is done (everything resolved or cutoff hit) — now it is
    // safe to close the write side; dropping the stream does it.
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let mut v: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(percentile(&v, 0.50), 500.0);
        assert_eq!(percentile(&v, 0.99), 990.0);
        assert_eq!(percentile(&v, 0.999), 999.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b).wrapping_add(1));
    }

    #[test]
    fn report_json_has_format_tag() {
        let r = LoadgenReport {
            sent: 10,
            ok: 8,
            shed: 2,
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"format\":\"xbfs-loadgen-v1\""));
        assert!(j.contains("\"shed_pct\":20.00"));
    }
}
