//! Open-loop load generator for `xbfs serve`.
//!
//! Open-loop means the send schedule is fixed up front from the target
//! RPS: request `i` is *due* at `start + i/rps`, and latency is measured
//! from that scheduled instant — not from when the socket write finally
//! happened. A closed-loop client slows down when the server does, which
//! silently hides queueing delay (coordinated omission); an open-loop
//! one keeps the pressure on and charges the server for every
//! millisecond a response was late relative to the schedule.
//!
//! The generator drives `connections` sockets round-robin, stamps chaos
//! actions from a [`ChaosPlan`] (server-side injection, honored only
//! under `--allow-chaos`), and reports accepted/shed/timeout counts,
//! p50/p99/p999 latency, and whether every `ok` digest was consistent
//! per source — a cheap cross-request determinism check on the server.
//!
//! Shed responses carry `retry_after_ms`; with `retries > 0` the
//! generator honors it: the request is resent after the hinted backoff
//! (doubled per attempt, plus deterministic jitter so retries from many
//! clients don't re-synchronize into the same burst), up to the cap.
//! Latency for a retried-then-ok request still counts from the original
//! scheduled send — retrying does not hide the wait. Only requests shed
//! on their final attempt count as `shed`; `retried_ok` reports how many
//! succeeded only thanks to a retry.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use xbfs_telemetry::LogHistogram;

use crate::chaos::ChaosPlan;
use crate::protocol::{self, PROTOCOL};

/// What to throw at the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Total requests to send.
    pub requests: u64,
    /// Target offered load, requests per second.
    pub rps: f64,
    /// Concurrent connections (requests round-robin across them).
    pub connections: usize,
    /// Sources are drawn uniformly from `0..source_max`.
    pub source_max: u32,
    /// RNG seed for the source mix.
    pub seed: u64,
    /// Per-request deadline to stamp, ms.
    pub deadline_ms: Option<f64>,
    /// Per-request verify override to stamp.
    pub verify: Option<bool>,
    /// Chaos plan; selected requests carry an action token.
    pub chaos: Option<ChaosPlan>,
    /// Send a `shutdown` after the last response (graceful drain).
    pub shutdown_after: bool,
    /// Give up waiting for stragglers after this long, ms.
    pub recv_timeout_ms: u64,
    /// Resend a shed request up to this many times, honoring the
    /// server's `retry_after_ms` hint with jittered backoff (0 = never).
    pub retries: u32,
    /// On EOF or a connection error, redial the server with jittered
    /// backoff (until the straggler cutoff) and resend every outstanding
    /// id. Latency still counts from the original schedule; the kill
    /// harness depends on this surviving a server restart.
    pub reconnect: bool,
    /// Print a one-line progress report (sent / ok / shed / p99-so-far)
    /// to stderr this often, ms (0 = silent).
    pub progress_every_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4000".into(),
            requests: 100,
            rps: 200.0,
            connections: 4,
            source_max: 1,
            seed: 1,
            deadline_ms: None,
            verify: None,
            chaos: None,
            shutdown_after: false,
            recv_timeout_ms: 30_000,
            retries: 0,
            reconnect: true,
            progress_every_ms: 0,
        }
    }
}

/// What happened, from the client's side of the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Requests written to a socket.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Requests shed on their final attempt (retries, if any, exhausted).
    pub shed: u64,
    /// `timeout` responses.
    pub timeouts: u64,
    /// `error` responses.
    pub errors: u64,
    /// Requests with no response (connection died / straggler cutoff).
    pub lost: u64,
    /// `ok` responses that took more than one attempt (replayed after a
    /// quarantine server-side).
    pub replayed: u64,
    /// Requests that were shed at least once and then succeeded on a
    /// client-side retry.
    pub retried_ok: u64,
    /// Retry sends performed (beyond the original request writes).
    pub retries_sent: u64,
    /// Connections re-established after a drop (server restart, EOF).
    pub reconnects: u64,
    /// Median latency from scheduled send, ms.
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th percentile latency, ms.
    pub p999_ms: f64,
    /// Worst observed latency, ms.
    pub max_ms: f64,
    /// Every `ok` digest agreed per source (server determinism held).
    pub digests_consistent: bool,
    /// Wall time of the whole drive, ms.
    pub elapsed_ms: f64,
    /// Offered load actually achieved, requests/second.
    pub achieved_rps: f64,
    /// `ok` responses per wall second — the throughput a batching server
    /// is judged on (shed and failed requests don't count as served).
    pub served_qps: f64,
}

impl LoadgenReport {
    /// Shed fraction of everything that got an answer or was sent.
    pub fn shed_pct(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 * 100.0 / self.sent as f64
        }
    }

    /// `xbfs-loadgen-v1` JSON object (single line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"format\":\"xbfs-loadgen-v1\",\"sent\":{},\"ok\":{},\"shed\":{},\
             \"timeouts\":{},\"errors\":{},\"lost\":{},\"replayed\":{},\
             \"retried_ok\":{},\"retries_sent\":{},\"reconnects\":{},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},\"max_ms\":{:.3},\
             \"shed_pct\":{:.2},\"digests_consistent\":{},\"elapsed_ms\":{:.1},\
             \"achieved_rps\":{:.1},\"served_qps\":{:.1}}}",
            self.sent,
            self.ok,
            self.shed,
            self.timeouts,
            self.errors,
            self.lost,
            self.replayed,
            self.retried_ok,
            self.retries_sent,
            self.reconnects,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms,
            self.shed_pct(),
            self.digests_consistent,
            self.elapsed_ms,
            self.achieved_rps,
            self.served_qps
        )
    }
}

/// splitmix64: tiny, seedable, good enough for a source mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Nearest-rank percentile: the smallest sample with at least `q` of
/// the distribution at or below it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Sample {
    status: String,
    latency_ms: f64,
    source: u32,
    digest: Option<String>,
    attempts: u32,
    /// The request was resent at least once after a shed.
    retried: bool,
    /// Retry sends this request consumed.
    retries_used: u32,
}

/// Live counters behind the periodic progress line: updated by the
/// sender threads (`sent`) and the aggregator (`ok`/`shed`/latency),
/// read by the printer. The histogram makes p99-so-far O(1) to read.
struct Progress {
    sent: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    latency_ms: LogHistogram,
}

impl Progress {
    fn new() -> Self {
        Self {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency_ms: LogHistogram::new(),
        }
    }

    fn note(&self, s: &Sample) {
        match s.status.as_str() {
            "ok" => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency_ms.record(s.latency_ms);
            }
            "overloaded" => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn line(&self) -> String {
        format!(
            "loadgen: sent {} ok {} shed {} p99-so-far {:.1}ms",
            self.sent.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.latency_ms.snapshot().quantile(99.0).unwrap_or(0.0)
        )
    }
}

/// Drive one server. Blocks until all responses arrived (or the
/// straggler cutoff) and optionally drains the server afterwards.
pub fn run_loadgen(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let n_conns = cfg.connections.max(1);
    let start = Instant::now();
    let (agg_tx, agg_rx) = mpsc::channel::<Sample>();
    let progress = Arc::new(Progress::new());

    // The aggregator consumes samples *live* (not after the fact) so the
    // progress printer always has current ok/shed/p99 numbers.
    let collector = {
        let prog = Arc::clone(&progress);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while let Ok(s) = agg_rx.recv() {
                prog.note(&s);
                samples.push(s);
            }
            samples
        })
    };
    let stop_printer = Arc::new(AtomicBool::new(false));
    let printer = (cfg.progress_every_ms > 0).then(|| {
        let prog = Arc::clone(&progress);
        let stop = Arc::clone(&stop_printer);
        let every = Duration::from_millis(cfg.progress_every_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(every);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                eprintln!("{}", prog.line());
            }
        })
    });

    let reconnects = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for c in 0..n_conns {
        // Connection c owns requests c, c+n, c+2n, … of the schedule.
        let stream = TcpStream::connect(&cfg.addr)?;
        stream.set_nodelay(true).ok();
        let cfg = cfg.clone();
        let agg = agg_tx.clone();
        let prog = Arc::clone(&progress);
        let recon = Arc::clone(&reconnects);
        threads.push(std::thread::spawn(move || {
            drive_connection(&cfg, c, n_conns, stream, start, &agg, &prog, &recon)
        }));
    }
    drop(agg_tx);

    let mut sent = 0u64;
    for t in threads {
        sent += t.join().unwrap_or(0);
    }

    // Every sender is gone, so the collector's channel closes and it
    // returns the full sample set.
    let samples = collector.join().unwrap_or_default();
    // The run ends when the last response lands — clock it before the
    // printer teardown, whose sleep granularity would otherwise round
    // elapsed (and every rate derived from it) up to a whole tick.
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    stop_printer.store(true, Ordering::Relaxed);
    if let Some(p) = printer {
        let _ = p.join();
        eprintln!("{} (final)", progress.line());
    }

    let mut latencies = Vec::new();
    let mut report = LoadgenReport {
        sent,
        ..Default::default()
    };
    let mut digests: HashMap<u32, String> = HashMap::new();
    report.digests_consistent = true;
    report.reconnects = reconnects.load(Ordering::Relaxed);
    let mut answered = 0u64;
    for s in samples {
        answered += 1;
        report.retries_sent += u64::from(s.retries_used);
        match s.status.as_str() {
            "ok" => {
                report.ok += 1;
                if s.attempts > 1 {
                    report.replayed += 1;
                }
                if s.retried {
                    report.retried_ok += 1;
                }
                latencies.push(s.latency_ms);
                if let Some(d) = s.digest {
                    match digests.get(&s.source) {
                        Some(prev) if *prev != d => report.digests_consistent = false,
                        Some(_) => {}
                        None => {
                            digests.insert(s.source, d);
                        }
                    }
                }
            }
            "overloaded" => report.shed += 1,
            "timeout" => report.timeouts += 1,
            _ => report.errors += 1,
        }
    }
    report.lost = sent.saturating_sub(answered);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report.p50_ms = percentile(&latencies, 0.50);
    report.p99_ms = percentile(&latencies, 0.99);
    report.p999_ms = percentile(&latencies, 0.999);
    report.max_ms = latencies.last().copied().unwrap_or(0.0);
    report.elapsed_ms = elapsed_ms;
    report.achieved_rps = if report.elapsed_ms > 0.0 {
        sent as f64 * 1000.0 / report.elapsed_ms
    } else {
        0.0
    };
    report.served_qps = if report.elapsed_ms > 0.0 {
        report.ok as f64 * 1000.0 / report.elapsed_ms
    } else {
        0.0
    };

    if cfg.shutdown_after {
        let _ = send_shutdown(&cfg.addr);
    }
    Ok(report)
}

/// Ask a server to drain (fire-and-confirm).
pub fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(2000)))
        .ok();
    writeln!(
        stream,
        "{{\"v\":\"{PROTOCOL}\",\"op\":\"shutdown\",\"id\":0}}"
    )?;
    let mut line = String::new();
    let _ = BufReader::new(stream).read_line(&mut line);
    Ok(())
}

/// The shared write side of one loadgen connection. The paced sender and
/// the reader's retry path both write whole lines through the mutex; the
/// reader owns redialing, and swaps a fresh stream in here when the old
/// one drops. `None` means "down, redial in progress"; `dead` means the
/// redial budget is exhausted and writers should give up.
struct Wire {
    stream: std::sync::Mutex<Option<TcpStream>>,
    dead: AtomicBool,
}

impl Wire {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: std::sync::Mutex::new(Some(stream)),
            dead: AtomicBool::new(false),
        }
    }

    /// Write one request line. On failure the stream is torn down so the
    /// reader's next EOF kicks off the redial; callers retry or give up.
    fn write_line(&self, s: &str) -> bool {
        let mut g = self.stream.lock().unwrap();
        match g.as_mut() {
            Some(st) => {
                if writeln!(st, "{s}").is_ok() {
                    true
                } else {
                    *g = None;
                    false
                }
            }
            None => false,
        }
    }
}

/// Everything the reader needs about one in-flight request.
struct Pending {
    scheduled_ms: f64,
    source: u32,
    /// Full request line, kept so a shed can be resent verbatim.
    req: String,
    retries_left: u32,
    retries_used: u32,
}

/// One connection: a reader thread collects responses (and resends shed
/// requests after their hinted backoff) while this thread paces sends on
/// the global schedule. The reader also owns *redialing*: when the
/// connection drops (EOF, reset — e.g. the server was killed), it
/// reconnects with jittered backoff and resends every outstanding id
/// verbatim, so a restarted server can answer them — from its warm dedup
/// cache or by journal replay. Latency still counts from the original
/// schedule. Returns how many were sent.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    cfg: &LoadgenConfig,
    conn_idx: usize,
    n_conns: usize,
    stream: TcpStream,
    start: Instant,
    agg: &mpsc::Sender<Sample>,
    progress: &Progress,
    reconnects: &Arc<AtomicU64>,
) -> u64 {
    let rps = if cfg.rps > 0.0 { cfg.rps } else { 1000.0 };
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return 0,
    };
    reader_stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    // Writer and reader both send on the socket (paced requests here,
    // retries + reconnect resends there); whole-line writes are
    // serialized by the wire's mutex.
    let wire = Arc::new(Wire::new(stream));

    let (meta_tx, meta_rx) = mpsc::channel::<(u64, Pending)>();
    let agg = agg.clone();
    let cutoff = Duration::from_millis(cfg.recv_timeout_ms);
    let reader_wire = Arc::clone(&wire);
    let reconnects = Arc::clone(reconnects);
    let addr = cfg.addr.clone();
    let allow_reconnect = cfg.reconnect;
    let mut retry_rng = cfg.seed ^ 0xdead_beef ^ (conn_idx as u64).wrapping_mul(0x85eb_ca6b);
    let max_retries = cfg.retries;
    let reader = std::thread::spawn(move || {
        let wire = reader_wire;
        let mut meta: HashMap<u64, Pending> = HashMap::new();
        let mut expected: Option<u64> = None; // set when writer finishes
        let mut resolved = 0u64;
        // Shed ids waiting out their backoff before a resend.
        let mut backlog: Vec<(Instant, u64)> = Vec::new();
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        let deadline = Instant::now() + cutoff;
        loop {
            // Absorb any new send metadata (non-blocking).
            loop {
                match meta_rx.try_recv() {
                    Ok((id, p)) => {
                        meta.insert(id, p);
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // Unresolved ids (including those awaiting a
                        // retry) are still in `meta`.
                        expected.get_or_insert(meta.len() as u64 + resolved);
                        break;
                    }
                }
            }
            if expected.is_some_and(|e| resolved >= e) || Instant::now() > deadline {
                break;
            }
            // Fire retries whose backoff elapsed.
            let now = Instant::now();
            let mut k = 0;
            while k < backlog.len() {
                if backlog[k].0 <= now {
                    let (_, id) = backlog.swap_remove(k);
                    if let Some(p) = meta.get_mut(&id) {
                        p.retries_used += 1;
                        let _ = wire.write_line(&p.req);
                    }
                } else {
                    k += 1;
                }
            }
            let mut conn_down = false;
            match reader.read_line(&mut line) {
                Ok(0) => conn_down = true, // server closed
                Ok(_) if line.ends_with('\n') => {
                    let raw = std::mem::take(&mut line);
                    if let Ok(resp) = protocol::parse_response(raw.trim()) {
                        // The writer registers metadata on a channel, and a
                        // fast server's response can outrun the absorb at
                        // the loop top (we were already blocked in
                        // `read_line`). Drain again before deciding whether
                        // this id is known, or the stale entry both dodges
                        // retry/latency accounting and inflates `expected`.
                        while let Ok((id, p)) = meta_rx.try_recv() {
                            meta.insert(id, p);
                        }
                        // A shed with retry budget left is not resolved:
                        // honor the server's backoff hint (doubled per
                        // attempt, jittered) and resend.
                        let retriable = resp.status == "overloaded"
                            && meta.get(&resp.id).is_some_and(|p| p.retries_left > 0);
                        if retriable {
                            let p = meta.get_mut(&resp.id).expect("checked above");
                            p.retries_left -= 1;
                            let attempt = max_retries - p.retries_left; // 1-based
                            let base = resp.retry_after_ms.unwrap_or(25).max(1);
                            let backoff = base << (attempt - 1).min(6);
                            let jitter = splitmix64(&mut retry_rng) % (base / 2 + 1);
                            backlog.push((
                                Instant::now() + Duration::from_millis(backoff + jitter),
                                resp.id,
                            ));
                        } else if let Some(p) = meta.remove(&resp.id) {
                            resolved += 1;
                            let now_ms = start.elapsed().as_secs_f64() * 1000.0;
                            let _ = agg.send(Sample {
                                status: resp.status,
                                latency_ms: (now_ms - p.scheduled_ms).max(0.0),
                                source: p.source,
                                digest: resp.digest,
                                attempts: resp.attempts.unwrap_or(1),
                                retried: p.retries_used > 0,
                                retries_used: p.retries_used,
                            });
                        }
                        // Unknown id: a duplicate answer to an id already
                        // resolved (a reconnect resend raced the original
                        // response) — drop it, never double-count.
                    }
                }
                Ok(_) => conn_down = true, // partial line: peer went away
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => conn_down = true,
            }
            if conn_down {
                if !allow_reconnect {
                    break;
                }
                // Redial with jittered backoff until the straggler
                // cutoff; ECONNREFUSED while the server restarts is
                // expected, not fatal.
                let mut dialed = None;
                let mut attempt = 0u32;
                while Instant::now() < deadline {
                    if let Ok(s) = TcpStream::connect(&addr) {
                        dialed = Some(s);
                        break;
                    }
                    attempt += 1;
                    let backoff = (25u64 << attempt.min(4)).min(400);
                    let jitter = splitmix64(&mut retry_rng) % (backoff / 2 + 1);
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                }
                let fresh = dialed.and_then(|s| {
                    s.set_nodelay(true).ok();
                    s.set_read_timeout(Some(Duration::from_millis(100))).ok();
                    s.try_clone().ok().map(|write_half| (s, write_half))
                });
                let Some((read_half, write_half)) = fresh else {
                    wire.dead.store(true, Ordering::Relaxed);
                    break;
                };
                *wire.stream.lock().unwrap() = Some(write_half);
                reader = BufReader::new(read_half);
                line.clear();
                // Backlogged shed retries are covered by the full resend
                // below; stale entries would only double-send.
                backlog.clear();
                while let Ok((id, p)) = meta_rx.try_recv() {
                    meta.insert(id, p);
                }
                // Resend every outstanding id verbatim. The server
                // answers completed ones from its (journal-warmed) dedup
                // cache and re-executes the rest; latency still counts
                // from the original schedule.
                for p in meta.values() {
                    let _ = wire.write_line(&p.req);
                }
                reconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let mut rng = cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9e37_79b9);
    let mut sent = 0u64;
    let mut i = conn_idx as u64;
    while i < cfg.requests {
        // Open loop: request i is due at start + i/rps, regardless of
        // how the server is doing.
        let due = Duration::from_secs_f64(i as f64 / rps);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let scheduled_ms = due.as_secs_f64() * 1000.0;
        let source = (splitmix64(&mut rng) % u64::from(cfg.source_max.max(1))) as u32;
        let mut req =
            format!("{{\"v\":\"{PROTOCOL}\",\"op\":\"bfs\",\"id\":{i},\"source\":{source}");
        if let Some(d) = cfg.deadline_ms {
            req.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(v) = cfg.verify {
            req.push_str(&format!(",\"verify\":{v}"));
        }
        if let Some(tok) = cfg.chaos.and_then(|p| p.action(i).token()) {
            req.push_str(&format!(",\"chaos\":\"{tok}\""));
        }
        req.push('}');
        // Register metadata before the write so the reader can never see
        // a response to an unknown id.
        let _ = meta_tx.send((
            i,
            Pending {
                scheduled_ms,
                source,
                req: req.clone(),
                retries_left: cfg.retries,
                retries_used: 0,
            },
        ));
        // A failed write waits for the reader to re-establish the wire
        // (it is redialing the moment the drop surfaces on its side)
        // instead of abandoning the rest of the schedule.
        let mut write_ok = wire.write_line(&req);
        if !write_ok && cfg.reconnect {
            let give_up = Instant::now() + cutoff;
            while !write_ok && !wire.dead.load(Ordering::Relaxed) && Instant::now() < give_up {
                std::thread::sleep(Duration::from_millis(10));
                write_ok = wire.write_line(&req);
            }
        }
        if !write_ok {
            break;
        }
        sent += 1;
        progress.sent.fetch_add(1, Ordering::Relaxed);
        i += n_conns as u64;
    }
    drop(meta_tx); // reader learns the final expected count
    let _ = reader.join();
    // Reader is done (everything resolved or cutoff hit) — now it is
    // safe to close the write side; dropping the stream does it.
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let mut v: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(percentile(&v, 0.50), 500.0);
        assert_eq!(percentile(&v, 0.99), 990.0);
        assert_eq!(percentile(&v, 0.999), 999.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b).wrapping_add(1));
    }

    #[test]
    fn report_json_has_format_tag() {
        let r = LoadgenReport {
            sent: 10,
            ok: 8,
            shed: 2,
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"format\":\"xbfs-loadgen-v1\""));
        assert!(j.contains("\"shed_pct\":20.00"));
    }
}
