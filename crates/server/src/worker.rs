//! Panic-isolated worker execution.
//!
//! Each worker thread owns one warm pooled engine (device *and*
//! [`Xbfs`] state) and pops jobs off the admission queue until it
//! drains. Execution runs under `catch_unwind`: a panicking engine — or
//! one whose run fails certification — is **quarantined**: the engine
//! and its device are discarded together (a corrupted pool must never
//! re-park poisoned buffers, the invariant PR 4's sweep supervisor
//! established), a fresh pair is built, and the request is replayed with
//! injection stripped. Because a fresh device + fresh engine reproduces
//! the exact modeled timeline of a single-shot run, a replayed response
//! is bit-identical to `xbfs bfs` on the same graph and source — the e2e
//! tests assert this through the socket via the result digest.
//!
//! Deadline accounting: the request's wall budget is charged for queue
//! wait first; whatever remains is granted to the run as a modeled-time
//! budget via [`Xbfs::run_governed`]. A budget exhausted in-queue is
//! answered `timeout` without touching an engine.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use gcd_sim::Device;
use xbfs_core::{BitflipPlan, Sabotage, Xbfs, XbfsError};
use xbfs_telemetry::{names, AttrValue};

use crate::chaos::ChaosAction;
use crate::protocol::{self, BfsRequest};
use crate::server::Shared;

/// One admitted request in flight: the parsed request, when it was
/// admitted, and the channel that delivers the response line back to the
/// connection that owns it.
pub(crate) struct Job {
    pub(crate) req: BfsRequest,
    pub(crate) enqueued: Instant,
    pub(crate) resp: mpsc::Sender<String>,
}

/// Engine generation: device + warm pooled engine, discarded together.
type Engine = Xbfs<Device>;

fn build_engine(shared: &Shared) -> Result<Engine, XbfsError> {
    Xbfs::new((shared.factory)(), &shared.graph, shared.xcfg)
}

/// Drop a possibly-poisoned engine without letting its destructor take
/// the worker down: after a panic mid-run the pool bookkeeping may be
/// arbitrarily wrong, and `Drop` parks buffers back into it.
fn discard(engine: &mut Option<Engine>) {
    if let Some(e) = engine.take() {
        let _ = catch_unwind(AssertUnwindSafe(move || drop(e)));
    }
}

/// Deliver a response line; a dead connection with an answered-but-lost
/// request is the one "dropped" case the smoke test asserts never
/// happens under clean shutdown.
fn deliver(shared: &Shared, job_resp: &mpsc::Sender<String>, line: String) {
    if job_resp.send(line).is_err() {
        shared.stats.undelivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// The worker thread body: pop until the queue drains, serve each job
/// with quarantine-and-replay, then park the final engine generation.
pub(crate) fn worker_loop(shared: Arc<Shared>, worker_idx: usize) {
    let mut engine: Option<Engine> = None;
    while let Some((ticket, job)) = shared.queue.pop() {
        serve_one(&shared, &mut engine, ticket, job, worker_idx);
    }
    // Normal teardown: the engine is healthy, let Drop park its buffers.
    drop(engine);
}

fn serve_one(
    shared: &Shared,
    engine: &mut Option<Engine>,
    ticket: u64,
    job: Job,
    worker_idx: usize,
) {
    let id = job.req.id;
    let wait_ms = job.enqueued.elapsed().as_secs_f64() * 1000.0;
    let now = shared.now_us();
    let rec = &shared.rec;
    let span = rec.begin_span(None, names::span::REQUEST, worker_idx, now);
    rec.span_attr(span, "id", AttrValue::U64(id));
    rec.span_attr(span, "ticket", AttrValue::U64(ticket));
    rec.span_attr(span, "source", AttrValue::U64(u64::from(job.req.source)));
    rec.counter(names::metric::WAIT_MS, worker_idx, now, wait_ms);

    let outcome = execute(shared, engine, ticket, &job, wait_ms);
    rec.span_attr(span, "status", AttrValue::Str(outcome.status.into()));
    rec.span_attr(
        span,
        "attempts",
        AttrValue::U64(u64::from(outcome.attempts)),
    );
    rec.end_span(span, shared.now_us());
    deliver(shared, &job.resp, outcome.line);
}

struct Outcome {
    line: String,
    status: &'static str,
    attempts: u32,
}

fn execute(
    shared: &Shared,
    engine: &mut Option<Engine>,
    ticket: u64,
    job: &Job,
    wait_ms: f64,
) -> Outcome {
    let id = job.req.id;
    let stats = &shared.stats;

    // Wall budget: queue wait spends it first. What is left is granted
    // to the run as a modeled-time budget (see DESIGN.md §10 for why the
    // two clocks are fungible here).
    let deadline_ms = job.req.deadline_ms.or(shared.cfg.default_deadline_ms);
    let run_budget_ms = match deadline_ms {
        Some(d) if wait_ms >= d => {
            stats.timeouts.fetch_add(1, Ordering::Relaxed);
            return Outcome {
                line: protocol::timeout_line(id, "queue", wait_ms, d),
                status: "timeout",
                attempts: 0,
            };
        }
        Some(d) => Some(d - wait_ms),
        None => None,
    };

    // Chaos is honored only when the server opted in; a production
    // server counts and ignores stamped chaos instead of executing it.
    let chaos = match &job.req.chaos {
        Some(tok) if shared.cfg.allow_chaos => match ChaosAction::from_token(tok) {
            Ok(a) => a,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    line: protocol::error_line(id, "usage", &e),
                    status: "error",
                    attempts: 0,
                };
            }
        },
        Some(_) => {
            stats.chaos_ignored.fetch_add(1, Ordering::Relaxed);
            ChaosAction::None
        }
        None => ChaosAction::None,
    };
    // Undetected bit flips would silently corrupt the response; chaos
    // flips therefore imply certification so they are caught + replayed.
    let verify = job.req.verify.unwrap_or(shared.cfg.verify) || chaos == ChaosAction::Bitflip;
    let flip_plan = (chaos == ChaosAction::Bitflip)
        .then(|| BitflipPlan::parse("status:1").expect("static chaos bitflip spec parses"));

    let max_attempts = shared.cfg.max_retries + 1;
    let mut attempt = 0u32;
    loop {
        if engine.is_none() {
            match build_engine(shared) {
                Ok(e) => *engine = Some(e),
                Err(err) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared.breaker.record_failure();
                    return Outcome {
                        line: protocol::error_line(id, "engine", &err.to_string()),
                        status: "error",
                        attempts: attempt + 1,
                    };
                }
            }
        }
        let eng = engine.as_ref().expect("just built");

        // Injection targets attempt 0 only, so a replay after quarantine
        // runs clean and reproduces the single-shot result bit for bit.
        let act = if attempt == 0 {
            chaos
        } else {
            ChaosAction::None
        };
        if let ChaosAction::Slow(ms) = act {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if act == ChaosAction::Panic {
                panic!("chaos: injected worker panic (ticket {ticket})");
            }
            let sab = (act == ChaosAction::Bitflip)
                .then(|| {
                    flip_plan
                        .as_ref()
                        .map(|plan| Sabotage { plan, salt: ticket })
                })
                .flatten();
            eng.run_governed(
                job.req.source,
                &xbfs_telemetry::Recorder::disabled(),
                sab.as_ref(),
                run_budget_ms,
                verify,
            )
        }));

        match result {
            Ok(Ok((run, cert))) => {
                shared.breaker.record_success();
                stats.ok.fetch_add(1, Ordering::Relaxed);
                if attempt > 0 {
                    stats.replayed.fetch_add(1, Ordering::Relaxed);
                }
                return Outcome {
                    line: protocol::ok_line(id, &run, cert.is_some(), wait_ms, attempt + 1),
                    status: "ok",
                    attempts: attempt + 1,
                };
            }
            Ok(Err(XbfsError::DeadlineExceeded {
                elapsed_us,
                deadline_us,
                ..
            })) => {
                // A run that outlived its budget is a typed timeout, not
                // a substrate failure: the breaker does not count it.
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    line: protocol::timeout_line(
                        id,
                        "run",
                        wait_ms + elapsed_us as f64 / 1000.0,
                        wait_ms + deadline_us as f64 / 1000.0,
                    ),
                    status: "timeout",
                    attempts: attempt + 1,
                };
            }
            Ok(Err(XbfsError::Integrity(e))) => {
                quarantine(shared, engine, "integrity", ticket);
                attempt += 1;
                if attempt >= max_attempts {
                    return give_up(shared, id, attempt, "integrity", &e.to_string());
                }
            }
            Ok(Err(other)) => {
                // Client-input errors (bad source, …): typed, no retry,
                // and no breaker penalty — the substrate is fine.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    line: protocol::error_line(id, "invalid", &other.to_string()),
                    status: "error",
                    attempts: attempt + 1,
                };
            }
            Err(panic_payload) => {
                let msg = panic_message(&panic_payload);
                stats.panics_recovered.fetch_add(1, Ordering::Relaxed);
                shared.rec.event(
                    None,
                    names::event::PANIC_RECOVERED,
                    0,
                    shared.now_us(),
                    vec![
                        ("ticket".into(), AttrValue::U64(ticket)),
                        ("message".into(), AttrValue::Str(msg.clone())),
                    ],
                );
                quarantine(shared, engine, "panic", ticket);
                attempt += 1;
                if attempt >= max_attempts {
                    return give_up(shared, id, attempt, "panic", &msg);
                }
            }
        }
    }
}

fn quarantine(shared: &Shared, engine: &mut Option<Engine>, why: &str, ticket: u64) {
    discard(engine);
    shared.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
    shared.rec.event(
        None,
        names::event::QUARANTINED,
        0,
        shared.now_us(),
        vec![
            ("ticket".into(), AttrValue::U64(ticket)),
            ("why".into(), AttrValue::Str(why.into())),
        ],
    );
}

fn give_up(shared: &Shared, id: u64, attempts: u32, kind: &str, msg: &str) -> Outcome {
    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    if shared.breaker.record_failure() {
        shared
            .stats
            .breaker_trips_seen
            .fetch_add(1, Ordering::Relaxed);
        shared.rec.event(
            None,
            names::event::BREAKER_TRIP,
            0,
            shared.now_us(),
            vec![("kind".into(), AttrValue::Str(kind.into()))],
        );
    }
    Outcome {
        line: protocol::error_line(
            id,
            kind,
            &format!("uncorrected after {attempts} attempts: {msg}"),
        ),
        status: "error",
        attempts,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
