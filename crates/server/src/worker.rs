//! Panic-isolated worker execution over either engine backend.
//!
//! Each worker thread owns one warm engine — a pooled single-device
//! [`Xbfs`] or, for `--cluster N` servers, a partitioned [`GcdCluster`]
//! spanning N modeled GCDs — and pops jobs off the admission queue until
//! it drains. Execution runs under `catch_unwind`: a panicking engine, a
//! run failing certification, or a cluster rank crash that checkpoint/
//! restart could not recover is **quarantined**: the engine (and, for the
//! single-device backend, its device) is discarded, a fresh one is built,
//! and the request is replayed with injection stripped. Because a fresh
//! engine reproduces the exact result of a single-shot run, a replayed
//! response carries the same digest as a fault-free execution — the e2e
//! tests assert this through the socket.
//!
//! The cluster backend partitions the graph **once** at engine build;
//! per-request runs reuse the partitioning (and the engine's level
//! scratch) and only re-upload status arrays. An injected rank crash
//! (chaos `crash@L`, wire token `crash@<level>:rank<r>`) becomes a
//! [`FaultPlan`] for that one run: the rank dies mid-request and is
//! restored from the latest level-synchronous checkpoint *within the
//! request's remaining deadline budget* — recovery overhead counts
//! against it. Per-rank health (crashes, restores, retransmitted bytes)
//! is drained after every run into the server-wide accumulator, so a
//! quarantined cluster loses no history.
//!
//! Deadline accounting: the request's wall budget is charged for queue
//! wait first; whatever remains is granted to the run as a modeled-time
//! budget (see DESIGN.md §10 for why the two clocks are fungible).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use gcd_sim::Device;
use xbfs_core::{BitflipPlan, MsBfs, Sabotage, Xbfs, XbfsError, MAX_CONCURRENT};
use xbfs_graph::Csr;
use xbfs_multi_gcd::{ClusterConfig, ClusterError, FaultConfig, FaultPlan, GcdCluster, LinkModel};
use xbfs_telemetry::{names, AttrValue};

use crate::chaos::ChaosAction;
use crate::metrics::{WORKER_IDLE, WORKER_QUARANTINED, WORKER_RUNNING};
use crate::protocol::{self, BfsRequest};
use crate::server::Shared;

/// One admitted request in flight: the parsed request, when it was
/// admitted, and the channel that delivers the response line back to the
/// connection that owns it.
pub(crate) struct Job {
    pub(crate) req: BfsRequest,
    pub(crate) enqueued: Instant,
    pub(crate) resp: mpsc::Sender<String>,
}

/// Engine generation, discarded and rebuilt as a unit on quarantine.
enum Engine<'g> {
    /// Warm pooled single-device engine (device + state together).
    Single(Box<Xbfs<Device>>),
    /// Warm pooled bit-parallel multi-source engine: one traversal
    /// serves up to [`MAX_CONCURRENT`] coalesced requests.
    Batch(Box<MsBfs<Device>>),
    /// Partitioned multi-GCD engine borrowing the server's graph.
    Cluster(Box<GcdCluster<'g>>),
}

fn build_engine<'g>(shared: &Shared, graph: &'g Csr) -> Result<Engine<'g>, String> {
    match shared.cfg.cluster {
        Some(n) => {
            let cfg = ClusterConfig {
                num_gcds: n,
                ..ClusterConfig::node_of_8()
            };
            GcdCluster::new(graph, cfg, LinkModel::frontier())
                .map(|c| Engine::Cluster(Box::new(c)))
                .map_err(|e| e.to_string())
        }
        None if shared.cfg.batch_width > 1 => MsBfs::new((shared.factory)(), graph)
            .map(|e| Engine::Batch(Box::new(e)))
            .map_err(|e| e.to_string()),
        None => Xbfs::new((shared.factory)(), graph, shared.xcfg)
            .map(|e| Engine::Single(Box::new(e)))
            .map_err(|e| e.to_string()),
    }
}

/// Drop a possibly-poisoned engine without letting its destructor take
/// the worker down: after a panic mid-run the pool bookkeeping may be
/// arbitrarily wrong, and `Drop` parks buffers back into it.
fn discard(engine: &mut Option<Engine<'_>>) {
    if let Some(e) = engine.take() {
        let _ = catch_unwind(AssertUnwindSafe(move || drop(e)));
    }
}

/// Deliver a response line; a dead connection with an answered-but-lost
/// request is the one "dropped" case the smoke test asserts never
/// happens under clean shutdown.
fn deliver(shared: &Shared, job_resp: &mpsc::Sender<String>, line: String) {
    if job_resp.send(line).is_err() {
        shared.stats.undelivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// The worker thread body: pop until the queue drains, serve each job
/// with quarantine-and-replay, then park the final engine generation.
pub(crate) fn worker_loop(shared: Arc<Shared>, worker_idx: usize) {
    // The cluster engine borrows the graph; holding our own Arc clone
    // (declared before `engine`, so dropped after it) pins it.
    let graph = Arc::clone(&shared.graph);
    let mut engine: Option<Engine<'_>> = None;
    let width = shared.cfg.batch_width.clamp(1, MAX_CONCURRENT);
    if width > 1 && shared.cfg.cluster.is_none() {
        let linger =
            std::time::Duration::from_secs_f64(shared.cfg.batch_window_ms.max(0.0) / 1000.0);
        while let Some(batch) = shared.queue.pop_batch(width, linger) {
            serve_batch(&shared, &graph, &mut engine, batch, worker_idx);
        }
    } else {
        while let Some((ticket, job)) = shared.queue.pop() {
            serve_one(&shared, &graph, &mut engine, ticket, job, worker_idx);
        }
    }
    // Normal teardown: the engine is healthy, let Drop park its buffers.
    drop(engine);
}

fn serve_one<'g>(
    shared: &Shared,
    graph: &'g Csr,
    engine: &mut Option<Engine<'g>>,
    ticket: u64,
    job: Job,
    worker_idx: usize,
) {
    let id = job.req.id;
    let wait_ms = job.enqueued.elapsed().as_secs_f64() * 1000.0;
    let now = shared.now_us();
    let rec = &shared.rec;
    let span = rec.begin_span(None, names::span::REQUEST, worker_idx, now);
    rec.span_attr(span, "id", AttrValue::U64(id));
    rec.span_attr(span, "ticket", AttrValue::U64(ticket));
    rec.span_attr(span, "source", AttrValue::U64(u64::from(job.req.source)));
    rec.counter(names::metric::WAIT_MS, worker_idx, now, wait_ms);
    let m = &shared.metrics;
    if let Some(w) = m.workers.get(worker_idx) {
        w.state.set(WORKER_RUNNING);
    }
    m.queue_wait_ms.record(wait_ms);
    m.flight.note(
        worker_idx,
        "request.start",
        format!("id={id} source={} wait_ms={wait_ms:.1}", job.req.source),
    );

    let outcome = execute(shared, graph, engine, ticket, &job, wait_ms, worker_idx, 0);
    rec.span_attr(span, "status", AttrValue::Str(outcome.status.into()));
    rec.span_attr(
        span,
        "attempts",
        AttrValue::U64(u64::from(outcome.attempts)),
    );
    rec.end_span(span, shared.now_us());

    let total_ms = job.enqueued.elapsed().as_secs_f64() * 1000.0;
    m.finish_request(worker_idx, outcome.status, total_ms);
    if let Some(d) = job.req.deadline_ms.or(shared.cfg.default_deadline_ms) {
        m.deadline_headroom_ms.record((d - total_ms).max(0.0));
    }
    // The device's pool totals only move while this worker runs, so
    // sampling once per request keeps the series current without
    // touching the hot path inside the run.
    sample_engine_pool(shared, worker_idx, engine);
    m.flight.note(
        worker_idx,
        "request.finish",
        format!(
            "id={id} status={} attempts={} total_ms={total_ms:.1}",
            outcome.status, outcome.attempts
        ),
    );
    if let Some(w) = m.workers.get(worker_idx) {
        w.state.set(WORKER_IDLE);
    }
    // Completed requests become idempotent: a replay of this id is
    // answered from cache instead of re-executing. Chaos-carrying
    // requests are never cached (soaks must exercise the real path).
    let cacheable = outcome.status == "ok" && job.req.chaos.is_none();
    if cacheable {
        shared.dedup.record(id, job.req.source, &outcome.line);
    }
    // The completion record lands before delivery: a crash after this
    // point replays the id from the warm cache, not by re-execution.
    shared.journal_done(id, job.req.source, outcome.status, &outcome.line, cacheable);
    deliver(shared, &job.resp, outcome.line);
}

struct Outcome {
    line: String,
    status: &'static str,
    attempts: u32,
}

/// What one engine attempt decided.
enum Step {
    /// Terminal: answer the client with this outcome.
    Finish(Outcome),
    /// Quarantine the engine and replay (injection stripped).
    Retry { kind: &'static str, msg: String },
}

/// Everything one attempt needs, bundled so the per-backend runners stay
/// readable.
struct Attempt<'a> {
    shared: &'a Shared,
    job: &'a Job,
    act: ChaosAction,
    verify: bool,
    ticket: u64,
    run_budget_ms: Option<f64>,
    wait_ms: f64,
    attempt: u32,
    worker: usize,
}

/// Serve one request through the attempt/quarantine loop. `prior_attempts`
/// pre-charges attempts already spent elsewhere (a failed batch attempt
/// counts as one), so replayed batch members report honest attempt counts
/// and burn their retry budget accordingly.
#[allow(clippy::too_many_arguments)]
fn execute<'g>(
    shared: &Shared,
    graph: &'g Csr,
    engine: &mut Option<Engine<'g>>,
    ticket: u64,
    job: &Job,
    wait_ms: f64,
    worker: usize,
    prior_attempts: u32,
) -> Outcome {
    let id = job.req.id;
    let stats = &shared.stats;

    // Wall budget: queue wait spends it first. What is left is granted
    // to the run as a modeled-time budget (see DESIGN.md §10 for why the
    // two clocks are fungible here).
    let deadline_ms = job.req.deadline_ms.or(shared.cfg.default_deadline_ms);
    let run_budget_ms = match deadline_ms {
        Some(d) if wait_ms >= d => {
            stats.timeouts.fetch_add(1, Ordering::Relaxed);
            return Outcome {
                line: protocol::timeout_line(id, "queue", wait_ms, d),
                status: "timeout",
                attempts: 0,
            };
        }
        Some(d) => Some(d - wait_ms),
        None => None,
    };

    // Chaos is honored only when the server opted in; a production
    // server counts and ignores stamped chaos instead of executing it.
    let chaos = match &job.req.chaos {
        Some(tok) if shared.cfg.allow_chaos => match ChaosAction::from_token(tok) {
            Ok(a) => a,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    line: protocol::error_line(id, "usage", &e),
                    status: "error",
                    attempts: 0,
                };
            }
        },
        Some(_) => {
            stats.chaos_ignored.fetch_add(1, Ordering::Relaxed);
            ChaosAction::None
        }
        None => ChaosAction::None,
    };
    // Backend-specific injections: rank crashes need a partitioned
    // cluster to kill a rank of; bitflips target the single-device pool.
    let mismatch = match (chaos, shared.cfg.cluster) {
        (ChaosAction::Crash { .. }, None) => Some("crash chaos requires a --cluster server"),
        (ChaosAction::Bitflip, Some(_)) => Some("bitflip chaos requires a single-device server"),
        (ChaosAction::Bitflip, None) if shared.cfg.batch_width > 1 => {
            Some("bitflip chaos requires a batch-width 1 server")
        }
        _ => None,
    };
    if let Some(why) = mismatch {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return Outcome {
            line: protocol::error_line(id, "usage", why),
            status: "error",
            attempts: 0,
        };
    }
    // Undetected bit flips would silently corrupt the response; chaos
    // flips therefore imply certification so they are caught + replayed.
    let verify = job.req.verify.unwrap_or(shared.cfg.verify) || chaos == ChaosAction::Bitflip;
    let flip_plan = (chaos == ChaosAction::Bitflip)
        .then(|| BitflipPlan::parse("status:1").expect("static chaos bitflip spec parses"));

    // A pre-charged attempt never eats the whole budget: a replayed
    // batch member always gets at least one solo attempt.
    let max_attempts = (shared.cfg.max_retries + 1).max(prior_attempts + 1);
    let mut attempt = prior_attempts;
    loop {
        if engine.is_none() {
            match build_engine(shared, graph) {
                Ok(e) => *engine = Some(e),
                Err(err) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared.breaker.record_failure();
                    return Outcome {
                        line: protocol::error_line(id, "engine", &err),
                        status: "error",
                        attempts: attempt + 1,
                    };
                }
            }
        }

        // Injection targets attempt 0 only, so a replay after quarantine
        // runs clean and reproduces the fault-free result bit for bit.
        let act = if attempt == 0 {
            chaos
        } else {
            ChaosAction::None
        };
        if let ChaosAction::Slow(ms) = act {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let ctx = Attempt {
            shared,
            job,
            act,
            verify,
            ticket,
            run_budget_ms,
            wait_ms,
            attempt,
            worker,
        };
        let step = match engine.as_mut().expect("just built") {
            Engine::Single(eng) => ctx.run_single(eng, flip_plan.as_ref()),
            Engine::Batch(eng) => ctx.run_batch_solo(eng),
            Engine::Cluster(cluster) => {
                let step = ctx.run_cluster(cluster, graph);
                // Drain per-rank health every attempt — before any
                // quarantine discards the engine — so crashes, restores
                // and retransmits survive into the serve report.
                let health = cluster.take_health();
                shared.merge_rank_health(&health);
                step
            }
        };
        match step {
            Step::Finish(outcome) => return outcome,
            Step::Retry { kind, msg } => {
                quarantine(shared, engine, kind, ticket, worker);
                attempt += 1;
                if attempt >= max_attempts {
                    return give_up(shared, id, attempt, kind, &msg, worker);
                }
            }
        }
    }
}

impl Attempt<'_> {
    /// One attempt on the warm pooled single-device engine.
    fn run_single(&self, eng: &Xbfs<Device>, flip_plan: Option<&BitflipPlan>) -> Step {
        let shared = self.shared;
        let stats = &shared.stats;
        let id = self.job.req.id;
        let ticket = self.ticket;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.act == ChaosAction::Panic {
                panic!("chaos: injected worker panic (ticket {ticket})");
            }
            let sab = (self.act == ChaosAction::Bitflip)
                .then(|| flip_plan.map(|plan| Sabotage { plan, salt: ticket }))
                .flatten();
            eng.run_governed(
                self.job.req.source,
                &xbfs_telemetry::Recorder::disabled(),
                sab.as_ref(),
                self.run_budget_ms,
                self.verify,
            )
        }));

        match result {
            Ok(Ok((run, cert))) => {
                shared.breaker.record_success();
                stats.ok.fetch_add(1, Ordering::Relaxed);
                if self.attempt > 0 {
                    stats.replayed.fetch_add(1, Ordering::Relaxed);
                }
                Step::Finish(Outcome {
                    line: protocol::ok_line(
                        id,
                        &run,
                        cert.is_some(),
                        self.wait_ms,
                        self.attempt + 1,
                    ),
                    status: "ok",
                    attempts: self.attempt + 1,
                })
            }
            Ok(Err(XbfsError::DeadlineExceeded {
                elapsed_us,
                deadline_us,
                ..
            })) => Step::Finish(self.timeout(elapsed_us, deadline_us)),
            Ok(Err(XbfsError::Integrity(e))) => Step::Retry {
                kind: "integrity",
                msg: e.to_string(),
            },
            Ok(Err(other)) => {
                // Client-input errors (bad source, …): typed, no retry,
                // and no breaker penalty — the substrate is fine.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Step::Finish(Outcome {
                    line: protocol::error_line(id, "invalid", &other.to_string()),
                    status: "error",
                    attempts: self.attempt + 1,
                })
            }
            Err(payload) => Step::Retry {
                kind: "panic",
                msg: self.note_panic(payload.as_ref()),
            },
        }
    }

    /// One attempt on the bit-parallel multi-source engine, run 1-wide:
    /// the solo fallback of a batch-width server (lone members, and the
    /// replay path after a batch quarantine or deadline split). Responses
    /// carry the slot's levels-only digest, so every `ok` a batch-width
    /// server emits — coalesced or solo — is digest-comparable.
    fn run_batch_solo(&self, eng: &MsBfs<Device>) -> Step {
        let shared = self.shared;
        let stats = &shared.stats;
        let id = self.job.req.id;
        let ticket = self.ticket;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.act == ChaosAction::Panic {
                panic!("chaos: injected worker panic (ticket {ticket})");
            }
            eng.run_governed(&[self.job.req.source], self.run_budget_ms, self.verify)
        }));

        match result {
            Ok(Ok((run, certs))) => {
                shared.breaker.record_success();
                stats.ok.fetch_add(1, Ordering::Relaxed);
                if self.attempt > 0 {
                    stats.replayed.fetch_add(1, Ordering::Relaxed);
                }
                Step::Finish(Outcome {
                    line: protocol::batched_ok_line(
                        id,
                        &run,
                        0,
                        certs.is_some(),
                        self.wait_ms,
                        self.attempt + 1,
                        1,
                    ),
                    status: "ok",
                    attempts: self.attempt + 1,
                })
            }
            Ok(Err(XbfsError::DeadlineExceeded {
                elapsed_us,
                deadline_us,
                ..
            })) => Step::Finish(self.timeout(elapsed_us, deadline_us)),
            Ok(Err(XbfsError::Integrity(e))) => Step::Retry {
                kind: "integrity",
                msg: e.to_string(),
            },
            Ok(Err(other)) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Step::Finish(Outcome {
                    line: protocol::error_line(id, "invalid", &other.to_string()),
                    status: "error",
                    attempts: self.attempt + 1,
                })
            }
            Err(payload) => Step::Retry {
                kind: "panic",
                msg: self.note_panic(payload.as_ref()),
            },
        }
    }

    /// One attempt on the partitioned cluster engine. A `Crash` action
    /// becomes a one-run [`FaultPlan`]; the engine recovers it from the
    /// latest checkpoint within the remaining deadline budget.
    fn run_cluster(&self, cluster: &mut GcdCluster<'_>, graph: &Csr) -> Step {
        let shared = self.shared;
        let stats = &shared.stats;
        let id = self.job.req.id;
        let ticket = self.ticket;
        let fault_cfg = match self.act {
            ChaosAction::Crash { level, rank } => {
                match FaultPlan::parse(&format!("crash@{level}:rank{rank}")) {
                    Ok(plan) => FaultConfig {
                        plan,
                        checkpoint_every: shared.cfg.checkpoint_every,
                        ..FaultConfig::default()
                    },
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        return Step::Finish(Outcome {
                            line: protocol::error_line(id, "usage", &e.to_string()),
                            status: "error",
                            attempts: self.attempt + 1,
                        });
                    }
                }
            }
            _ => FaultConfig {
                checkpoint_every: shared.cfg.checkpoint_every,
                ..FaultConfig::default()
            },
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.act == ChaosAction::Panic {
                panic!("chaos: injected worker panic (ticket {ticket})");
            }
            cluster.run_governed(
                self.job.req.source,
                &fault_cfg,
                &xbfs_telemetry::Recorder::disabled(),
                self.run_budget_ms,
            )
        }));

        match result {
            Ok(Ok(run)) => {
                // The cluster engine has no certificate machinery; its
                // certification is a host-side validation of the level
                // array against the graph. A failure is treated exactly
                // like a single-device integrity fault: quarantine the
                // engine and replay clean.
                if self.verify {
                    if let Err(e) =
                        xbfs_graph::validate_bfs_levels(graph, self.job.req.source, &run.levels)
                    {
                        return Step::Retry {
                            kind: "integrity",
                            msg: format!("cluster result failed validation: {e:?}"),
                        };
                    }
                }
                // Per-level modeled-time split: how much of this run went
                // to expanding frontiers vs exchanging them across links.
                let (mut expand_us, mut exchange_us) = (0.0f64, 0.0f64);
                for ls in &run.level_stats {
                    expand_us += ls.expand_ms * 1000.0;
                    exchange_us += ls.exchange_ms * 1000.0;
                }
                shared.metrics.cluster_expand_us.add(expand_us as u64);
                shared.metrics.cluster_exchange_us.add(exchange_us as u64);
                let recoveries = run.recoveries.len() as u64;
                if recoveries > 0 {
                    shared.rec.event(
                        None,
                        names::event::RANK_RECOVERED,
                        0,
                        shared.now_us(),
                        vec![
                            ("ticket".into(), AttrValue::U64(ticket)),
                            ("recoveries".into(), AttrValue::U64(recoveries)),
                        ],
                    );
                }
                shared.breaker.record_success();
                stats.ok.fetch_add(1, Ordering::Relaxed);
                if self.attempt > 0 {
                    stats.replayed.fetch_add(1, Ordering::Relaxed);
                }
                Step::Finish(Outcome {
                    line: protocol::cluster_ok_line(
                        id,
                        &run,
                        self.verify,
                        self.wait_ms,
                        self.attempt + 1,
                        recoveries,
                    ),
                    status: "ok",
                    attempts: self.attempt + 1,
                })
            }
            Ok(Err(ClusterError::DeadlineExceeded {
                elapsed_us,
                deadline_us,
                ..
            })) => Step::Finish(self.timeout(elapsed_us, deadline_us)),
            Ok(Err(e @ (ClusterError::Unrecoverable { .. } | ClusterError::LinkFailed { .. }))) => {
                // Checkpoint/restart could not save this run — the whole
                // cluster engine is suspect. Quarantine it and replay the
                // victim request on a rebuilt cluster.
                Step::Retry {
                    kind: "unrecoverable",
                    msg: e.to_string(),
                }
            }
            Ok(Err(other)) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Step::Finish(Outcome {
                    line: protocol::error_line(id, "invalid", &other.to_string()),
                    status: "error",
                    attempts: self.attempt + 1,
                })
            }
            Err(payload) => Step::Retry {
                kind: "panic",
                msg: self.note_panic(payload.as_ref()),
            },
        }
    }

    /// Typed mid-run timeout: counted, never a breaker penalty.
    fn timeout(&self, elapsed_us: u64, deadline_us: u64) -> Outcome {
        self.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        Outcome {
            line: protocol::timeout_line(
                self.job.req.id,
                "run",
                self.wait_ms + elapsed_us as f64 / 1000.0,
                self.wait_ms + deadline_us as f64 / 1000.0,
            ),
            status: "timeout",
            attempts: self.attempt + 1,
        }
    }

    /// Count + record a contained panic, returning its message.
    fn note_panic(&self, payload: &(dyn std::any::Any + Send)) -> String {
        record_panic(self.shared, self.worker, self.ticket, payload)
    }
}

/// Count + record a contained panic, returning its message. Dumps the
/// flight recorder: a panic is exactly the moment the recent per-worker
/// event rings earn their keep.
fn record_panic(
    shared: &Shared,
    worker: usize,
    ticket: u64,
    payload: &(dyn std::any::Any + Send),
) -> String {
    let msg = panic_message(payload);
    shared
        .stats
        .panics_recovered
        .fetch_add(1, Ordering::Relaxed);
    if let Some(w) = shared.metrics.workers.get(worker) {
        w.panics.add(1);
    }
    shared
        .metrics
        .flight
        .note(worker, "panic", format!("ticket={ticket} {msg}"));
    shared.metrics.dump_flight("worker-panic");
    shared.rec.event(
        None,
        names::event::PANIC_RECOVERED,
        0,
        shared.now_us(),
        vec![
            ("ticket".into(), AttrValue::U64(ticket)),
            ("message".into(), AttrValue::Str(msg.clone())),
        ],
    );
    msg
}

fn quarantine(
    shared: &Shared,
    engine: &mut Option<Engine<'_>>,
    why: &str,
    ticket: u64,
    worker: usize,
) {
    let m = &shared.metrics;
    if let Some(w) = m.workers.get(worker) {
        w.state.set(WORKER_QUARANTINED);
        w.rebuilds.add(1);
    }
    m.flight
        .note(worker, "quarantine", format!("ticket={ticket} why={why}"));
    m.dump_flight(&format!("quarantine-{why}"));
    discard(engine);
    if let Some(w) = m.workers.get(worker) {
        w.state.set(WORKER_RUNNING); // rebuilding + replaying next
    }
    shared.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
    shared.rec.event(
        None,
        names::event::QUARANTINED,
        0,
        shared.now_us(),
        vec![
            ("ticket".into(), AttrValue::U64(ticket)),
            ("why".into(), AttrValue::Str(why.into())),
        ],
    );
}

fn give_up(
    shared: &Shared,
    id: u64,
    attempts: u32,
    kind: &str,
    msg: &str,
    worker: usize,
) -> Outcome {
    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    if shared.breaker.record_failure() {
        shared
            .stats
            .breaker_trips_seen
            .fetch_add(1, Ordering::Relaxed);
        shared.metrics.flight.note(
            worker,
            "breaker.trip",
            format!("id={id} kind={kind} after {attempts} attempts"),
        );
        shared.metrics.dump_flight("breaker-open");
        shared.rec.event(
            None,
            names::event::BREAKER_TRIP,
            0,
            shared.now_us(),
            vec![("kind".into(), AttrValue::Str(kind.into()))],
        );
    }
    Outcome {
        line: protocol::error_line(
            id,
            kind,
            &format!("uncorrected after {attempts} attempts: {msg}"),
        ),
        status: "error",
        attempts,
    }
}

/// Sample the single-device pool gauges of whichever warm engine this
/// worker holds (the cluster backend has no device pool).
fn sample_engine_pool(shared: &Shared, worker: usize, engine: &Option<Engine<'_>>) {
    match engine.as_ref() {
        Some(Engine::Single(e)) => shared.metrics.sample_pool(worker, e.device().pool_gauges()),
        Some(Engine::Batch(e)) => shared.metrics.sample_pool(worker, e.device().pool_gauges()),
        _ => {}
    }
}

/// One triaged batch member: an admitted job plus everything the batch
/// attempt needs to demultiplex it again (its slot, its own remaining
/// budget, its effective verify, the chaos it carried).
struct Member {
    ticket: u64,
    job: Job,
    wait_ms: f64,
    run_budget_ms: Option<f64>,
    verify: bool,
    panic_chaos: bool,
    slow_ms: Option<u64>,
    had_chaos: bool,
    slot: usize,
}

/// Shed, reject, or admit one popped job into the batch. Members are
/// always triaged (and answered) individually — a blown budget or a bad
/// source never takes the batch down with it.
fn triage(shared: &Shared, ticket: u64, job: Job, worker: usize) -> Option<Member> {
    let id = job.req.id;
    let wait_ms = job.enqueued.elapsed().as_secs_f64() * 1000.0;
    shared.metrics.queue_wait_ms.record(wait_ms);
    shared
        .rec
        .counter(names::metric::WAIT_MS, worker, shared.now_us(), wait_ms);
    let reject = |status: &'static str, line: String| {
        if status == "timeout" {
            shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        shared.metrics.finish_request(worker, status, wait_ms);
        // Triage rejections are terminal too — without a completion
        // record a restart would re-enqueue (and re-reject) them forever.
        shared.journal_done(id, job.req.source, status, &line, false);
        deliver(shared, &job.resp, line);
    };
    // Queue wait spends the wall budget first, exactly like the solo path.
    let deadline_ms = job.req.deadline_ms.or(shared.cfg.default_deadline_ms);
    let run_budget_ms = match deadline_ms {
        Some(d) if wait_ms >= d => {
            reject("timeout", protocol::timeout_line(id, "queue", wait_ms, d));
            return None;
        }
        Some(d) => Some(d - wait_ms),
        None => None,
    };
    // Validate the source up front: `run_governed` rejects a whole batch
    // for one bad member, and that member's error is not its neighbors'.
    let n = shared.graph.num_vertices();
    if job.req.source as usize >= n {
        let msg = XbfsError::SourceOutOfRange {
            source: job.req.source,
            num_vertices: n,
        }
        .to_string();
        reject("error", protocol::error_line(id, "invalid", &msg));
        return None;
    }
    let had_chaos = job.req.chaos.is_some();
    let mut panic_chaos = false;
    let mut slow_ms = None;
    if let Some(tok) = &job.req.chaos {
        if !shared.cfg.allow_chaos {
            shared.stats.chaos_ignored.fetch_add(1, Ordering::Relaxed);
        } else {
            match ChaosAction::from_token(tok) {
                Ok(ChaosAction::Panic) => panic_chaos = true,
                Ok(ChaosAction::Slow(ms)) => slow_ms = Some(ms),
                Ok(ChaosAction::None) => {}
                Ok(ChaosAction::Bitflip) => {
                    reject(
                        "error",
                        protocol::error_line(
                            id,
                            "usage",
                            "bitflip chaos requires a batch-width 1 server",
                        ),
                    );
                    return None;
                }
                Ok(ChaosAction::Crash { .. }) => {
                    reject(
                        "error",
                        protocol::error_line(
                            id,
                            "usage",
                            "crash chaos requires a --cluster server",
                        ),
                    );
                    return None;
                }
                Err(e) => {
                    reject("error", protocol::error_line(id, "usage", &e));
                    return None;
                }
            }
        }
    }
    let verify = job.req.verify.unwrap_or(shared.cfg.verify);
    Some(Member {
        ticket,
        job,
        wait_ms,
        run_budget_ms,
        verify,
        panic_chaos,
        slow_ms,
        had_chaos,
        slot: 0,
    })
}

/// Epilogue shared by every batch-member outcome: latency + headroom
/// series, idempotency cache, and delivery.
fn finish_member(shared: &Shared, worker: usize, mb: &Member, status: &str, line: String) {
    let total_ms = mb.job.enqueued.elapsed().as_secs_f64() * 1000.0;
    shared.metrics.finish_request(worker, status, total_ms);
    if let Some(d) = mb.job.req.deadline_ms.or(shared.cfg.default_deadline_ms) {
        shared
            .metrics
            .deadline_headroom_ms
            .record((d - total_ms).max(0.0));
    }
    let cacheable = status == "ok" && !mb.had_chaos;
    if cacheable {
        shared.dedup.record(mb.job.req.id, mb.job.req.source, &line);
    }
    shared.journal_done(mb.job.req.id, mb.job.req.source, status, &line, cacheable);
    deliver(shared, &mb.job.resp, line);
}

/// Re-run one batch member solo (1-wide) on the — possibly just
/// rebuilt — batch engine, under its own remaining budget and the full
/// quarantine-and-replay machinery. The failed batch attempt is
/// pre-charged as attempt 1, so responses report honest attempt counts.
fn replay_member<'g>(
    shared: &Shared,
    graph: &'g Csr,
    engine: &mut Option<Engine<'g>>,
    mut mb: Member,
    worker: usize,
) {
    // Injection fired (or was stripped) on the batch attempt already.
    mb.job.req.chaos = None;
    let wait_ms = mb.job.enqueued.elapsed().as_secs_f64() * 1000.0;
    let outcome = execute(
        shared, graph, engine, mb.ticket, &mb.job, wait_ms, worker, 1,
    );
    finish_member(shared, worker, &mb, outcome.status, outcome.line);
}

/// Serve one coalesced batch: triage members individually, dedup
/// duplicate sources into shared slots, run one bit-parallel traversal
/// under the tightest member budget, and demultiplex per-slot results
/// back to every member. A deadline blow splits the batch (healthy
/// engine, solo re-runs under each member's own budget); a panic or
/// integrity fault quarantines the engine and replays members solo on a
/// rebuilt one — so batching never weakens any robustness guarantee.
fn serve_batch<'g>(
    shared: &Shared,
    graph: &'g Csr,
    engine: &mut Option<Engine<'g>>,
    batch: Vec<(u64, Job)>,
    worker: usize,
) {
    let m = &shared.metrics;
    let width = shared.cfg.batch_width.clamp(1, MAX_CONCURRENT);
    let size = batch.len();
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .batched_requests
        .fetch_add(size as u64, Ordering::Relaxed);
    shared
        .stats
        .max_batch
        .fetch_max(size as u64, Ordering::Relaxed);
    m.batches_total.add(1);
    m.batch_size.record(size as f64);
    m.batch_occupancy_pct
        .set(size as f64 * 100.0 / width as f64);
    if let Some((_, youngest)) = batch.last() {
        // ~0 when the youngest arrival filled the batch; up to the
        // linger window (plus queue wait) for a lone request that
        // outwaited the clock.
        m.linger_wait_ms
            .record(youngest.enqueued.elapsed().as_secs_f64() * 1000.0);
    }
    if let Some(w) = m.workers.get(worker) {
        w.state.set(WORKER_RUNNING);
    }
    let first_ticket = batch.first().map(|&(t, _)| t).unwrap_or(0);
    m.flight.note(
        worker,
        "batch.start",
        format!("size={size} ticket0={first_ticket}"),
    );

    let mut members: Vec<Member> = batch
        .into_iter()
        .filter_map(|(t, j)| triage(shared, t, j, worker))
        .collect();
    'run: {
        if members.is_empty() {
            break 'run;
        }
        // Duplicate sources share one slot: answered once, demuxed many.
        let mut sources: Vec<u32> = Vec::new();
        for mb in &mut members {
            mb.slot = sources
                .iter()
                .position(|&s| s == mb.job.req.source)
                .unwrap_or_else(|| {
                    sources.push(mb.job.req.source);
                    sources.len() - 1
                });
        }
        // The batch runs under the *tightest* member's remaining budget;
        // a blown batch is split below, so a generous member is never
        // timed out by a stingy neighbor.
        let budget = members
            .iter()
            .filter_map(|mb| mb.run_budget_ms)
            .fold(None, |acc: Option<f64>, b| {
                Some(acc.map_or(b, |a: f64| a.min(b)))
            });
        let verify = members.iter().any(|mb| mb.verify);
        let panic_injected = members.iter().any(|mb| mb.panic_chaos);
        if let Some(ms) = members.iter().filter_map(|mb| mb.slow_ms).max() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if engine.is_none() {
            match build_engine(shared, graph) {
                Ok(e) => *engine = Some(e),
                Err(err) => {
                    shared.breaker.record_failure();
                    for mb in members {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        let line = protocol::error_line(mb.job.req.id, "engine", &err);
                        finish_member(shared, worker, &mb, "error", line);
                    }
                    break 'run;
                }
            }
        }
        let result = {
            let Some(Engine::Batch(eng)) = engine.as_ref() else {
                unreachable!("batch workers always build the batch engine")
            };
            catch_unwind(AssertUnwindSafe(|| {
                if panic_injected {
                    panic!("chaos: injected worker panic (batch ticket0 {first_ticket})");
                }
                eng.run_governed(&sources, budget, verify)
            }))
        };
        match result {
            Ok(Ok((run, certs))) => {
                shared.breaker.record_success();
                let served = members.len();
                for mb in members {
                    shared.stats.ok.fetch_add(1, Ordering::Relaxed);
                    let certified = certs.is_some() && mb.verify;
                    let line = protocol::batched_ok_line(
                        mb.job.req.id,
                        &run,
                        mb.slot,
                        certified,
                        mb.wait_ms,
                        1,
                        served,
                    );
                    finish_member(shared, worker, &mb, "ok", line);
                }
            }
            Ok(Err(XbfsError::DeadlineExceeded { .. })) => {
                // The tightest budget bound everyone; the engine is
                // healthy. Split: re-run each member solo under its own
                // budget, so nobody times out *because* of coalescing.
                m.flight.note(
                    worker,
                    "batch.split",
                    format!("size={} why=deadline", members.len()),
                );
                for mb in members {
                    replay_member(shared, graph, engine, mb, worker);
                }
            }
            Ok(Err(XbfsError::Integrity(e))) => {
                m.flight.note(worker, "batch.integrity", format!("{e}"));
                quarantine(shared, engine, "integrity", first_ticket, worker);
                for mb in members {
                    replay_member(shared, graph, engine, mb, worker);
                }
            }
            Ok(Err(other)) => {
                // Sources were validated at triage, so no member input
                // explains this; treat the engine as poisoned.
                m.flight.note(worker, "batch.error", format!("{other}"));
                quarantine(shared, engine, "engine-error", first_ticket, worker);
                for mb in members {
                    replay_member(shared, graph, engine, mb, worker);
                }
            }
            Err(payload) => {
                record_panic(shared, worker, first_ticket, payload.as_ref());
                quarantine(shared, engine, "panic", first_ticket, worker);
                for mb in members {
                    replay_member(shared, graph, engine, mb, worker);
                }
            }
        }
    }
    sample_engine_pool(shared, worker, engine);
    m.flight
        .note(worker, "batch.finish", format!("ticket0={first_ticket}"));
    if let Some(w) = m.workers.get(worker) {
        w.state.set(WORKER_IDLE);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
