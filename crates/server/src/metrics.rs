//! The server's live metrics plane: every stage of the serving path
//! reports into one always-on [`MetricsRegistry`], and a fixed-memory
//! [`FlightRecorder`] remembers what each worker was doing so failures
//! can be dumped post-mortem.
//!
//! All handles are pre-registered at server start, so the hot path
//! never touches the registry lock — an update is the one relaxed
//! atomic the telemetry crate promises. Metric increments sit at the
//! exact same sites as the drain-time [`crate::server::Counters`], which
//! is what makes a mid-load scrape reconcile with the final serve
//! report.
//!
//! Per-rank cluster series and the flight-dump ledger are the two
//! exceptions to "pre-registered": ranks appear when the first cluster
//! run's health is merged (registration is get-or-create, off the
//! request path), and dumps are rare by definition.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gcd_sim::PoolGauges;
use xbfs_multi_gcd::RankHealth;
use xbfs_telemetry::{
    names::live, Counter, FlightRecorder, Gauge, LogHistogram, MetricUnit, MetricsRegistry,
    MetricsSnapshot,
};

/// Worker state gauge codes.
pub(crate) const WORKER_IDLE: f64 = 0.0;
/// Worker is executing a request.
pub(crate) const WORKER_RUNNING: f64 = 1.0;
/// Worker just quarantined its engine and is rebuilding.
pub(crate) const WORKER_QUARANTINED: f64 = 2.0;

/// Most flight dumps kept on disk per server life; beyond this, dump
/// requests still count but stop writing files (a crash loop must not
/// fill the disk).
const MAX_FLIGHT_DUMPS: usize = 32;

/// Request statuses, in the order the per-status handle arrays use.
const STATUSES: [&str; 3] = ["ok", "timeout", "error"];

/// Index into the per-status handle arrays.
pub(crate) fn status_idx(status: &str) -> usize {
    STATUSES.iter().position(|&s| s == status).unwrap_or(2)
}

/// Handles for one worker's series.
pub(crate) struct WorkerMetrics {
    pub(crate) state: Arc<Gauge>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) rebuilds: Arc<Counter>,
    pub(crate) panics: Arc<Counter>,
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    pool_bytes: Arc<Gauge>,
    pool_pressure: Arc<Counter>,
    /// Last pool sample, for delta accounting (counters stay monotone).
    last_pool: Mutex<PoolGauges>,
}

/// Handles for one cluster rank's series (registered on first sight).
struct RankMetrics {
    crashes: Arc<Counter>,
    restores: Arc<Counter>,
    retransmitted: Arc<Counter>,
}

/// Everything the serving path records into, plus the flight recorder
/// and its dump ledger.
pub struct ServerMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) flight: FlightRecorder,
    flight_dir: PathBuf,
    dumps: Mutex<Vec<String>>,
    dump_requests: AtomicU64,

    // Admission / connection stage.
    pub(crate) requests: [Arc<Counter>; 3],
    pub(crate) latency_ms: [Arc<LogHistogram>; 3],
    pub(crate) admitted: Arc<Counter>,
    pub(crate) shed_queue: Arc<Counter>,
    pub(crate) shed_breaker: Arc<Counter>,
    pub(crate) rejected_draining: Arc<Counter>,
    pub(crate) deduped: Arc<Counter>,
    pub(crate) bad_lines: Arc<Counter>,
    pub(crate) long_lines: Arc<Counter>,
    pub(crate) idle_disconnects: Arc<Counter>,
    pub(crate) connections: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) retry_after_ms: Arc<Gauge>,
    pub(crate) queue_wait_ms: Arc<LogHistogram>,
    pub(crate) deadline_headroom_ms: Arc<LogHistogram>,

    // Batching stage (all zero / empty unless `--batch-width > 1`).
    pub(crate) batches_total: Arc<Counter>,
    pub(crate) batch_size: Arc<LogHistogram>,
    pub(crate) batch_occupancy_pct: Arc<Gauge>,
    pub(crate) linger_wait_ms: Arc<LogHistogram>,

    // Breaker.
    pub(crate) breaker_state: Arc<Gauge>,
    pub(crate) breaker_transitions: Arc<Counter>,
    pub(crate) breaker_trips: Arc<Counter>,
    /// High-water marks of the breaker's own totals already folded into
    /// the counters above (scrape-time delta sync, `fetch_max`-guarded
    /// so concurrent scrapes never double-add).
    breaker_transitions_seen: AtomicU64,
    breaker_trips_seen: AtomicU64,
    pub(crate) flight_dumps_total: Arc<Counter>,

    // Durability (all zero unless `--journal` is set). The journal owns
    // the authoritative totals; scrapes fold them in as deltas (same
    // `fetch_max` guard as the breaker) so the append hot path touches
    // only the journal's own relaxed atomics.
    pub(crate) journal_appends: Arc<Counter>,
    pub(crate) journal_fsyncs: Arc<Counter>,
    pub(crate) journal_bytes: Arc<Counter>,
    pub(crate) replayed_requests: Arc<Counter>,
    pub(crate) recovery_ms: Arc<Gauge>,
    journal_appends_seen: AtomicU64,
    journal_fsyncs_seen: AtomicU64,
    journal_bytes_seen: AtomicU64,

    // Per-worker.
    pub(crate) workers: Vec<WorkerMetrics>,

    // Cluster.
    pub(crate) cluster_expand_us: Arc<Counter>,
    pub(crate) cluster_exchange_us: Arc<Counter>,
    ranks: Mutex<Vec<RankMetrics>>,
}

impl ServerMetrics {
    /// Pre-register every fixed series for a `workers`-wide server.
    /// Flight dumps land in `flight_dir`; each lane remembers
    /// `flight_ring` events.
    pub fn new(workers: usize, flight_dir: PathBuf, flight_ring: usize) -> Self {
        let reg = MetricsRegistry::new();
        let requests = STATUSES
            .map(|s| reg.counter(live::REQUESTS_TOTAL, MetricUnit::Count, &[("status", s)]));
        let latency_ms = STATUSES.map(|s| {
            reg.histogram(
                live::REQUEST_LATENCY_MS,
                MetricUnit::Millis,
                &[("status", s)],
            )
        });
        let worker_handles = (0..workers.max(1))
            .map(|i| {
                let w = i.to_string();
                let l: &[(&str, &str)] = &[("worker", w.as_str())];
                WorkerMetrics {
                    state: reg.gauge(live::WORKER_STATE, MetricUnit::State, l),
                    requests: reg.counter(live::WORKER_REQUESTS_TOTAL, MetricUnit::Count, l),
                    rebuilds: reg.counter(live::WORKER_REBUILDS_TOTAL, MetricUnit::Count, l),
                    panics: reg.counter(live::WORKER_PANICS_TOTAL, MetricUnit::Count, l),
                    pool_hits: reg.counter(live::POOL_HITS_TOTAL, MetricUnit::Count, l),
                    pool_misses: reg.counter(live::POOL_MISSES_TOTAL, MetricUnit::Count, l),
                    pool_bytes: reg.gauge(live::POOL_BYTES, MetricUnit::Bytes, l),
                    pool_pressure: reg.counter(live::POOL_PRESSURE_TOTAL, MetricUnit::Count, l),
                    last_pool: Mutex::new(PoolGauges::default()),
                }
            })
            .collect();
        Self {
            flight: FlightRecorder::new(workers.max(1), flight_ring.max(8)),
            flight_dir,
            dumps: Mutex::new(Vec::new()),
            dump_requests: AtomicU64::new(0),
            requests,
            latency_ms,
            admitted: reg.counter(live::ADMITTED_TOTAL, MetricUnit::Count, &[]),
            shed_queue: reg.counter(live::SHED_TOTAL, MetricUnit::Count, &[("reason", "queue")]),
            shed_breaker: reg.counter(
                live::SHED_TOTAL,
                MetricUnit::Count,
                &[("reason", "breaker")],
            ),
            rejected_draining: reg.counter(live::REJECTED_DRAINING_TOTAL, MetricUnit::Count, &[]),
            deduped: reg.counter(live::DEDUPED_TOTAL, MetricUnit::Count, &[]),
            bad_lines: reg.counter(live::BAD_LINES_TOTAL, MetricUnit::Count, &[]),
            long_lines: reg.counter(live::LONG_LINES_TOTAL, MetricUnit::Count, &[]),
            idle_disconnects: reg.counter(live::IDLE_DISCONNECTS_TOTAL, MetricUnit::Count, &[]),
            connections: reg.counter(live::CONNECTIONS_TOTAL, MetricUnit::Count, &[]),
            queue_depth: reg.gauge(live::QUEUE_DEPTH, MetricUnit::Count, &[]),
            retry_after_ms: reg.gauge(live::RETRY_AFTER_MS, MetricUnit::Millis, &[]),
            queue_wait_ms: reg.histogram(live::QUEUE_WAIT_MS, MetricUnit::Millis, &[]),
            deadline_headroom_ms: reg.histogram(
                live::DEADLINE_HEADROOM_MS,
                MetricUnit::Millis,
                &[],
            ),
            batches_total: reg.counter(live::BATCHES_TOTAL, MetricUnit::Count, &[]),
            batch_size: reg.histogram(live::BATCH_SIZE, MetricUnit::Count, &[]),
            batch_occupancy_pct: reg.gauge(live::BATCH_OCCUPANCY_PCT, MetricUnit::Count, &[]),
            linger_wait_ms: reg.histogram(live::LINGER_WAIT_MS, MetricUnit::Millis, &[]),
            breaker_state: reg.gauge(live::BREAKER_STATE, MetricUnit::State, &[]),
            breaker_transitions: reg.counter(
                live::BREAKER_TRANSITIONS_TOTAL,
                MetricUnit::Count,
                &[],
            ),
            breaker_trips: reg.counter(live::BREAKER_TRIPS_TOTAL, MetricUnit::Count, &[]),
            breaker_transitions_seen: AtomicU64::new(0),
            breaker_trips_seen: AtomicU64::new(0),
            flight_dumps_total: reg.counter(live::FLIGHT_DUMPS_TOTAL, MetricUnit::Count, &[]),
            journal_appends: reg.counter(live::JOURNAL_APPENDS_TOTAL, MetricUnit::Count, &[]),
            journal_fsyncs: reg.counter(live::JOURNAL_FSYNCS_TOTAL, MetricUnit::Count, &[]),
            journal_bytes: reg.counter(live::JOURNAL_BYTES_TOTAL, MetricUnit::Bytes, &[]),
            replayed_requests: reg.counter(live::REPLAYED_REQUESTS_TOTAL, MetricUnit::Count, &[]),
            recovery_ms: reg.gauge(live::RECOVERY_MS, MetricUnit::Millis, &[]),
            journal_appends_seen: AtomicU64::new(0),
            journal_fsyncs_seen: AtomicU64::new(0),
            journal_bytes_seen: AtomicU64::new(0),
            workers: worker_handles,
            cluster_expand_us: reg.counter(live::CLUSTER_EXPAND_US_TOTAL, MetricUnit::Micros, &[]),
            cluster_exchange_us: reg.counter(
                live::CLUSTER_EXCHANGE_US_TOTAL,
                MetricUnit::Micros,
                &[],
            ),
            ranks: Mutex::new(Vec::new()),
            registry: reg,
        }
    }

    /// Fold the breaker's current state + totals into the live series.
    /// Deltas are guarded by `fetch_max`, so racing scrapes add each
    /// transition exactly once.
    pub(crate) fn sync_breaker(&self, state_code: u8, transitions: u64, trips: u64) {
        self.breaker_state.set(f64::from(state_code));
        let prev = self
            .breaker_transitions_seen
            .fetch_max(transitions, Ordering::Relaxed);
        if transitions > prev {
            self.breaker_transitions.add(transitions - prev);
        }
        let prev = self.breaker_trips_seen.fetch_max(trips, Ordering::Relaxed);
        if trips > prev {
            self.breaker_trips.add(trips - prev);
        }
    }

    /// Fold the journal's current totals into the live series (same
    /// scrape-time delta discipline as [`Self::sync_breaker`]).
    pub(crate) fn sync_journal(&self, appends: u64, fsyncs: u64, bytes: u64) {
        let prev = self
            .journal_appends_seen
            .fetch_max(appends, Ordering::Relaxed);
        if appends > prev {
            self.journal_appends.add(appends - prev);
        }
        let prev = self
            .journal_fsyncs_seen
            .fetch_max(fsyncs, Ordering::Relaxed);
        if fsyncs > prev {
            self.journal_fsyncs.add(fsyncs - prev);
        }
        let prev = self.journal_bytes_seen.fetch_max(bytes, Ordering::Relaxed);
        if bytes > prev {
            self.journal_bytes.add(bytes - prev);
        }
    }

    /// Record one finished request (status + end-to-end latency).
    pub(crate) fn finish_request(&self, worker: usize, status: &str, latency_ms: f64) {
        let i = status_idx(status);
        self.requests[i].add(1);
        self.latency_ms[i].record(latency_ms);
        if let Some(w) = self.workers.get(worker) {
            w.requests.add(1);
        }
    }

    /// Fold one cluster run's per-rank deltas into the rank series
    /// (ranks are registered the first time they are seen).
    pub(crate) fn merge_rank_health(&self, health: &[RankHealth]) {
        let mut ranks = self.ranks.lock().unwrap_or_else(|e| e.into_inner());
        while ranks.len() < health.len() {
            let r = ranks.len().to_string();
            let l: &[(&str, &str)] = &[("rank", r.as_str())];
            ranks.push(RankMetrics {
                crashes: self
                    .registry
                    .counter(live::RANK_CRASHES_TOTAL, MetricUnit::Count, l),
                restores: self
                    .registry
                    .counter(live::RANK_RESTORES_TOTAL, MetricUnit::Count, l),
                retransmitted: self.registry.counter(
                    live::RANK_RETRANSMITTED_BYTES_TOTAL,
                    MetricUnit::Bytes,
                    l,
                ),
            });
        }
        for (rm, h) in ranks.iter().zip(health) {
            rm.crashes.add(h.crashes);
            rm.restores.add(h.checkpoints_restored);
            rm.retransmitted.add(h.retransmitted_bytes);
        }
    }

    /// Sample a worker device's pool and fold the deltas in (counters
    /// stay monotone across engine rebuilds: a fresh device restarts
    /// its own totals from zero, which the delta logic treats as a
    /// reset, not a regression).
    pub(crate) fn sample_pool(&self, worker: usize, g: PoolGauges) {
        let Some(w) = self.workers.get(worker) else {
            return;
        };
        let mut last = w.last_pool.lock().unwrap_or_else(|e| e.into_inner());
        let d = |now: u64, then: u64| now.saturating_sub(then);
        if g.hits < last.hits || g.misses < last.misses {
            // Engine rebuilt on a fresh device: whole sample is new.
            *last = PoolGauges::default();
        }
        w.pool_hits.add(d(g.hits, last.hits));
        w.pool_misses.add(d(g.misses, last.misses));
        w.pool_pressure
            .add(d(g.pressure_events, last.pressure_events));
        w.pool_bytes.set(g.parked_bytes as f64);
        *last = g;
    }

    /// Dump the flight recorder to a timestamped file. Returns the path
    /// (already pushed onto the ledger) unless the dump cap was hit or
    /// the write failed — dumps are forensics, never a failure source.
    pub(crate) fn dump_flight(&self, reason: &str) -> Option<String> {
        self.dump_requests.fetch_add(1, Ordering::Relaxed);
        {
            let dumps = self.dumps.lock().unwrap_or_else(|e| e.into_inner());
            if dumps.len() >= MAX_FLIGHT_DUMPS {
                return None;
            }
        }
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let seq = self.flight.next_dump_seq();
        let safe_reason: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = self
            .flight_dir
            .join(format!("xbfs-flight-{unix_ms}-{seq}-{safe_reason}.log"));
        let text = self.flight.render(reason);
        if std::fs::create_dir_all(&self.flight_dir).is_err() {
            return None;
        }
        if std::fs::write(&path, text).is_err() {
            return None;
        }
        let shown = path.to_string_lossy().into_owned();
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(shown.clone());
        self.flight_dumps_total.add(1);
        Some(shown)
    }

    /// Paths of every flight dump written so far.
    pub(crate) fn dump_paths(&self) -> Vec<String> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Where dumps are written.
    pub(crate) fn flight_dir(&self) -> &Path {
        &self.flight_dir
    }

    /// One consistent snapshot of every series (breaker/queue gauges are
    /// refreshed by the caller before snapshotting — see
    /// `Shared::metrics_snapshot`).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_telemetry::SeriesValue;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("xbfs-metrics-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn finish_request_feeds_status_series_and_worker_counters() {
        let m = ServerMetrics::new(2, tmpdir("finish"), 16);
        m.finish_request(0, "ok", 12.0);
        m.finish_request(1, "timeout", 80.0);
        m.finish_request(0, "error", 5.0);
        m.finish_request(0, "ok", 14.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter_family_total(live::REQUESTS_TOTAL), 4);
        let ok = snap
            .find(live::REQUESTS_TOTAL, &[("status", "ok")])
            .unwrap();
        assert_eq!(ok.value, SeriesValue::Counter(2));
        let w0 = snap
            .find(live::WORKER_REQUESTS_TOTAL, &[("worker", "0")])
            .unwrap();
        assert_eq!(w0.value, SeriesValue::Counter(3));
        match &snap
            .find(live::REQUEST_LATENCY_MS, &[("status", "ok")])
            .unwrap()
            .value
        {
            SeriesValue::Histogram(h) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn pool_deltas_survive_engine_rebuild_resets() {
        let m = ServerMetrics::new(1, tmpdir("pool"), 16);
        m.sample_pool(
            0,
            PoolGauges {
                hits: 10,
                misses: 4,
                parked_bytes: 100,
                pressure_events: 1,
                limit_bytes: None,
            },
        );
        m.sample_pool(
            0,
            PoolGauges {
                hits: 15,
                misses: 4,
                parked_bytes: 80,
                pressure_events: 1,
                limit_bytes: None,
            },
        );
        // Fresh device after rebuild: totals restart lower — treated as
        // a reset, not subtracted.
        m.sample_pool(
            0,
            PoolGauges {
                hits: 3,
                misses: 1,
                parked_bytes: 40,
                pressure_events: 0,
                limit_bytes: None,
            },
        );
        let snap = m.snapshot();
        let hits = snap
            .find(live::POOL_HITS_TOTAL, &[("worker", "0")])
            .unwrap();
        assert_eq!(hits.value, SeriesValue::Counter(15 + 3));
        let bytes = snap.find(live::POOL_BYTES, &[("worker", "0")]).unwrap();
        assert_eq!(bytes.value, SeriesValue::Gauge(40.0));
    }

    #[test]
    fn rank_series_appear_on_first_merge_and_accumulate() {
        let m = ServerMetrics::new(1, tmpdir("rank"), 16);
        let h = RankHealth {
            crashes: 1,
            checkpoints_restored: 2,
            retransmitted_bytes: 64,
        };
        m.merge_rank_health(&[RankHealth::default(), h.clone()]);
        m.merge_rank_health(&[RankHealth::default(), h]);
        let snap = m.snapshot();
        let crashes = snap
            .find(live::RANK_CRASHES_TOTAL, &[("rank", "1")])
            .unwrap();
        assert_eq!(crashes.value, SeriesValue::Counter(2));
        let bytes = snap
            .find(live::RANK_RETRANSMITTED_BYTES_TOTAL, &[("rank", "1")])
            .unwrap();
        assert_eq!(bytes.value, SeriesValue::Counter(128));
    }

    #[test]
    fn journal_sync_folds_deltas_once() {
        let m = ServerMetrics::new(1, tmpdir("journal"), 16);
        m.sync_journal(10, 2, 640);
        m.sync_journal(10, 2, 640); // racing scrape: no double-add
        m.sync_journal(15, 3, 1000);
        let snap = m.snapshot();
        assert_eq!(
            snap.find(live::JOURNAL_APPENDS_TOTAL, &[]).unwrap().value,
            SeriesValue::Counter(15)
        );
        assert_eq!(
            snap.find(live::JOURNAL_FSYNCS_TOTAL, &[]).unwrap().value,
            SeriesValue::Counter(3)
        );
        assert_eq!(
            snap.find(live::JOURNAL_BYTES_TOTAL, &[]).unwrap().value,
            SeriesValue::Counter(1000)
        );
    }

    #[test]
    fn flight_dump_writes_a_file_and_ledgers_it() {
        let dir = tmpdir("dump");
        let m = ServerMetrics::new(1, dir.clone(), 16);
        m.flight.note(0, "request.start", "id=1");
        m.flight.note(0, "panic", "chaos: injected worker panic");
        let path = m.dump_flight("worker-panic").expect("dump written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("reason: worker-panic"));
        assert!(text.contains("injected worker panic"));
        assert_eq!(m.dump_paths(), vec![path]);
        let snap = m.snapshot();
        assert_eq!(
            snap.find(live::FLIGHT_DUMPS_TOTAL, &[]).unwrap().value,
            SeriesValue::Counter(1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
