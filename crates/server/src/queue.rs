//! Bounded admission queue with explicit load shedding.
//!
//! The queue is the server's only buffer: when it is full the request is
//! *shed* — the client gets `overloaded` with a `retry_after_ms` hint —
//! rather than waiting on an unbounded backlog. Every accepted item gets
//! a monotonically increasing **ticket** under the queue lock, and
//! [`AdmissionQueue::pop`] hands items out in strict ticket order, so
//! admission is FIFO among accepted requests no matter how many worker
//! threads consume the queue.
//!
//! Lifecycle: `Open` (admit until full) → `Draining` (reject new, serve
//! what is queued) → empty, at which point blocked `pop`s return `None`
//! and workers exit. `close` is the abort hatch: queued items are dropped
//! and returned to the caller so no request vanishes silently.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Queue lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// Admitting requests (until the bound is hit).
    Open,
    /// Rejecting new requests; queued ones still get served.
    Draining,
    /// Terminal: nothing is admitted and `pop` returns `None` at once.
    Closed,
}

/// Outcome of one [`AdmissionQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; the ticket fixes this request's FIFO position.
    Accepted {
        /// Monotonic sequence number assigned under the queue lock.
        ticket: u64,
    },
    /// Queue full: shed, with a backoff hint for the client.
    Shed {
        /// How long the client should wait before retrying, ms.
        retry_after_ms: u64,
    },
    /// The server is draining (or closed) and admits nothing new.
    Draining,
}

/// Counters the queue maintains under its own lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests admitted (tickets issued).
    pub accepted: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Requests rejected because the queue was draining/closed.
    pub rejected_draining: u64,
    /// Deepest backlog ever observed.
    pub max_depth: usize,
}

struct Inner<T> {
    q: VecDeque<(u64, T)>,
    next_ticket: u64,
    state: QueueState,
    stats: QueueStats,
}

/// Bounded MPMC queue: any thread may submit, any worker may pop.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
    retry_after_ms: u64,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `cap` pending requests; shed responses
    /// carry `retry_after_ms` as the client backoff hint.
    pub fn new(cap: usize, retry_after_ms: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                next_ticket: 0,
                state: QueueState::Open,
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
            retry_after_ms,
        }
    }

    /// Locks are only ever held for O(1) bookkeeping, so a poisoned mutex
    /// can only mean a panic inside this module's own tiny critical
    /// sections; the data is still consistent and the serving layer must
    /// never abort, so we take the guard either way.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to admit one request. O(1); never blocks on capacity.
    pub fn submit(&self, item: T) -> Admission {
        let mut g = self.lock();
        match g.state {
            QueueState::Open => {}
            QueueState::Draining | QueueState::Closed => {
                g.stats.rejected_draining += 1;
                return Admission::Draining;
            }
        }
        if g.q.len() >= self.cap {
            g.stats.shed += 1;
            // Scale the hint with how oversubscribed we are so retries
            // spread out instead of synchronizing into a thundering herd.
            let factor = 1 + g.stats.shed % 4;
            return Admission::Shed {
                retry_after_ms: self.retry_after_ms * factor,
            };
        }
        let ticket = g.next_ticket;
        g.next_ticket += 1;
        g.q.push_back((ticket, item));
        g.stats.accepted += 1;
        g.stats.max_depth = g.stats.max_depth.max(g.q.len());
        drop(g);
        self.not_empty.notify_one();
        Admission::Accepted { ticket }
    }

    /// Block until an item is available, the queue drains empty, or it is
    /// closed. Returns items in strictly increasing ticket order.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut g = self.lock();
        loop {
            if let Some(pair) = g.q.pop_front() {
                return Some(pair);
            }
            match g.state {
                QueueState::Closed => return None,
                QueueState::Draining => return None, // empty + draining = done
                QueueState::Open => {
                    g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Block for the first item exactly like [`AdmissionQueue::pop`],
    /// then **linger** up to `linger` collecting more — the batching
    /// stage's coalescing primitive. Returns at most `max` items, in
    /// strictly increasing ticket order.
    ///
    /// The linger window is bounded and only ever applies once company
    /// already exists to wait for: if the queue holds `max` items they
    /// are returned immediately, and a drain/close ends the linger early
    /// so shutdown never waits out the window. A lone request therefore
    /// waits at most `linger` — never indefinitely — before running solo.
    pub fn pop_batch(&self, max: usize, linger: std::time::Duration) -> Option<Vec<(u64, T)>> {
        let first = self.pop()?;
        let mut out = vec![first];
        let max = max.max(1);
        if max == 1 {
            return Some(out);
        }
        let deadline = std::time::Instant::now() + linger;
        let mut g = self.lock();
        loop {
            while out.len() < max {
                match g.q.pop_front() {
                    Some(pair) => out.push(pair),
                    None => break,
                }
            }
            if out.len() >= max || g.state != QueueState::Open {
                return Some(out);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Some(out);
            }
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    /// Stop admitting; queued requests will still be served. Wakes every
    /// blocked `pop` so idle workers can observe the transition.
    pub fn drain(&self) {
        let mut g = self.lock();
        if g.state == QueueState::Open {
            g.state = QueueState::Draining;
        }
        drop(g);
        self.not_empty.notify_all();
    }

    /// Terminal close: stop admitting *and* return everything still
    /// queued, so the caller can answer (not lose) those requests.
    pub fn close(&self) -> Vec<(u64, T)> {
        let mut g = self.lock();
        g.state = QueueState::Closed;
        let left = g.q.drain(..).collect();
        drop(g);
        self.not_empty.notify_all();
        left
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.lock().q.len()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> QueueState {
        self.lock().state
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_full_then_sheds() {
        let q = AdmissionQueue::new(2, 10);
        assert!(matches!(q.submit(1), Admission::Accepted { ticket: 0 }));
        assert!(matches!(q.submit(2), Admission::Accepted { ticket: 1 }));
        assert!(matches!(q.submit(3), Admission::Shed { .. }));
        let s = q.stats();
        assert_eq!((s.accepted, s.shed, s.max_depth), (2, 1, 2));
    }

    #[test]
    fn pop_is_fifo_by_ticket() {
        let q = AdmissionQueue::new(8, 10);
        for v in 0..5 {
            q.submit(v);
        }
        let mut last = None;
        while let Some((t, _)) = {
            q.drain();
            q.pop()
        } {
            if let Some(prev) = last {
                assert!(t > prev, "tickets must be strictly increasing");
            }
            last = Some(t);
        }
        assert_eq!(last, Some(4));
    }

    #[test]
    fn draining_rejects_new_but_serves_queued() {
        let q = AdmissionQueue::new(8, 10);
        q.submit("queued");
        q.drain();
        assert_eq!(q.submit("late"), Admission::Draining);
        assert_eq!(q.pop().map(|(_, v)| v), Some("queued"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats().rejected_draining, 1);
    }

    #[test]
    fn close_returns_unserved_items() {
        let q = AdmissionQueue::new(8, 10);
        q.submit(7);
        q.submit(8);
        let left = q.close();
        assert_eq!(left.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [7, 8]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_collects_available_up_to_max() {
        let q = AdmissionQueue::new(8, 10);
        for v in 0..5 {
            q.submit(v);
        }
        // A full batch returns immediately — no linger when already full.
        let t0 = std::time::Instant::now();
        let b = q
            .pop_batch(3, std::time::Duration::from_secs(5))
            .expect("items queued");
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(b.iter().map(|&(t, _)| t).collect::<Vec<_>>(), [0, 1, 2]);
        // Remaining two come out in order even with a generous max.
        q.drain();
        let b2 = q
            .pop_batch(64, std::time::Duration::from_millis(1))
            .unwrap();
        assert_eq!(b2.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(q.pop_batch(64, std::time::Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_batch_lingers_for_late_company() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::<u32>::new(8, 10));
        q.submit(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            q2.submit(2);
        });
        let b = q
            .pop_batch(4, std::time::Duration::from_millis(500))
            .unwrap();
        h.join().unwrap();
        // The late arrival landed inside the linger window.
        assert_eq!(b.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn pop_batch_lone_request_bounded_by_window() {
        let q = AdmissionQueue::new(8, 10);
        q.submit(9);
        let t0 = std::time::Instant::now();
        let b = q
            .pop_batch(64, std::time::Duration::from_millis(25))
            .unwrap();
        let waited = t0.elapsed();
        assert_eq!(b.len(), 1);
        assert!(
            waited < std::time::Duration::from_secs(2),
            "lone request must not park: waited {waited:?}"
        );
    }

    #[test]
    fn pop_batch_width_one_skips_linger() {
        let q = AdmissionQueue::new(8, 10);
        q.submit(1);
        q.submit(2);
        let t0 = std::time::Instant::now();
        let b = q.pop_batch(1, std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(b.len(), 1);
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn blocked_pop_wakes_on_drain() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::<u32>::new(4, 10));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        assert_eq!(h.join().unwrap(), None);
    }
}
