//! Idempotent request replay: a small LRU of completed `ok` responses.
//!
//! A client that times out waiting for a response and reconnects will
//! resend the same request id. Without dedup the server re-executes it —
//! harmless for BFS results but it double-charges capacity and, under a
//! chaos plan, can double-inject faults. The cache remembers the last N
//! completed `(id, source)` pairs and answers replays inline from the
//! stored response line (marked with `"deduped":true`), so a replayed
//! completed request never re-enters the queue.
//!
//! Only *completed* (`ok`) responses are recorded: sheds and timeouts must
//! stay retryable, and requests carrying a chaos token bypass the cache
//! entirely so chaos soaks always exercise the real path. The key includes
//! the source vertex so an id reused for a *different* request (a buggy
//! client, not a replay) is not answered with stale data.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Bounded LRU of completed responses keyed by `(id, source)`.
#[derive(Debug)]
pub struct DedupCache {
    cap: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(u64, u32), String>,
    /// Recency order, oldest first. Entries are moved to the back on hit.
    order: VecDeque<(u64, u32)>,
}

impl DedupCache {
    /// Cache holding at most `cap` completed responses (`cap == 0`
    /// disables dedup entirely).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Response line for an already-completed `(id, source)`, refreshed
    /// as most-recently-used. `None` means the request is new (or aged
    /// out) and must execute.
    pub fn lookup(&self, id: u64, source: u32) -> Option<String> {
        if self.cap == 0 {
            return None;
        }
        let key = (id, source);
        let mut inner = self.inner.lock().unwrap();
        let line = inner.map.get(&key).cloned()?;
        if let Some(pos) = inner.order.iter().position(|k| *k == key) {
            inner.order.remove(pos);
            inner.order.push_back(key);
        }
        Some(line)
    }

    /// Record a completed `ok` response so replays of this id are
    /// answered from cache. Evicts the least-recently-used entry when
    /// full.
    pub fn record(&self, id: u64, source: u32, line: &str) {
        if self.cap == 0 {
            return;
        }
        let key = (id, source);
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key, line.to_string()).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays() {
        let c = DedupCache::new(4);
        assert!(c.lookup(1, 5).is_none());
        c.record(1, 5, "{\"id\":1}");
        assert_eq!(c.lookup(1, 5).as_deref(), Some("{\"id\":1}"));
        // Same id, different source: a different request, not a replay.
        assert!(c.lookup(1, 6).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = DedupCache::new(2);
        c.record(1, 0, "a");
        c.record(2, 0, "b");
        assert!(c.lookup(1, 0).is_some()); // refresh 1 → 2 is now LRU
        c.record(3, 0, "c");
        assert!(c.lookup(2, 0).is_none(), "LRU entry evicted");
        assert!(c.lookup(1, 0).is_some());
        assert!(c.lookup(3, 0).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = DedupCache::new(0);
        c.record(1, 0, "a");
        assert!(c.lookup(1, 0).is_none());
        assert!(c.is_empty());
    }
}
