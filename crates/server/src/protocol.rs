//! `xbfs-serve-v1`: JSON lines over TCP.
//!
//! One request per line, one response line per request. Requests carry a
//! client-chosen `id` that the matching response echoes, so clients may
//! pipeline and match out-of-order completions (a FIFO queue consumed by
//! several workers completes out of order across connections).
//!
//! Ops: `ping`, `info`, `stats`, `shutdown`, and `bfs`. A `bfs` response
//! has one of four statuses:
//!
//! - `ok` — levels computed; carries depth/total_ms/gteps, the FNV-1a
//!   result digest ([`xbfs_core::BfsRun::digest`], hex), queue wait,
//!   attempt count, and whether the result was certified.
//! - `overloaded` — shed by admission control, breaker, or drain;
//!   carries `retry_after_ms`.
//! - `timeout` — the deadline budget expired (in queue, or mid-run as a
//!   typed [`xbfs_core::XbfsError::DeadlineExceeded`]).
//! - `error` — a typed failure (bad source, uncorrected integrity, …).
//!
//! Parsing uses the telemetry crate's std-only JSON reader; building is
//! plain string assembly with [`xbfs_telemetry::json::escape`] on every
//! interpolated string.

use xbfs_core::{BfsRun, MsBfsRun};
use xbfs_multi_gcd::ClusterRun;
use xbfs_telemetry::json::{escape, JsonValue};

/// Protocol identifier, echoed in every request and response.
pub const PROTOCOL: &str = "xbfs-serve-v1";

/// A parsed `bfs` request.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// BFS source vertex.
    pub source: u32,
    /// Wall-clock budget for queue wait + run, ms. `None` uses the
    /// server default (possibly unlimited).
    pub deadline_ms: Option<f64>,
    /// Override the server's verify default for this request.
    pub verify: Option<bool>,
    /// Chaos action token (see [`crate::chaos::ChaosAction`]); honored
    /// only by servers started with `--allow-chaos`.
    pub chaos: Option<String>,
}

/// Any request the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered inline.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Graph and capacity description; answered inline.
    Info {
        /// Correlation id.
        id: u64,
    },
    /// Current serving counters; answered inline.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Initiate graceful drain.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
    /// One `xbfs-metrics-v1` snapshot of the live metrics plane;
    /// answered inline without touching the workers.
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Run one BFS (queued through admission control).
    Bfs(BfsRequest),
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_f64().map(|f| f as u64)
}

/// Parse one request line. Errors are human-readable and become an
/// `error` response carrying id 0 when no id could be recovered.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    if let Some(proto) = v.get("v").and_then(|p| p.as_str()) {
        if proto != PROTOCOL {
            return Err(format!("unsupported protocol `{proto}`"));
        }
    }
    let id = get_u64(&v, "id").ok_or("missing numeric `id`")?;
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or("missing string `op`")?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "info" => Ok(Request::Info { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "bfs" => {
            let source = v
                .get("source")
                .and_then(|s| s.as_f64())
                .ok_or("bfs needs numeric `source`")? as u32;
            Ok(Request::Bfs(BfsRequest {
                id,
                source,
                deadline_ms: v.get("deadline_ms").and_then(|d| d.as_f64()),
                verify: v.get("verify").and_then(|b| b.as_bool()),
                chaos: v
                    .get("chaos")
                    .and_then(|c| c.as_str())
                    .map(|s| s.to_string()),
            }))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

fn head(id: u64, status: &str) -> String {
    format!("{{\"v\":\"{PROTOCOL}\",\"id\":{id},\"status\":\"{status}\"")
}

/// `ok` response for a completed run.
pub fn ok_line(id: u64, run: &BfsRun, certified: bool, wait_ms: f64, attempts: u32) -> String {
    let reached = run
        .levels
        .iter()
        .filter(|&&l| l != xbfs_core::UNVISITED)
        .count();
    format!(
        "{},\"source\":{},\"depth\":{},\"reached\":{},\"total_ms\":{:.6},\"gteps\":{:.6},\
         \"digest\":\"{:#018x}\",\"certified\":{},\"wait_ms\":{:.3},\"attempts\":{}}}",
        head(id, "ok"),
        run.source,
        run.depth(),
        reached,
        run.total_ms,
        run.gteps,
        run.digest(),
        certified,
        wait_ms,
        attempts
    )
}

/// `ok` response for one member of a coalesced multi-source batch,
/// demultiplexed from its slot of the shared traversal.
///
/// The digest is the slot's *levels-only* [`MsBfsRun::result_digest`] —
/// bit-identical to the [`BfsRun::result_digest`] a solo run of the same
/// source would produce, so batching is invisible in the response
/// payload. `batch` carries how many members shared the traversal (1 for
/// a lone request that outwaited its linger window).
pub fn batched_ok_line(
    id: u64,
    run: &MsBfsRun,
    slot: usize,
    certified: bool,
    wait_ms: f64,
    attempts: u32,
    batch: usize,
) -> String {
    format!(
        "{},\"source\":{},\"depth\":{},\"reached\":{},\"total_ms\":{:.6},\"gteps\":{:.6},\
         \"digest\":\"{:#018x}\",\"certified\":{},\"wait_ms\":{:.3},\"attempts\":{},\
         \"batch\":{}}}",
        head(id, "ok"),
        run.sources[slot],
        run.slot_depth(slot),
        run.slot_reached(slot),
        run.total_ms,
        run.slot_gteps(slot),
        run.result_digest(slot),
        certified,
        wait_ms,
        attempts,
        batch
    )
}

/// `ok` response for a run completed on the partitioned cluster engine.
///
/// The digest is the *levels-only* [`ClusterRun::result_digest`] — bit
/// identical to a fault-free single-device run over the same graph and
/// source — so chaos soaks can certify recovered results against a
/// reference. `recoveries` counts mid-request checkpoint restores.
pub fn cluster_ok_line(
    id: u64,
    run: &ClusterRun,
    certified: bool,
    wait_ms: f64,
    attempts: u32,
    recoveries: u64,
) -> String {
    let reached = run
        .levels
        .iter()
        .filter(|&&l| l != xbfs_core::UNVISITED)
        .count();
    format!(
        "{},\"source\":{},\"depth\":{},\"reached\":{},\"total_ms\":{:.6},\"gteps\":{:.6},\
         \"digest\":\"{:#018x}\",\"certified\":{},\"wait_ms\":{:.3},\"attempts\":{},\
         \"recoveries\":{}}}",
        head(id, "ok"),
        run.source,
        run.depth(),
        reached,
        run.total_ms,
        run.gteps,
        run.result_digest(),
        certified,
        wait_ms,
        attempts,
        recoveries
    )
}

/// `overloaded` response (admission shed, breaker open, or draining).
pub fn overloaded_line(id: u64, reason: &str, retry_after_ms: u64) -> String {
    // NB: `escape` returns the string *with* surrounding quotes.
    format!(
        "{},\"reason\":{},\"retry_after_ms\":{}}}",
        head(id, "overloaded"),
        escape(reason),
        retry_after_ms
    )
}

/// `timeout` response: the deadline expired in-queue or mid-run.
pub fn timeout_line(id: u64, where_: &str, elapsed_ms: f64, deadline_ms: f64) -> String {
    format!(
        "{},\"where\":{},\"elapsed_ms\":{:.3},\"deadline_ms\":{:.3}}}",
        head(id, "timeout"),
        escape(where_),
        elapsed_ms,
        deadline_ms
    )
}

/// `error` response with an error kind and message.
pub fn error_line(id: u64, kind: &str, message: &str) -> String {
    format!(
        "{},\"kind\":{},\"error\":{}}}",
        head(id, "error"),
        escape(kind),
        escape(message)
    )
}

/// `ok` response to `ping`.
pub fn pong_line(id: u64) -> String {
    format!("{},\"pong\":true}}", head(id, "ok"))
}

/// `ok` response to `info`.
pub fn info_line(
    id: u64,
    vertices: usize,
    edges: usize,
    workers: usize,
    queue_cap: usize,
) -> String {
    format!(
        "{},\"vertices\":{},\"edges\":{},\"workers\":{},\"queue_cap\":{}}}",
        head(id, "ok"),
        vertices,
        edges,
        workers,
        queue_cap
    )
}

/// `ok` response to `shutdown` (drain initiated).
pub fn shutdown_line(id: u64) -> String {
    format!("{},\"draining\":true}}", head(id, "ok"))
}

/// `ok` response to `metrics`: embeds the `xbfs-metrics-v1` snapshot
/// object (already serialized, single line) under `"metrics"`.
pub fn metrics_line(id: u64, snapshot_json: &str) -> String {
    format!("{},\"metrics\":{}}}", head(id, "ok"), snapshot_json)
}

/// What a client can learn from any response line without knowing which
/// op produced it — everything the load generator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSummary {
    /// Echoed correlation id.
    pub id: u64,
    /// `ok`, `overloaded`, `timeout`, or `error`.
    pub status: String,
    /// Result digest (hex) for `ok` BFS responses.
    pub digest: Option<String>,
    /// Source vertex for `ok` BFS responses.
    pub source: Option<u32>,
    /// Backoff hint for `overloaded`.
    pub retry_after_ms: Option<u64>,
    /// Attempts for `ok` BFS responses (>1 means replayed after
    /// quarantine).
    pub attempts: Option<u32>,
    /// Error kind for `error` responses.
    pub kind: Option<String>,
    /// Mid-request checkpoint restores for cluster `ok` responses.
    pub recoveries: Option<u64>,
    /// True when the response was served from the idempotency cache
    /// instead of re-executing (a replayed completed id).
    pub deduped: Option<bool>,
    /// How many requests shared the traversal, for batched `ok`
    /// responses (absent on the solo path).
    pub batch: Option<u64>,
}

/// Parse one response line into the summary clients act on.
pub fn parse_response(line: &str) -> Result<ResponseSummary, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = get_u64(&v, "id").ok_or("response missing `id`")?;
    let status = v
        .get("status")
        .and_then(|s| s.as_str())
        .ok_or("response missing `status`")?
        .to_string();
    Ok(ResponseSummary {
        id,
        status,
        digest: v
            .get("digest")
            .and_then(|d| d.as_str())
            .map(|s| s.to_string()),
        source: v.get("source").and_then(|s| s.as_f64()).map(|f| f as u32),
        retry_after_ms: get_u64(&v, "retry_after_ms"),
        attempts: get_u64(&v, "attempts").map(|a| a as u32),
        kind: v
            .get("kind")
            .and_then(|k| k.as_str())
            .map(|s| s.to_string()),
        recoveries: get_u64(&v, "recoveries"),
        deduped: v.get("deduped").and_then(|d| d.as_bool()),
        batch: get_u64(&v, "batch"),
    })
}

/// Mark a completed `ok` line as replayed from the idempotency cache:
/// splices `"deduped":true` before the closing brace.
pub fn mark_deduped(line: &str) -> String {
    match line.strip_suffix('}') {
        Some(body) => format!("{body},\"deduped\":true}}"),
        None => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_request_round_trip() {
        let line = format!(
            "{{\"v\":\"{PROTOCOL}\",\"op\":\"bfs\",\"id\":7,\"source\":12,\
             \"deadline_ms\":250.5,\"verify\":true,\"chaos\":\"panic\"}}"
        );
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req,
            Request::Bfs(BfsRequest {
                id: 7,
                source: 12,
                deadline_ms: Some(250.5),
                verify: Some(true),
                chaos: Some("panic".into()),
            })
        );
    }

    #[test]
    fn control_ops_parse() {
        for (op, want) in [
            ("ping", Request::Ping { id: 1 }),
            ("info", Request::Info { id: 1 }),
            ("stats", Request::Stats { id: 1 }),
            ("shutdown", Request::Shutdown { id: 1 }),
            ("metrics", Request::Metrics { id: 1 }),
        ] {
            let line = format!("{{\"op\":\"{op}\",\"id\":1}}");
            assert_eq!(parse_request(&line).unwrap(), want);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"bfs\"}").is_err()); // no id
        assert!(parse_request("{\"op\":\"bfs\",\"id\":1}").is_err()); // no source
        assert!(parse_request("{\"op\":\"nope\",\"id\":1}").is_err());
        assert!(
            parse_request("{\"v\":\"xbfs-serve-v0\",\"op\":\"ping\",\"id\":1}").is_err(),
            "wrong protocol version must be rejected"
        );
    }

    #[test]
    fn response_lines_parse_back() {
        let over = overloaded_line(3, "queue full", 40);
        let s = parse_response(&over).unwrap();
        assert_eq!((s.id, s.status.as_str()), (3, "overloaded"));
        assert_eq!(s.retry_after_ms, Some(40));

        let err = error_line(4, "integrity", "uncorrected after 2 retries");
        let s = parse_response(&err).unwrap();
        assert_eq!(s.status, "error");
        assert_eq!(s.kind.as_deref(), Some("integrity"));

        let to = timeout_line(5, "run", 12.0, 10.0);
        assert_eq!(parse_response(&to).unwrap().status, "timeout");
    }

    #[test]
    fn ok_line_carries_digest_and_attempts() {
        let run = BfsRun {
            source: 2,
            levels: vec![1, 0, 1, xbfs_core::UNVISITED],
            parents: None,
            level_stats: vec![],
            total_ms: 1.5,
            traversed_edges: 6,
            gteps: 0.004,
        };
        let line = ok_line(9, &run, true, 3.25, 2);
        let s = parse_response(&line).unwrap();
        assert_eq!(s.status, "ok");
        assert_eq!(s.source, Some(2));
        assert_eq!(s.attempts, Some(2));
        assert_eq!(s.digest.unwrap(), format!("{:#018x}", run.digest()));
        assert_eq!(s.recoveries, None);
        assert_eq!(s.deduped, None);
    }

    #[test]
    fn cluster_ok_line_carries_levels_digest_and_recoveries() {
        let run = ClusterRun {
            source: 1,
            config: xbfs_multi_gcd::ClusterConfig::node_of_8(),
            seed: 0,
            fault_plan: xbfs_multi_gcd::FaultPlan::default(),
            levels: vec![1, 0, 1, 2, u32::MAX],
            level_stats: vec![],
            recoveries: vec![],
            total_ms: 2.25,
            traversed_edges: 8,
            gteps: 0.003,
            gteps_per_gcd: 0.0004,
        };
        let line = cluster_ok_line(11, &run, true, 1.5, 1, 3);
        let s = parse_response(&line).unwrap();
        assert_eq!(s.status, "ok");
        assert_eq!(s.source, Some(1));
        assert_eq!(s.recoveries, Some(3));
        // Levels-only digest: identical to a single-device run of the
        // same traversal regardless of modeled timing.
        assert_eq!(
            s.digest.unwrap(),
            format!("{:#018x}", xbfs_core::levels_digest(1, &run.levels))
        );
        assert!(line.contains("\"depth\":3"));
    }

    #[test]
    fn batched_ok_line_carries_slot_digest_and_width() {
        let run = MsBfsRun {
            sources: vec![0, 2],
            levels: vec![vec![0, 1, 1, xbfs_core::UNVISITED], vec![1, 1, 0, 2]],
            slot_edges: vec![4, 6],
            total_ms: 1.25,
            traversed_edges: 10,
            gteps: 0.008,
        };
        let line = batched_ok_line(21, &run, 1, true, 0.5, 1, 2);
        let s = parse_response(&line).unwrap();
        assert_eq!((s.id, s.status.as_str()), (21, "ok"));
        assert_eq!(s.source, Some(2));
        assert_eq!(s.batch, Some(2));
        // The demuxed digest is the slot's levels-only result digest —
        // what a solo run of source 2 would report.
        assert_eq!(
            s.digest.unwrap(),
            format!("{:#018x}", xbfs_core::levels_digest(2, &run.levels[1]))
        );
        assert!(line.contains("\"depth\":2"));
        assert!(line.contains("\"reached\":4"));
    }

    #[test]
    fn mark_deduped_splices_flag() {
        let run = BfsRun {
            source: 2,
            levels: vec![1, 0, 1],
            parents: None,
            level_stats: vec![],
            total_ms: 1.5,
            traversed_edges: 6,
            gteps: 0.004,
        };
        let line = mark_deduped(&ok_line(9, &run, true, 3.25, 1));
        let s = parse_response(&line).unwrap();
        assert_eq!(s.deduped, Some(true));
        assert_eq!(s.status, "ok");
        assert_eq!(s.digest.unwrap(), format!("{:#018x}", run.digest()));
    }
}
