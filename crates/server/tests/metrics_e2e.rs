//! Live metrics plane, end to end over real sockets: the wire `metrics`
//! op returns a consistent `xbfs-metrics-v1` snapshot that reconciles
//! with the final serve report, the `--metrics-addr` HTTP listener
//! serves Prometheus text and JSON mid-load without perturbing workers,
//! worker panics leave a flight-recorder dump referenced by the report,
//! and `xbfs top` renders frames from successive snapshots.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gcd_sim::Device;
use xbfs_core::XbfsConfig;
use xbfs_graph::generators::erdos_renyi;
use xbfs_graph::Csr;
use xbfs_server::top::{run_top, TopSnapshot};
use xbfs_server::{ServeConfig, Server, ServerHandle};
use xbfs_telemetry::json::JsonValue;
use xbfs_telemetry::names::live;
use xbfs_telemetry::Recorder;

fn test_graph() -> Arc<Csr> {
    Arc::new(erdos_renyi(2000, 8_000, 11))
}

fn start(cfg: ServeConfig, g: Arc<Csr>) -> ServerHandle {
    Server::start(
        cfg,
        g,
        XbfsConfig::default(),
        Arc::new(Device::mi250x),
        Arc::new(Recorder::disabled()),
    )
    .expect("server binds")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Self { writer, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim().to_string()
    }

    /// Scrape via the wire `metrics` op, returning the parsed snapshot.
    fn scrape(&mut self, id: u64) -> TopSnapshot {
        let resp = self.roundtrip(&format!("{{\"op\":\"metrics\",\"id\":{id}}}"));
        let v = JsonValue::parse(&resp).expect("metrics response parses");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
        TopSnapshot::parse(v.get("metrics").expect("metrics payload"))
            .expect("payload is xbfs-metrics-v1")
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("xbfs-me2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn metrics_op_snapshot_reconciles_with_final_report() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), g);
    let mut c = Client::connect(handle.addr());

    for (id, src) in [(1u64, 0u32), (2, 5), (3, 1999)] {
        let r = c.roundtrip(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":{src}}}"
        ));
        assert!(r.contains("\"status\":\"ok\""), "{r}");
    }
    // One typed timeout (deadline already spent before the run starts).
    let r = c.roundtrip(
        "{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":4,\"source\":1,\"deadline_ms\":0.000001}",
    );
    assert!(r.contains("\"status\":\"timeout\""), "{r}");

    // Everything above completed before this scrape, so the snapshot
    // must agree exactly with what the final report will say.
    let snap = c.scrape(90);
    assert_eq!(snap.counter(live::REQUESTS_TOTAL, &[("status", "ok")]), 3);
    assert_eq!(
        snap.counter(live::REQUESTS_TOTAL, &[("status", "timeout")]),
        1
    );
    assert_eq!(snap.counter(live::ADMITTED_TOTAL, &[]), 4);
    assert!(snap.counter(live::CONNECTIONS_TOTAL, &[]) >= 1);
    let (count, _, p50, p99) = snap
        .hist(live::REQUEST_LATENCY_MS, &[("status", "ok")])
        .expect("ok latency histogram present");
    assert_eq!(count, 3);
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean);
    assert_eq!(report.ok, 3);
    assert_eq!(report.timeouts, 1);
    assert_eq!(
        report.accepted,
        snap.counter(live::ADMITTED_TOTAL, &[]),
        "scrape reconciles with the report: nothing lost"
    );
}

#[test]
fn http_listener_serves_prometheus_and_json_mid_load() {
    let g = test_graph();
    let cfg = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    };
    let handle = start(cfg, g);
    let maddr = handle.metrics_addr().expect("metrics listener bound");
    let mut c = Client::connect(handle.addr());
    for id in 0..3u64 {
        let r = c.roundtrip(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":{id}}}"
        ));
        assert!(r.contains("\"status\":\"ok\""), "{r}");
    }

    let http_get = |path: &str| -> String {
        let mut s = TcpStream::connect(maddr).expect("connect scrape");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).expect("read scrape");
        body
    };

    let prom = http_get("/metrics");
    assert!(prom.starts_with("HTTP/1.0 200 OK"), "{prom}");
    assert!(prom.contains("# TYPE xbfs_serve_requests_total counter"));
    assert!(prom.contains("xbfs_serve_requests_total{status=\"ok\"} 3"));
    assert!(prom.contains("xbfs_serve_queue_depth"));
    assert!(prom.contains("xbfs_serve_request_latency_ms_bucket"));

    let json = http_get("/metrics.json");
    let body = json.split("\r\n\r\n").nth(1).expect("has body");
    let snap = TopSnapshot::parse(&JsonValue::parse(body).expect("json body parses"))
        .expect("body is xbfs-metrics-v1");
    assert_eq!(snap.counter(live::REQUESTS_TOTAL, &[("status", "ok")]), 3);

    assert!(http_get("/nope").starts_with("HTTP/1.0 404"));

    // Scraping perturbed nothing: requests still serve afterwards.
    let r = c.roundtrip("{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":9,\"source\":7}");
    assert!(r.contains("\"status\":\"ok\""), "{r}");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, 4);
}

#[test]
fn worker_panic_dumps_flight_recorder_and_report_references_it() {
    let g = test_graph();
    let dir = tmpdir("panic");
    let cfg = ServeConfig {
        allow_chaos: true,
        workers: 1,
        flight_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };
    let handle = start(cfg, g);
    let mut c = Client::connect(handle.addr());

    let r = c.roundtrip(
        "{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":1,\"source\":3,\"chaos\":\"panic\"}",
    );
    assert!(r.contains("\"status\":\"ok\""), "replay succeeds: {r}");

    let snap = c.scrape(50);
    assert!(snap.counter(live::FLIGHT_DUMPS_TOTAL, &[]) >= 1);
    assert_eq!(
        snap.counter(live::WORKER_PANICS_TOTAL, &[("worker", "0")]),
        1
    );
    assert_eq!(
        snap.counter(live::WORKER_REBUILDS_TOTAL, &[("worker", "0")]),
        1
    );

    handle.initiate_drain();
    let report = handle.join();
    assert!(
        !report.flight_dumps.is_empty(),
        "panic must leave a dump: {report:?}"
    );
    let dump = std::fs::read_to_string(&report.flight_dumps[0]).expect("dump file exists");
    assert!(dump.contains("reason: worker-panic"), "{dump}");
    assert!(dump.contains("request.start"), "{dump}");
    assert!(dump.contains("injected worker panic"), "{dump}");
    assert!(
        report.to_json().contains("\"flight_dumps\":["),
        "report JSON references dumps"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn top_renders_frames_from_a_live_server() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), g);
    let mut c = Client::connect(handle.addr());
    for id in 0..2u64 {
        let r = c.roundtrip(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":{id}}}"
        ));
        assert!(r.contains("\"status\":\"ok\""), "{r}");
    }

    let addr = handle.addr().to_string();
    let mut out = Vec::new();
    let frames = run_top(&addr, Duration::from_millis(20), Some(2), &mut out).expect("top runs");
    assert_eq!(frames, 2);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("xbfs top"), "{text}");
    assert!(text.contains("ok 2"), "{text}");
    assert!(text.contains("breaker    closed"), "{text}");
    assert!(text.contains("w0="), "{text}");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
}
