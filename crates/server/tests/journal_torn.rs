//! Torn-journal recovery: the replay must recover exactly the longest
//! valid record prefix for *every possible* truncation offset — a crash
//! can stop an append after any byte — and must never panic on arbitrary
//! corruption. Exercised exhaustively (every offset) and with proptest
//! (random journals, random mutilation) through the public API only.

use proptest::prelude::*;
use xbfs_server::journal::{crc32, DoneRecord, FRAME_BYTES, HEADER};
use xbfs_server::protocol::BfsRequest;
use xbfs_server::{replay_bytes, FsyncPolicy, Journal, Record};

fn req(id: u64, source: u32) -> BfsRequest {
    BfsRequest {
        id,
        source,
        deadline_ms: None,
        verify: None,
        chaos: None,
    }
}

fn done(id: u64, source: u32, line: Option<&str>) -> Record {
    Record::Done(DoneRecord {
        id,
        source,
        status: "ok".into(),
        digest: Some(format!("{:#018x}", id * 31 + source as u64)),
        line: line.map(String::from),
    })
}

/// A representative journal: admits, completions (with and without
/// cached lines), a duplicate completion, and a trailing orphan admit.
/// Returns the byte buffer plus the frame end offsets (the only offsets
/// where a truncation is *not* torn).
fn build_journal() -> (Vec<u8>, Vec<usize>) {
    let records = vec![
        Record::Admit(req(1, 10)),
        Record::Admit(req(2, 20)),
        done(1, 10, Some("{\"id\":1,\"status\":\"ok\"}")),
        Record::Admit(req(3, 30)),
        done(2, 20, None),
        done(2, 20, None), // crash between journal and deliver replays
        Record::Admit(req(4, 40)),
    ];
    let mut buf = HEADER.to_vec();
    let mut ends = Vec::new();
    for r in &records {
        buf.extend(r.frame());
        ends.push(buf.len());
    }
    (buf, ends)
}

/// Truncating at every single byte offset recovers the longest valid
/// prefix: exactly the records whose frames fit entirely below the cut,
/// with everything past the last intact frame counted as torn.
#[test]
fn every_truncation_offset_recovers_the_longest_valid_prefix() {
    let (buf, ends) = build_journal();
    for cut in 0..=buf.len() {
        let r = replay_bytes(&buf[..cut]);
        if cut < HEADER.len() {
            assert_eq!(r.records, 0, "cut={cut}");
            assert_eq!(r.valid_len, 0, "cut={cut}");
            assert_eq!(r.torn_bytes, cut as u64, "cut={cut}");
            continue;
        }
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        let prefix_end = if intact == 0 {
            HEADER.len()
        } else {
            ends[intact - 1]
        };
        assert_eq!(r.records, intact as u64, "cut={cut}");
        assert_eq!(r.valid_len, prefix_end as u64, "cut={cut}");
        assert_eq!(r.torn_bytes, (cut - prefix_end) as u64, "cut={cut}");
        // The recovered prefix is itself a fully valid journal.
        let again = replay_bytes(&buf[..prefix_end]);
        assert_eq!(again.torn_bytes, 0, "cut={cut}");
        assert_eq!(again.records, r.records, "cut={cut}");
        assert_eq!(again.incomplete, r.incomplete, "cut={cut}");
    }
}

/// `Journal::open` on every truncation both recovers that same prefix
/// and leaves a file that appends cleanly (open truncates the torn
/// tail, so the next append cannot create a mid-file tear). Sampled at
/// frame-interior offsets rather than every byte to keep the test fast.
#[test]
fn open_after_truncation_resumes_appending_cleanly() {
    let (buf, ends) = build_journal();
    let path =
        std::env::temp_dir().join(format!("xbfs-journal-torn-open-{}.wal", std::process::id()));
    for cut in [
        0,
        HEADER.len() - 1,
        HEADER.len(),
        ends[0] - 1,
        ends[0],
        ends[2] + FRAME_BYTES / 2,
        ends[5] + 1,
        buf.len() - 1,
        buf.len(),
    ] {
        std::fs::write(&path, &buf[..cut]).unwrap();
        let (j, r) = Journal::open(&path, FsyncPolicy::Off).unwrap();
        let expected = replay_bytes(&buf[..cut]);
        assert_eq!(r, expected, "cut={cut}");
        j.append_admit(&req(999, 5)).unwrap();
        drop(j);
        let healed = replay_bytes(&std::fs::read(&path).unwrap());
        assert_eq!(healed.torn_bytes, 0, "cut={cut}: append after open heals");
        assert_eq!(healed.records, expected.records + 1, "cut={cut}");
        assert!(healed.incomplete.iter().any(|q| q.id == 999), "cut={cut}");
    }
    let _ = std::fs::remove_file(&path);
}

/// A CRC mismatch anywhere in the tail record ends the valid prefix
/// exactly at the previous record — a flipped bit is indistinguishable
/// from a torn write and must be discarded the same way.
#[test]
fn crc_mismatch_ends_the_valid_prefix() {
    let (buf, ends) = build_journal();
    // Flip one payload byte in the last record.
    let mut bad = buf.clone();
    let idx = ends[6] - 2;
    bad[idx] ^= 0x10;
    let r = replay_bytes(&bad);
    assert_eq!(r.records, 6);
    assert_eq!(r.valid_len, ends[5] as u64);
    assert_eq!(r.torn_bytes, (bad.len() - ends[5]) as u64);
    // Sanity: the CRC actually protects the payload we flipped.
    let p0 = &buf[ends[5] + FRAME_BYTES..ends[6]];
    let p1 = &bad[ends[5] + FRAME_BYTES..ends[6]];
    assert_ne!(crc32(p0), crc32(p1));
}

/// Double completions and done-before-admit orderings never leave a
/// completed key in the incomplete set (both occur in real crashes:
/// replayed delivery, and admit/done racing on separate threads).
#[test]
fn completed_keys_never_resurface_as_incomplete() {
    let mut buf = HEADER.to_vec();
    buf.extend(done(8, 2, Some("{\"id\":8}")).frame());
    buf.extend(Record::Admit(req(8, 2)).frame());
    buf.extend(Record::Admit(req(9, 3)).frame());
    buf.extend(done(9, 3, None).frame());
    buf.extend(done(9, 3, None).frame());
    let r = replay_bytes(&buf);
    assert_eq!(r.records, 5);
    assert!(r.incomplete.is_empty());
    assert_eq!(r.completed.len(), 3);
}

proptest! {
    /// Random journals truncated at random offsets: replay never panics,
    /// the recovered prefix replays to itself byte-for-byte, and every
    /// incomplete request it returns was actually admitted.
    #[test]
    fn random_truncation_recovers_a_self_consistent_prefix(
        ids in proptest::collection::vec((0u64..50, 0u32..8, any::<bool>()), 0..40),
        cut_ppm in 0usize..=1_000_000,
    ) {
        let mut buf = HEADER.to_vec();
        let mut admitted = std::collections::HashSet::new();
        for (id, source, complete) in &ids {
            if *complete {
                buf.extend(done(*id, *source, None).frame());
            } else {
                buf.extend(Record::Admit(req(*id, *source)).frame());
                admitted.insert((*id, *source));
            }
        }
        let cut = (buf.len() * cut_ppm / 1_000_000).min(buf.len());
        let r = replay_bytes(&buf[..cut]);
        prop_assert!(r.valid_len as usize <= cut);
        let again = replay_bytes(&buf[..r.valid_len as usize]);
        prop_assert_eq!(again.torn_bytes, 0);
        prop_assert_eq!(again.records, r.records);
        for q in &r.incomplete {
            prop_assert!(admitted.contains(&(q.id, q.source)));
        }
    }

    /// Arbitrary byte mutilation (overwrite a random span) never panics
    /// replay and never yields a prefix that fails to re-replay cleanly.
    #[test]
    fn random_corruption_never_panics_replay(
        n_records in 0usize..20,
        at in 0usize..2048,
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut buf = HEADER.to_vec();
        for i in 0..n_records {
            buf.extend(Record::Admit(req(i as u64, (i % 5) as u32)).frame());
        }
        let at = at.min(buf.len());
        for (k, b) in garbage.iter().enumerate() {
            if at + k < buf.len() {
                buf[at + k] = *b;
            } else {
                buf.push(*b);
            }
        }
        let r = replay_bytes(&buf);
        prop_assert!(r.valid_len as usize <= buf.len());
        let again = replay_bytes(&buf[..r.valid_len as usize]);
        prop_assert_eq!(again.torn_bytes, 0);
        prop_assert_eq!(again.records, r.records);
    }
}
