//! Batched-serving e2e over a real socket: coalesced 64-wide waves must
//! answer with the exact timing-independent levels digest a solo run
//! reports, members keep their own deadlines (a batch never drags a
//! healthy member into a timeout), duplicate sources dedup to identical
//! answers, and a panic inside a batch quarantines the engine and
//! replays every member individually.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gcd_sim::Device;
use proptest::prelude::*;
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::generators::erdos_renyi;
use xbfs_graph::Csr;
use xbfs_server::{protocol, ServeConfig, Server, ServerHandle};
use xbfs_telemetry::Recorder;

fn test_graph() -> Arc<Csr> {
    Arc::new(erdos_renyi(2000, 8_000, 5))
}

fn start(cfg: ServeConfig, g: Arc<Csr>) -> ServerHandle {
    Server::start(
        cfg,
        g,
        XbfsConfig::default(),
        Arc::new(Device::mi250x),
        Arc::new(Recorder::disabled()),
    )
    .expect("server binds")
}

/// A batch-mode config: one worker so pipelined requests coalesce.
fn batch_cfg(width: usize, window_ms: f64) -> ServeConfig {
    ServeConfig {
        batch_width: width,
        batch_window_ms: window_ms,
        workers: 1,
        ..ServeConfig::default()
    }
}

/// The timing-independent levels digest a solo engine reports for
/// `source` — what every batched response must quote bit for bit.
fn reference_levels_digest(g: &Csr, source: u32) -> String {
    let dev = Device::mi250x();
    let eng = Xbfs::new(&dev, g, XbfsConfig::default()).unwrap();
    format!("{:#018x}", eng.run(source).unwrap().result_digest())
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Self { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> protocol::ResponseSummary {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        protocol::parse_response(line.trim()).expect("parse response")
    }
}

/// Fire all requests back-to-back (so the linger window can coalesce
/// them), then collect every response keyed by id — batch members are
/// delivered in triage/slot order, not necessarily send order.
fn pipeline(
    c: &mut Client,
    reqs: &[(u64, u32, String)],
) -> HashMap<u64, protocol::ResponseSummary> {
    for (id, src, extra) in reqs {
        c.send(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":{src}{extra}}}"
        ));
    }
    (0..reqs.len())
        .map(|_| {
            let r = c.recv();
            (r.id, r)
        })
        .collect()
}

#[test]
fn batched_responses_match_solo_levels_digests_bit_for_bit() {
    let g = test_graph();
    let handle = start(batch_cfg(64, 40.0), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // Duplicate sources (42 and 0 twice) must dedup into one slot and
    // still answer every requester.
    let sources = [0u32, 42, 42, 7, 1999, 7, 13, 0];
    let reqs: Vec<(u64, u32, String)> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u64 + 1, s, String::new()))
        .collect();
    let got = pipeline(&mut c, &reqs);

    assert_eq!(got.len(), sources.len());
    for (id, src, _) in &reqs {
        let r = &got[id];
        assert_eq!(r.status, "ok", "id {id}: {r:?}");
        assert_eq!(
            r.digest.as_deref(),
            Some(reference_levels_digest(&g, *src).as_str()),
            "id {id} (source {src}): batched digest must equal a solo run's result_digest"
        );
        let width = r
            .batch
            .expect("batch-width server stamps batch on every ok");
        assert!(width >= 1, "id {id}: {r:?}");
    }

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, sources.len() as u64);
    assert_eq!(report.batch_width, 64);
    assert!(report.batches >= 1, "{report:?}");
    assert_eq!(report.batched_requests, sources.len() as u64);
    assert!(report.max_batch_size >= 1, "{report:?}");
}

#[test]
fn batch_member_deadlines_are_individual_not_collective() {
    let g = test_graph();
    let handle = start(batch_cfg(64, 30.0), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // The nanosecond-budget member must time out alone; coalescing must
    // not drag the unbounded members down with it.
    let reqs = vec![
        (1u64, 5u32, String::new()),
        (2, 9, ",\"deadline_ms\":0.000001".to_string()),
        (3, 77, String::new()),
    ];
    let got = pipeline(&mut c, &reqs);

    assert_eq!(got[&2].status, "timeout", "{:?}", got[&2]);
    for (id, src) in [(1u64, 5u32), (3, 77)] {
        let r = &got[&id];
        assert_eq!(r.status, "ok", "id {id}: {r:?}");
        assert_eq!(
            r.digest.as_deref(),
            Some(reference_levels_digest(&g, src).as_str()),
            "id {id}: a healthy member must not be perturbed by a doomed batchmate"
        );
    }

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, 2);
    assert_eq!(report.timeouts, 1);
}

#[test]
fn panic_in_batch_quarantines_engine_and_replays_members_bit_identically() {
    let g = test_graph();
    let cfg = ServeConfig {
        allow_chaos: true,
        ..batch_cfg(64, 40.0)
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    let reqs = vec![
        (1u64, 3u32, String::new()),
        (2, 17, ",\"chaos\":\"panic\"".to_string()),
        (3, 900, String::new()),
    ];
    let got = pipeline(&mut c, &reqs);

    for (id, src, _) in &reqs {
        let r = &got[id];
        assert_eq!(r.status, "ok", "id {id}: replay after batch panic: {r:?}");
        assert_eq!(
            r.digest.as_deref(),
            Some(reference_levels_digest(&g, *src).as_str()),
            "id {id}: the per-member replay must stay bit-identical"
        );
    }
    assert_eq!(
        got[&2].attempts,
        Some(2),
        "the chaos member records the failed batch attempt: {:?}",
        got[&2]
    );

    // The listener survived the panic.
    let mut c2 = Client::connect(handle.addr());
    c2.send("{\"op\":\"ping\",\"id\":9}");
    assert_eq!(c2.recv().status, "ok");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, 3);
    assert_eq!(report.panics_recovered, 1, "{report:?}");
    assert!(report.rebuilds >= 1, "{report:?}");
}

#[test]
fn bitflip_chaos_on_batch_server_is_a_usage_error() {
    let g = test_graph();
    let cfg = ServeConfig {
        allow_chaos: true,
        ..batch_cfg(2, 1.0)
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let got = pipeline(
        &mut c,
        &[(1u64, 0u32, ",\"chaos\":\"bitflip\"".to_string())],
    );
    let r = &got[&1];
    assert_eq!(r.status, "error", "{r:?}");
    assert_eq!(r.kind.as_deref(), Some("usage"), "{r:?}");

    // The server keeps serving.
    let got = pipeline(&mut c, &[(2u64, 0u32, String::new())]);
    assert_eq!(got[&2].status, "ok");
    handle.initiate_drain();
    assert!(handle.join().drain_clean);
}

#[test]
fn verified_batch_server_certifies_slots_and_stays_bit_identical() {
    let g = test_graph();
    let cfg = ServeConfig {
        verify: true,
        ..batch_cfg(64, 30.0)
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let reqs: Vec<(u64, u32, String)> = [4u32, 4, 256, 1500]
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u64 + 1, s, String::new()))
        .collect();
    let got = pipeline(&mut c, &reqs);
    for (id, src, _) in &reqs {
        let r = &got[id];
        assert_eq!(r.status, "ok", "id {id}: {r:?}");
        assert_eq!(
            r.digest.as_deref(),
            Some(reference_levels_digest(&g, *src).as_str()),
            "id {id}: certified batch slots answer the solo digest"
        );
    }
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, reqs.len() as u64);
    assert_eq!(report.rebuilds, 0, "clean certificates never quarantine");
}

proptest! {
    // Each case boots a real server, so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Coalescing must never cost a member its own deadline: members
    /// with no deadline always come back `ok` with the solo levels
    /// digest, no matter how many doomed (nanosecond-budget) members
    /// share their wave — and duplicate sources answer identically.
    #[test]
    fn no_member_times_out_from_coalescing_and_duplicates_agree(
        plan in proptest::collection::vec((0u32..600, any::<bool>()), 1..10),
    ) {
        let g = Arc::new(erdos_renyi(600, 2_400, 9));
        let handle = start(batch_cfg(64, 10.0), Arc::clone(&g));
        let mut c = Client::connect(handle.addr());

        let reqs: Vec<(u64, u32, String)> = plan
            .iter()
            .enumerate()
            .map(|(i, &(src, doomed))| {
                let extra = if doomed {
                    ",\"deadline_ms\":0.000001".to_string()
                } else {
                    String::new()
                };
                (i as u64 + 1, src, extra)
            })
            .collect();
        let got = pipeline(&mut c, &reqs);

        let mut digest_by_source: HashMap<u32, String> = HashMap::new();
        for (i, &(src, doomed)) in plan.iter().enumerate() {
            let r = &got[&(i as u64 + 1)];
            if doomed {
                prop_assert_eq!(&r.status, "timeout", "{:?}", r);
            } else {
                prop_assert_eq!(&r.status, "ok", "{:?}", r);
                let d = r.digest.clone().expect("ok carries a digest");
                prop_assert_eq!(
                    d.as_str(),
                    reference_levels_digest(&g, src).as_str(),
                    "source {}: batched != solo", src
                );
                if let Some(seen) = digest_by_source.insert(src, d.clone()) {
                    prop_assert_eq!(seen, d, "duplicate source {} diverged", src);
                }
            }
        }

        handle.initiate_drain();
        let report = handle.join();
        prop_assert!(report.drain_clean, "{:?}", report);
        let doomed = plan.iter().filter(|&&(_, d)| d).count() as u64;
        prop_assert_eq!(report.timeouts, doomed);
        prop_assert_eq!(report.ok, plan.len() as u64 - doomed);
    }
}
