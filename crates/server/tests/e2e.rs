//! End-to-end serving-layer tests over a real socket: panic isolation
//! (an injected worker panic never kills the listener, and the replayed
//! result is bit-identical to a single-shot run), deadline timeouts,
//! load shedding, chaos gating, graceful drain, cluster serving with
//! mid-request checkpoint/restart, idempotent replay, and client-side
//! shed retries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gcd_sim::Device;
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::generators::erdos_renyi;
use xbfs_graph::Csr;
use xbfs_server::{
    protocol, run_loadgen, ChaosPlan, LoadgenConfig, ServeConfig, Server, ServerHandle,
};
use xbfs_telemetry::Recorder;

fn test_graph() -> Arc<Csr> {
    Arc::new(erdos_renyi(3000, 12_000, 7))
}

fn start(cfg: ServeConfig, g: Arc<Csr>) -> ServerHandle {
    Server::start(
        cfg,
        g,
        XbfsConfig::default(),
        Arc::new(Device::mi250x),
        Arc::new(Recorder::disabled()),
    )
    .expect("server binds")
}

/// A client connection with line-level send/recv helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Self { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> protocol::ResponseSummary {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        protocol::parse_response(line.trim()).expect("parse response")
    }

    fn bfs(&mut self, id: u64, source: u32, extra: &str) -> protocol::ResponseSummary {
        self.send(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":{source}{extra}}}"
        ));
        self.recv()
    }
}

/// The digest a plain single-shot engine computes for this source — the
/// bit-identity reference every served result must match.
fn reference_digest(g: &Csr, source: u32) -> String {
    let dev = Device::mi250x();
    let eng = Xbfs::new(&dev, g, XbfsConfig::default()).unwrap();
    format!("{:#018x}", eng.run(source).unwrap().digest())
}

/// The backend-independent levels-only digest of a fault-free
/// single-device run — what a `--cluster` server's responses must match
/// bit for bit, crashes or not.
fn reference_levels_digest(g: &Csr, source: u32) -> String {
    let dev = Device::mi250x();
    let eng = Xbfs::new(&dev, g, XbfsConfig::default()).unwrap();
    format!("{:#018x}", eng.run(source).unwrap().result_digest())
}

#[test]
fn serves_bfs_and_drains_cleanly() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // ping / info answer inline.
    c.send("{\"op\":\"ping\",\"id\":1}");
    assert_eq!(c.recv().status, "ok");
    c.send("{\"op\":\"info\",\"id\":2}");
    assert_eq!(c.recv().status, "ok");

    // Served results match the single-shot reference bit for bit.
    for (id, src) in [(10u64, 0u32), (11, 42), (12, 2999)] {
        let r = c.bfs(id, src, "");
        assert_eq!(r.status, "ok", "source {src}");
        assert_eq!(r.id, id);
        assert_eq!(
            r.digest.as_deref(),
            Some(reference_digest(&g, src).as_str()),
            "served result must be bit-identical to a fresh engine"
        );
    }

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "clean drain: {report:?}");
    assert_eq!(report.ok, 3);
    assert_eq!(report.dropped_connections, 0);
}

#[test]
fn worker_panic_is_contained_and_replay_is_bit_identical() {
    let g = test_graph();
    let cfg = ServeConfig {
        allow_chaos: true,
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // A chaos panic fires inside the worker on attempt 0; the
    // supervisor quarantines the engine, rebuilds, and replays clean.
    let r = c.bfs(1, 17, ",\"chaos\":\"panic\"");
    assert_eq!(r.status, "ok", "replay after panic must succeed: {r:?}");
    assert_eq!(r.attempts, Some(2), "one panic, one clean replay");
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_digest(&g, 17).as_str()),
        "replayed result must be bit-identical to a single-shot run"
    );

    // The listener survived: the same connection keeps working, and so
    // does a brand-new one.
    let r = c.bfs(2, 17, "");
    assert_eq!(r.status, "ok");
    assert_eq!(r.attempts, Some(1));
    let mut c2 = Client::connect(handle.addr());
    c2.send("{\"op\":\"ping\",\"id\":3}");
    assert_eq!(c2.recv().status, "ok");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.panics_recovered, 1);
    assert_eq!(report.rebuilds, 1);
    assert_eq!(report.replayed, 1);
}

#[test]
fn chaos_is_ignored_without_opt_in() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g)); // allow_chaos: false
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1, 5, ",\"chaos\":\"panic\"");
    assert_eq!(r.status, "ok", "production servers ignore stamped chaos");
    assert_eq!(r.attempts, Some(1));
    handle.initiate_drain();
    let report = handle.join();
    assert_eq!(report.chaos_ignored, 1);
    assert_eq!(report.panics_recovered, 0);
}

#[test]
fn bitflip_chaos_is_detected_and_replayed() {
    let g = test_graph();
    let cfg = ServeConfig {
        allow_chaos: true,
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1, 99, ",\"chaos\":\"bitflip\"");
    assert_eq!(r.status, "ok", "{r:?}");
    assert!(
        r.attempts.unwrap_or(0) >= 2,
        "certification must catch the flip and force a replay"
    );
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_digest(&g, 99).as_str()),
        "corrected result must be bit-identical"
    );
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.rebuilds >= 1);
    assert!(report.drain_clean, "{report:?}");
}

#[test]
fn impossible_deadline_times_out_typed() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    // A nanosecond-scale budget cannot cover a multi-level run.
    let r = c.bfs(1, 0, ",\"deadline_ms\":0.000001");
    assert_eq!(r.status, "timeout");
    // The engine survives a timeout: the next request is clean.
    let r = c.bfs(2, 0, "");
    assert_eq!(r.status, "ok");
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_digest(&g, 0).as_str()),
        "state must be fully reusable after a deadline abort"
    );
    handle.initiate_drain();
    let report = handle.join();
    assert_eq!(report.timeouts, 1);
    assert!(report.drain_clean, "{report:?}");
}

#[test]
fn bad_source_is_a_typed_error_not_a_crash() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1, 1_000_000, "");
    assert_eq!(r.status, "error");
    assert_eq!(r.kind.as_deref(), Some("invalid"));
    let r = c.bfs(2, 1, "");
    assert_eq!(r.status, "ok", "server keeps serving after a bad request");
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
}

#[test]
fn overload_sheds_explicitly_and_nothing_is_lost() {
    let g = test_graph();
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // Pipeline a burst far past capacity without reading.
    let burst = 30u64;
    for id in 0..burst {
        c.send(&format!(
            "{{\"v\":\"xbfs-serve-v1\",\"op\":\"bfs\",\"id\":{id},\"source\":0}}"
        ));
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..burst {
        let r = c.recv();
        match r.status.as_str() {
            "ok" => ok += 1,
            "overloaded" => {
                assert!(r.retry_after_ms.unwrap_or(0) > 0, "hint required");
                shed += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok + shed, burst, "every request answered exactly once");
    assert!(shed > 0, "a 2-deep queue must shed under a 30-burst");
    assert!(ok > 0, "accepted requests still complete");

    handle.initiate_drain();
    let report = handle.join();
    assert_eq!(report.ok, ok);
    assert_eq!(report.shed, shed);
    assert_eq!(report.dropped_connections, 0);
    assert!(report.drain_clean, "{report:?}");
}

#[test]
fn cluster_recovers_rank_crash_within_request_and_digest_matches_single_device() {
    let g = test_graph();
    let cfg = ServeConfig {
        cluster: Some(4),
        allow_chaos: true,
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    // Rank 1 dies at level 1 mid-request; checkpoint/restart recovers it
    // inside the request — the response is ok on attempt 1 (no replay)
    // with ≥1 recovery, and the digest is bit-identical to a fault-free
    // single-device run.
    let r = c.bfs(1, 42, ",\"chaos\":\"crash@1:rank1\",\"deadline_ms\":60000");
    assert_eq!(r.status, "ok", "{r:?}");
    assert_eq!(
        r.attempts,
        Some(1),
        "recovered within the request, not replayed"
    );
    assert!(
        r.recoveries.unwrap_or(0) >= 1,
        "a mid-request checkpoint restore must be reported: {r:?}"
    );
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_levels_digest(&g, 42).as_str()),
        "recovered levels must be bit-identical to fault-free"
    );

    // A clean request on the same warm cluster matches too.
    let r = c.bfs(2, 42, "");
    assert_eq!(r.status, "ok");
    assert_eq!(r.recoveries, Some(0));
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_levels_digest(&g, 42).as_str())
    );

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.cluster, 4);
    assert_eq!(
        report.rank_health.len(),
        4,
        "per-rank health for all 4 GCDs"
    );
    assert_eq!(report.rank_health[1].crashes, 1, "{:?}", report.rank_health);
    let restores: u64 = report
        .rank_health
        .iter()
        .map(|h| h.checkpoints_restored)
        .sum();
    assert!(restores >= 1, "{:?}", report.rank_health);
}

#[test]
fn crash_chaos_on_single_device_server_is_a_usage_error() {
    let g = test_graph();
    let cfg = ServeConfig {
        allow_chaos: true,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1, 0, ",\"chaos\":\"crash@1:rank0\"");
    assert_eq!(r.status, "error");
    assert_eq!(r.kind.as_deref(), Some("usage"));
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
}

#[test]
fn replayed_completed_id_is_answered_from_cache_not_reexecuted() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());

    let first = c.bfs(7, 19, "");
    assert_eq!(first.status, "ok");
    assert_eq!(first.deduped, None);

    // A reconnect-after-timeout replays the same id: the cached response
    // comes back (marked), and the server does not execute it again.
    let mut c2 = Client::connect(handle.addr());
    let replay = c2.bfs(7, 19, "");
    assert_eq!(replay.status, "ok");
    assert_eq!(replay.deduped, Some(true), "{replay:?}");
    assert_eq!(replay.digest, first.digest);

    // Same id with a different source is a different request, not a
    // replay — it must execute.
    let other = c.bfs(7, 20, "");
    assert_eq!(other.status, "ok");
    assert_eq!(other.deduped, None);

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, 2, "only two executions for three requests");
    assert_eq!(report.deduped, 1);
}

#[test]
fn loadgen_retries_shed_requests_until_they_land() {
    let g = test_graph();
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));

    // A burst far past a 1-deep queue: without retries much of it is
    // shed; with retries everything eventually lands.
    let report = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        requests: 30,
        rps: 3000.0,
        connections: 2,
        source_max: 4,
        retries: 10,
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");

    assert_eq!(report.lost, 0, "{report:?}");
    assert!(
        report.retried_ok >= 1,
        "retries must rescue sheds: {report:?}"
    );
    assert!(report.retries_sent >= report.retried_ok);
    assert!(report.digests_consistent, "{report:?}");
    assert_eq!(
        report.ok + report.shed + report.timeouts + report.errors,
        report.sent,
        "{report:?}"
    );

    handle.initiate_drain();
    let sreport = handle.join();
    assert!(sreport.drain_clean, "{sreport:?}");
}

#[test]
fn chaos_soak_on_cluster_loses_nothing_and_recovers_ranks() {
    let g = test_graph();
    let cfg = ServeConfig {
        cluster: Some(4),
        allow_chaos: true,
        workers: 2,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    let handle = start(cfg, Arc::clone(&g));

    // Every third request carries a rank-1 crash at level 1; retries
    // absorb any sheds so nothing is lost.
    let report = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        requests: 24,
        rps: 500.0,
        connections: 2,
        source_max: 1, // one source → digests_consistent compares
        // crash-recovered responses against clean ones
        chaos: Some(ChaosPlan::parse("crash@1:3,rank=1").expect("chaos spec")),
        retries: 10,
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");

    assert_eq!(report.lost, 0, "{report:?}");
    assert!(report.ok > 0, "{report:?}");
    assert!(
        report.digests_consistent,
        "crash-recovered results must match clean ones: {report:?}"
    );

    // And the shared single source matches the fault-free single-device
    // reference bit for bit.
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1_000_000, 0, "");
    assert_eq!(
        r.digest.as_deref(),
        Some(reference_levels_digest(&g, 0).as_str())
    );

    handle.initiate_drain();
    let sreport = handle.join();
    assert!(sreport.drain_clean, "{sreport:?}");
    let crashes: u64 = sreport.rank_health.iter().map(|h| h.crashes).sum();
    let restores: u64 = sreport
        .rank_health
        .iter()
        .map(|h| h.checkpoints_restored)
        .sum();
    assert!(crashes >= 1, "{:?}", sreport.rank_health);
    assert!(restores >= 1, "{:?}", sreport.rank_health);
}

#[test]
fn shutdown_op_drains_and_rejects_late_requests() {
    let g = test_graph();
    let handle = start(ServeConfig::default(), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let r = c.bfs(1, 3, "");
    assert_eq!(r.status, "ok");
    c.send("{\"op\":\"shutdown\",\"id\":2}");
    assert_eq!(c.recv().status, "ok");
    // join() returning at all is the drain assertion: accept loop,
    // handlers, and workers all exited on the wire-initiated shutdown.
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.ok, 1);
}

// ---------------------------------------------------------------------
// Durability: write-ahead journal, crash-consistent restart.
// ---------------------------------------------------------------------

fn journal_cfg(path: &std::path::Path) -> ServeConfig {
    ServeConfig {
        journal: Some(path.to_string_lossy().into_owned()),
        journal_fsync: xbfs_server::FsyncPolicy::Always,
        ..ServeConfig::default()
    }
}

fn tmp_journal(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("xbfs-e2e-{}-{name}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A restart on the same journal warm-starts the dedup cache: a client
/// that resends a completed id gets the cached response (`deduped`)
/// with the identical digest, without recomputation.
#[test]
fn restart_on_same_journal_dedupes_completed_ids() {
    let g = test_graph();
    let path = tmp_journal("dedup");

    let handle = start(journal_cfg(&path), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let first = c.bfs(77, 5, "");
    assert_eq!(first.status, "ok");
    let digest = first.digest.clone().expect("ok carries a digest");
    drop(c);
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert!(report.journal_appends >= 2, "admit + done: {report:?}");

    // Process 2 on the same journal: the resent id must be answered from
    // the warmed cache, bit-identical, and marked deduped.
    let handle = start(journal_cfg(&path), Arc::clone(&g));
    let mut c = Client::connect(handle.addr());
    let replayed = c.bfs(77, 5, "");
    assert_eq!(replayed.status, "ok");
    assert_eq!(replayed.deduped, Some(true), "warm cache must answer");
    assert_eq!(replayed.digest.as_deref(), Some(digest.as_str()));
    assert_eq!(digest, reference_digest(&g, 5));
    // A fresh id still executes normally.
    let fresh = c.bfs(78, 6, "");
    assert_eq!(fresh.status, "ok");
    assert_ne!(fresh.deduped, Some(true));
    drop(c);
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert!(report.deduped >= 1, "{report:?}");
    assert_eq!(report.replayed_requests, 0, "nothing was incomplete");
    let _ = std::fs::remove_file(&path);
}

/// Admits journaled by a process that died before answering are
/// re-enqueued on restart and finish with digests bit-identical to a
/// fresh run — even when the dead process also tore the journal tail.
#[test]
fn restart_replays_incomplete_admits_bit_identically() {
    let g = test_graph();
    let path = tmp_journal("replay");
    let lost: &[(u64, u32)] = &[(1, 0), (2, 42), (3, 2999)];
    {
        // Simulate the dead process: admits with no completions, then a
        // torn half-record where the SIGKILL landed.
        let (j, _) = xbfs_server::Journal::open(&path, xbfs_server::FsyncPolicy::Always).unwrap();
        for &(id, source) in lost {
            j.append_admit(&xbfs_server::BfsRequest {
                id,
                source,
                deadline_ms: None,
                verify: None,
                chaos: None,
            })
            .unwrap();
        }
    }
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0x42, 0x00, 0x13]); // torn tail
    std::fs::write(&path, &bytes).unwrap();

    let handle = start(journal_cfg(&path), Arc::clone(&g));
    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.replayed_requests, lost.len() as u64, "{report:?}");
    assert_eq!(report.ok, lost.len() as u64, "{report:?}");
    assert!(report.recovery_ms >= 0.0, "{report:?}");

    // The journal now closes the loop: no incomplete admits remain, and
    // every recovered completion carries the fresh-run reference digest.
    let healed = xbfs_server::replay_bytes(&std::fs::read(&path).unwrap());
    assert!(healed.incomplete.is_empty(), "{healed:?}");
    for &(id, source) in lost {
        let d = healed
            .completed
            .iter()
            .find(|d| d.id == id && d.source == source)
            .unwrap_or_else(|| panic!("no completion journaled for id {id}"));
        assert_eq!(d.status, "ok");
        assert_eq!(
            d.digest.as_deref(),
            Some(reference_digest(&g, source).as_str()),
            "recovered result must be bit-identical to a fresh run"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Read hygiene: a request line over the 64 KiB bound is shed with a
/// typed `overlong` error instead of growing the buffer without limit,
/// and an idle connection with nothing in flight is closed after the
/// idle budget.
#[test]
fn overlong_lines_shed_and_idle_connections_close() {
    let g = test_graph();
    let handle = start(
        ServeConfig {
            idle_timeout_ms: 300,
            ..ServeConfig::default()
        },
        Arc::clone(&g),
    );

    // Overlong: a newline-less firehose one byte past the cap.
    let mut c = Client::connect(handle.addr());
    let blob = vec![b'x'; xbfs_server::server::MAX_REQUEST_LINE + 2];
    c.writer.write_all(&blob).unwrap();
    c.writer.flush().unwrap();
    let r = c.recv();
    assert_eq!(r.status, "error");
    drop(c);

    // Idle: no traffic at all → server closes within the idle budget.
    let idle = TcpStream::connect(handle.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    let n = BufReader::new(idle).read_line(&mut line).unwrap();
    assert_eq!(n, 0, "idle connection must be closed, got {line:?}");

    handle.initiate_drain();
    let report = handle.join();
    assert!(report.drain_clean, "{report:?}");
    assert_eq!(report.long_lines, 1, "{report:?}");
    assert!(report.idle_disconnects >= 1, "{report:?}");
}
