//! Admission-queue properties: under any interleaving of concurrent
//! submitters, workers, and a drain, the queue must (1) account for
//! every request exactly once (accepted + shed + rejected = submitted),
//! (2) execute every accepted request exactly once and lose none,
//! (3) hand work out FIFO by ticket, and (4) never exceed its bound.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xbfs_server::{Admission, AdmissionQueue};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial accounting + FIFO: whatever mix of submissions happens,
    /// the counters add up and pops come out in ticket order.
    #[test]
    fn serial_accounting_holds(cap in 1usize..16, n in 0usize..64) {
        let q = AdmissionQueue::new(cap, 5);
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for i in 0..n {
            match q.submit(i) {
                Admission::Accepted { .. } => accepted += 1,
                Admission::Shed { retry_after_ms } => {
                    prop_assert!(retry_after_ms >= 5, "hint must respect the base");
                    shed += 1;
                }
                Admission::Draining => unreachable!("queue is open"),
            }
            prop_assert!(q.depth() <= cap, "bound violated");
        }
        prop_assert_eq!(accepted + shed, n as u64);
        let stats = q.stats();
        prop_assert_eq!(stats.accepted, accepted);
        prop_assert_eq!(stats.shed, shed);
        prop_assert!(stats.max_depth <= cap);

        q.drain();
        let mut last_ticket = None;
        let mut popped = 0u64;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last_ticket {
                prop_assert!(t > prev, "FIFO order by ticket violated");
            }
            last_ticket = Some(t);
            popped += 1;
        }
        // Nothing was popped during submission, so everything accepted
        // is still queued and must drain out exactly once.
        prop_assert_eq!(popped, accepted);
    }

    /// Concurrent submit/consume/drain: no request is lost, none is
    /// executed twice, and the bound holds throughout.
    #[test]
    fn concurrent_exactly_once(
        cap in 1usize..12,
        n_submitters in 1usize..4,
        n_workers in 1usize..4,
        per_submitter in 1usize..40,
    ) {
        let q = Arc::new(AdmissionQueue::new(cap, 5));
        let executed = Arc::new(Mutex::new(Vec::<u64>::new()));
        let accepted_total = Arc::new(AtomicU64::new(0));
        let shed_total = Arc::new(AtomicU64::new(0));
        let rejected_total = Arc::new(AtomicU64::new(0));

        let workers: Vec<_> = (0..n_workers)
            .map(|_| {
                let q = Arc::clone(&q);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    while let Some((_, item)) = q.pop() {
                        executed.lock().unwrap().push(item);
                    }
                })
            })
            .collect();

        let submitters: Vec<_> = (0..n_submitters)
            .map(|s| {
                let q = Arc::clone(&q);
                let acc = Arc::clone(&accepted_total);
                let shed = Arc::clone(&shed_total);
                let rej = Arc::clone(&rejected_total);
                std::thread::spawn(move || {
                    for i in 0..per_submitter {
                        // Unique payload per (submitter, index).
                        let item = (s * 10_000 + i) as u64;
                        match q.submit(item) {
                            Admission::Accepted { .. } => {
                                acc.fetch_add(1, Ordering::Relaxed);
                            }
                            Admission::Shed { .. } => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Admission::Draining => {
                                rej.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();

        for s in submitters {
            s.join().unwrap();
        }
        // All submissions done: drain lets workers finish and exit.
        q.drain();
        for w in workers {
            w.join().unwrap();
        }

        let executed = executed.lock().unwrap();
        let accepted = accepted_total.load(Ordering::Relaxed);
        let shed = shed_total.load(Ordering::Relaxed);
        let rejected = rejected_total.load(Ordering::Relaxed);
        let submitted = (n_submitters * per_submitter) as u64;

        prop_assert_eq!(accepted + shed + rejected, submitted,
            "every submission accounted exactly once");
        prop_assert_eq!(executed.len() as u64, accepted,
            "every accepted request executed, nothing lost");
        let unique: HashSet<_> = executed.iter().copied().collect();
        prop_assert_eq!(unique.len(), executed.len(),
            "no request executed twice");
        prop_assert!(q.stats().max_depth <= cap, "bound violated");
        prop_assert!(q.close().is_empty(), "nothing may linger after drain");
    }
}

/// A worker blocked on an empty open queue must wake and exit when the
/// drain happens-after its block (regression for a lost-wakeup bug
/// class; not a property test because it is about blocking semantics).
#[test]
fn drain_wakes_every_blocked_worker() {
    let q = Arc::new(AdmissionQueue::<u32>::new(4, 5));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(30));
    q.drain();
    for w in workers {
        assert_eq!(w.join().unwrap(), None);
    }
}
