//! The `xbfs` subcommands, factored as library functions so they are unit-
//! testable without spawning processes.

use crate::args::Args;
use gcd_sim::{ArchProfile, Compiler, Device, ExecMode};
use std::path::Path;
use xbfs_core::{ms_bfs, Strategy, Xbfs, XbfsConfig, XbfsError};
use xbfs_graph::builder::BuildOptions;
use xbfs_graph::generators::{rmat_graph, RmatParams};
use xbfs_graph::stats::{level_profile, pick_sources, summarize};
use xbfs_graph::{io, rearrange_by_degree, Csr, Dataset, RearrangeOrder};
use xbfs_multi_gcd::{
    ClusterConfig, ClusterError, FaultConfig, FaultPlan, GcdCluster, LinkModel, RecoveryPolicy,
};

/// Exit codes the `xbfs` binary maps failures to.
pub mod exit_code {
    /// Catch-all failure (reserved; every current error maps to a
    /// specific code below).
    #[allow(dead_code)]
    pub const GENERIC: i32 = 1;
    /// Bad command line (unknown command/option, unparsable value).
    pub const USAGE: i32 = 2;
    /// Filesystem problem (unreadable input, unwritable output).
    pub const IO: i32 = 3;
    /// Input rejected by the engine (bad source, bad config, bad spec).
    pub const INVALID_INPUT: i32 = 4;
    /// An injected fault the cluster could not recover from.
    pub const UNRECOVERED_FAULT: i32 = 5;
    /// BFS output failed Graph500 validation.
    pub const VALIDATION: i32 = 6;
}

/// A CLI failure: a user-facing message plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong, printed to stderr.
    pub message: String,
    /// Process exit code (see [`exit_code`]).
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>, code: i32) -> Self {
        Self {
            message: message.into(),
            code,
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        Self::new(message, exit_code::USAGE)
    }

    fn io(message: impl Into<String>) -> Self {
        Self::new(message, exit_code::IO)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl From<String> for CliError {
    // Bare-string errors in this module are option/usage complaints.
    fn from(message: String) -> Self {
        Self::usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::usage(message.to_string())
    }
}

impl From<XbfsError> for CliError {
    fn from(e: XbfsError) -> Self {
        Self::new(e.to_string(), exit_code::INVALID_INPUT)
    }
}

impl From<ClusterError> for CliError {
    fn from(e: ClusterError) -> Self {
        let code = match &e {
            ClusterError::LinkFailed { .. } | ClusterError::Unrecoverable { .. } => {
                exit_code::UNRECOVERED_FAULT
            }
            _ => exit_code::INVALID_INPUT,
        };
        Self::new(e.to_string(), code)
    }
}

/// Run one subcommand; returns the text to print.
/// Options each subcommand accepts; anything else is a usage error
/// rather than being silently ignored.
const DEVICE_OPTS: [&str; 3] = ["arch", "compiler", "timing"];

fn allowed_options(command: &str) -> Option<Vec<&'static str>> {
    let mut opts: Vec<&str> = match command {
        "generate" => vec!["out", "kind", "seed", "scale", "shift"],
        "convert" | "info" | "analyze" | "help" | "" => vec![],
        "bfs" => vec![
            "source",
            "alpha",
            "auto-alpha",
            "forced",
            "rearrange",
            "validate",
            "csv",
        ],
        "cluster" => vec![
            "gcds",
            "source",
            "alpha",
            "push-only",
            "inject-faults",
            "checkpoint-every",
            "recovery",
            "validate",
            "json",
            "csv",
        ],
        "msbfs" => vec!["sources"],
        "compare" => vec!["source"],
        _ => return None,
    };
    if matches!(command, "bfs" | "msbfs" | "compare") {
        opts.extend(DEVICE_OPTS);
    }
    Some(opts)
}

fn reject_unknown_options(args: &Args) -> Result<(), CliError> {
    let Some(allowed) = allowed_options(&args.command) else {
        return Ok(()); // unknown command: reported by dispatch itself
    };
    for key in args.options.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(CliError::usage(format!(
                "unknown option --{key} for `{}` (see `xbfs help`)",
                args.command
            )));
        }
    }
    Ok(())
}

pub fn dispatch(args: &Args) -> Result<String, CliError> {
    reject_unknown_options(args)?;
    match args.command.as_str() {
        "generate" => generate(args),
        "convert" => convert(args),
        "info" => info(args),
        "bfs" => bfs(args),
        "cluster" => cluster(args),
        "msbfs" => msbfs(args),
        "compare" => compare(args),
        "analyze" => analyze(args),
        "help" | "" => Ok(HELP.to_string()),
        other => Err(CliError::usage(format!("unknown command {other:?}\n{HELP}"))),
    }
}

const HELP: &str = "\
xbfs — XBFS-on-simulated-MI250X toolbox

USAGE: xbfs <command> [options]

COMMANDS
  generate  --out FILE [--kind rmat|lj|up|or|db] [--scale N | --shift N] [--seed N]
            write a graph in the binary cache format
  convert   IN OUT        convert between .txt (edge list), .mtx and .bin
  info      FILE          print graph statistics and a level profile
  bfs       FILE [--source N] [--alpha F | --auto-alpha] [--forced scan-free|single-scan|bottom-up]
            [--rearrange] [--validate] [--arch mi250x|mi100|p6000] [--compiler clang|hipcc|clang-O0]
            [--timing] [--csv FILE]  run one BFS and report per-level stats
  cluster   FILE [--gcds N] [--source N] [--alpha F] [--push-only]
            [--inject-faults SPEC|random[:SEED]] [--checkpoint-every N]
            [--recovery spare|degrade] [--validate] [--json FILE] [--csv FILE]
            distributed BFS across simulated GCDs, optionally under faults;
            SPEC is comma-separated: crash@LVL:rankR, drop@LVL:SRC-DSTxN,
            degrade@FROM-TO:FACTOR, seed=N
  msbfs     FILE [--sources N]      concurrent multi-source BFS (iBFS-style)
  compare   FILE [--source N]       XBFS vs every baseline engine
  analyze   FILE                    connected components, diameter estimate

EXIT CODES
  0 ok, 1 generic, 2 usage, 3 I/O, 4 invalid input, 5 unrecovered fault,
  6 validation failure
";

/// Load a graph by extension (.bin, .mtx, anything else = edge list).
pub fn load_graph(path: &str) -> Result<Csr, CliError> {
    let p = Path::new(path);
    let err = |e: std::io::Error| CliError::io(format!("cannot read {path}: {e}"));
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") => io::read_binary_file(p).map_err(err),
        Some("mtx") => {
            let f = std::fs::File::open(p).map_err(err)?;
            io::read_matrix_market(std::io::BufReader::new(f), BuildOptions::default())
                .map_err(err)
        }
        _ => io::read_edge_list_file(p, BuildOptions::default()).map_err(err),
    }
}

fn save_graph(g: &Csr, path: &str) -> Result<(), CliError> {
    let p = Path::new(path);
    let err = |e: std::io::Error| CliError::io(format!("cannot write {path}: {e}"));
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") => io::write_binary_file(g, p).map_err(err),
        _ => {
            let f = std::fs::File::create(p).map_err(err)?;
            io::write_edge_list(g, std::io::BufWriter::new(f)).map_err(err)
        }
    }
}

fn generate(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?.to_string();
    let kind = args.get::<String>("kind", "rmat".into())?;
    let seed = args.get::<u64>("seed", 42)?;
    let g = match kind.as_str() {
        "rmat" => {
            let scale = args.get::<u32>("scale", 16)?;
            rmat_graph(RmatParams::graph500(scale), seed)
        }
        other => {
            let shift = args.get::<u32>("shift", 8)?;
            let d = dataset_by_name(other)?;
            d.generate(shift, seed)
        }
    };
    save_graph(&g, &out)?;
    Ok(format!(
        "wrote {} (|V| = {}, |E| = {})\n",
        out,
        g.num_vertices(),
        g.num_edges()
    ))
}

fn dataset_by_name(name: &str) -> Result<Dataset, CliError> {
    Ok(match name {
        "lj" => Dataset::LiveJournal,
        "up" => Dataset::USpatent,
        "or" => Dataset::Orkut,
        "db" => Dataset::Dblp,
        "r23" => Dataset::Rmat23,
        "r25" => Dataset::Rmat25,
        _ => return Err(CliError::usage(format!("unknown dataset kind {name:?}"))),
    })
}

fn convert(args: &Args) -> Result<String, CliError> {
    let [input, output] = args.positional.as_slice() else {
        return Err("usage: xbfs convert IN OUT".into());
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    Ok(format!(
        "converted {input} -> {output} (|V| = {}, |E| = {})\n",
        g.num_vertices(),
        g.num_edges()
    ))
}

fn info(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs info FILE")?;
    let g = load_graph(path)?;
    let s = summarize(&g);
    let mut out = format!(
        "{path}\n|V| = {}  |E| = {}  avg degree {:.2}  max degree {}  isolated {}\n\
         device footprint {:.1} MB\n",
        s.num_vertices,
        s.num_edges,
        s.avg_degree,
        s.max_degree,
        s.isolated_vertices,
        s.device_bytes as f64 / 1e6
    );
    if s.num_edges > 0 {
        let src = pick_sources(&g, 1, 1)[0];
        let p = level_profile(&g, src);
        out.push_str(&format!(
            "BFS from {src}: {} levels; per-level edge ratios: {}\n",
            p.num_levels(),
            p.edge_ratios
                .iter()
                .map(|r| format!("{r:.2e}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    Ok(out)
}

fn mk_device(args: &Args, streams: usize) -> Result<Device, CliError> {
    let arch = match args.get::<String>("arch", "mi250x".into())?.as_str() {
        "mi250x" => ArchProfile::mi250x_gcd(),
        "mi100" => ArchProfile::mi100(),
        "p6000" => ArchProfile::p6000(),
        other => return Err(CliError::usage(format!("unknown arch {other:?}"))),
    };
    let mode = if args.flag("timing") {
        ExecMode::Timing
    } else {
        ExecMode::Functional
    };
    let mut dev = Device::new(arch, mode, streams);
    dev.set_compiler(match args.get::<String>("compiler", "clang".into())?.as_str() {
        "clang" => Compiler::ClangO3,
        "hipcc" => Compiler::HipccO3,
        "clang-O0" => Compiler::ClangO0,
        other => return Err(CliError::usage(format!("unknown compiler {other:?}"))),
    });
    Ok(dev)
}

fn bfs(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs bfs FILE")?;
    let mut g = load_graph(path)?;
    if args.flag("rearrange") {
        g = rearrange_by_degree(&g, RearrangeOrder::DegreeDescending);
    }
    let mut cfg = XbfsConfig {
        alpha: args.get("alpha", 0.1)?,
        record_parents: args.flag("validate"),
        ..XbfsConfig::default()
    };
    if let Some(f) = args.options.get("forced") {
        cfg.forced = Some(match f.as_str() {
            "scan-free" => Strategy::ScanFree,
            "single-scan" => Strategy::SingleScan,
            "bottom-up" => Strategy::BottomUp,
            other => return Err(CliError::usage(format!("unknown strategy {other:?}"))),
        });
    }
    let dev = mk_device(args, cfg.required_streams())?;
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let mut tuned_note = String::new();
    if args.flag("auto-alpha") {
        let samples = pick_sources(&g, 3, 9);
        let (tuned, result) = xbfs_core::tune_alpha(&dev, &g, &samples, cfg, None);
        cfg = tuned;
        tuned_note = format!("auto-tuned alpha = {} (paper's method, §V-D)\n", result.best_alpha);
    }
    let xbfs = Xbfs::new(&dev, &g, cfg)?;
    let run = xbfs.run(source)?;

    let mut out = tuned_note;
    out.push_str(&format!(
        "source {source}: {} levels, {:.4} ms, {:.2} GTEPS\n",
        run.depth(),
        run.total_ms,
        run.gteps
    ));
    for l in &run.level_stats {
        out.push_str(&format!(
            "  L{:<3} {:>12} frontier {:>10} ratio {:>10.3e} {:>9.4} ms {:>10.1} KB{}\n",
            l.level,
            l.strategy.to_string(),
            l.frontier_count,
            l.ratio,
            l.time_ms,
            l.fetch_kb(),
            if l.used_nfg { "" } else { "  [gen scan]" },
        ));
    }
    if args.flag("validate") {
        let parents = run.parents.as_ref().expect("parents recorded");
        match xbfs_graph::validate_bfs_tree(&g, source, parents) {
            Ok(_) => out.push_str("BFS tree: VALID (Graph500-style checks passed)\n"),
            Err(e) => {
                return Err(CliError::new(
                    format!("BFS tree INVALID: {e:?}"),
                    exit_code::VALIDATION,
                ))
            }
        }
    }
    if let Some(csv_path) = args.options.get("csv") {
        let reports: Vec<gcd_sim::KernelReport> = run
            .level_stats
            .iter()
            .flat_map(|l| l.kernels.iter().cloned())
            .collect();
        std::fs::write(csv_path, gcd_sim::profiler::to_csv(&reports))
            .map_err(|e| CliError::io(format!("cannot write {csv_path}: {e}")))?;
        out.push_str(&format!("kernel counters written to {csv_path}\n"));
    }
    Ok(out)
}

/// Parse `--inject-faults`: either an explicit spec, or `random[:SEED]`
/// for a generated plan.
fn parse_fault_plan(spec: &str, num_gcds: usize) -> Result<FaultPlan, ClusterError> {
    if let Some(rest) = spec.strip_prefix("random") {
        let seed = match rest.strip_prefix(':') {
            Some(s) => s
                .parse::<u64>()
                .map_err(|_| ClusterError::FaultSpec(format!("bad random seed {s:?}")))?,
            None if rest.is_empty() => 42,
            _ => return Err(ClusterError::FaultSpec(format!("bad fault spec {spec:?}"))),
        };
        // A mid-run horizon of ~8 levels places crashes where checkpoints
        // matter on typical scale-free diameters.
        Ok(FaultPlan::random(seed, num_gcds, 8))
    } else {
        FaultPlan::parse(spec)
    }
}

fn cluster(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs cluster FILE")?;
    let g = load_graph(path)?;
    let cfg = ClusterConfig {
        num_gcds: args.get::<usize>("gcds", 8)?,
        alpha: args.get("alpha", 0.1)?,
        push_only: args.flag("push-only"),
    };
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let recovery = match args.get::<String>("recovery", "spare".into())?.as_str() {
        "spare" => RecoveryPolicy::PromoteSpare,
        "degrade" => RecoveryPolicy::Degrade,
        other => return Err(CliError::usage(format!("unknown recovery policy {other:?}"))),
    };
    let plan = match args.options.get("inject-faults") {
        Some(spec) => parse_fault_plan(spec, cfg.num_gcds)?,
        None => FaultPlan::none(),
    };
    // Checkpointing defaults on (every level) when faults are injected.
    let checkpoint_every =
        args.get::<u32>("checkpoint-every", u32::from(!plan.is_empty()))?;
    let faults = FaultConfig {
        plan,
        recovery,
        checkpoint_every,
        ..FaultConfig::default()
    };

    let mut cluster = GcdCluster::new(&g, cfg, LinkModel::frontier())?;
    let run = cluster.run_with_faults(source, &faults)?;

    let mut out = format!(
        "{} GCDs, source {source}, faults: {}\n",
        cfg.num_gcds, run.fault_plan
    );
    out.push_str(&format!(
        "{:>5} {:>3} {:>6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "level", "try", "mode", "frontier", "exchanged", "retrans", "retry ms", "recov ms", "time ms"
    ));
    for l in &run.level_stats {
        out.push_str(&format!(
            "{:>5} {:>3} {:>6} {:>12} {:>11.1}K {:>9.1}K {:>10.4} {:>10.4} {:>10.4}{}\n",
            l.level,
            l.attempt,
            if l.bottom_up { "pull" } else { "push" },
            l.frontier_count,
            l.exchanged_bytes as f64 / 1024.0,
            l.retransmitted_bytes as f64 / 1024.0,
            l.retry_ms,
            l.recovery_ms,
            l.time_ms,
            if l.checkpointed { "  [ckpt]" } else { "" },
        ));
    }
    for r in &run.recoveries {
        out.push_str(&format!(
            "recovery: rank {} died at level {}, policy {}, resumed from level {} \
             with {} GCDs ({:.4} ms overhead)\n",
            r.dead_rank, r.detected_level, r.policy, r.restored_level, r.gcds_after,
            r.overhead_ms
        ));
    }
    out.push_str(&format!(
        "total {:.4} ms -> {:.2} GTEPS aggregate, {:.2} GTEPS per GCD\n",
        run.total_ms, run.gteps, run.gteps_per_gcd
    ));
    if args.flag("validate") {
        match xbfs_graph::validate_bfs_levels(&g, source, &run.levels) {
            Ok(()) => out.push_str("BFS levels: VALID (Graph500-style checks passed)\n"),
            Err(e) => {
                return Err(CliError::new(
                    format!("BFS levels INVALID: {e:?}"),
                    exit_code::VALIDATION,
                ))
            }
        }
    }
    if let Some(json_path) = args.options.get("json") {
        std::fs::write(json_path, run.to_json())
            .map_err(|e| CliError::io(format!("cannot write {json_path}: {e}")))?;
        out.push_str(&format!("run record written to {json_path}\n"));
    }
    if let Some(csv_path) = args.options.get("csv") {
        std::fs::write(csv_path, run.to_csv())
            .map_err(|e| CliError::io(format!("cannot write {csv_path}: {e}")))?;
        out.push_str(&format!("per-level stats written to {csv_path}\n"));
    }
    Ok(out)
}

fn msbfs(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs msbfs FILE")?;
    let g = load_graph(path)?;
    let k = args.get::<usize>("sources", 8)?.clamp(1, xbfs_core::MAX_CONCURRENT);
    let sources = pick_sources(&g, k, 7);
    let dev = mk_device(args, 1)?;
    let run = ms_bfs(&dev, &g, &sources);
    // Compare with sequential runs for the sharing factor.
    let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default())?;
    let mut seq_ms = 0.0f64;
    for &s in &sources {
        seq_ms += xbfs.run(s)?.total_ms;
    }
    Ok(format!(
        "{} concurrent sources: {:.4} ms shared ({:.4} ms sequential, {:.1}x sharing gain), {:.2} GTEPS aggregate\n",
        sources.len(),
        run.total_ms,
        seq_ms,
        seq_ms / run.total_ms.max(1e-12),
        run.gteps
    ))
}

fn compare(args: &Args) -> Result<String, CliError> {
    use xbfs_baselines::{
        BeamerLike, EnterpriseLike, GpuBfs, GunrockLike, HierarchicalQueue, SimpleTopDown,
        SsspAsync,
    };
    let path = args.positional.first().ok_or("usage: xbfs compare FILE")?;
    let g = load_graph(path)?;
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let dev = mk_device(args, 1)?;
    let xbfs_run = Xbfs::new(&dev, &g, XbfsConfig::default())?.run(source)?;
    let mut out = format!(
        "{:<20} {:>10} {:>8}\n{:<20} {:>10.4} {:>8.2}\n",
        "engine", "ms", "GTEPS", "xbfs (adaptive)", xbfs_run.total_ms, xbfs_run.gteps
    );
    let engines: Vec<Box<dyn GpuBfs>> = vec![
        Box::new(GunrockLike),
        Box::new(EnterpriseLike),
        Box::new(HierarchicalQueue),
        Box::new(SimpleTopDown),
        Box::new(SsspAsync),
        Box::new(BeamerLike::default()),
    ];
    for e in engines {
        let dev = Device::mi250x();
        let run = e.run(&dev, &g, source);
        if run.levels != xbfs_run.levels {
            return Err(CliError::new(
                format!("engine {} disagrees with XBFS levels!", e.name()),
                exit_code::VALIDATION,
            ));
        }
        out.push_str(&format!(
            "{:<20} {:>10.4} {:>8.2}\n",
            e.name(),
            run.total_ms,
            run.gteps
        ));
    }
    Ok(out)
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs analyze FILE")?;
    let g = load_graph(path)?;
    let labels = xbfs_apps::connected_components(&g);
    let n_comp = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let (_, giant) = xbfs_apps::largest_component(&g);
    let src = pick_sources(&g, 1, 1)[0];
    let diameter = xbfs_apps::estimate_diameter(&g, src);
    Ok(format!(
        "components: {n_comp} (largest {giant} of {} vertices, {:.1}%)\n\
         diameter (double-sweep lower bound): {diameter}\n",
        g.num_vertices(),
        100.0 * giant as f64 / g.num_vertices().max(1) as f64
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<String, CliError> {
        dispatch(&Args::parse(parts.iter().map(|s| s.to_string())).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("xbfs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_bfs_round_trip() {
        let path = tmp("g1.bin");
        let msg = run(&["generate", "--out", &path, "--scale", "10"]).unwrap();
        assert!(msg.contains("|V| = 1024"), "{msg}");
        let info = run(&["info", &path]).unwrap();
        assert!(info.contains("avg degree"));
        let bfs = run(&["bfs", &path, "--validate"]).unwrap();
        assert!(bfs.contains("GTEPS"));
        assert!(bfs.contains("VALID"), "{bfs}");
    }

    #[test]
    fn forced_strategy_and_csv() {
        let path = tmp("g2.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let csv = tmp("g2.csv");
        let out = run(&["bfs", &path, "--forced", "bottom-up", "--csv", &csv]).unwrap();
        assert!(out.contains("bottom-up"));
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.contains("bu_expand"), "{body}");
    }

    #[test]
    fn convert_between_formats() {
        let bin = tmp("g3.bin");
        run(&["generate", "--out", &bin, "--kind", "db", "--shift", "6"]).unwrap();
        let txt = tmp("g3.txt");
        let msg = run(&["convert", &bin, &txt]).unwrap();
        assert!(msg.contains("converted"));
        let back = tmp("g3b.bin");
        run(&["convert", &txt, &back]).unwrap();
        let a = load_graph(&bin).unwrap();
        let b = load_graph(&back).unwrap();
        // Conversion through a symmetrized edge list preserves edges.
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn compare_and_msbfs_and_analyze() {
        let path = tmp("g4.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let cmp = run(&["compare", &path]).unwrap();
        assert!(cmp.contains("gunrock-like") && cmp.contains("beamer-like"), "{cmp}");
        let ms = run(&["msbfs", &path, "--sources", "4"]).unwrap();
        assert!(ms.contains("sharing gain"), "{ms}");
        let an = run(&["analyze", &path]).unwrap();
        assert!(an.contains("components"), "{an}");
    }

    #[test]
    fn errors_are_reported_with_distinct_exit_codes() {
        assert_eq!(run(&["nope"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(run(&["bfs"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["bfs", "/does/not/exist.bin"]).unwrap_err().code,
            exit_code::IO
        );
        assert_eq!(run(&["generate"]).unwrap_err().code, exit_code::USAGE);
        let typo = run(&["cluster", "g.bin", "--frobnicate"]).unwrap_err();
        assert_eq!(typo.code, exit_code::USAGE);
        assert!(typo.message.contains("--frobnicate"), "{}", typo.message);
        let help = run(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
        assert!(help.contains("cluster"));
    }

    #[test]
    fn cluster_runs_fault_free_and_validates() {
        let path = tmp("g5.bin");
        run(&["generate", "--out", &path, "--scale", "10"]).unwrap();
        let out = run(&["cluster", &path, "--gcds", "4", "--validate"]).unwrap();
        assert!(out.contains("VALID"), "{out}");
        assert!(out.contains("GTEPS per GCD"), "{out}");
        assert!(out.contains("(no faults)"), "{out}");
    }

    #[test]
    fn cluster_crash_demo_recovers_and_exports() {
        let path = tmp("g6.bin");
        run(&["generate", "--out", &path, "--scale", "11"]).unwrap();
        let json = tmp("g6.json");
        let csv = tmp("g6.csv");
        let out = run(&[
            "cluster", &path, "--gcds", "4", "--source", "1",
            "--inject-faults", "crash@2:rank1", "--checkpoint-every", "1",
            "--recovery", "spare", "--validate", "--json", &json, "--csv", &csv,
        ])
        .unwrap();
        assert!(out.contains("recovery: rank 1 died at level 2"), "{out}");
        assert!(out.contains("VALID"), "{out}");
        let record = std::fs::read_to_string(&json).unwrap();
        assert!(record.contains("crash@2:rank1"), "{record}");
        let stats = std::fs::read_to_string(&csv).unwrap();
        assert!(stats.starts_with("level,attempt,"), "{stats}");
    }

    #[test]
    fn cluster_fault_errors_map_to_exit_codes() {
        let path = tmp("g7.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        // Malformed spec -> invalid input.
        let e = run(&["cluster", &path, "--inject-faults", "crash@x"]).unwrap_err();
        assert_eq!(e.code, exit_code::INVALID_INPUT);
        // More drops than the retry budget -> unrecovered fault.
        let e = run(&[
            "cluster", &path, "--gcds", "2", "--inject-faults", "drop@0:0-1x9",
        ])
        .unwrap_err();
        assert_eq!(e.code, exit_code::UNRECOVERED_FAULT, "{}", e.message);
        // Random plans parse and run (crash recovery on by default).
        let out = run(&[
            "cluster", &path, "--gcds", "2", "--inject-faults", "random:7", "--validate",
        ])
        .unwrap();
        assert!(out.contains("VALID"), "{out}");
    }
}
