//! The `xbfs` subcommands, factored as library functions so they are unit-
//! testable without spawning processes.

use crate::args::Args;
use gcd_sim::{ArchProfile, Compiler, Device, ExecMode};
use std::path::Path;
use xbfs_core::{ms_bfs, BitflipPlan, Sabotage, Strategy, Xbfs, XbfsConfig, XbfsError};
use xbfs_graph::builder::BuildOptions;
use xbfs_graph::generators::{rmat_graph, RmatParams};
use xbfs_graph::stats::{level_profile, pick_sources, summarize};
use xbfs_graph::{io, rearrange_by_degree, Csr, Dataset, RearrangeOrder};
use xbfs_multi_gcd::{
    ClusterConfig, ClusterError, FaultConfig, FaultEvent, FaultPlan, GcdCluster, LinkModel,
    RecoveryPolicy,
};
use xbfs_server::{
    run_loadgen, ChaosPlan, DeviceFactory, FsyncPolicy, LoadgenConfig, ServeConfig, Server,
};
use xbfs_telemetry::{names, AttrValue, JsonValue, Recorder, TraceFormat};

/// Exit codes the `xbfs` binary maps failures to.
pub mod exit_code {
    /// Catch-all failure (internal invariant broken, worker panic).
    pub const GENERIC: i32 = 1;
    /// Bad command line (unknown command/option, unparsable value).
    pub const USAGE: i32 = 2;
    /// Filesystem problem (unreadable input, unwritable output).
    pub const IO: i32 = 3;
    /// Input rejected by the engine (bad source, bad config, bad spec).
    pub const INVALID_INPUT: i32 = 4;
    /// An injected fault the cluster could not recover from.
    pub const UNRECOVERED_FAULT: i32 = 5;
    /// BFS output failed Graph500 validation.
    pub const VALIDATION: i32 = 6;
    /// Silent data corruption detected (checksum, pool guard, or result
    /// certificate) and not corrected.
    pub const INTEGRITY: i32 = 7;
    /// A deadline budget expired before the run finished.
    pub const TIMEOUT: i32 = 8;
    /// Load generation shed more than the allowed fraction of requests.
    pub const OVERLOADED: i32 = 9;
}

/// A CLI failure: a user-facing message plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong, printed to stderr.
    pub message: String,
    /// Process exit code (see [`exit_code`]).
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>, code: i32) -> Self {
        Self {
            message: message.into(),
            code,
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        Self::new(message, exit_code::USAGE)
    }

    fn io(message: impl Into<String>) -> Self {
        Self::new(message, exit_code::IO)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl From<String> for CliError {
    // Bare-string errors in this module are option/usage complaints.
    fn from(message: String) -> Self {
        Self::usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::usage(message.to_string())
    }
}

impl From<XbfsError> for CliError {
    fn from(e: XbfsError) -> Self {
        match e {
            // Stable "IntegrityError:" prefix — CI greps for it.
            XbfsError::Integrity(i) => {
                Self::new(format!("IntegrityError: {i}"), exit_code::INTEGRITY)
            }
            XbfsError::DeadlineExceeded { .. } => Self::new(e.to_string(), exit_code::TIMEOUT),
            other => Self::new(other.to_string(), exit_code::INVALID_INPUT),
        }
    }
}

impl From<ClusterError> for CliError {
    fn from(e: ClusterError) -> Self {
        let code = match &e {
            ClusterError::LinkFailed { .. } | ClusterError::Unrecoverable { .. } => {
                exit_code::UNRECOVERED_FAULT
            }
            ClusterError::DeadlineExceeded { .. } => exit_code::TIMEOUT,
            _ => exit_code::INVALID_INPUT,
        };
        Self::new(e.to_string(), code)
    }
}

/// Run one subcommand; returns the text to print.
/// Options each subcommand accepts; anything else is a usage error
/// rather than being silently ignored.
const DEVICE_OPTS: [&str; 3] = ["arch", "compiler", "timing"];

fn allowed_options(command: &str) -> Option<Vec<&'static str>> {
    let mut opts: Vec<&str> = match command {
        "generate" => vec!["out", "kind", "seed", "scale", "shift"],
        "convert" | "info" | "analyze" | "trace" | "help" | "" => vec![],
        "bfs" | "run" => vec![
            "source",
            "alpha",
            "auto-alpha",
            "forced",
            "rearrange",
            "validate",
            "verify",
            "inject-bitflips",
            "deadline-ms",
            "csv",
            "trace",
        ],
        "serve" => vec![
            "addr",
            "workers",
            "queue-cap",
            "retry-after-ms",
            "verify",
            "allow-chaos",
            "max-retries",
            "breaker-threshold",
            "breaker-cooldown-ms",
            "deadline-ms",
            "cluster",
            "checkpoint-every",
            "alpha",
            "metrics-addr",
            "flight-dir",
            "flight-ring",
            "batch-width",
            "batch-window-ms",
            "journal",
            "journal-fsync",
            "idle-timeout-ms",
            "json",
            "trace",
        ],
        "loadgen" => vec![
            "addr",
            "requests",
            "rps",
            "connections",
            "sources",
            "seed",
            "deadline-ms",
            "verify",
            "chaos",
            "retries",
            "shutdown",
            "max-shed-pct",
            "progress-every-ms",
            "no-reconnect",
            "json",
        ],
        "top" => vec!["interval-ms", "frames"],
        "cluster" => vec![
            "gcds",
            "source",
            "alpha",
            "push-only",
            "inject-faults",
            "checkpoint-every",
            "recovery",
            "validate",
            "json",
            "csv",
            "trace",
        ],
        "msbfs" => vec!["sources"],
        "compare" => vec!["source"],
        "sweep" => vec![
            "sources",
            "threads",
            "seed",
            "alpha",
            "json",
            "verify",
            "inject-bitflips",
            "max-pool-bytes",
            "deadline-factor",
            "retries",
            "multi-source",
            "trace",
        ],
        _ => return None,
    };
    if matches!(
        command,
        "bfs" | "run" | "msbfs" | "compare" | "sweep" | "serve"
    ) {
        opts.extend(DEVICE_OPTS);
    }
    Some(opts)
}

fn reject_unknown_options(args: &Args) -> Result<(), CliError> {
    let Some(allowed) = allowed_options(&args.command) else {
        return Ok(()); // unknown command: reported by dispatch itself
    };
    for key in args.options.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(CliError::usage(format!(
                "unknown option --{key} for `{}` (see `xbfs help`)",
                args.command
            )));
        }
    }
    Ok(())
}

pub fn dispatch(args: &Args) -> Result<String, CliError> {
    reject_unknown_options(args)?;
    match args.command.as_str() {
        "generate" => generate(args),
        "convert" => convert(args),
        "info" => info(args),
        "bfs" | "run" => bfs(args),
        "cluster" => cluster(args),
        "msbfs" => msbfs(args),
        "compare" => compare(args),
        "sweep" => sweep(args),
        "serve" => serve(args),
        "loadgen" => loadgen(args),
        "top" => top_cmd(args),
        "analyze" => analyze(args),
        "trace" => trace_cmd(args),
        "help" | "" => Ok(HELP.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n{HELP}"
        ))),
    }
}

const HELP: &str = "\
xbfs — XBFS-on-simulated-MI250X toolbox

USAGE: xbfs <command> [options]

COMMANDS
  generate  --out FILE [--kind rmat|lj|up|or|db] [--scale N | --shift N] [--seed N]
            write a graph in the binary cache format
  convert   IN OUT        convert between .txt (edge list), .mtx and .bin
  info      FILE          print graph statistics and a level profile
  bfs       FILE [--source N] [--alpha F | --auto-alpha] [--forced scan-free|single-scan|bottom-up]
            [--rearrange] [--validate] [--verify] [--inject-bitflips SPEC]
            [--deadline-ms MS] [--arch mi250x|mi100|p6000]
            [--compiler clang|hipcc|clang-O0] [--timing] [--csv FILE]
            [--trace FMT:PATH]
            run one BFS and report per-level stats (`run` is an alias);
            --verify certifies the result (CSR + pool checksums, O(V+E)
            certificate) and --inject-bitflips flips seeded bits in device
            state: comma-separated status[:N], parents[:N], csr[:N],
            pool[:N], seed=N; --deadline-ms aborts with exit 8 when the
            modeled run time exceeds the budget
  cluster   FILE [--gcds N] [--source N] [--alpha F] [--push-only]
            [--inject-faults SPEC|random[:SEED]] [--checkpoint-every N]
            [--recovery spare|degrade] [--validate] [--json FILE] [--csv FILE]
            [--trace FMT:PATH]
            distributed BFS across simulated GCDs, optionally under faults;
            SPEC is comma-separated: crash@LVL:rankR, drop@LVL:SRC-DSTxN,
            degrade@FROM-TO:FACTOR, seed=N
  msbfs     FILE [--sources N]      concurrent multi-source BFS (iBFS-style)
  compare   FILE [--source N]       XBFS vs every baseline engine
  sweep     FILE [--sources N] [--threads T] [--seed N] [--alpha F] [--json FILE]
            [--verify] [--inject-bitflips SPEC] [--max-pool-bytes B]
            [--deadline-factor F] [--retries N] [--multi-source]
            [--trace FMT:PATH]
            batched multi-source sweep: one pooled engine per OS thread runs
            N sources back-to-back, then the same sources are re-run with a
            per-source in-process rebuild (the bit-identity reference);
            reports host runs/sec, aggregate modeled GTEPS and the speedup,
            and verifies the two passes produce bit-identical results.
            --verify turns the sweep into a self-healing supervisor: every
            run is certified, runs failing certification are quarantined
            and re-executed on a fresh engine (non-pooled state) with
            bounded retries (--retries, default 2) and backoff, runs
            exceeding --deadline-factor (default 25) x the first run's
            modeled time are flagged, and a health section lands in the
            report and JSON. --inject-bitflips (implies --verify) corrupts
            device state per run; --max-pool-bytes caps parked pool memory
            with LRU trimming (pressure events counted in health).
            --multi-source adds a third pass: one persistent 64-wide
            bit-parallel engine sweeps the same sources in batches of up
            to 64, every slot checked bit-for-bit (levels digest) against
            the rebuild reference; its throughput and speedup vs the
            pooled single-source pass land in the report and JSON
  serve     FILE [--addr HOST:PORT] [--workers N] [--queue-cap N]
            [--retry-after-ms MS] [--verify] [--allow-chaos] [--max-retries N]
            [--breaker-threshold N] [--breaker-cooldown-ms MS]
            [--deadline-ms MS] [--cluster N] [--checkpoint-every N]
            [--alpha F] [--metrics-addr HOST:PORT] [--flight-dir DIR]
            [--flight-ring N] [--batch-width W] [--batch-window-ms MS]
            [--journal PATH] [--journal-fsync always|batch=N|off]
            [--idle-timeout-ms MS] [--json FILE] [--trace FMT:PATH]
            long-running BFS daemon: loads the graph once, keeps one warm
            pooled engine per worker, and serves `xbfs-serve-v1` (JSON
            lines over TCP). A bounded admission queue sheds overload with
            explicit `overloaded` + retry-after-ms responses, deadlines
            propagate into the run loop as typed timeouts, worker panics
            are contained (engine + device quarantined, request replayed
            bit-identically), and repeated uncorrected failures trip a
            circuit breaker. Drains gracefully on a wire `shutdown` op:
            in-flight requests complete, new ones are rejected, and the
            merged serve report is printed (and written with --json).
            --cluster N serves each request on a partitioned N-GCD engine
            instead of a single device: rank crashes injected via chaos
            are recovered mid-request by level-synchronous checkpoint/
            restart (snapshot cadence --checkpoint-every, default 1) and
            per-rank health lands in the serve report. Completed request
            ids are remembered in a small LRU, so a client that resends
            an id after a timeout gets the cached response (marked
            deduped:true) instead of double-executing.
            --allow-chaos honors client chaos tokens (test servers only).
            Every stage feeds an always-on metrics registry: a wire
            `metrics` op returns an xbfs-metrics-v1 snapshot, and
            --metrics-addr binds an HTTP listener serving /metrics
            (Prometheus text) and /metrics.json, scrapeable mid-load
            without perturbing workers. A per-worker flight recorder
            keeps the last --flight-ring events (default 64); on a
            worker panic, engine quarantine or breaker trip the ring is
            dumped to --flight-dir (default under the system temp dir)
            and the dump paths land in the serve report.
            --batch-width W (default 1, max 64) coalesces up to W queued
            requests per worker into one 64-wide bit-parallel wave on a
            shared engine; --batch-window-ms (default 2) bounds how long
            a partially filled batch lingers for company. Every batched
            response carries the same timing-independent levels digest a
            solo run would report, each member keeps its own deadline
            (a batch member never times out because of coalescing — the
            batch runs under the tightest member budget and splits back
            to solo runs on expiry), and a panic or failed certificate
            quarantines the batch engine and replays members one by one
            on a rebuilt engine. Does not compose with --cluster.
            --journal PATH arms a CRC-framed write-ahead journal: every
            admitted request and every terminal response is appended, so
            a process killed mid-load (even SIGKILL) can be restarted on
            the same path and will replay the journal torn-tail-
            tolerantly — completed ids warm the dedup cache (resends get
            the cached response), incomplete requests are re-enqueued
            ahead of new traffic, and recovered results are bit-identical
            to a fresh run. --journal-fsync picks the durability/latency
            trade: always (fsync per record), batch=N (fsync every Nth
            record, default batch=8), off (OS page cache only — still
            survives SIGKILL, not power loss). Connections are kept
            honest: request lines over 64 KiB are shed with a typed
            `overlong` error and idle connections with nothing in flight
            are closed after --idle-timeout-ms (default 30000; 0 = never)
  loadgen   --addr HOST:PORT [--requests N] [--rps F] [--connections N]
            [--sources N] [--seed N] [--deadline-ms MS] [--verify]
            [--chaos SPEC] [--retries N] [--shutdown] [--max-shed-pct F]
            [--progress-every-ms MS] [--no-reconnect] [--json FILE]
            open-loop load generator for `xbfs serve`: paces N requests at
            a target RPS over pipelined connections, measures latency from
            each request's scheduled time (no coordinated omission), and
            reports accepted/shed plus p50/p99/p999. --chaos stamps fault
            tokens server-side: comma-separated panic[:N], bitflip[:N],
            slow[@MS][:N], crash[@LVL][:N], rank=R, seed=N (every Nth
            request; crash targets cluster servers and injects a rank-R
            crash at level LVL). --retries N re-sends shed requests after
            the server's retry-after hint with jittered exponential
            backoff (latency still measured from the original schedule);
            --shutdown drains the server afterwards; --max-shed-pct fails
            with exit 9 when shedding exceeds the bound; --json writes
            xbfs-loadgen-v1. A one-line progress report (sent / ok /
            shed / p99-so-far) goes to stderr every --progress-every-ms
            (default 1000; 0 silences it). A dropped connection (server
            crash, restart) is redialed automatically with jittered
            backoff and every outstanding request is resent — latency
            still counts from the original schedule, and the `reconnects`
            count lands in the report (--no-reconnect disables this, so
            a dead connection marks its outstanding requests lost)
  top       HOST:PORT [--interval-ms MS] [--frames N]
            live dashboard over a running server's metrics plane: polls
            the wire `metrics` op at the serve address and renders
            queue / worker / breaker / pool / rank state with rates
            from successive snapshots; runs until the server drains,
            or for exactly N frames with --frames
  analyze   FILE                    connected components, diameter estimate
  trace     summarize FILE          summarize a recorded trace (xbfs-trace-v1
                                    JSON or chrome trace.json)

TRACING
  --trace FMT:PATH records structured telemetry (spans, per-level metrics)
  during bfs/run and cluster. FMT is table, json, chrome (load the file in
  chrome://tracing or https://ui.perfetto.dev) or csv (rocprofiler-style
  kernel rows). PATH `-` writes the trace to stdout instead of the normal
  report, so `xbfs run g.bin --trace json:- > out.json` emits pure JSON.

EXIT CODES
  0 ok, 1 generic, 2 usage, 3 I/O, 4 invalid input, 5 unrecovered fault,
  6 validation failure, 7 integrity violation (silent data corruption
  detected and not corrected), 8 deadline exceeded, 9 overloaded
  (loadgen shed more than --max-shed-pct)
";

/// Load a graph by extension (.bin, .mtx, anything else = edge list).
pub fn load_graph(path: &str) -> Result<Csr, CliError> {
    let p = Path::new(path);
    let err = |e: std::io::Error| CliError::io(format!("cannot read {path}: {e}"));
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") => io::read_binary_file(p).map_err(err),
        Some("mtx") => {
            let f = std::fs::File::open(p).map_err(err)?;
            io::read_matrix_market(std::io::BufReader::new(f), BuildOptions::default()).map_err(err)
        }
        _ => io::read_edge_list_file(p, BuildOptions::default()).map_err(err),
    }
}

fn save_graph(g: &Csr, path: &str) -> Result<(), CliError> {
    let p = Path::new(path);
    let err = |e: std::io::Error| CliError::io(format!("cannot write {path}: {e}"));
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") => io::write_binary_file(g, p).map_err(err),
        _ => {
            let f = std::fs::File::create(p).map_err(err)?;
            io::write_edge_list(g, std::io::BufWriter::new(f)).map_err(err)
        }
    }
}

fn generate(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?.to_string();
    let kind = args.get::<String>("kind", "rmat".into())?;
    let seed = args.get::<u64>("seed", 42)?;
    let g = match kind.as_str() {
        "rmat" => {
            let scale = args.get::<u32>("scale", 16)?;
            rmat_graph(RmatParams::graph500(scale), seed)
        }
        other => {
            let shift = args.get::<u32>("shift", 8)?;
            let d = dataset_by_name(other)?;
            d.generate(shift, seed)
        }
    };
    save_graph(&g, &out)?;
    Ok(format!(
        "wrote {} (|V| = {}, |E| = {})\n",
        out,
        g.num_vertices(),
        g.num_edges()
    ))
}

fn dataset_by_name(name: &str) -> Result<Dataset, CliError> {
    Ok(match name {
        "lj" => Dataset::LiveJournal,
        "up" => Dataset::USpatent,
        "or" => Dataset::Orkut,
        "db" => Dataset::Dblp,
        "r23" => Dataset::Rmat23,
        "r25" => Dataset::Rmat25,
        _ => return Err(CliError::usage(format!("unknown dataset kind {name:?}"))),
    })
}

fn convert(args: &Args) -> Result<String, CliError> {
    let [input, output] = args.positional.as_slice() else {
        return Err("usage: xbfs convert IN OUT".into());
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    Ok(format!(
        "converted {input} -> {output} (|V| = {}, |E| = {})\n",
        g.num_vertices(),
        g.num_edges()
    ))
}

fn info(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs info FILE")?;
    let g = load_graph(path)?;
    let s = summarize(&g);
    let mut out = format!(
        "{path}\n|V| = {}  |E| = {}  avg degree {:.2}  max degree {}  isolated {}\n\
         device footprint {:.1} MB\n",
        s.num_vertices,
        s.num_edges,
        s.avg_degree,
        s.max_degree,
        s.isolated_vertices,
        s.device_bytes as f64 / 1e6
    );
    if s.num_edges > 0 {
        let src = pick_sources(&g, 1, 1)[0];
        let p = level_profile(&g, src);
        out.push_str(&format!(
            "BFS from {src}: {} levels; per-level edge ratios: {}\n",
            p.num_levels(),
            p.edge_ratios
                .iter()
                .map(|r| format!("{r:.2e}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    Ok(out)
}

fn mk_device(args: &Args, streams: usize) -> Result<Device, CliError> {
    let arch = match args.get::<String>("arch", "mi250x".into())?.as_str() {
        "mi250x" => ArchProfile::mi250x_gcd(),
        "mi100" => ArchProfile::mi100(),
        "p6000" => ArchProfile::p6000(),
        other => return Err(CliError::usage(format!("unknown arch {other:?}"))),
    };
    let mode = if args.flag("timing") {
        ExecMode::Timing
    } else {
        ExecMode::Functional
    };
    let mut dev = Device::new(arch, mode, streams);
    dev.set_compiler(
        match args.get::<String>("compiler", "clang".into())?.as_str() {
            "clang" => Compiler::ClangO3,
            "hipcc" => Compiler::HipccO3,
            "clang-O0" => Compiler::ClangO0,
            other => return Err(CliError::usage(format!("unknown compiler {other:?}"))),
        },
    );
    Ok(dev)
}

/// Parse `--trace` and build the recorder: enabled only when tracing was
/// requested, so untraced runs pay a single relaxed atomic load per
/// telemetry call.
fn trace_setup(args: &Args) -> Result<(Option<(TraceFormat, String)>, Recorder), CliError> {
    match args.options.get("trace") {
        Some(spec) => {
            let parsed = TraceFormat::parse(spec).map_err(CliError::usage)?;
            Ok((Some(parsed), Recorder::new()))
        }
        None => Ok((None, Recorder::disabled())),
    }
}

/// Parse an optional float option; absent is `None`, unparsable is a
/// usage error.
fn opt_f64(args: &Args, key: &str) -> Result<Option<f64>, CliError> {
    args.options
        .get(key)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| CliError::usage(format!("bad --{key} {v:?}")))
        })
        .transpose()
}

/// Parse `--inject-bitflips` into a plan. `None` when the option is
/// absent; an unparsable spec is the user's fault, not corruption.
fn parse_bitflip_plan(args: &Args) -> Result<Option<BitflipPlan>, CliError> {
    match args.options.get("inject-bitflips") {
        Some(spec) => BitflipPlan::parse(spec)
            .map(Some)
            .map_err(|e| CliError::new(e, exit_code::INVALID_INPUT)),
        None => Ok(None),
    }
}

/// Deliver a recorded trace. Path `-` replaces the whole command output
/// with the rendered trace (pure JSON/CSV on stdout, pipeable); any other
/// path writes the file and appends a note to `out`. Never fails: the
/// trace is an exporter of an already-finished run, and a full disk or a
/// bad path must not turn a successful run into a nonzero exit.
fn emit_trace(out: &mut String, fmt: TraceFormat, path: &str, rec: &Recorder) -> Option<String> {
    let sink = fmt.sink();
    let rendered = sink.export(&rec.finish());
    if path == "-" {
        return Some(rendered);
    }
    match std::fs::write(path, &rendered) {
        Ok(()) => out.push_str(&format!("{} trace written to {path}\n", sink.name())),
        Err(e) => {
            eprintln!("warning: cannot write trace {path}: {e}; run results unaffected");
            out.push_str(&format!(
                "{} trace NOT written ({path}: {e})\n",
                sink.name()
            ));
        }
    }
    None
}

fn bfs(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs bfs FILE")?;
    let mut g = load_graph(path)?;
    if args.flag("rearrange") {
        g = rearrange_by_degree(&g, RearrangeOrder::DegreeDescending);
    }
    // The certificate's parent-tree checks need recorded parents, so
    // --verify implies them just like --validate does.
    let mut cfg = XbfsConfig {
        alpha: args.get("alpha", 0.1)?,
        record_parents: args.flag("validate") || args.flag("verify"),
        ..XbfsConfig::default()
    };
    if let Some(f) = args.options.get("forced") {
        cfg.forced = Some(match f.as_str() {
            "scan-free" => Strategy::ScanFree,
            "single-scan" => Strategy::SingleScan,
            "bottom-up" => Strategy::BottomUp,
            other => return Err(CliError::usage(format!("unknown strategy {other:?}"))),
        });
    }
    let dev = mk_device(args, cfg.required_streams())?;
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let mut tuned_note = String::new();
    if args.flag("auto-alpha") {
        let samples = pick_sources(&g, 3, 9);
        let (tuned, result) = xbfs_core::tune_alpha(&dev, &g, &samples, cfg, None);
        cfg = tuned;
        tuned_note = format!(
            "auto-tuned alpha = {} (paper's method, §V-D)\n",
            result.best_alpha
        );
    }
    let (trace_opt, recorder) = trace_setup(args)?;
    let plan = parse_bitflip_plan(args)?;
    let deadline_ms = opt_f64(args, "deadline-ms")?;
    let xbfs = Xbfs::new(&dev, &g, cfg)?;

    let verify = args.flag("verify");
    if let (Some(plan), false) = (&plan, verify) {
        // The "what does corruption do when nothing checks" baseline.
        eprintln!(
            "warning: --inject-bitflips without --verify: corrupting \
             device state ({}) with no detection",
            plan.to_spec()
        );
    }
    let sab = plan.as_ref().map(|plan| Sabotage { plan, salt: 0 });
    // One governed entry point: sabotage, deadline budget and
    // certification compose; a blown budget maps to exit code 8.
    let (run, cert) = xbfs.run_governed(source, &recorder, sab.as_ref(), deadline_ms, verify)?;
    let mut cert_note = String::new();
    if let Some(cert) = &cert {
        cert_note = format!(
            "certified: {} vertices reached, depth {}, levels checksum {:#018x}\n",
            cert.visited, cert.depth, cert.levels_checksum
        );
    }

    let mut out = tuned_note;
    out.push_str(&cert_note);
    out.push_str(&format!(
        "source {source}: {} levels, {:.4} ms, {:.2} GTEPS\n",
        run.depth(),
        run.total_ms,
        run.gteps
    ));
    for l in &run.level_stats {
        out.push_str(&format!(
            "  L{:<3} {:>12} frontier {:>10} ratio {:>10.3e} {:>9.4} ms {:>10.1} KB{}\n",
            l.level,
            l.strategy.to_string(),
            l.frontier_count,
            l.ratio,
            l.time_ms,
            l.fetch_kb(),
            if l.used_nfg { "" } else { "  [gen scan]" },
        ));
    }
    if args.flag("validate") {
        // cfg.record_parents is set above whenever --validate is; a run
        // without parents here is an engine invariant break, not a crash.
        let Some(parents) = run.parents.as_ref() else {
            return Err(CliError::new(
                "internal: --validate needs recorded parents but the run kept none",
                exit_code::GENERIC,
            ));
        };
        match xbfs_graph::validate_bfs_tree(&g, source, parents) {
            Ok(_) => out.push_str("BFS tree: VALID (Graph500-style checks passed)\n"),
            Err(e) => {
                return Err(CliError::new(
                    format!("BFS tree INVALID: {e:?}"),
                    exit_code::VALIDATION,
                ))
            }
        }
    }
    if let Some(csv_path) = args.options.get("csv") {
        let reports: Vec<gcd_sim::KernelReport> = run
            .level_stats
            .iter()
            .flat_map(|l| l.kernels.iter().cloned())
            .collect();
        // Exporters never abort a finished run: the BFS result above is
        // valid whether or not the side file lands.
        match std::fs::write(csv_path, gcd_sim::profiler::to_csv(&reports)) {
            Ok(()) => out.push_str(&format!("kernel counters written to {csv_path}\n")),
            Err(e) => {
                eprintln!("warning: cannot write {csv_path}: {e}; run results unaffected");
                out.push_str(&format!("kernel counters NOT written ({csv_path}: {e})\n"));
            }
        }
    }
    if let Some((fmt, trace_path)) = trace_opt {
        if let Some(direct) = emit_trace(&mut out, fmt, &trace_path, &recorder) {
            return Ok(direct);
        }
    }
    Ok(out)
}

/// Parse `--inject-faults`: either an explicit spec, or `random[:SEED]`
/// for a generated plan.
fn parse_fault_plan(spec: &str, num_gcds: usize) -> Result<FaultPlan, ClusterError> {
    if let Some(rest) = spec.strip_prefix("random") {
        let seed = match rest.strip_prefix(':') {
            Some(s) => s
                .parse::<u64>()
                .map_err(|_| ClusterError::FaultSpec(format!("bad random seed {s:?}")))?,
            None if rest.is_empty() => 42,
            _ => return Err(ClusterError::FaultSpec(format!("bad fault spec {spec:?}"))),
        };
        // A mid-run horizon of ~8 levels places crashes where checkpoints
        // matter on typical scale-free diameters.
        Ok(FaultPlan::random(seed, num_gcds, 8))
    } else {
        FaultPlan::parse(spec)
    }
}

fn cluster(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs cluster FILE")?;
    let g = load_graph(path)?;
    let cfg = ClusterConfig {
        num_gcds: args.get::<usize>("gcds", 8)?,
        alpha: args.get("alpha", 0.1)?,
        push_only: args.flag("push-only"),
    };
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let recovery = match args.get::<String>("recovery", "spare".into())?.as_str() {
        "spare" => RecoveryPolicy::PromoteSpare,
        "degrade" => RecoveryPolicy::Degrade,
        other => {
            return Err(CliError::usage(format!(
                "unknown recovery policy {other:?}"
            )))
        }
    };
    let plan = match args.options.get("inject-faults") {
        Some(spec) => parse_fault_plan(spec, cfg.num_gcds)?,
        None => FaultPlan::none(),
    };
    // Checkpointing defaults on (every level) when faults are injected.
    let checkpoint_every = args.get::<u32>("checkpoint-every", u32::from(!plan.is_empty()))?;
    let faults = FaultConfig {
        plan,
        recovery,
        checkpoint_every,
        ..FaultConfig::default()
    };

    let (trace_opt, recorder) = trace_setup(args)?;
    let crash_planned = faults
        .plan
        .events
        .iter()
        .any(|e| matches!(e, FaultEvent::GcdCrash { .. }));
    let mut trace_warning = String::new();
    if trace_opt.is_some() && crash_planned {
        // Crash recovery rewinds the cluster clock to the last checkpoint,
        // so the trace contains overlapping re-executed level spans. Say so
        // rather than silently emitting a confusing timeline.
        trace_warning = format!(
            "warning: tracing a run with planned GCD crashes ({}) — recovery \
             rewinds execution to the last checkpoint, so the trace contains \
             re-executed level spans (attempt > 0) alongside recovery spans\n",
            faults.plan.to_spec()
        );
        eprint!("{trace_warning}");
    }
    let mut cluster = GcdCluster::new(&g, cfg, LinkModel::frontier())?;
    let run = cluster.run_with_faults_traced(source, &faults, &recorder)?;

    let mut out = trace_warning;
    out.push_str(&format!(
        "{} GCDs, source {source}, faults: {}\n",
        cfg.num_gcds, run.fault_plan
    ));
    out.push_str(&format!(
        "{:>5} {:>3} {:>6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "level",
        "try",
        "mode",
        "frontier",
        "exchanged",
        "retrans",
        "retry ms",
        "recov ms",
        "time ms"
    ));
    for l in &run.level_stats {
        out.push_str(&format!(
            "{:>5} {:>3} {:>6} {:>12} {:>11.1}K {:>9.1}K {:>10.4} {:>10.4} {:>10.4}{}\n",
            l.level,
            l.attempt,
            if l.bottom_up { "pull" } else { "push" },
            l.frontier_count,
            l.exchanged_bytes as f64 / 1024.0,
            l.retransmitted_bytes as f64 / 1024.0,
            l.retry_ms,
            l.recovery_ms,
            l.time_ms,
            if l.checkpointed { "  [ckpt]" } else { "" },
        ));
    }
    for r in &run.recoveries {
        out.push_str(&format!(
            "recovery: rank {} died at level {}, policy {}, resumed from level {} \
             with {} GCDs ({:.4} ms overhead)\n",
            r.dead_rank, r.detected_level, r.policy, r.restored_level, r.gcds_after, r.overhead_ms
        ));
    }
    out.push_str(&format!(
        "total {:.4} ms -> {:.2} GTEPS aggregate, {:.2} GTEPS per GCD\n",
        run.total_ms, run.gteps, run.gteps_per_gcd
    ));
    if args.flag("validate") {
        match xbfs_graph::validate_bfs_levels(&g, source, &run.levels) {
            Ok(()) => out.push_str("BFS levels: VALID (Graph500-style checks passed)\n"),
            Err(e) => {
                return Err(CliError::new(
                    format!("BFS levels INVALID: {e:?}"),
                    exit_code::VALIDATION,
                ))
            }
        }
    }
    if let Some(json_path) = args.options.get("json") {
        std::fs::write(json_path, run.to_json())
            .map_err(|e| CliError::io(format!("cannot write {json_path}: {e}")))?;
        out.push_str(&format!("run record written to {json_path}\n"));
    }
    if let Some(csv_path) = args.options.get("csv") {
        std::fs::write(csv_path, run.to_csv())
            .map_err(|e| CliError::io(format!("cannot write {csv_path}: {e}")))?;
        out.push_str(&format!("per-level stats written to {csv_path}\n"));
    }
    if let Some((fmt, trace_path)) = trace_opt {
        if let Some(direct) = emit_trace(&mut out, fmt, &trace_path, &recorder) {
            return Ok(direct);
        }
    }
    Ok(out)
}

fn msbfs(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs msbfs FILE")?;
    let g = load_graph(path)?;
    let k = args
        .get::<usize>("sources", 8)?
        .clamp(1, xbfs_core::MAX_CONCURRENT);
    let sources = pick_sources(&g, k, 7);
    let dev = mk_device(args, 1)?;
    let run = ms_bfs(&dev, &g, &sources);
    // Compare with sequential runs for the sharing factor.
    let xbfs = Xbfs::new(&dev, &g, XbfsConfig::default())?;
    let mut seq_ms = 0.0f64;
    for &s in &sources {
        seq_ms += xbfs.run(s)?.total_ms;
    }
    Ok(format!(
        "{} concurrent sources: {:.4} ms shared ({:.4} ms sequential, {:.1}x sharing gain), {:.2} GTEPS aggregate\n",
        sources.len(),
        run.total_ms,
        seq_ms,
        seq_ms / run.total_ms.max(1e-12),
        run.gteps
    ))
}

fn compare(args: &Args) -> Result<String, CliError> {
    use xbfs_baselines::{
        BeamerLike, EnterpriseLike, GpuBfs, GunrockLike, HierarchicalQueue, SimpleTopDown,
        SsspAsync,
    };
    let path = args.positional.first().ok_or("usage: xbfs compare FILE")?;
    let g = load_graph(path)?;
    let source = args.get::<u32>("source", pick_sources(&g, 1, 1)[0])?;
    let dev = mk_device(args, 1)?;
    let xbfs_run = Xbfs::new(&dev, &g, XbfsConfig::default())?.run(source)?;
    let mut out = format!(
        "{:<20} {:>10} {:>8}\n{:<20} {:>10.4} {:>8.2}\n",
        "engine", "ms", "GTEPS", "xbfs (adaptive)", xbfs_run.total_ms, xbfs_run.gteps
    );
    let engines: Vec<Box<dyn GpuBfs>> = vec![
        Box::new(GunrockLike),
        Box::new(EnterpriseLike),
        Box::new(HierarchicalQueue),
        Box::new(SimpleTopDown),
        Box::new(SsspAsync),
        Box::new(BeamerLike::default()),
    ];
    for e in engines {
        let dev = Device::mi250x();
        let run = e.run(&dev, &g, source);
        if run.levels != xbfs_run.levels {
            return Err(CliError::new(
                format!("engine {} disagrees with XBFS levels!", e.name()),
                exit_code::VALIDATION,
            ));
        }
        out.push_str(&format!(
            "{:<20} {:>10.4} {:>8.2}\n",
            e.name(),
            run.total_ms,
            run.gteps
        ));
    }
    Ok(out)
}

/// One run's digest inside a sweep: the aggregates plus a hash that pins
/// the full per-run result (levels and modeled time, bit for bit).
struct SweepRec {
    ms: f64,
    edges: u64,
    digest: u64,
}

/// Aggregated supervisor health for one sweep: every detection,
/// quarantine, re-execution and resource-pressure event, summed across
/// workers. Lands in the report text and the `xbfs-sweep-v1` JSON.
#[derive(Default)]
struct SweepHealth {
    certified: u64,
    sdc_detected: u64,
    quarantined: u64,
    reexecuted: u64,
    corrected: u64,
    // An exhausted-retries abort fails the whole sweep (exit 7), so any
    // report that gets emitted shows 0 here; the field documents the
    // schema for consumers.
    aborted: u64,
    deadline_exceeded: u64,
    pool_pressure_events: u64,
    engine_rebuilds: u64,
}

impl SweepHealth {
    fn add(&mut self, o: &SweepHealth) {
        self.certified += o.certified;
        self.sdc_detected += o.sdc_detected;
        self.quarantined += o.quarantined;
        self.reexecuted += o.reexecuted;
        self.corrected += o.corrected;
        self.aborted += o.aborted;
        self.deadline_exceeded += o.deadline_exceeded;
        self.pool_pressure_events += o.pool_pressure_events;
        self.engine_rebuilds += o.engine_rebuilds;
    }
}

/// Why a sweep worker ended an engine generation early: the run that
/// failed certification, and the retry budget that applies to it.
struct IntegrityFailure {
    source: u32,
    retries: u32,
    error: xbfs_core::IntegrityError,
}

/// One sweep worker: its chunk of sources on a pooled engine. With
/// supervision (`sup`) every run is certified; a run failing certification
/// is quarantined, the engine *and its device* are discarded (a corrupted
/// CSR or parked buffer must not outlive detection — re-parking it would
/// checksum the corrupted contents), and the run re-executes on a rebuilt
/// engine with fresh, non-pooled state under bounded exponential backoff.
/// Bit flips, when injected, hit only attempt 0 — retries and the rebuilt
/// reference pass stay clean, which is what keeps the sweep's bit-identity
/// check meaningful under fault injection.
#[allow(clippy::too_many_arguments)]
fn sweep_worker(
    args: &Args,
    g: &Csr,
    cfg: XbfsConfig,
    part: &[u32],
    plan: Option<&BitflipPlan>,
    sup: Option<(f64, u32)>,
    max_pool_bytes: Option<u64>,
    rec: &Recorder,
    track: usize,
    t0: &std::time::Instant,
) -> Result<(Vec<SweepRec>, SweepHealth), CliError> {
    let now_us = || t0.elapsed().as_secs_f64() * 1e6;
    let mut health = SweepHealth::default();
    let mk = || -> Result<Device, CliError> {
        let dev = mk_device(args, cfg.required_streams())?;
        dev.set_pool_limit(max_pool_bytes);
        Ok(dev)
    };
    let span = rec.begin_span(None, names::span::SWEEP, track, now_us());
    rec.span_attr(span, "worker", AttrValue::U64(track as u64));
    rec.span_attr(span, "runs", AttrValue::U64(part.len() as u64));

    let mut recs = Vec::with_capacity(part.len());
    let mut deadline_ms: Option<f64> = None;
    let mut idx = 0usize; // next source in `part`
    let mut attempt: u32 = 0; // retry attempt for part[idx]
                              // Each iteration is one engine *generation*: a fresh device and a
                              // fresh engine. A generation ends when the chunk completes, or when a
                              // run fails certification — then the engine AND its device are
                              // discarded, because a corrupted CSR or parked buffer must not
                              // survive into the next generation (re-parking it would checksum the
                              // corrupted contents). Pool pressure is read after the engine drops:
                              // the drop parks its BFS state, which is where a byte cap trims.
    while idx < part.len() {
        let dev = mk()?;
        let quarantined = {
            let engine = Xbfs::new(&dev, g, cfg)?;
            loop {
                if idx >= part.len() {
                    break None;
                }
                let s = part[idx];
                let Some((deadline_factor, retries)) = sup else {
                    let run = engine.run(s)?;
                    recs.push(SweepRec {
                        ms: run.total_ms,
                        edges: run.traversed_edges,
                        digest: run.digest(),
                    });
                    idx += 1;
                    continue;
                };
                // Injection targets attempt 0 only: retries run clean, so
                // a corrected run is bit-identical to the rebuilt
                // reference.
                let sab = (attempt == 0)
                    .then(|| {
                        plan.map(|p| Sabotage {
                            plan: p,
                            salt: u64::from(s),
                        })
                    })
                    .flatten();
                match engine.run_verified(s, &Recorder::disabled(), sab.as_ref()) {
                    Ok((run, _cert)) => {
                        health.certified += 1;
                        if attempt > 0 {
                            health.corrected += 1;
                        }
                        // The first certified run calibrates the worker's
                        // modeled-time deadline; exceedances are flagged
                        // in health (and the trace), not failures.
                        let dl = *deadline_ms.get_or_insert(run.total_ms * deadline_factor);
                        if run.total_ms > dl {
                            health.deadline_exceeded += 1;
                            rec.event(
                                Some(span),
                                names::event::DEADLINE_EXCEEDED,
                                track,
                                now_us(),
                                vec![
                                    ("source".into(), AttrValue::U64(u64::from(s))),
                                    ("modeled_ms".into(), AttrValue::F64(run.total_ms)),
                                    ("deadline_ms".into(), AttrValue::F64(dl)),
                                ],
                            );
                        }
                        recs.push(SweepRec {
                            ms: run.total_ms,
                            edges: run.traversed_edges,
                            digest: run.digest(),
                        });
                        idx += 1;
                        attempt = 0;
                    }
                    Err(XbfsError::Integrity(e)) => {
                        health.sdc_detected += 1;
                        rec.event(
                            Some(span),
                            names::event::SDC_DETECTED,
                            track,
                            now_us(),
                            vec![
                                ("source".into(), AttrValue::U64(u64::from(s))),
                                ("attempt".into(), AttrValue::U64(u64::from(attempt))),
                                ("error".into(), AttrValue::Str(e.to_string())),
                            ],
                        );
                        if attempt == 0 {
                            health.quarantined += 1;
                            rec.event(
                                Some(span),
                                names::event::QUARANTINED,
                                track,
                                now_us(),
                                vec![("source".into(), AttrValue::U64(u64::from(s)))],
                            );
                        }
                        break Some(IntegrityFailure {
                            source: s,
                            retries,
                            error: e,
                        });
                    }
                    Err(other) => return Err(other.into()),
                }
            }
        }; // engine dropped here; its state parks into the pool
        health.pool_pressure_events += dev.pool_pressure_events();
        let Some(fail) = quarantined else { break };
        health.engine_rebuilds += 1;
        if attempt >= fail.retries {
            return Err(CliError::new(
                format!(
                    "IntegrityError: source {} failed certification after {} \
                     attempt(s): {}",
                    fail.source,
                    attempt + 1,
                    fail.error
                ),
                exit_code::INTEGRITY,
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(6)));
        attempt += 1;
        health.reexecuted += 1;
        rec.event(
            Some(span),
            names::event::REEXECUTED,
            track,
            now_us(),
            vec![
                ("source".into(), AttrValue::U64(u64::from(fail.source))),
                ("attempt".into(), AttrValue::U64(u64::from(attempt))),
            ],
        );
    }
    rec.counter(
        names::metric::POOL_PRESSURE_EVENTS,
        track,
        now_us(),
        health.pool_pressure_events as f64,
    );
    rec.counter(
        names::metric::CERTIFIED_RUNS,
        track,
        now_us(),
        health.certified as f64,
    );
    rec.end_span(span, now_us());
    Ok((recs, health))
}

fn sweep(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs sweep FILE")?;
    let g = load_graph(path)?;
    let n = args.get::<usize>("sources", 64)?.max(1);
    let seed = args.get::<u64>("seed", 13)?;
    let default_threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(8);
    let threads = args.get::<usize>("threads", default_threads)?.clamp(1, n);
    let plan = parse_bitflip_plan(args)?;
    // Injection without verification would just trip the bit-identity
    // check with an unexplained exit 6 — in a sweep, injection implies
    // the supervisor.
    let verify = args.flag("verify") || plan.is_some();
    let deadline_factor = args.get::<f64>("deadline-factor", 25.0)?;
    if deadline_factor < 1.0 {
        return Err(CliError::usage("--deadline-factor must be >= 1"));
    }
    let retries = args.get::<u32>("retries", 2)?;
    let multi_source = args.flag("multi-source");
    let max_pool_bytes = match args.options.get("max-pool-bytes") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| CliError::usage(format!("bad --max-pool-bytes {v:?}")))?,
        ),
        None => None,
    };
    // Both passes share the config (the certificate's parent-tree checks
    // need recorded parents), so the bit-identity digests stay comparable.
    let cfg = XbfsConfig {
        alpha: args.get("alpha", 0.1)?,
        record_parents: verify,
        ..XbfsConfig::default()
    };
    let sources = pick_sources(&g, n, seed);
    let n = sources.len(); // graphs smaller than --sources yield fewer
    let sup = verify.then_some((deadline_factor, retries));
    let (trace_opt, recorder) = trace_setup(args)?;

    // Pooled pass: one engine per OS thread. Each engine owns its device,
    // uploads the graph once, and recycles its BFS state across its whole
    // chunk of sources via the epoch-based O(frontier) reset.
    let chunk = n.div_ceil(threads);
    let t0 = std::time::Instant::now();
    let mut pooled: Vec<SweepRec> = Vec::with_capacity(n);
    let mut health = SweepHealth::default();
    std::thread::scope(|scope| -> Result<(), CliError> {
        let mut handles = Vec::new();
        for (track, part) in sources.chunks(chunk).enumerate() {
            let (g, rec, t0, plan) = (&g, &recorder, &t0, plan.as_ref());
            handles.push(scope.spawn(move || {
                sweep_worker(
                    args,
                    g,
                    cfg,
                    part,
                    plan,
                    sup,
                    max_pool_bytes,
                    rec,
                    track,
                    t0,
                )
            }));
        }
        for h in handles {
            // A panicking worker thread must not take the whole sweep's
            // process down with an opaque abort: surface it typed.
            let (recs, wh) = h.join().map_err(|_| {
                CliError::new(
                    "sweep worker thread panicked; partial results discarded",
                    exit_code::GENERIC,
                )
            })??;
            pooled.extend(recs);
            health.add(&wh);
        }
        Ok(())
    })?;
    let pooled_wall = t0.elapsed().as_secs_f64();

    // Rebuild pass: the unpooled in-process path — a fresh device, a fresh
    // graph upload, freshly allocated BFS state per source. This is the
    // bit-identity reference; a shell loop over `xbfs bfs` additionally
    // pays process spawn + graph load per run (CI measures that baseline).
    let t1 = std::time::Instant::now();
    let mut rebuilt: Vec<SweepRec> = Vec::with_capacity(n);
    let mut ref_levels: Vec<u64> = Vec::with_capacity(n);
    for &s in &sources {
        let dev = mk_device(args, cfg.required_streams())?;
        let xbfs = Xbfs::new(dev, &g, cfg)?;
        // Under --verify the pooled pass certifies every run; the rebuild
        // reference must pay the same certification cost or the
        // pooled-vs-unpooled ratio compares different amounts of work.
        let run = if verify {
            xbfs.run_verified(s, &Recorder::disabled(), None)?.0
        } else {
            xbfs.run(s)?
        };
        ref_levels.push(run.result_digest());
        rebuilt.push(SweepRec {
            ms: run.total_ms,
            edges: run.traversed_edges,
            digest: run.digest(),
        });
    }
    let rebuilt_wall = t1.elapsed().as_secs_f64();

    let checksum = |recs: &[SweepRec]| recs.iter().fold(0u64, |a, r| a ^ r.digest);
    let (ck_pooled, ck_rebuilt) = (checksum(&pooled), checksum(&rebuilt));
    if ck_pooled != ck_rebuilt {
        return Err(CliError::new(
            format!(
                "pooled sweep diverged from per-run rebuild \
                 (checksum {ck_pooled:#018x} vs {ck_rebuilt:#018x})"
            ),
            exit_code::VALIDATION,
        ));
    }

    let edges: u64 = pooled.iter().map(|r| r.edges).sum();
    let model_ms: f64 = pooled.iter().map(|r| r.ms).sum();
    let agg_gteps = edges as f64 / (model_ms * 1e-3).max(1e-12) / 1e9;
    let pooled_rps = n as f64 / pooled_wall.max(1e-9);
    let rebuilt_rps = n as f64 / rebuilt_wall.max(1e-9);
    let speedup = pooled_rps / rebuilt_rps.max(1e-9);

    // Multi-source pass (--multi-source): one persistent 64-wide
    // bit-parallel engine sweeps the whole source set in
    // <= MAX_CONCURRENT-wide batches. Every slot's levels digest must
    // match the per-run rebuild reference above bit-for-bit.
    let mut multi_txt = String::new();
    let mut multi_json = String::new();
    if multi_source {
        let dev = mk_device(args, cfg.required_streams())?;
        let eng = xbfs_core::MsBfs::new(dev, &g)?;
        let t2 = std::time::Instant::now();
        let mut ms_model_ms = 0.0f64;
        let mut ms_edges = 0u64;
        let mut batches = 0usize;
        let mut slot_digests: Vec<u64> = Vec::with_capacity(n);
        for part in sources.chunks(xbfs_core::MAX_CONCURRENT) {
            let (run, _certs) = eng.run_governed(part, None, verify).map_err(|e| {
                let code = match e {
                    XbfsError::Integrity(_) => exit_code::INTEGRITY,
                    _ => exit_code::GENERIC,
                };
                CliError::new(format!("multi-source sweep: {e}"), code)
            })?;
            ms_model_ms += run.total_ms;
            ms_edges += run.traversed_edges;
            batches += 1;
            for slot in 0..run.width() {
                slot_digests.push(run.result_digest(slot));
            }
        }
        let ms_wall = t2.elapsed().as_secs_f64();
        if let Some(bad) = (0..n).find(|&i| slot_digests[i] != ref_levels[i]) {
            return Err(CliError::new(
                format!(
                    "multi-source sweep diverged from per-run rebuild at source {} \
                     (levels digest {:#018x} vs {:#018x})",
                    sources[bad], slot_digests[bad], ref_levels[bad]
                ),
                exit_code::VALIDATION,
            ));
        }
        let ms_ck = slot_digests.iter().fold(0u64, |a, d| a ^ d);
        let ms_gteps = ms_edges as f64 / (ms_model_ms * 1e-3).max(1e-12) / 1e9;
        let ms_rps = n as f64 / ms_wall.max(1e-9);
        let ms_speedup = ms_rps / pooled_rps.max(1e-9);
        multi_txt = format!(
            "multi-source:       {ms_rps:>9.1} runs/sec ({ms_wall:.3} s wall, \
             {batches} batch(es) of <= {}, {ms_gteps:.2} GTEPS aggregate modeled)\n\
             speedup vs pooled single-source: {ms_speedup:.2}x runs/sec; \
             slot levels bit-identical to rebuild (checksum {ms_ck:#018x})\n",
            xbfs_core::MAX_CONCURRENT,
        );
        multi_json = format!(
            "\x20 \"multi_source\": {{\"wall_ms\": {:.3}, \"runs_per_sec\": {ms_rps:.3}, \
             \"batches\": {batches}, \"width\": {}, \"aggregate_gteps\": {ms_gteps:.4}, \
             \"speedup_vs_pooled\": {ms_speedup:.3}, \
             \"checksum\": \"{ms_ck:#018x}\"}},\n",
            ms_wall * 1000.0,
            xbfs_core::MAX_CONCURRENT,
        );
    }

    let mut out = format!(
        "sweep: {n} sources on {threads} thread(s), |V| = {}, |E| = {}\n",
        g.num_vertices(),
        g.num_edges()
    );
    out.push_str(&format!(
        "pooled engine:      {pooled_rps:>9.1} runs/sec ({pooled_wall:.3} s wall, \
         {agg_gteps:.2} GTEPS aggregate modeled)\n"
    ));
    out.push_str(&format!(
        "in-process rebuild: {rebuilt_rps:>9.1} runs/sec ({rebuilt_wall:.3} s wall; \
         fresh device + upload + alloc, no process spawn)\n"
    ));
    out.push_str(&format!(
        "speedup vs in-process rebuild: {speedup:.2}x runs/sec; \
         results bit-identical (checksum {ck_pooled:#018x})\n"
    ));
    out.push_str(&multi_txt);
    if verify {
        out.push_str(&format!(
            "supervisor: {}/{n} certified, {} SDC detected, {} quarantined, \
             {} re-executed, {} corrected, {} aborted\n",
            health.certified,
            health.sdc_detected,
            health.quarantined,
            health.reexecuted,
            health.corrected,
            health.aborted,
        ));
        out.push_str(&format!(
            "            {} deadline exceedance(s), {} pool pressure event(s), \
             {} engine rebuild(s)\n",
            health.deadline_exceeded, health.pool_pressure_events, health.engine_rebuilds,
        ));
    } else if let Some(cap) = max_pool_bytes {
        out.push_str(&format!(
            "pool pressure: {} event(s) under the {cap}-byte cap\n",
            health.pool_pressure_events
        ));
    }
    if let Some(json_path) = args.options.get("json") {
        let json = format!(
            "{{\n\
             \x20 \"schema\": \"xbfs-sweep-v1\",\n\
             \x20 \"graph\": {{\"path\": {path:?}, \"vertices\": {}, \"edges\": {}}},\n\
             \x20 \"sources\": {n},\n\
             \x20 \"threads\": {threads},\n\
             \x20 \"seed\": {seed},\n\
             \x20 \"pooled\": {{\"wall_ms\": {:.3}, \"runs_per_sec\": {pooled_rps:.3}, \
             \"aggregate_gteps\": {agg_gteps:.4}}},\n\
             \x20 \"unpooled\": {{\"wall_ms\": {:.3}, \"runs_per_sec\": {rebuilt_rps:.3}}},\n\
             \x20 \"speedup\": {speedup:.3},\n\
             \x20 \"verified\": {verify},\n\
             \x20 \"health\": {{\"certified\": {}, \"sdc_detected\": {}, \
             \"quarantined\": {}, \"reexecuted\": {}, \"corrected\": {}, \
             \"aborted\": {}, \"deadline_exceeded\": {}, \
             \"pool_pressure_events\": {}, \"engine_rebuilds\": {}}},\n\
             {multi_json}\
             \x20 \"checksum\": \"{ck_pooled:#018x}\"\n\
             }}\n",
            g.num_vertices(),
            g.num_edges(),
            pooled_wall * 1000.0,
            rebuilt_wall * 1000.0,
            health.certified,
            health.sdc_detected,
            health.quarantined,
            health.reexecuted,
            health.corrected,
            health.aborted,
            health.deadline_exceeded,
            health.pool_pressure_events,
            health.engine_rebuilds,
        );
        std::fs::write(json_path, json)
            .map_err(|e| CliError::io(format!("cannot write {json_path}: {e}")))?;
        out.push_str(&format!("sweep record written to {json_path}\n"));
    }
    if let Some((fmt, trace_path)) = trace_opt {
        if let Some(direct) = emit_trace(&mut out, fmt, &trace_path, &recorder) {
            return Ok(direct);
        }
    }
    Ok(out)
}

/// `xbfs serve`: the resilient BFS daemon. Loads the graph once, keeps
/// one warm pooled engine per worker, and serves `xbfs-serve-v1` until a
/// wire `shutdown` drains it; the merged serve report is the output.
fn serve(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or("usage: xbfs serve FILE [--addr HOST:PORT] (see `xbfs help`)")?;
    let g = std::sync::Arc::new(load_graph(path)?);
    let verify = args.flag("verify");
    // The certificate's parent-tree checks need recorded parents, same
    // as `bfs --verify`.
    let xcfg = XbfsConfig {
        alpha: args.get("alpha", 0.1)?,
        record_parents: verify,
        ..XbfsConfig::default()
    };
    let cluster = match args.options.get("cluster") {
        Some(_) => {
            let n: usize = args.get("cluster", 4)?;
            if n < 2 {
                return Err(CliError::usage("--cluster needs at least 2 GCDs"));
            }
            Some(n)
        }
        None => None,
    };
    // Batched serving: coalesce up to --batch-width admitted single-source
    // requests into one 64-wide bit-parallel wave. Width is capped by the
    // visited-mask word (MAX_CONCURRENT = 64); the cluster engine has its
    // own scheduling and does not compose with coalescing.
    let batch_width = args.get::<usize>("batch-width", 1)?;
    if batch_width == 0 {
        return Err(CliError::usage("--batch-width must be >= 1"));
    }
    if batch_width > xbfs_core::MAX_CONCURRENT {
        return Err(CliError::usage(format!(
            "--batch-width {batch_width} exceeds the {}-wide visited mask",
            xbfs_core::MAX_CONCURRENT
        )));
    }
    if batch_width > 1 && cluster.is_some() {
        return Err(CliError::usage(
            "--batch-width > 1 does not compose with --cluster \
             (the multi-GCD engine schedules one source at a time)",
        ));
    }
    let batch_window_ms = args.get::<f64>("batch-window-ms", 2.0)?;
    if !batch_window_ms.is_finite() || batch_window_ms < 0.0 {
        return Err(CliError::usage("--batch-window-ms must be >= 0"));
    }
    // Durability: --journal PATH arms the write-ahead journal; the fsync
    // policy grammar is parsed up front so a typo fails before the graph
    // loads. --journal-fsync without --journal is a usage error (it would
    // silently do nothing).
    let journal = args.options.get("journal").cloned();
    let journal_fsync = match args.options.get("journal-fsync") {
        Some(spec) => {
            if journal.is_none() {
                return Err(CliError::usage("--journal-fsync requires --journal PATH"));
            }
            FsyncPolicy::parse(spec).map_err(|e| CliError::usage(e.to_string()))?
        }
        None => FsyncPolicy::Batch(8),
    };
    let scfg = ServeConfig {
        addr: args.get("addr", "127.0.0.1:0".to_string())?,
        workers: args.get("workers", 2)?,
        queue_cap: args.get("queue-cap", 32)?,
        retry_after_ms: args.get("retry-after-ms", 25)?,
        verify,
        allow_chaos: args.flag("allow-chaos"),
        max_retries: args.get("max-retries", 2)?,
        breaker_threshold: args.get("breaker-threshold", 3)?,
        breaker_cooldown_ms: args.get("breaker-cooldown-ms", 250)?,
        default_deadline_ms: opt_f64(args, "deadline-ms")?,
        cluster,
        checkpoint_every: args.get("checkpoint-every", 1)?,
        metrics_addr: args.options.get("metrics-addr").cloned(),
        flight_dir: args.options.get("flight-dir").cloned(),
        flight_ring: args.get("flight-ring", 64)?,
        batch_width,
        batch_window_ms,
        journal,
        journal_fsync,
        idle_timeout_ms: args.get("idle-timeout-ms", 30_000)?,
        ..ServeConfig::default()
    };
    let (workers, queue_cap) = (scfg.workers, scfg.queue_cap);

    // Validate --arch/--compiler once up front; the factory re-parses the
    // already-validated names so quarantine rebuilds can mint fresh
    // devices long after `args` is gone.
    let streams = xcfg.required_streams();
    mk_device(args, streams)?;
    let arch = args.get::<String>("arch", "mi250x".into())?;
    let compiler = args.get::<String>("compiler", "clang".into())?;
    let timing = args.flag("timing");
    let factory: DeviceFactory = std::sync::Arc::new(move || {
        let profile = match arch.as_str() {
            "mi100" => ArchProfile::mi100(),
            "p6000" => ArchProfile::p6000(),
            _ => ArchProfile::mi250x_gcd(),
        };
        let mode = if timing {
            ExecMode::Timing
        } else {
            ExecMode::Functional
        };
        let mut dev = Device::new(profile, mode, streams);
        dev.set_compiler(match compiler.as_str() {
            "hipcc" => Compiler::HipccO3,
            "clang-O0" => Compiler::ClangO0,
            _ => Compiler::ClangO3,
        });
        dev
    });

    let (trace_opt, recorder) = trace_setup(args)?;
    let rec = std::sync::Arc::new(recorder);
    let handle = Server::start(scfg, g, xcfg, factory, std::sync::Arc::clone(&rec))
        .map_err(|e| CliError::io(format!("cannot start server: {e}")))?;
    // The banner goes to stderr immediately (stdout is the end-of-life
    // report) so scripts can scrape the bound port before sending load.
    let backend = match cluster {
        Some(n) => format!("{n}-GCD cluster engine per worker"),
        None if batch_width > 1 => format!(
            "{batch_width}-wide batch engine per worker, \
             {batch_window_ms} ms linger"
        ),
        None => "single-device engine per worker".into(),
    };
    eprintln!(
        "xbfs serve: listening on {} ({workers} worker(s), queue cap {queue_cap}, {backend}); \
         drain with the wire `shutdown` op or `xbfs loadgen --shutdown`",
        handle.addr()
    );
    if let Some(maddr) = handle.metrics_addr() {
        eprintln!(
            "xbfs serve: metrics on http://{maddr}/metrics (Prometheus) and \
             /metrics.json (xbfs-metrics-v1); watch live with `xbfs top {}`",
            handle.addr()
        );
    }
    if let Some(jpath) = args.options.get("journal") {
        eprintln!(
            "xbfs serve: journaling to {jpath} (fsync {journal_fsync}); \
             a restart on the same path replays incomplete requests"
        );
    }

    let report = handle.join();
    let mut out = format!(
        "serve report: accepted {} (ok {} timeout {} error {}), shed {}, \
         rejected while draining {}\n\
         recovery: replayed {} panics-recovered {} engine-rebuilds {} \
         breaker-trips {} breaker-fast-rejects {}\n\
         wire: connections {} dropped {} bad-lines {} chaos-ignored {}; \
         max queue depth {}\n\
         drain: {}\n",
        report.accepted,
        report.ok,
        report.timeouts,
        report.errors,
        report.shed,
        report.rejected_draining,
        report.replayed,
        report.panics_recovered,
        report.rebuilds,
        report.breaker_trips,
        report.breaker_fast_rejects,
        report.connections,
        report.dropped_connections,
        report.bad_lines,
        report.chaos_ignored,
        report.max_queue_depth,
        if report.drain_clean {
            "clean"
        } else {
            "NOT CLEAN"
        },
    );
    if report.deduped > 0 {
        out.push_str(&format!(
            "idempotent replays answered from cache: {}\n",
            report.deduped
        ));
    }
    if report.journal_appends > 0 || report.replayed_requests > 0 {
        out.push_str(&format!(
            "journal: {} append(s) {} fsync(s) {} B written\n",
            report.journal_appends, report.journal_fsyncs, report.journal_bytes
        ));
    }
    if report.replayed_requests > 0 {
        out.push_str(&format!(
            "crash recovery: re-enqueued {} incomplete request(s) from the \
             journal in {:.1} ms\n",
            report.replayed_requests, report.recovery_ms
        ));
    }
    if report.long_lines > 0 || report.idle_disconnects > 0 {
        out.push_str(&format!(
            "read hygiene: overlong lines shed {} idle connections closed {}\n",
            report.long_lines, report.idle_disconnects
        ));
    }
    if report.batch_width > 1 {
        out.push_str(&format!(
            "batching: width {} — {} batch(es) served {} request(s), \
             largest batch {}\n",
            report.batch_width, report.batches, report.batched_requests, report.max_batch_size
        ));
    }
    if !report.flight_dumps.is_empty() {
        out.push_str(&format!(
            "flight recorder: {} dump(s)\n",
            report.flight_dumps.len()
        ));
        for p in &report.flight_dumps {
            out.push_str(&format!("  {p}\n"));
        }
    }
    if report.cluster > 0 {
        out.push_str(&format!("cluster: {} rank(s)\n", report.cluster));
        for (rank, h) in report.rank_health.iter().enumerate() {
            out.push_str(&format!(
                "  rank {rank}: crashes {} checkpoints-restored {} \
                 retransmitted {} B\n",
                h.crashes, h.checkpoints_restored, h.retransmitted_bytes
            ));
        }
    }
    if let Some(json_path) = args.options.get("json") {
        std::fs::write(json_path, report.to_json() + "\n")
            .map_err(|e| CliError::io(format!("cannot write {json_path}: {e}")))?;
        out.push_str(&format!("serve report written to {json_path}\n"));
    }
    if let Some((fmt, trace_path)) = trace_opt {
        if let Some(direct) = emit_trace(&mut out, fmt, &trace_path, &rec) {
            return Ok(direct);
        }
    }
    if !report.drain_clean {
        return Err(CliError::new(
            format!("serve: drain was not clean (work lost or dropped)\n{out}"),
            exit_code::GENERIC,
        ));
    }
    Ok(out)
}

/// `xbfs loadgen`: open-loop load generator for `xbfs serve`.
fn loadgen(args: &Args) -> Result<String, CliError> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .ok_or("usage: xbfs loadgen --addr HOST:PORT (see `xbfs help`)")?;
    // The chaos grammar is the shared xbfs-spec one (same tokenizer as
    // --inject-bitflips and --inject-faults), parsed client-side so a bad
    // spec fails before any load is sent.
    let chaos = match args.options.get("chaos") {
        Some(spec) => Some(
            ChaosPlan::parse(spec)
                .map_err(|e| CliError::new(e.to_string(), exit_code::INVALID_INPUT))?,
        ),
        None => None,
    };
    let cfg = LoadgenConfig {
        addr,
        requests: args.get("requests", 100)?,
        rps: args.get("rps", 200.0)?,
        connections: args.get("connections", 4)?,
        source_max: args.get("sources", 1)?,
        seed: args.get("seed", 1)?,
        deadline_ms: opt_f64(args, "deadline-ms")?,
        verify: args.flag("verify").then_some(true),
        chaos,
        retries: args.get("retries", 0)?,
        shutdown_after: args.flag("shutdown"),
        progress_every_ms: args.get("progress-every-ms", 1000)?,
        reconnect: !args.flag("no-reconnect"),
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg)
        .map_err(|e| CliError::io(format!("loadgen against {}: {e}", cfg.addr)))?;

    let mut out = format!(
        "loadgen: {} requests at target {:.0} rps over {} connection(s); \
         achieved {:.0} rps in {:.0} ms\n\
         ok {} shed {} ({:.1}%) timeouts {} errors {} lost {}; replayed {}\n\
         retries: sent {} retried-then-ok {}; reconnects {}\n\
         latency ms from scheduled send: p50 {:.3} p99 {:.3} p999 {:.3} max {:.3}\n\
         digests consistent per source: {}\n",
        report.sent,
        cfg.rps,
        cfg.connections,
        report.achieved_rps,
        report.elapsed_ms,
        report.ok,
        report.shed,
        report.shed_pct(),
        report.timeouts,
        report.errors,
        report.lost,
        report.replayed,
        report.retries_sent,
        report.retried_ok,
        report.reconnects,
        report.p50_ms,
        report.p99_ms,
        report.p999_ms,
        report.max_ms,
        report.digests_consistent,
    );
    if let Some(json_path) = args.options.get("json") {
        std::fs::write(json_path, report.to_json() + "\n")
            .map_err(|e| CliError::io(format!("cannot write {json_path}: {e}")))?;
        out.push_str(&format!("loadgen record written to {json_path}\n"));
    }
    if report.lost > 0 {
        return Err(CliError::new(
            format!(
                "loadgen: {} request(s) lost (connection died before an answer)\n{out}",
                report.lost
            ),
            exit_code::GENERIC,
        ));
    }
    if !report.digests_consistent {
        return Err(CliError::new(
            format!("IntegrityError: served digests diverged across repeats of a source\n{out}"),
            exit_code::INTEGRITY,
        ));
    }
    if let Some(limit) = opt_f64(args, "max-shed-pct")? {
        if report.shed_pct() > limit {
            return Err(CliError::new(
                format!(
                    "loadgen: shed {:.1}% of requests, over --max-shed-pct {limit}\n{out}",
                    report.shed_pct()
                ),
                exit_code::OVERLOADED,
            ));
        }
    }
    Ok(out)
}

/// `xbfs top`: a live terminal dashboard over a running server's
/// metrics plane. Connects to the *serve* address (wire protocol) and
/// polls the `metrics` op, rendering one frame per snapshot with rates
/// computed from successive scrapes. Runs until the server drains (or
/// for --frames N when scripted).
fn top_cmd(args: &Args) -> Result<String, CliError> {
    let addr = args
        .positional
        .first()
        .ok_or("usage: xbfs top HOST:PORT [--interval-ms MS] [--frames N]")?;
    let interval = std::time::Duration::from_millis(args.get("interval-ms", 1000)?);
    let frames = match args.get::<u64>("frames", 0)? {
        0 => None,
        n => Some(n),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let rendered = xbfs_server::top::run_top(addr, interval, frames, &mut out)
        .map_err(|e| CliError::io(format!("top against {addr}: {e}")))?;
    Ok(format!("top: rendered {rendered} frame(s)\n"))
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let path = args.positional.first().ok_or("usage: xbfs analyze FILE")?;
    let g = load_graph(path)?;
    let labels = xbfs_apps::connected_components(&g);
    let n_comp = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let (_, giant) = xbfs_apps::largest_component(&g);
    let src = pick_sources(&g, 1, 1)[0];
    let diameter = xbfs_apps::estimate_diameter(&g, src);
    Ok(format!(
        "components: {n_comp} (largest {giant} of {} vertices, {:.1}%)\n\
         diameter (double-sweep lower bound): {diameter}\n",
        g.num_vertices(),
        100.0 * giant as f64 / g.num_vertices().max(1) as f64
    ))
}

fn trace_cmd(args: &Args) -> Result<String, CliError> {
    match args.positional.first().map(String::as_str) {
        Some("summarize") => {
            let path = args
                .positional
                .get(1)
                .ok_or("usage: xbfs trace summarize FILE")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
            summarize_trace(&text)
                .map_err(|e| CliError::new(format!("{path}: {e}"), exit_code::INVALID_INPUT))
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown trace subcommand {other:?} (expected `summarize`)"
        ))),
        None => Err("usage: xbfs trace summarize FILE".into()),
    }
}

/// Summarize a recorded trace document (either `xbfs-trace-v1` JSON from
/// `--trace json:` or a chrome trace.json from `--trace chrome:`).
fn summarize_trace(text: &str) -> Result<String, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("not valid JSON ({e})"))?;
    if doc.get("schema").and_then(JsonValue::as_str) == Some("xbfs-trace-v1") {
        summarize_xbfs_trace(&doc)
    } else if doc.get("traceEvents").is_some() {
        summarize_chrome_trace(&doc)
    } else {
        Err("unrecognized document (expected xbfs-trace-v1 or Trace Event Format)".into())
    }
}

fn json_attr(v: &JsonValue, key: &str) -> String {
    match v.get(key) {
        Some(JsonValue::Str(s)) => s.clone(),
        Some(JsonValue::Num(n)) => format!("{n}"),
        Some(JsonValue::Bool(b)) => b.to_string(),
        _ => String::new(),
    }
}

fn summarize_xbfs_trace(doc: &JsonValue) -> Result<String, String> {
    let mut out = String::from("xbfs-trace-v1\n");
    if let Some(summary) = doc.get("summary") {
        let engine = json_attr(summary, "engine");
        if !engine.is_empty() {
            out.push_str(&format!("engine: {engine}"));
            for key in ["num_gcds", "vertices", "edges", "gteps"] {
                let v = json_attr(summary, key);
                if !v.is_empty() {
                    out.push_str(&format!("  {key} {v}"));
                }
            }
            out.push('\n');
        }
    }
    let levels = doc
        .get("levels")
        .and_then(JsonValue::as_arr)
        .ok_or("missing levels array")?;
    out.push_str(&format!(
        "{:>5} {:>3} {:>12} {:>12} {:>10}\n",
        "level", "try", "mode", "frontier", "time ms"
    ));
    for l in levels {
        let mode = {
            let s = json_attr(l, "strategy");
            if s.is_empty() {
                json_attr(l, "mode")
            } else {
                s
            }
        };
        out.push_str(&format!(
            "{:>5} {:>3} {:>12} {:>12} {:>10.4}\n",
            json_attr(l, "level"),
            {
                let a = json_attr(l, "attempt");
                if a.is_empty() {
                    "0".into()
                } else {
                    a
                }
            },
            mode,
            json_attr(l, "frontier_count"),
            l.get("time_ms").and_then(JsonValue::as_f64).unwrap_or(0.0),
        ));
    }
    let spans = doc.get("spans").and_then(JsonValue::as_arr).unwrap_or(&[]);
    let count_named = |name: &str| {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(JsonValue::as_str) == Some(name))
            .count()
    };
    let events = doc.get("events").and_then(JsonValue::as_arr).unwrap_or(&[]);
    out.push_str(&format!(
        "{} spans ({} levels, {} kernels, {} collectives, {} checkpoints, \
         {} recoveries), {} events, {} counter samples\n",
        spans.len(),
        count_named(names::span::LEVEL),
        count_named(names::span::KERNEL),
        count_named(names::span::COLLECTIVE),
        count_named(names::span::CHECKPOINT),
        count_named(names::span::RECOVERY),
        events.len(),
        doc.get("counters")
            .and_then(JsonValue::as_arr)
            .map_or(0, |c| c.len()),
    ));
    out.push_str(&format!(
        "total {:.4} ms\n",
        doc.get("total_ms")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
    ));
    Ok(out)
}

fn summarize_chrome_trace(doc: &JsonValue) -> Result<String, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("traceEvents is not an array")?;
    let mut out = String::from("chrome trace.json (Trace Event Format)\n");
    let with_ph = |ph: &'static str| {
        events
            .iter()
            .filter(move |e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
    };
    let named = |name: &'static str| {
        with_ph("X").filter(move |e| e.get("name").and_then(JsonValue::as_str) == Some(name))
    };
    let mut end_us = 0.0f64;
    for e in with_ph("X") {
        let ts = e.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let dur = e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0);
        end_us = end_us.max(ts + dur);
    }
    out.push_str(&format!(
        "{} span events ({} levels, {} kernels, {} collectives, {} recoveries), \
         {} instants, {} counter samples\n",
        with_ph("X").count(),
        named(names::span::LEVEL).count(),
        named(names::span::KERNEL).count(),
        named(names::span::COLLECTIVE).count(),
        named(names::span::RECOVERY).count(),
        with_ph("i").count(),
        with_ph("C").count(),
    ));
    out.push_str(&format!(
        "{:>5} {:>3} {:>12} {:>12} {:>10}\n",
        "level", "try", "mode", "frontier", "time ms"
    ));
    for l in named(names::span::LEVEL) {
        let args = l.get("args").cloned().unwrap_or(JsonValue::Obj(Vec::new()));
        let mode = {
            let s = json_attr(&args, "strategy");
            if s.is_empty() {
                json_attr(&args, "mode")
            } else {
                s
            }
        };
        out.push_str(&format!(
            "{:>5} {:>3} {:>12} {:>12} {:>10.4}\n",
            json_attr(&args, "level"),
            {
                let a = json_attr(&args, "attempt");
                if a.is_empty() {
                    "0".into()
                } else {
                    a
                }
            },
            mode,
            json_attr(&args, "frontier_count"),
            l.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1000.0,
        ));
    }
    out.push_str(&format!("total {:.4} ms\n", end_us / 1000.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<String, CliError> {
        dispatch(&Args::parse(parts.iter().map(|s| s.to_string())).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("xbfs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_bfs_round_trip() {
        let path = tmp("g1.bin");
        let msg = run(&["generate", "--out", &path, "--scale", "10"]).unwrap();
        assert!(msg.contains("|V| = 1024"), "{msg}");
        let info = run(&["info", &path]).unwrap();
        assert!(info.contains("avg degree"));
        let bfs = run(&["bfs", &path, "--validate"]).unwrap();
        assert!(bfs.contains("GTEPS"));
        assert!(bfs.contains("VALID"), "{bfs}");
    }

    #[test]
    fn forced_strategy_and_csv() {
        let path = tmp("g2.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let csv = tmp("g2.csv");
        let out = run(&["bfs", &path, "--forced", "bottom-up", "--csv", &csv]).unwrap();
        assert!(out.contains("bottom-up"));
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.contains("bu_expand"), "{body}");
    }

    #[test]
    fn convert_between_formats() {
        let bin = tmp("g3.bin");
        run(&["generate", "--out", &bin, "--kind", "db", "--shift", "6"]).unwrap();
        let txt = tmp("g3.txt");
        let msg = run(&["convert", &bin, &txt]).unwrap();
        assert!(msg.contains("converted"));
        let back = tmp("g3b.bin");
        run(&["convert", &txt, &back]).unwrap();
        let a = load_graph(&bin).unwrap();
        let b = load_graph(&back).unwrap();
        // Conversion through a symmetrized edge list preserves edges.
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn compare_and_msbfs_and_analyze() {
        let path = tmp("g4.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let cmp = run(&["compare", &path]).unwrap();
        assert!(
            cmp.contains("gunrock-like") && cmp.contains("beamer-like"),
            "{cmp}"
        );
        let ms = run(&["msbfs", &path, "--sources", "4"]).unwrap();
        assert!(ms.contains("sharing gain"), "{ms}");
        let an = run(&["analyze", &path]).unwrap();
        assert!(an.contains("components"), "{an}");
    }

    #[test]
    fn sweep_reports_throughput_and_writes_json() {
        let path = tmp("g10.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let json = tmp("g10_sweep.json");
        let out = run(&[
            "sweep",
            &path,
            "--sources",
            "8",
            "--threads",
            "2",
            "--json",
            &json,
        ])
        .unwrap();
        assert!(out.contains("runs/sec"), "{out}");
        assert!(out.contains("GTEPS aggregate"), "{out}");
        assert!(out.contains("bit-identical"), "{out}");
        let doc = JsonValue::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("xbfs-sweep-v1")
        );
        assert_eq!(doc.get("sources").and_then(JsonValue::as_f64), Some(8.0));
        assert!(doc.get("speedup").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert!(
            doc.get("pooled")
                .and_then(|p| p.get("runs_per_sec"))
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0
        );
        // Unknown options stay usage errors.
        assert_eq!(
            run(&["sweep", &path, "--frobnicate"]).unwrap_err().code,
            exit_code::USAGE
        );
    }

    #[test]
    fn bfs_verify_certifies_clean_runs() {
        let path = tmp("g20.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let out = run(&["bfs", &path, "--verify"]).unwrap();
        assert!(out.contains("certified:"), "{out}");
        assert!(out.contains("levels checksum"), "{out}");
        // An unparsable bit-flip spec is the user's fault, not corruption.
        let err = run(&["bfs", &path, "--verify", "--inject-bitflips", "bogus"]).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_INPUT, "{err}");
    }

    #[test]
    fn bfs_verify_detects_injected_bitflips() {
        let path = tmp("g21.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        for spec in ["status,seed=7", "parents,seed=3", "csr,seed=9"] {
            let err = run(&["bfs", &path, "--verify", "--inject-bitflips", spec]).unwrap_err();
            assert_eq!(err.code, exit_code::INTEGRITY, "{spec}: {err}");
            assert!(err.message.starts_with("IntegrityError:"), "{spec}: {err}");
        }
    }

    #[test]
    fn sweep_supervisor_self_heals_under_injection() {
        let path = tmp("g22.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let json = tmp("g22_sweep.json");
        let out = run(&[
            "sweep",
            &path,
            "--sources",
            "6",
            "--threads",
            "2",
            "--inject-bitflips",
            "status,seed=5",
            "--json",
            &json,
        ])
        .unwrap();
        // Every injected run is detected, quarantined, re-executed, and
        // corrected; the corrected results stay bit-identical to the
        // clean rebuilt reference.
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("6/6 certified"), "{out}");
        let doc = JsonValue::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let health = doc.get("health").expect("health section");
        let get = |k: &str| health.get(k).and_then(JsonValue::as_f64).unwrap();
        assert_eq!(get("sdc_detected"), 6.0);
        assert_eq!(get("quarantined"), 6.0);
        assert_eq!(get("reexecuted"), 6.0);
        assert_eq!(get("corrected"), 6.0);
        assert_eq!(get("aborted"), 0.0);
        assert!(get("engine_rebuilds") >= 6.0);
        assert_eq!(doc.get("verified").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn sweep_retries_exhausted_aborts_with_integrity_exit() {
        let path = tmp("g23.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let err = run(&[
            "sweep",
            &path,
            "--sources",
            "4",
            "--threads",
            "1",
            "--inject-bitflips",
            "csr,seed=11",
            "--retries",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.code, exit_code::INTEGRITY, "{err}");
        assert!(err.message.starts_with("IntegrityError:"), "{err}");
        assert!(err.message.contains("failed certification"), "{err}");
    }

    #[test]
    fn sweep_pool_cap_reports_pressure_and_stays_bit_identical() {
        let path = tmp("g24.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let json = tmp("g24_sweep.json");
        let out = run(&[
            "sweep",
            &path,
            "--sources",
            "8",
            "--threads",
            "2",
            "--max-pool-bytes",
            "2048",
            "--json",
            &json,
        ])
        .unwrap();
        // The byte cap degrades pooling to fresh allocation, never
        // correctness: results remain bit-identical, pressure is counted.
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("pool pressure"), "{out}");
        let doc = JsonValue::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let pressure = doc
            .get("health")
            .and_then(|h| h.get("pool_pressure_events"))
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!(pressure > 0.0, "cap of 2 KB must trim state parks");
        // A bad cap value is a usage error.
        assert_eq!(
            run(&["sweep", &path, "--max-pool-bytes", "lots"])
                .unwrap_err()
                .code,
            exit_code::USAGE
        );
    }

    #[test]
    fn errors_are_reported_with_distinct_exit_codes() {
        assert_eq!(run(&["nope"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(run(&["bfs"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["bfs", "/does/not/exist.bin"]).unwrap_err().code,
            exit_code::IO
        );
        assert_eq!(run(&["generate"]).unwrap_err().code, exit_code::USAGE);
        let typo = run(&["cluster", "g.bin", "--frobnicate"]).unwrap_err();
        assert_eq!(typo.code, exit_code::USAGE);
        assert!(typo.message.contains("--frobnicate"), "{}", typo.message);
        let help = run(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
        assert!(help.contains("cluster"));
    }

    #[test]
    fn cluster_runs_fault_free_and_validates() {
        let path = tmp("g5.bin");
        run(&["generate", "--out", &path, "--scale", "10"]).unwrap();
        let out = run(&["cluster", &path, "--gcds", "4", "--validate"]).unwrap();
        assert!(out.contains("VALID"), "{out}");
        assert!(out.contains("GTEPS per GCD"), "{out}");
        assert!(out.contains("(no faults)"), "{out}");
    }

    #[test]
    fn cluster_crash_demo_recovers_and_exports() {
        let path = tmp("g6.bin");
        run(&["generate", "--out", &path, "--scale", "11"]).unwrap();
        let json = tmp("g6.json");
        let csv = tmp("g6.csv");
        let out = run(&[
            "cluster",
            &path,
            "--gcds",
            "4",
            "--source",
            "1",
            "--inject-faults",
            "crash@2:rank1",
            "--checkpoint-every",
            "1",
            "--recovery",
            "spare",
            "--validate",
            "--json",
            &json,
            "--csv",
            &csv,
        ])
        .unwrap();
        assert!(out.contains("recovery: rank 1 died at level 2"), "{out}");
        assert!(out.contains("VALID"), "{out}");
        let record = std::fs::read_to_string(&json).unwrap();
        assert!(record.contains("crash@2:rank1"), "{record}");
        let stats = std::fs::read_to_string(&csv).unwrap();
        assert!(stats.starts_with("level,attempt,"), "{stats}");
    }

    #[test]
    fn run_alias_and_trace_exports_every_format() {
        let path = tmp("g8.bin");
        run(&["generate", "--out", &path, "--scale", "10"]).unwrap();

        // `run` is an alias of `bfs`.
        let plain = run(&["run", &path, "--source", "0"]).unwrap();
        assert!(plain.contains("GTEPS"), "{plain}");

        // chrome trace to a file, then summarize it.
        let chrome = tmp("g8_trace.json");
        let out = run(&[
            "run",
            &path,
            "--source",
            "0",
            "--trace",
            &format!("chrome:{chrome}"),
        ])
        .unwrap();
        assert!(out.contains("chrome trace written"), "{out}");
        let body = std::fs::read_to_string(&chrome).unwrap();
        let doc = JsonValue::parse(&body).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let n_levels = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("level"))
            .count();
        // Every BFS level appears as a span: compare against the run report.
        let depth = plain
            .lines()
            .filter(|l| l.trim_start().starts_with('L'))
            .count();
        assert_eq!(n_levels, depth, "one level span per BFS level");
        let summary = run(&["trace", "summarize", &chrome]).unwrap();
        assert!(summary.contains("Trace Event Format"), "{summary}");
        assert!(summary.contains("level"), "{summary}");

        // json:- replaces the report with pure machine-readable JSON.
        let json = run(&["run", &path, "--source", "0", "--trace", "json:-"]).unwrap();
        let doc = JsonValue::parse(&json).expect("stdout must be pure JSON");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("xbfs-trace-v1")
        );
        assert_eq!(
            doc.get("levels").and_then(JsonValue::as_arr).unwrap().len(),
            depth
        );
        // Summarize the v1 schema from a file, too.
        let v1 = tmp("g8_v1.json");
        std::fs::write(&v1, &json).unwrap();
        let summary = run(&["trace", "summarize", &v1]).unwrap();
        assert!(summary.contains("xbfs-trace-v1"), "{summary}");
        assert!(summary.contains("engine: xbfs"), "{summary}");

        // table and rocprof CSV render too.
        let table = run(&["run", &path, "--source", "0", "--trace", "table:-"]).unwrap();
        assert!(
            table.contains("level") && table.contains("total"),
            "{table}"
        );
        let csv = run(&["run", &path, "--source", "0", "--trace", "csv:-"]).unwrap();
        assert!(csv.starts_with("phase,kernel,runtime_ms"), "{csv}");

        // Bad specs are usage errors.
        assert_eq!(
            run(&["run", &path, "--trace", "bogus:x"]).unwrap_err().code,
            exit_code::USAGE
        );
        assert_eq!(
            run(&["run", &path, "--trace", "json"]).unwrap_err().code,
            exit_code::USAGE
        );
    }

    #[test]
    fn cluster_trace_covers_levels_and_recovery_with_warning() {
        let path = tmp("g9.bin");
        run(&["generate", "--out", &path, "--scale", "10"]).unwrap();
        let out = run(&[
            "cluster",
            &path,
            "--gcds",
            "4",
            "--source",
            "1",
            "--inject-faults",
            "crash@1:rank1",
            "--trace",
            "json:-",
        ])
        .unwrap();
        // `json:-` output is the pure trace; the crash warning goes to stderr only.
        let doc = JsonValue::parse(&out).expect("stdout must be pure JSON");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("xbfs-trace-v1")
        );
        let spans = doc.get("spans").and_then(JsonValue::as_arr).unwrap();
        let named = |n: &str| {
            spans
                .iter()
                .filter(|s| s.get("name").and_then(JsonValue::as_str) == Some(n))
                .count()
        };
        assert!(named("level") > 0);
        assert!(named("collective") > 0);
        assert_eq!(named("recovery"), 1, "crash must produce a recovery span");
        assert!(
            named("checkpoint") > 0,
            "fault mode defaults to checkpointing"
        );
        let events = doc.get("events").and_then(JsonValue::as_arr).unwrap();
        let evt = |n: &str| {
            events
                .iter()
                .any(|e| e.get("name").and_then(JsonValue::as_str) == Some(n))
        };
        assert!(evt("fault.crash") && evt("recovery.restore"), "{out}");

        // With a file path, the warning lands in the report.
        let trace_path = tmp("g9_trace.json");
        let report = run(&[
            "cluster",
            &path,
            "--gcds",
            "4",
            "--source",
            "1",
            "--inject-faults",
            "crash@1:rank1",
            "--trace",
            &format!("json:{trace_path}"),
        ])
        .unwrap();
        assert!(
            report.contains("warning: tracing a run with planned GCD crashes"),
            "{report}"
        );
        assert!(report.contains("json trace written"), "{report}");
        let summary = run(&["trace", "summarize", &trace_path]).unwrap();
        assert!(summary.contains("1 recoveries"), "{summary}");
    }

    #[test]
    fn trace_summarize_rejects_garbage() {
        assert_eq!(
            run(&["trace", "summarize", "/does/not/exist.json"])
                .unwrap_err()
                .code,
            exit_code::IO
        );
        let bad = tmp("bad_trace.json");
        std::fs::write(&bad, "not json").unwrap();
        assert_eq!(
            run(&["trace", "summarize", &bad]).unwrap_err().code,
            exit_code::INVALID_INPUT
        );
        std::fs::write(&bad, "{\"someting\":\"else\"}").unwrap();
        assert_eq!(
            run(&["trace", "summarize", &bad]).unwrap_err().code,
            exit_code::INVALID_INPUT
        );
        assert_eq!(run(&["trace"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["trace", "frobnicate"]).unwrap_err().code,
            exit_code::USAGE
        );
    }

    #[test]
    fn cluster_fault_errors_map_to_exit_codes() {
        let path = tmp("g7.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        // Malformed spec -> invalid input.
        let e = run(&["cluster", &path, "--inject-faults", "crash@x"]).unwrap_err();
        assert_eq!(e.code, exit_code::INVALID_INPUT);
        // More drops than the retry budget -> unrecovered fault.
        let e = run(&[
            "cluster",
            &path,
            "--gcds",
            "2",
            "--inject-faults",
            "drop@0:0-1x9",
        ])
        .unwrap_err();
        assert_eq!(e.code, exit_code::UNRECOVERED_FAULT, "{}", e.message);
        // Random plans parse and run (crash recovery on by default).
        let out = run(&[
            "cluster",
            &path,
            "--gcds",
            "2",
            "--inject-faults",
            "random:7",
            "--validate",
        ])
        .unwrap();
        assert!(out.contains("VALID"), "{out}");
    }

    #[test]
    fn bfs_deadline_maps_to_timeout_exit_code() {
        let path = tmp("deadline.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        // A sub-microsecond modeled budget cannot cover any level.
        let e = run(&["bfs", &path, "--deadline-ms", "0.000001"]).unwrap_err();
        assert_eq!(e.code, exit_code::TIMEOUT, "{}", e.message);
        assert!(e.message.contains("deadline"), "{}", e.message);
        // A generous budget changes nothing about a normal run.
        let out = run(&["bfs", &path, "--deadline-ms", "100000"]).unwrap();
        assert!(out.contains("GTEPS"), "{out}");
        // The combination with --verify still certifies.
        let out = run(&["bfs", &path, "--deadline-ms", "100000", "--verify"]).unwrap();
        assert!(out.contains("certified:"), "{out}");
    }

    #[test]
    fn exporters_never_abort_a_finished_run() {
        let path = tmp("softfail.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        // Unwritable side-file paths demote to warnings: the run's own
        // report still lands and the exit code stays 0.
        let out = run(&[
            "bfs",
            &path,
            "--csv",
            "/nonexistent-dir/k.csv",
            "--trace",
            "json:/nonexistent-dir/t.json",
        ])
        .unwrap();
        assert!(out.contains("GTEPS"), "{out}");
        assert!(out.contains("kernel counters NOT written"), "{out}");
        assert!(out.contains("trace NOT written"), "{out}");
    }

    #[test]
    fn serve_and_loadgen_round_trip() {
        let path = tmp("serve.bin");
        run(&["generate", "--out", &path, "--scale", "9"]).unwrap();
        let json = tmp("loadgen.json");
        // Grab a free port, release it, and hand it to the server (the
        // dispatch API has no way to report an OS-assigned port back).
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let mport = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let maddr = format!("127.0.0.1:{mport}");
        let srv = std::thread::spawn({
            let (path, addr, maddr) = (path.clone(), addr.clone(), maddr.clone());
            move || {
                run(&[
                    "serve",
                    &path,
                    "--addr",
                    &addr,
                    "--workers",
                    "2",
                    "--queue-cap",
                    "64",
                    "--metrics-addr",
                    &maddr,
                ])
            }
        });
        // Wait until the listener is up before generating load.
        for _ in 0..200 {
            if std::net::TcpStream::connect(&addr).is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // The metrics plane is up alongside the serve listener: one
        // Prometheus scrape and one rendered `top` frame.
        {
            use std::io::{Read as _, Write as _};
            let mut s = std::net::TcpStream::connect(&maddr).unwrap();
            write!(s, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut prom = String::new();
            s.read_to_string(&mut prom).unwrap();
            assert!(prom.contains("xbfs_serve_queue_depth"), "{prom}");
        }
        let top_out = run(&["top", &addr, "--frames", "1", "--interval-ms", "10"]).unwrap();
        assert!(top_out.contains("top: rendered 1 frame(s)"), "{top_out}");
        let out = run(&[
            "loadgen",
            "--addr",
            &addr,
            "--requests",
            "24",
            "--rps",
            "400",
            "--connections",
            "3",
            "--sources",
            "8",
            "--max-shed-pct",
            "0",
            "--shutdown",
            "--json",
            &json,
        ])
        .unwrap();
        assert!(out.contains("lost 0"), "{out}");
        assert!(out.contains("digests consistent per source: true"), "{out}");
        let doc = JsonValue::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("format").and_then(|f| f.as_str()),
            Some("xbfs-loadgen-v1")
        );
        assert_eq!(doc.get("ok").and_then(JsonValue::as_f64), Some(24.0));
        // --shutdown drained the server; its report must be clean.
        let srv_out = srv.join().unwrap().unwrap();
        assert!(srv_out.contains("drain: clean"), "{srv_out}");
    }
}
