//! `xbfs` — command-line front end for the XBFS reproduction.

mod args;
mod commands;

fn main() {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(commands::exit_code::USAGE);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
