//! Tiny dependency-free argument parsing for the `xbfs` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional args, and
/// `--key value` / `--flag` options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    pub command: String,
    pub positional: Vec<String>,
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut out = Args {
            command,
            ..Default::default()
        };
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                // `--key=value`, `--key value`, or bare `--flag`.
                if let Some((k, v)) = key.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    out.options.insert(key.to_string(), it.next().unwrap());
                } else {
                    out.options.insert(key.to_string(), String::new());
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// A typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_mixed_forms() {
        let a = parse(&[
            "bfs",
            "input.bin",
            "--source",
            "5",
            "--scale=18",
            "--validate",
        ]);
        assert_eq!(a.command, "bfs");
        assert_eq!(a.positional, vec!["input.bin"]);
        assert_eq!(a.get::<u32>("source", 0).unwrap(), 5);
        assert_eq!(a.get::<u32>("scale", 0).unwrap(), 18);
        assert!(a.flag("validate"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["generate"]);
        assert_eq!(a.get::<u32>("scale", 14).unwrap(), 14);
        assert!(a.require("out").is_err());
        assert!(parse(&["x", "--scale", "abc"])
            .get::<u32>("scale", 1)
            .is_err());
    }

    #[test]
    fn empty_argv() {
        let a = Args::parse(std::iter::empty()).unwrap();
        assert_eq!(a.command, "");
    }
}
