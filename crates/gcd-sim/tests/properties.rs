//! Property-based tests for the GCD substrate: cache-model accounting,
//! wave-op semantics, and functional/timing equivalence.

use gcd_sim::coalescer::Coalescer;
use gcd_sim::l2::L2Model;
use gcd_sim::{ArchProfile, Device, ExecMode, LaunchCfg};
use proptest::prelude::*;

proptest! {
    #[test]
    fn coalescer_accounting_balances(addrs in proptest::collection::vec(0u64..1 << 20, 1..300)) {
        let mut co = Coalescer::new(128, 64);
        let mut missed = Vec::new();
        let mut total_lines = 0u64;
        for &a in &addrs {
            let before = missed.len();
            co.access(a, 4, &mut missed);
            total_lines += 1 + u64::from((a % 64) > 60); // 4-byte access straddles iff offset > 60
            let _ = before;
        }
        prop_assert_eq!(co.hits + co.misses, total_lines);
        prop_assert_eq!(co.misses as usize, missed.len());
    }

    #[test]
    fn l2_hits_plus_misses_equals_accesses(lines in proptest::collection::vec(0u64..4096, 1..500)) {
        let mut l2 = L2Model::new(64 << 10, 8, 64);
        for &l in &lines {
            l2.access_line(l);
        }
        prop_assert_eq!(l2.hits + l2.misses, lines.len() as u64);
        let hp = l2.hit_pct();
        prop_assert!((0.0..=100.0).contains(&hp));
        // Distinct lines lower-bound misses (cold misses are compulsory).
        let mut uniq = lines.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert!(l2.misses >= uniq.len() as u64);
    }

    #[test]
    fn l2_within_capacity_never_evicts(count in 1usize..512) {
        // 64 KiB / 64 B = 1024 lines capacity; touching <= 512 distinct
        // lines twice must hit on the second pass.
        let mut l2 = L2Model::new(64 << 10, 16, 64);
        for l in 0..count as u64 {
            l2.access_line(l);
        }
        l2.reset_counters();
        for l in 0..count as u64 {
            prop_assert!(l2.access_line(l), "line {} evicted", l);
        }
    }

    #[test]
    fn fill_matches_in_both_modes(len in 1usize..5000, val in any::<u32>()) {
        for mode in [ExecMode::Functional, ExecMode::Timing] {
            let dev = Device::new(ArchProfile::mi250x_gcd(), mode, 1);
            let buf = dev.alloc_u32(len);
            let r = dev.fill_u32(0, &buf, val);
            prop_assert!(buf.to_host().iter().all(|&v| v == val));
            prop_assert_eq!(r.stats.bytes_written, 4 * len as u64);
            prop_assert!(r.runtime_ms > 0.0);
            prop_assert!((0.0..=100.0).contains(&r.mem_busy_pct));
            prop_assert!((0.0..=100.0).contains(&r.l2_hit_pct));
        }
    }

    #[test]
    fn gather_fetch_bounded_by_unique_lines(idxs in proptest::collection::vec(0usize..4096, 1..256)) {
        // A single-wave gather cannot fetch more lines than it touches and
        // no fewer than the distinct lines it needs on a cold device.
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
        let buf = dev.alloc_u32(4096);
        let idxs2 = idxs.clone();
        let buf_ref = &buf;
        let r = dev.launch(0, LaunchCfg::new("gather", 64), move |w| {
            if w.wave_id() == 0 {
                let mut out = Vec::new();
                // Chunk to wave width like real code.
                for chunk in idxs2.chunks(64) {
                    w.vload32(buf_ref, chunk, &mut out);
                }
            }
        });
        let mut lines: Vec<u64> = idxs.iter().map(|&i| buf.addr(i) >> 6).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(r.stats.hbm_lines >= lines.len() as u64);
        prop_assert!(r.stats.hbm_lines <= idxs.len() as u64 + 1);
    }

    #[test]
    fn wave_prefix_sum_is_exclusive_scan(vals in proptest::collection::vec(0u32..1000, 0..64)) {
        let dev = Device::mi250x();
        let buf = dev.alloc_u32(1);
        let vals2 = vals.clone();
        let expect_total: u32 = vals.iter().sum();
        let buf_ref = &buf;
        dev.launch(0, LaunchCfg::new("scan", 64), move |w| {
            if w.wave_id() != 0 {
                return;
            }
            let mut out = Vec::new();
            let total = w.wave_prefix_sum(&vals2, &mut out);
            let mut acc = 0u32;
            for (i, &v) in vals2.iter().enumerate() {
                assert_eq!(out[i], acc);
                acc += v;
            }
            assert_eq!(total, acc);
            w.sstore32(buf_ref, 0, total);
        });
        prop_assert_eq!(buf.load(0), expect_total);
    }

    #[test]
    fn concurrent_wave_adds_are_exact(items in 1usize..10_000) {
        // Functional mode runs waves in parallel; the aggregated counter
        // must still be exact.
        let dev = Device::mi250x();
        let ctr = dev.alloc_u32(1);
        dev.launch(0, LaunchCfg::new("count", items), |w| {
            let n = w.lanes().count() as u32;
            if n > 0 {
                w.wave_add32(&ctr, 0, n);
            }
        });
        prop_assert_eq!(ctr.load(0) as usize, items);
    }
}

#[test]
fn cas_races_have_exactly_one_winner() {
    // All waves CAS the same slot; exactly one must win per round.
    let dev = Device::mi250x();
    let slot = dev.alloc_u32(1);
    let wins = dev.alloc_u32(1);
    slot.host_fill(u32::MAX);
    dev.launch(0, LaunchCfg::new("cas_storm", 64 * 64), |w| {
        let mut results = Vec::new();
        w.vcas32(&slot, &[(0, u32::MAX, w.wave_id() as u32)], &mut results);
        if results[0].is_ok() {
            w.wave_add32(&wins, 0, 1);
        }
    });
    assert_eq!(wins.load(0), 1, "exactly one CAS winner expected");
    assert!(slot.load(0) < 64);
}
