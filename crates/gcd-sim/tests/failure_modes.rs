//! Failure-mode tests: the substrate must fail loudly, not corrupt state.

use gcd_sim::{ArchProfile, Device, ExecMode, LaunchCfg};

#[test]
#[should_panic]
fn device_oob_read_panics() {
    let dev = Device::mi250x();
    let buf = dev.alloc_u32(4);
    buf.load(4);
}

#[test]
#[should_panic]
fn device_oob_write_panics() {
    let dev = Device::mi250x();
    let buf = dev.alloc_u32(4);
    buf.store(9, 1);
}

#[test]
#[should_panic]
fn kernel_oob_access_panics_in_both_modes() {
    let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
    let buf = dev.alloc_u32(8);
    dev.launch(0, LaunchCfg::new("bad", 64), |w| {
        let mut out = Vec::new();
        w.vload32(&buf, &[100], &mut out);
    });
}

#[test]
fn distinct_buffers_never_alias() {
    // The bump allocator must give line-aligned, disjoint address ranges so
    // the cache models can't conflate buffers.
    let dev = Device::mi250x();
    let a = dev.alloc_u32(3); // 12 bytes, rounds to one line
    let b = dev.alloc_u32(3);
    let line = dev.arch().line_bytes as u64;
    assert_eq!(a.addr(0) % line, 0);
    assert_eq!(b.addr(0) % line, 0);
    assert!(b.addr(0) >= a.addr(2) + 4, "allocations overlap");
}

#[test]
fn zero_length_buffer_is_usable() {
    let dev = Device::mi250x();
    let buf = dev.alloc_u32(0);
    assert!(buf.is_empty());
    assert!(buf.to_host().is_empty());
    // Filling a zero-length buffer is a no-op launch.
    let r = dev.fill_u32(0, &buf, 1);
    assert_eq!(r.stats.bytes_written, 0);
}

#[test]
fn timeline_reset_clears_everything() {
    let dev = Device::mi250x();
    let buf = dev.alloc_u32(1 << 12);
    dev.fill_u32(0, &buf, 1);
    dev.sync();
    assert!(dev.elapsed_us() > 0.0);
    dev.reset_timeline();
    assert_eq!(dev.elapsed_us(), 0.0);
    // Reports survive reset (they belong to the profiler, not the clock).
    assert!(!dev.take_reports().is_empty());
}

#[test]
#[should_panic]
fn invalid_stream_panics() {
    let dev = Device::mi250x(); // 1 stream
    let buf = dev.alloc_u32(16);
    dev.fill_u32(2, &buf, 0);
}
