//! Integration tests of the workgroup (block) execution model: a canonical
//! LDS block scan, barrier-phased communication between waves, and the
//! LDS occupancy limiter.

use gcd_sim::{ArchProfile, Device, ExecMode, GroupCfg};

/// Block-level exclusive prefix sum: each group scans a 256-element tile
/// using per-wave scans + an LDS carry exchange — the standard two-phase
/// block-scan idiom.
#[test]
fn block_scan_via_lds_carries() {
    let dev = Device::mi250x();
    let n = 4096usize;
    let input = dev.upload_u32(&(0..n as u32).map(|i| i % 7).collect::<Vec<_>>());
    let output = dev.alloc_u32(n);
    let width = dev.arch().wavefront_size;
    let wpg = 4usize;
    let tile = width * wpg;
    let groups = n / tile;

    dev.launch_groups(
        0,
        GroupCfg::new("block_scan", groups).with_waves(wpg),
        |g| {
            let base = g.group_id() * tile;
            // Phase 1: each wave scans its slice, stores its total in LDS.
            for wv in 0..wpg {
                let mut total = 0u32;
                g.wave(wv, |w| {
                    let idxs: Vec<usize> = (0..width).map(|l| base + wv * width + l).collect();
                    let mut vals = Vec::with_capacity(width);
                    w.vload32(&input, &idxs, &mut vals);
                    let mut pref = Vec::with_capacity(width);
                    total = w.wave_prefix_sum(&vals, &mut pref);
                    let writes: Vec<(usize, u32)> =
                        idxs.iter().zip(&pref).map(|(&i, &p)| (i, p)).collect();
                    w.vstore32(&output, &writes);
                });
                g.lds_scatter(&[(wv, total)]);
            }
            g.barrier();
            // Phase 2: add the exclusive carry of preceding waves.
            let mut totals = Vec::new();
            g.lds_gather(&(0..wpg).collect::<Vec<_>>(), &mut totals);
            for wv in 1..wpg {
                let carry: u32 = totals[..wv].iter().sum();
                g.wave(wv, |w| {
                    let idxs: Vec<usize> = (0..width).map(|l| base + wv * width + l).collect();
                    let mut vals = Vec::with_capacity(width);
                    w.vload32(&output, &idxs, &mut vals);
                    w.alu(1);
                    let writes: Vec<(usize, u32)> = idxs
                        .iter()
                        .zip(&vals)
                        .map(|(&i, &v)| (i, v + carry))
                        .collect();
                    w.vstore32(&output, &writes);
                });
            }
        },
    );

    // Verify against a host scan per tile.
    let inp = input.to_host();
    let got = output.to_host();
    for g0 in 0..groups {
        let mut acc = 0u32;
        for i in g0 * tile..(g0 + 1) * tile {
            assert_eq!(got[i], acc, "index {i}");
            acc += inp[i];
        }
    }
}

#[test]
fn block_scan_matches_in_timing_mode() {
    let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
    let input = dev.upload_u32(&[5u32; 512]);
    let output = dev.alloc_u32(512);
    let width = dev.arch().wavefront_size;
    let r = dev.launch_groups(0, GroupCfg::new("ts", 2).with_waves(4), |g| {
        let tile = g.group_size();
        let base = g.group_id() * tile;
        for wv in 0..g.waves_per_group() {
            g.wave(wv, |w| {
                let idxs: Vec<usize> = (0..width).map(|l| base + wv * width + l).collect();
                let mut vals = Vec::new();
                w.vload32(&input, &idxs, &mut vals);
                let writes: Vec<(usize, u32)> =
                    idxs.iter().zip(&vals).map(|(&i, &v)| (i, v * 2)).collect();
                w.vstore32(&output, &writes);
            });
        }
    });
    assert!(output.to_host().iter().all(|&v| v == 10));
    assert!(r.runtime_ms > 0.0);
    assert!((0.0..=100.0).contains(&r.l2_hit_pct));
}

#[test]
fn lds_usage_caps_occupancy() {
    let dev = Device::mi250x();
    let buf = dev.alloc_u32(1 << 14);
    let run = |lds: usize| {
        dev.launch_groups(
            0,
            GroupCfg::new("occ", 64).with_waves(4).with_lds(lds),
            |g| {
                for wv in 0..g.waves_per_group() {
                    g.wave(wv, |w| {
                        let idxs: Vec<usize> = w.lanes().take(64).collect();
                        let mut out = Vec::new();
                        w.vload32(&buf, &idxs, &mut out);
                    });
                }
            },
        )
    };
    let light = run(1 << 10); // 1 KiB: 64 groups/CU fit
    let heavy = run(64 << 10); // 64 KiB: one group per CU
    assert!(
        heavy.occupancy < light.occupancy,
        "LDS-hungry kernel should lose occupancy: {} vs {}",
        heavy.occupancy,
        light.occupancy
    );
}

#[test]
fn group_reports_land_in_the_profiler() {
    let dev = Device::mi250x();
    dev.set_phase("grp");
    dev.launch_groups(0, GroupCfg::new("noop_groups", 4), |_g| {});
    let reports = dev.take_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].name, "noop_groups");
    assert_eq!(reports[0].phase, "grp");
}
