//! The simulated device: buffer allocation, kernel launches, streams,
//! synchronization, and the cost model that converts traced work into
//! microseconds.

use crate::arch::{ArchProfile, Compiler};
use crate::buffer::{BufU32, BufU64};
use crate::coalescer::Coalescer;
use crate::group::{GroupCfg, GroupCtx};
use crate::kernel::{KernelReport, LaunchCfg, WaveStats};
use crate::l2::L2Model;
use crate::pool::{fnv1a, splitmix64, PoolError, POOL_CANARY};
use crate::wave::{MemSink, WaveCtx};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Execution fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Wavefronts run in parallel on host cores; memory effects are
    /// approximated by the per-wave coalescer only (no shared L2 model).
    /// Fast — used for end-to-end GTEPS experiments.
    Functional,
    /// Wavefronts replay through a shared L2 model, producing exact
    /// rocprofiler-style counters. Slow — used for Tables I, III–VI. See
    /// [`TimingReplay`] for how the replay is scheduled.
    Timing,
}

/// How timing-mode launches drive the shared L2 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingReplay {
    /// One wave at a time through the L2 — the original reference path.
    Sequential,
    /// Two-phase: waves execute through `into_par_iter`, capturing their
    /// coalescer misses in order; the captured lines are then replayed
    /// through the L2 in wave order. Bit-identical to [`Self::Sequential`]
    /// (DESIGN.md §8) while keeping every dispatch parallel-shaped.
    #[default]
    Parallel,
}

/// Per-wave coalescer capacity in lines (≈ the 16 KiB L0/L1 vector cache of
/// a CU at 64 B lines, shared pessimistically by 2 resident waves).
const COALESCER_LINES: usize = 128;

/// Number of L2 channels that can retire atomics concurrently.
const ATOMIC_UNITS: f64 = 32.0;

/// Resident waves per SIMD needed to fully hide memory latency.
const LATENCY_HIDING_WAVES: f64 = 4.0;

/// LDS capacity per CU, bytes (CDNA: 64 KiB).
const LDS_PER_CU: usize = 64 << 10;

/// A buffer parked in a free list, with the integrity metadata written at
/// release time and re-checked whenever the entry is handed back out.
struct Parked<B> {
    buf: B,
    /// Byte footprint counted against the pool cap.
    bytes: u64,
    /// FNV-1a digest of the contents at release time.
    checksum: u64,
    /// `POOL_CANARY ^ addr ^ len` — distinguishes clobbered free-list
    /// metadata from clobbered buffer contents.
    canary: u64,
    /// Monotonic release stamp; smallest stamp = least recently released,
    /// the eviction order under a pool byte cap.
    stamp: u64,
}

/// The buffer surface the pool needs, implemented for both typed buffers
/// so park/acquire/trim logic is written once.
trait ParkedBuf {
    fn elem_count(&self) -> usize;
    fn byte_len(&self) -> u64;
    fn base_addr(&self) -> u64;
    /// FNV-1a digest of the current contents.
    fn content_digest(&self) -> u64;
}

impl ParkedBuf for BufU32 {
    fn elem_count(&self) -> usize {
        self.len()
    }
    fn byte_len(&self) -> u64 {
        self.len() as u64 * u64::from(self.elem_bytes())
    }
    fn base_addr(&self) -> u64 {
        BufU32::base_addr(self)
    }
    fn content_digest(&self) -> u64 {
        fnv1a((0..self.len()).map(|i| u64::from(self.load(i))))
    }
}

impl ParkedBuf for BufU64 {
    fn elem_count(&self) -> usize {
        self.len()
    }
    fn byte_len(&self) -> u64 {
        self.len() as u64 * u64::from(self.elem_bytes())
    }
    fn base_addr(&self) -> u64 {
        BufU64::base_addr(self)
    }
    fn content_digest(&self) -> u64 {
        fnv1a((0..self.len()).map(|i| self.load(i)))
    }
}

impl<B: ParkedBuf> Parked<B> {
    fn new(buf: B, stamp: u64) -> Self {
        let bytes = buf.byte_len();
        let checksum = buf.content_digest();
        let canary = POOL_CANARY ^ buf.base_addr() ^ buf.elem_count() as u64;
        Self {
            buf,
            bytes,
            checksum,
            canary,
            stamp,
        }
    }

    /// Re-verify canary then contents against the release-time records.
    fn check(&self) -> Result<(), PoolError> {
        let addr = self.buf.base_addr();
        let len = self.buf.elem_count();
        if self.canary != POOL_CANARY ^ addr ^ len as u64 {
            return Err(PoolError::CanaryClobbered { addr, len });
        }
        let actual = self.buf.content_digest();
        if actual != self.checksum {
            return Err(PoolError::ChecksumMismatch {
                addr,
                len,
                expected: self.checksum,
                actual,
            });
        }
        Ok(())
    }

    /// Unpark, verifying first when `verify` is set.
    fn into_verified(self, verify: bool) -> Result<B, PoolError> {
        if verify {
            self.check()?;
        }
        Ok(self.buf)
    }
}

/// Scan a typed pool for corrupted entries; the first one found is removed
/// (its bytes uncounted), pushed onto the fault ledger, and returned.
fn verify_parked<B: ParkedBuf>(
    map: &mut HashMap<usize, Vec<Parked<B>>>,
    pool_bytes: &AtomicU64,
    ledger: &Mutex<Vec<PoolError>>,
) -> Result<(), PoolError> {
    for entries in map.values_mut() {
        for i in 0..entries.len() {
            if let Err(e) = entries[i].check() {
                let victim = entries.swap_remove(i);
                pool_bytes.fetch_sub(victim.bytes, Ordering::Relaxed);
                ledger.lock().push(e.clone());
                return Err(e);
            }
        }
    }
    Ok(())
}

/// `(stamp, size_class)` of the least recently released entry, if any.
fn oldest_stamp<B>(map: &HashMap<usize, Vec<Parked<B>>>) -> Option<(u64, usize)> {
    map.iter()
        .flat_map(|(&k, v)| v.iter().map(move |p| (p.stamp, k)))
        .min()
}

/// Remove the oldest entry of size class `k`; returns its byte footprint.
fn evict_oldest<B>(map: &mut HashMap<usize, Vec<Parked<B>>>, k: usize) -> u64 {
    let entries = map.get_mut(&k).expect("trim picked a present size class");
    let idx = entries
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| p.stamp)
        .map(|(i, _)| i)
        .expect("trim picked a non-empty size class");
    entries.remove(idx).bytes
}

/// One sample of the device pool's live statistics, taken by
/// [`Device::pool_gauges`] for the serving metrics plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolGauges {
    /// Acquisitions served from a parked buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh.
    pub misses: u64,
    /// Bytes currently parked across both free pools.
    pub parked_bytes: u64,
    /// Releases trimmed or bypassed under the byte cap.
    pub pressure_events: u64,
    /// The configured byte cap, if any.
    pub limit_bytes: Option<u64>,
}

/// A simulated GPU (one MI250X GCD by default).
pub struct Device {
    arch: ArchProfile,
    mode: ExecMode,
    replay: TimingReplay,
    compiler: Compiler,
    l2: Mutex<L2Model>,
    next_addr: AtomicU64,
    /// Per-stream elapsed time cursors, microseconds.
    streams: Mutex<Vec<f64>>,
    /// Streams that received work since the last sync.
    dirty: Mutex<Vec<bool>>,
    reports: Mutex<Vec<KernelReport>>,
    phase: Mutex<String>,
    profiling: bool,
    /// Free lists of released buffers, keyed by exact element count.
    /// Pool-acquired buffers keep their previous contents *and address*, so
    /// repeat runs see an identical memory layout.
    pool_u32: Mutex<HashMap<usize, Vec<Parked<BufU32>>>>,
    pool_u64: Mutex<HashMap<usize, Vec<Parked<BufU64>>>>,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    /// Bytes currently parked across both free pools.
    pool_bytes: AtomicU64,
    /// Byte cap on parked buffers (`u64::MAX` = uncapped).
    pool_limit: AtomicU64,
    /// Monotonic stamp source for LRU eviction order.
    pool_stamp: AtomicU64,
    /// Releases that trimmed or bypassed the pool because of the byte cap.
    pool_pressure: AtomicU64,
    /// Whether acquires re-verify checksums/canaries (on by default).
    pool_verify: AtomicBool,
    /// Ledger of detected pool faults, drained by [`Device::take_pool_faults`].
    pool_faults: Mutex<Vec<PoolError>>,
}

impl Device {
    /// Create a device with `num_streams` streams.
    pub fn new(arch: ArchProfile, mode: ExecMode, num_streams: usize) -> Self {
        assert!(num_streams >= 1);
        let l2 = L2Model::new(arch.l2_bytes, arch.l2_ways, arch.line_bytes);
        Self {
            arch,
            mode,
            replay: TimingReplay::default(),
            compiler: Compiler::ClangO3,
            l2: Mutex::new(l2),
            next_addr: AtomicU64::new(0),
            streams: Mutex::new(vec![0.0; num_streams]),
            dirty: Mutex::new(vec![false; num_streams]),
            reports: Mutex::new(Vec::new()),
            phase: Mutex::new(String::new()),
            profiling: true,
            pool_u32: Mutex::new(HashMap::new()),
            pool_u64: Mutex::new(HashMap::new()),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            pool_bytes: AtomicU64::new(0),
            pool_limit: AtomicU64::new(u64::MAX),
            pool_stamp: AtomicU64::new(0),
            pool_pressure: AtomicU64::new(0),
            pool_verify: AtomicBool::new(true),
            pool_faults: Mutex::new(Vec::new()),
        }
    }

    /// Default configuration: one MI250X GCD, functional mode, 1 stream.
    pub fn mi250x() -> Self {
        Self::new(ArchProfile::mi250x_gcd(), ExecMode::Functional, 1)
    }

    /// The architecture profile in use.
    pub fn arch(&self) -> &ArchProfile {
        &self.arch
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Select how timing-mode launches replay through the L2 (the default,
    /// [`TimingReplay::Parallel`], is bit-identical to the sequential path).
    pub fn set_timing_replay(&mut self, replay: TimingReplay) {
        self.replay = replay;
    }

    /// Current timing-replay schedule.
    pub fn timing_replay(&self) -> TimingReplay {
        self.replay
    }

    /// Select the compiler model (paper §IV-A).
    pub fn set_compiler(&mut self, c: Compiler) {
        self.compiler = c;
    }

    /// Currently selected compiler model.
    pub fn compiler(&self) -> Compiler {
        self.compiler
    }

    /// Enable/disable recording of per-kernel reports.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Tag subsequent kernel reports with a phase label (e.g. `"level 3"`).
    pub fn set_phase(&self, phase: impl Into<String>) {
        *self.phase.lock() = phase.into();
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.lock().len()
    }

    // ---- allocation ----

    fn bump(&self, bytes: u64) -> u64 {
        let line = self.arch.line_bytes as u64;
        let rounded = bytes.div_ceil(line) * line;
        self.next_addr.fetch_add(rounded, Ordering::Relaxed)
    }

    /// Allocate a zeroed `u32` buffer.
    pub fn alloc_u32(&self, len: usize) -> BufU32 {
        BufU32::new(self.bump(4 * len.max(1) as u64), len)
    }

    /// Allocate a zeroed `u64` buffer.
    pub fn alloc_u64(&self, len: usize) -> BufU64 {
        BufU64::new(self.bump(8 * len.max(1) as u64), len)
    }

    /// Upload a host slice into a new device buffer (untimed; graph upload
    /// happens outside the measured BFS like the paper's setup phase).
    pub fn upload_u32(&self, src: &[u32]) -> BufU32 {
        BufU32::from_slice(self.bump(4 * src.len().max(1) as u64), src)
    }

    /// Upload a host slice of `u64` (untimed).
    pub fn upload_u64(&self, src: &[u64]) -> BufU64 {
        BufU64::from_slice(self.bump(8 * src.len().max(1) as u64), src)
    }

    // ---- buffer pool ----
    //
    // Back-to-back BFS runs reuse identical buffer shapes; the pool turns
    // per-run O(|V|) allocation into a free-list pop. Released buffers keep
    // their contents — consumers either rewrite them fully or version their
    // entries by epoch (see `BfsState::reset_in_place` in xbfs-core).
    //
    // Since PR 4 every parked entry carries a release-time FNV-1a content
    // checksum and a canary; acquires re-verify both and quarantine (drop)
    // corrupted entries, falling back to a fresh allocation. A byte cap
    // (`set_pool_limit`) bounds parked memory with least-recently-released
    // eviction, and releases are guarded against double-release and foreign
    // buffers. Detected faults land in a ledger (`take_pool_faults`) so the
    // integrity layer above can surface them as typed errors.

    /// Acquire a `u32` buffer of exactly `len` elements: reuse a released
    /// one if available, else allocate fresh (zeroed). A parked entry that
    /// fails verification is quarantined and replaced by a fresh
    /// allocation (recorded as a miss plus a ledger fault).
    pub fn pool_acquire_u32(&self, len: usize) -> BufU32 {
        let popped = self.pool_u32.lock().get_mut(&len).and_then(Vec::pop);
        self.admit_acquired(popped, len, Self::alloc_u32)
    }

    /// Acquire a `u64` buffer of exactly `len` elements from the pool (see
    /// [`Device::pool_acquire_u32`] for the verification semantics).
    pub fn pool_acquire_u64(&self, len: usize) -> BufU64 {
        let popped = self.pool_u64.lock().get_mut(&len).and_then(Vec::pop);
        self.admit_acquired(popped, len, Self::alloc_u64)
    }

    /// Return a `u32` buffer to the free pool (contents retained).
    /// Release faults are debug assertions here; use
    /// [`Device::try_pool_release_u32`] to handle them as typed errors.
    pub fn pool_release_u32(&self, buf: BufU32) {
        if let Err(e) = self.try_pool_release_u32(buf) {
            debug_assert!(false, "pool_release_u32: {e}");
        }
    }

    /// Return a `u64` buffer to the free pool (contents retained). See
    /// [`Device::pool_release_u32`].
    pub fn pool_release_u64(&self, buf: BufU64) {
        if let Err(e) = self.try_pool_release_u64(buf) {
            debug_assert!(false, "pool_release_u64: {e}");
        }
    }

    /// `(hits, misses)` of pool acquisitions since device creation.
    pub fn pool_stats(&self) -> (u64, u64) {
        (
            self.pool_hits.load(Ordering::Relaxed),
            self.pool_misses.load(Ordering::Relaxed),
        )
    }

    /// Bytes currently parked across both free pools.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes.load(Ordering::Relaxed)
    }

    /// Cap parked pool memory at `bytes` (`None` = uncapped). Lowering the
    /// cap trims least-recently-released entries immediately; releases
    /// that would exceed it evict old entries or bypass the pool entirely,
    /// each counted as a pressure event.
    pub fn set_pool_limit(&self, bytes: Option<u64>) {
        self.pool_limit
            .store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
        self.trim_pool();
    }

    /// Releases that trimmed or bypassed the pool under the byte cap.
    pub fn pool_pressure_events(&self) -> u64 {
        self.pool_pressure.load(Ordering::Relaxed)
    }

    /// All live pool statistics in one call, for the serving metrics
    /// plane: each field is a single relaxed load of its own atomic, so
    /// sampling never blocks kernel execution (the fields are mutually
    /// racy but individually exact — the right trade for gauges).
    pub fn pool_gauges(&self) -> PoolGauges {
        let limit = self.pool_limit.load(Ordering::Relaxed);
        PoolGauges {
            hits: self.pool_hits.load(Ordering::Relaxed),
            misses: self.pool_misses.load(Ordering::Relaxed),
            parked_bytes: self.pool_bytes.load(Ordering::Relaxed),
            pressure_events: self.pool_pressure.load(Ordering::Relaxed),
            limit_bytes: (limit != u64::MAX).then_some(limit),
        }
    }

    /// Enable/disable acquire-time checksum+canary verification (on by
    /// default; the cost is one linear pass over the reused buffer).
    pub fn set_pool_verify(&self, on: bool) {
        self.pool_verify.store(on, Ordering::Relaxed);
    }

    /// Drain the ledger of pool faults detected so far (quarantined
    /// corrupt entries, rejected double/foreign releases).
    pub fn take_pool_faults(&self) -> Vec<PoolError> {
        std::mem::take(&mut self.pool_faults.lock())
    }

    /// Re-verify every parked entry in place. The first corrupted entry is
    /// removed from the pool (quarantined), recorded in the fault ledger,
    /// and returned as an error. `Ok(())` means every parked buffer still
    /// matches its release-time checksum and canary.
    pub fn verify_pool(&self) -> Result<(), PoolError> {
        verify_parked(
            &mut self.pool_u32.lock(),
            &self.pool_bytes,
            &self.pool_faults,
        )?;
        verify_parked(
            &mut self.pool_u64.lock(),
            &self.pool_bytes,
            &self.pool_faults,
        )
    }

    /// Fault-injection hook: flip one seeded bit in one parked `u32`
    /// buffer's contents (the device-memory SDC model for pooled state).
    /// Returns the victim's `(base_addr, word_index, bit)` or `None` when
    /// nothing is parked. Deterministic for a given seed and pool state.
    pub fn corrupt_parked(&self, seed: u64) -> Option<(u64, usize, u32)> {
        let mut s = seed;
        let pool = self.pool_u32.lock();
        let mut keys: Vec<usize> = pool.keys().copied().filter(|k| *k > 0).collect();
        keys.sort_unstable();
        let total: usize = keys.iter().map(|k| pool[k].len()).sum();
        if total == 0 {
            return None;
        }
        let mut pick = splitmix64(&mut s) as usize % total;
        for k in keys {
            let entries = &pool[&k];
            if pick < entries.len() {
                let p = &entries[pick];
                let word = splitmix64(&mut s) as usize % p.buf.len();
                let bit = (splitmix64(&mut s) % 32) as u32;
                p.buf.store(word, p.buf.load(word) ^ (1 << bit));
                return Some((p.buf.addr(0), word, bit));
            }
            pick -= entries.len();
        }
        unreachable!("pick < total")
    }

    /// Shared acquire tail: verify a popped entry (quarantining it on
    /// failure) or fall back to a fresh allocation.
    fn admit_acquired<B: ParkedBuf>(
        &self,
        popped: Option<Parked<B>>,
        len: usize,
        alloc: impl Fn(&Self, usize) -> B,
    ) -> B {
        if let Some(p) = popped {
            self.pool_bytes.fetch_sub(p.bytes, Ordering::Relaxed);
            match p.into_verified(self.pool_verify.load(Ordering::Relaxed)) {
                Ok(buf) => {
                    self.pool_hits.fetch_add(1, Ordering::Relaxed);
                    return buf;
                }
                Err(e) => self.pool_faults.lock().push(e), // quarantined: drop it
            }
        }
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
        alloc(self, len)
    }

    /// Shared release front: guard against foreign and double releases,
    /// then park the buffer (or bypass the pool under byte-cap pressure).
    fn park<B: ParkedBuf>(
        &self,
        pool: &Mutex<HashMap<usize, Vec<Parked<B>>>>,
        buf: B,
    ) -> Result<(), PoolError> {
        if buf.elem_count() == 0 {
            return Ok(()); // placeholders carry no storage
        }
        let len = buf.elem_count();
        let addr = buf.base_addr();
        let bytes = buf.byte_len();
        if addr + bytes > self.next_addr.load(Ordering::Relaxed) {
            let e = PoolError::ForeignBuffer { addr, len };
            self.pool_faults.lock().push(e.clone());
            return Err(e);
        }
        if bytes > self.pool_limit.load(Ordering::Relaxed) {
            // The cap cannot hold this buffer at all: drop it and let the
            // next acquire fall back to a fresh allocation.
            self.pool_pressure.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        {
            let mut map = pool.lock();
            let entries = map.entry(len).or_default();
            if entries.iter().any(|p| p.buf.base_addr() == addr) {
                let e = PoolError::DoubleRelease { addr, len };
                self.pool_faults.lock().push(e.clone());
                return Err(e);
            }
            entries.push(Parked::new(
                buf,
                self.pool_stamp.fetch_add(1, Ordering::Relaxed),
            ));
            self.pool_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        self.trim_pool();
        Ok(())
    }

    /// Guarded release of a `u32` buffer: rejects double releases and
    /// buffers foreign to this device with a typed [`PoolError`] instead
    /// of corrupting the free list.
    pub fn try_pool_release_u32(&self, buf: BufU32) -> Result<(), PoolError> {
        self.park(&self.pool_u32, buf)
    }

    /// Guarded release of a `u64` buffer (see
    /// [`Device::try_pool_release_u32`]).
    pub fn try_pool_release_u64(&self, buf: BufU64) -> Result<(), PoolError> {
        self.park(&self.pool_u64, buf)
    }

    /// Evict least-recently-released entries (across both typed pools)
    /// until parked bytes fit under the cap. Locks are taken in a fixed
    /// u32-then-u64 order and never held by callers, so trims from
    /// concurrent releases cannot deadlock.
    fn trim_pool(&self) {
        loop {
            let limit = self.pool_limit.load(Ordering::Relaxed);
            if self.pool_bytes.load(Ordering::Relaxed) <= limit {
                return;
            }
            let mut p32 = self.pool_u32.lock();
            let mut p64 = self.pool_u64.lock();
            let min32 = oldest_stamp(&p32);
            let min64 = oldest_stamp(&p64);
            let freed = match (min32, min64) {
                (Some((s32, k)), Some((s64, _))) if s32 <= s64 => evict_oldest(&mut p32, k),
                (Some((_, k)), None) => evict_oldest(&mut p32, k),
                (_, Some((_, k))) => evict_oldest(&mut p64, k),
                (None, None) => return,
            };
            self.pool_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.pool_pressure.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- timeline ----

    /// Modeled cost of a host↔device copy of `bytes`.
    pub fn copy_cost_us(&self, bytes: u64) -> f64 {
        self.arch.h2d_latency_us + bytes as f64 / (self.arch.h2d_bw_gbps * 1e3)
    }

    /// Charge a host↔device transfer on `stream`.
    pub fn charge_transfer(&self, stream: usize, bytes: u64) {
        let cost = self.copy_cost_us(bytes);
        let mut s = self.streams.lock();
        s[stream] += cost;
        self.dirty.lock()[stream] = true;
    }

    /// Charge arbitrary host-side time (data preparation etc.).
    pub fn charge_host_us(&self, us: f64) {
        let mut s = self.streams.lock();
        for t in s.iter_mut() {
            *t += us;
        }
    }

    /// Device synchronization: all stream cursors join at the max, plus a
    /// per-dirty-stream sync cost. This is the §IV-B effect: with three
    /// streams HIP pays the (large, on AMD) sync cost three times per level.
    pub fn sync(&self) -> f64 {
        let mut s = self.streams.lock();
        let mut d = self.dirty.lock();
        let dirty_count = d.iter().filter(|&&x| x).count().max(1);
        let t = s.iter().cloned().fold(0.0f64, f64::max) + self.arch.sync_us * dirty_count as f64;
        for x in s.iter_mut() {
            *x = t;
        }
        d.fill(false);
        t
    }

    /// Current modeled elapsed time (max over streams), microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.streams.lock().iter().cloned().fold(0.0, f64::max)
    }

    /// Advance every stream cursor to at least `us` — used by multi-device
    /// simulations to model barriers/communication completing at a common
    /// global time.
    pub fn advance_to(&self, us: f64) {
        let mut s = self.streams.lock();
        for t in s.iter_mut() {
            *t = t.max(us);
        }
    }

    /// Zero the timeline and cold-start the L2 (start of a measured run).
    pub fn reset_timeline(&self) {
        self.streams.lock().fill(0.0);
        self.dirty.lock().fill(false);
        self.l2.lock().invalidate();
    }

    /// Drain recorded kernel reports.
    pub fn take_reports(&self) -> Vec<KernelReport> {
        std::mem::take(&mut self.reports.lock())
    }

    // ---- kernel launch ----

    /// Launch a kernel on `stream`: `body` is invoked once per wavefront.
    /// Returns the report (also recorded if profiling is enabled).
    pub fn launch<F>(&self, stream: usize, cfg: LaunchCfg, body: F) -> KernelReport
    where
        F: Fn(&mut WaveCtx) + Sync,
    {
        let width = self.arch.wavefront_size;
        let n_waves = cfg.items.div_ceil(width);
        let stats = match (self.mode, self.replay) {
            (ExecMode::Functional, _) => (0..n_waves)
                .into_par_iter()
                .map_init(
                    || Coalescer::new(COALESCER_LINES, self.arch.line_bytes),
                    |co, w| {
                        let mut ctx = WaveCtx::new(w, width, cfg.items, co, MemSink::Functional);
                        body(&mut ctx);
                        ctx.stats
                    },
                )
                .reduce(WaveStats::default, |mut a, b| {
                    a.merge(&b);
                    a
                }),
            (ExecMode::Timing, TimingReplay::Parallel) => {
                // Phase A: waves run in parallel, each against its own cold
                // coalescer, capturing L2-bound lines in execution order.
                let captured: Vec<(WaveStats, Vec<(u64, bool)>)> = (0..n_waves)
                    .into_par_iter()
                    .map_init(
                        || Coalescer::new(COALESCER_LINES, self.arch.line_bytes),
                        |co, w| {
                            let mut misses = Vec::new();
                            let mut ctx = WaveCtx::new(
                                w,
                                width,
                                cfg.items,
                                co,
                                MemSink::Capture(&mut misses),
                            );
                            body(&mut ctx);
                            let stats = ctx.stats;
                            (stats, misses)
                        },
                    )
                    .collect();
                // Phase B: classify the capture through the shared L2 in
                // wave order — bit-identical to the sequential schedule.
                self.classify_captured(captured)
            }
            (ExecMode::Timing, TimingReplay::Sequential) => {
                let mut l2 = self.l2.lock();
                l2.reset_counters();
                let mut co = Coalescer::new(COALESCER_LINES, self.arch.line_bytes);
                let mut total = WaveStats::default();
                for w in 0..n_waves {
                    let mut ctx = WaveCtx::new(w, width, cfg.items, &mut co, MemSink::L2(&mut l2));
                    body(&mut ctx);
                    total.merge(&ctx.stats);
                }
                total
            }
        };
        let report = self.cost_model(&cfg, stats, None);
        {
            let mut s = self.streams.lock();
            s[stream] += report.runtime_ms * 1000.0;
            self.dirty.lock()[stream] = true;
        }
        if self.profiling {
            self.reports.lock().push(report.clone());
        }
        report
    }

    /// Launch a workgroup (block) kernel: `body` runs once per group with
    /// LDS and a barrier (see [`GroupCtx`]).
    pub fn launch_groups<F>(&self, stream: usize, cfg: GroupCfg, body: F) -> KernelReport
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        let width = self.arch.wavefront_size;
        let stats = match (self.mode, self.replay) {
            (ExecMode::Functional, _) => (0..cfg.groups)
                .into_par_iter()
                .map(|gid| {
                    let mut ctx = GroupCtx::new(
                        gid,
                        cfg,
                        width,
                        self.arch.line_bytes,
                        COALESCER_LINES,
                        MemSink::Functional,
                    );
                    body(&mut ctx);
                    ctx.stats
                })
                .reduce(WaveStats::default, |mut a, b| {
                    a.merge(&b);
                    a
                }),
            (ExecMode::Timing, TimingReplay::Parallel) => {
                // Same two-phase schedule as `launch`, one capture per
                // group (a group's waves already execute in a fixed order).
                let captured: Vec<(WaveStats, Vec<(u64, bool)>)> = (0..cfg.groups)
                    .into_par_iter()
                    .map(|gid| {
                        let mut misses = Vec::new();
                        let mut ctx = GroupCtx::new(
                            gid,
                            cfg,
                            width,
                            self.arch.line_bytes,
                            COALESCER_LINES,
                            MemSink::Capture(&mut misses),
                        );
                        body(&mut ctx);
                        let stats = ctx.stats;
                        drop(ctx);
                        (stats, misses)
                    })
                    .collect();
                self.classify_captured(captured)
            }
            (ExecMode::Timing, TimingReplay::Sequential) => {
                let mut l2 = self.l2.lock();
                l2.reset_counters();
                let mut total = WaveStats::default();
                for gid in 0..cfg.groups {
                    let mut ctx = GroupCtx::new(
                        gid,
                        cfg,
                        width,
                        self.arch.line_bytes,
                        COALESCER_LINES,
                        MemSink::L2(&mut l2),
                    );
                    body(&mut ctx);
                    total.merge(&ctx.stats);
                }
                total
            }
        };
        let lcfg = LaunchCfg::new(cfg.name, cfg.groups * cfg.waves_per_group * width)
            .with_registers(cfg.registers_per_thread);
        let report = self.cost_model(&lcfg, stats, Some((cfg.lds_bytes, cfg.waves_per_group)));
        {
            let mut s = self.streams.lock();
            s[stream] += report.runtime_ms * 1000.0;
            self.dirty.lock()[stream] = true;
        }
        if self.profiling {
            self.reports.lock().push(report.clone());
        }
        report
    }

    /// Phase B of the parallel timing replay: push every captured line
    /// through the shared L2 in wave/group order, settle each unit's
    /// deferred `l2_hits`/`hbm_lines`, and merge the totals.
    ///
    /// Determinism: the flattened line sequence is exactly what the
    /// sequential schedule would have issued (capture preserves intra-wave
    /// order, waves are concatenated in index order), and
    /// [`L2Model::replay`] is bit-identical to per-line `access_line` calls.
    /// All other `WaveStats` fields are plain sums, so the merged report
    /// cannot depend on the Phase-A execution schedule.
    fn classify_captured(&self, captured: Vec<(WaveStats, Vec<(u64, bool)>)>) -> WaveStats {
        let mut l2 = self.l2.lock();
        l2.reset_counters();
        let flat: Vec<u64> = captured
            .iter()
            .flat_map(|(_, misses)| misses.iter().map(|&(line, _)| line))
            .collect();
        let hit = l2.replay(&flat);
        let mut total = WaveStats::default();
        let mut i = 0;
        for (mut stats, misses) in captured {
            for &(_, is_read) in &misses {
                if hit[i] {
                    stats.l2_hits += 1;
                } else if is_read {
                    stats.hbm_lines += 1;
                }
                i += 1;
            }
            total.merge(&stats);
        }
        total
    }

    /// Convert raw counters into a rocprof-style report. `lds` carries
    /// `(lds_bytes_per_group, waves_per_group)` for workgroup launches,
    /// whose occupancy LDS usage can additionally cap.
    fn cost_model(
        &self,
        cfg: &LaunchCfg,
        stats: WaveStats,
        lds: Option<(usize, usize)>,
    ) -> KernelReport {
        let a = &self.arch;
        let cm = self.compiler.model();

        // Occupancy from register pressure.
        let regs = f64::from(cfg.registers_per_thread) * cm.register_factor;
        let bytes_per_wave = regs * 4.0 * a.wavefront_size as f64;
        let mut waves_by_regs = a.regfile_bytes_per_simd as f64 / bytes_per_wave;
        if let Some((lds_bytes, wpg)) = lds {
            // Groups resident per CU limited by LDS; waves per SIMD follow.
            let groups_per_cu = (LDS_PER_CU as f64 / lds_bytes.max(1) as f64).max(1.0);
            let waves_by_lds = groups_per_cu * wpg as f64 / a.simds_per_cu as f64;
            waves_by_regs = waves_by_regs.min(waves_by_lds);
        }
        let resident = waves_by_regs.clamp(1.0, a.max_waves_per_simd as f64);
        let occupancy = resident / a.max_waves_per_simd as f64;
        let hiding = (resident / LATENCY_HIDING_WAVES).min(1.0);

        let instr = stats.instructions as f64 * cm.instruction_factor;
        let issue_rate = (a.num_cus * a.simds_per_cu) as f64;
        let compute_cycles = instr / issue_rate / hiding.max(0.25);

        let read_bytes = stats.hbm_lines as f64 * a.line_bytes as f64;
        let spill_bytes = instr * cm.spill_bytes_per_instr;
        let mem_bytes = read_bytes + stats.bytes_written as f64 + spill_bytes;
        let mem_cycles = mem_bytes / a.bytes_per_cycle() / hiding.max(0.25);

        let atomic_cycles = (stats.atomics as f64 + 3.0 * stats.atomic_conflicts as f64)
            * a.atomic_cost_cycles
            / ATOMIC_UNITS;

        let cycles = compute_cycles.max(mem_cycles).max(atomic_cycles);
        let runtime_us = a.launch_us + cycles / (a.clock_ghz * 1000.0);

        let l2_hit_pct = match self.mode {
            ExecMode::Timing => {
                let total = stats.l2_hits + (stats.l2_accesses - stats.l2_hits);
                if total == 0 {
                    0.0
                } else {
                    100.0 * stats.l2_hits as f64 / total as f64
                }
            }
            // Functional mode proxies L2 behaviour with the coalescer.
            ExecMode::Functional => {
                if stats.accesses == 0 {
                    0.0
                } else {
                    100.0 * stats.l1_hits as f64 / stats.accesses as f64
                }
            }
        };
        let mem_busy_pct = if cycles > 0.0 {
            (100.0 * mem_cycles / cycles).min(100.0)
        } else {
            0.0
        };

        KernelReport {
            name: cfg.name.to_string(),
            phase: self.phase.lock().clone(),
            runtime_ms: runtime_us / 1000.0,
            l2_hit_pct,
            mem_busy_pct,
            fetch_kb: read_bytes / 1024.0,
            stats,
            occupancy,
        }
    }

    // ---- built-in utility kernels ----

    /// Device-side fill of a `u32` buffer (charged like a real memset
    /// kernel: one coalesced store stream).
    pub fn fill_u32(&self, stream: usize, buf: &BufU32, val: u32) -> KernelReport {
        let cfg = LaunchCfg::new("fill_u32", buf.len()).with_registers(8);
        self.launch(stream, cfg, |w| {
            let writes: Vec<(usize, u32)> = w.lanes().map(|gid| (gid, val)).collect();
            w.vstore32(buf, &writes);
        })
    }

    /// Device-side fill of a `u64` buffer (same memset model, 8-byte
    /// stores).
    pub fn fill_u64(&self, stream: usize, buf: &BufU64, val: u64) -> KernelReport {
        let cfg = LaunchCfg::new("fill_u64", buf.len()).with_registers(8);
        self.launch(stream, cfg, |w| {
            let writes: Vec<(usize, u64)> = w.lanes().map(|gid| (gid, val)).collect();
            w.vstore64(buf, &writes);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_readback() {
        let dev = Device::mi250x();
        let buf = dev.alloc_u32(1000);
        dev.fill_u32(0, &buf, 7);
        assert!(buf.to_host().iter().all(|&v| v == 7));
    }

    #[test]
    fn launch_advances_timeline_and_sync_joins() {
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Functional, 2);
        let buf = dev.alloc_u32(1 << 16);
        dev.fill_u32(0, &buf, 1);
        let t_before = dev.elapsed_us();
        assert!(t_before > 0.0);
        let t = dev.sync();
        // Sync adds at least one sync cost.
        assert!(t >= t_before + dev.arch().sync_us);
        assert_eq!(dev.elapsed_us(), t);
    }

    #[test]
    fn multi_stream_sync_costs_more() {
        let arch = ArchProfile::mi250x_gcd();
        let one = Device::new(arch.clone(), ExecMode::Functional, 1);
        let three = Device::new(arch, ExecMode::Functional, 3);
        let b1 = one.alloc_u32(64);
        one.fill_u32(0, &b1, 0);
        let t1 = one.sync();
        let b3 = three.alloc_u32(64);
        // Same work split across three streams.
        for s in 0..3 {
            three.launch(s, LaunchCfg::new("noop", 16), |w| {
                let writes: Vec<(usize, u32)> = w.lanes().map(|g| (g, 0)).collect();
                w.vstore32(&b3, &writes);
            });
        }
        let t3 = three.sync();
        assert!(
            t3 > t1 + 1.5 * three.arch().sync_us,
            "3-stream sync {t3} should exceed 1-stream {t1} by ~2 sync costs"
        );
    }

    #[test]
    fn bigger_kernels_take_longer() {
        let dev = Device::mi250x();
        let small = dev.alloc_u32(1 << 10);
        let large = dev.alloc_u32(1 << 20);
        let r_small = dev.fill_u32(0, &small, 0);
        let r_large = dev.fill_u32(0, &large, 0);
        assert!(r_large.runtime_ms > r_small.runtime_ms);
        assert!(r_large.stats.bytes_written > r_small.stats.bytes_written);
    }

    #[test]
    fn timing_mode_reports_l2_hits() {
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
        let buf = dev.alloc_u32(1 << 16);
        // First pass: cold.
        let r1 = dev.launch(0, LaunchCfg::new("scan1", buf.len()), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        // Second pass: warm L2 (64 KiB elements = 256 KiB < 8 MiB L2).
        let r2 = dev.launch(0, LaunchCfg::new("scan2", buf.len()), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        assert!(
            r1.l2_hit_pct < 5.0,
            "cold pass should miss: {}",
            r1.l2_hit_pct
        );
        assert!(
            r2.l2_hit_pct > 90.0,
            "warm pass should hit: {}",
            r2.l2_hit_pct
        );
        assert!(r1.fetch_kb > 10.0 * r2.fetch_kb.max(0.001));
    }

    #[test]
    fn functional_matches_timing_functionally() {
        // The same kernel must compute identical data in both modes.
        let run = |mode| {
            let dev = Device::new(ArchProfile::mi250x_gcd(), mode, 1);
            let src = dev.upload_u32(&(0..4096u32).collect::<Vec<_>>());
            let dst = dev.alloc_u32(4096);
            dev.launch(0, LaunchCfg::new("double", 4096), |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut vals = Vec::new();
                w.vload32(&src, &idxs, &mut vals);
                let writes: Vec<(usize, u32)> =
                    idxs.iter().zip(&vals).map(|(&i, &v)| (i, v * 2)).collect();
                w.vstore32(&dst, &writes);
            });
            dst.to_host()
        };
        assert_eq!(run(ExecMode::Functional), run(ExecMode::Timing));
    }

    #[test]
    fn reports_are_recorded_with_phase() {
        let dev = Device::mi250x();
        dev.set_phase("level 2");
        let buf = dev.alloc_u32(128);
        dev.fill_u32(0, &buf, 0);
        let reports = dev.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].phase, "level 2");
        assert_eq!(reports[0].name, "fill_u32");
        assert!(dev.take_reports().is_empty());
    }

    #[test]
    fn compiler_o0_is_much_slower() {
        // An instruction-rich kernel (like BFS expansion) shows the §IV-A
        // no-`-O3` cliff; a pure memset would be bandwidth-bound and barely
        // affected.
        let run = |compiler| {
            let mut dev = Device::mi250x();
            dev.set_compiler(compiler);
            let buf = dev.alloc_u32(1 << 18);
            dev.launch(0, LaunchCfg::new("expand", buf.len()), |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
                w.alu(40); // neighbor-inspection loop body
            })
            .runtime_ms
        };
        let fast = run(Compiler::ClangO3);
        let slow = run(Compiler::ClangO0);
        assert!(
            slow > 3.0 * fast,
            "O0 {slow} should be several times O3 {fast}"
        );
    }

    #[test]
    fn register_pressure_lowers_occupancy() {
        let dev = Device::mi250x();
        let buf = dev.alloc_u32(1 << 14);
        let light = dev.launch(
            0,
            LaunchCfg::new("light", 1 << 14).with_registers(16),
            |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
            },
        );
        let heavy = dev.launch(
            0,
            LaunchCfg::new("heavy", 1 << 14).with_registers(128),
            |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
            },
        );
        assert!(heavy.occupancy < light.occupancy);
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let dev = Device::mi250x();
        let r = dev.launch(0, LaunchCfg::new("empty", 0), |_w| {});
        assert!((r.runtime_ms - dev.arch().launch_us / 1000.0).abs() < 1e-9);
        assert_eq!(r.stats.instructions, 0);
    }

    /// The default parallel timing replay must be bit-identical to the
    /// sequential reference schedule: same counters, same modeled times,
    /// same L2 residency carried into the next kernel.
    #[test]
    fn parallel_timing_replay_is_bit_identical_to_sequential() {
        let run = |replay: TimingReplay| {
            let mut dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
            dev.set_timing_replay(replay);
            let buf = dev.alloc_u32(1 << 16);
            let aux = dev.alloc_u32(1 << 10);
            // Kernel 1: strided gather (cold L2) + atomics.
            dev.launch(0, LaunchCfg::new("gather", 1 << 14), |w| {
                let idxs: Vec<usize> = w.lanes().map(|g| (g * 7) % (1 << 16)).collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
                w.wave_add32(&aux, 0, 1);
            });
            // Kernel 2: re-reads a subset — L2 residency from kernel 1
            // must carry over identically.
            dev.launch(0, LaunchCfg::new("rescan", 1 << 13), |w| {
                let idxs: Vec<usize> = w.lanes().map(|g| g * 2).collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
            });
            // Kernel 3: a workgroup launch with LDS staging.
            dev.launch_groups(0, GroupCfg::new("grouped", 64), |g| {
                for wv in 0..g.waves_per_group() {
                    g.wave(wv, |w| {
                        let idxs: Vec<usize> = w.lanes().map(|i| i % (1 << 16)).collect();
                        let mut out = Vec::new();
                        w.vload32(&buf, &idxs, &mut out);
                    });
                }
                g.barrier();
            });
            (dev.take_reports(), dev.elapsed_us())
        };
        let (seq_reports, seq_us) = run(TimingReplay::Sequential);
        let (par_reports, par_us) = run(TimingReplay::Parallel);
        assert_eq!(seq_reports.len(), par_reports.len());
        for (s, p) in seq_reports.iter().zip(&par_reports) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.stats, p.stats, "kernel {} counters diverged", s.name);
            assert_eq!(
                s.runtime_ms.to_bits(),
                p.runtime_ms.to_bits(),
                "kernel {} modeled time diverged",
                s.name
            );
            assert_eq!(s.l2_hit_pct.to_bits(), p.l2_hit_pct.to_bits());
            assert_eq!(s.fetch_kb.to_bits(), p.fetch_kb.to_bits());
        }
        assert_eq!(seq_us.to_bits(), par_us.to_bits());
    }

    #[test]
    fn pool_reuses_buffers_with_identical_addresses() {
        let dev = Device::mi250x();
        let a = dev.pool_acquire_u32(1024);
        let addr = a.addr(0);
        a.host_fill(42);
        dev.pool_release_u32(a);
        // Same length: the released buffer (contents and address intact)
        // comes back.
        let b = dev.pool_acquire_u32(1024);
        assert_eq!(b.addr(0), addr);
        assert!(b.to_host().iter().all(|&v| v == 42), "contents retained");
        // Different length: fresh allocation.
        let c = dev.pool_acquire_u32(512);
        assert_ne!(c.addr(0), addr);
        assert_eq!(dev.pool_stats(), (1, 2));
        let w = dev.pool_acquire_u64(16);
        dev.pool_release_u64(w);
        let w2 = dev.pool_acquire_u64(16);
        assert_eq!(dev.pool_stats(), (2, 3));
        drop((b, c, w2));
    }

    #[test]
    fn pool_rejects_double_release() {
        let dev = Device::mi250x();
        let a = dev.pool_acquire_u32(64);
        let addr = a.addr(0);
        dev.pool_release_u32(a);
        // Forge a second handle at the same address (the only way to
        // double-release without unsafe code, since release moves the
        // buffer). The guarded API must reject it with a typed error.
        let forged = BufU32::new(addr, 64);
        match dev.try_pool_release_u32(forged) {
            Err(PoolError::DoubleRelease { addr: a2, len: 64 }) => assert_eq!(a2, addr),
            other => panic!("expected DoubleRelease, got {other:?}"),
        }
        assert_eq!(dev.take_pool_faults().len(), 1);
    }

    #[test]
    fn pool_rejects_foreign_buffers() {
        let dev = Device::mi250x();
        // An address beyond this device's bump-allocator watermark cannot
        // have come from it.
        let foreign = BufU32::new(1 << 40, 8);
        match dev.try_pool_release_u32(foreign) {
            Err(PoolError::ForeignBuffer { len: 8, .. }) => {}
            other => panic!("expected ForeignBuffer, got {other:?}"),
        }
        // Empty placeholders are a silent no-op, not a fault.
        assert!(dev.try_pool_release_u32(BufU32::placeholder()).is_ok());
        assert_eq!(dev.take_pool_faults().len(), 1);
    }

    #[test]
    fn pool_quarantines_corrupted_entries_on_acquire() {
        let dev = Device::mi250x();
        let a = dev.pool_acquire_u32(256);
        a.host_fill(7);
        dev.pool_release_u32(a);
        let (addr, word, _bit) = dev.corrupt_parked(99).expect("one parked buffer");
        // Acquire detects the flip, quarantines the entry, and hands back
        // a fresh allocation instead of the poisoned one.
        let b = dev.pool_acquire_u32(256);
        assert_ne!(b.addr(0), addr, "poisoned buffer must not be reused");
        assert!(b.to_host().iter().all(|&v| v == 0), "fresh zeroed alloc");
        let faults = dev.take_pool_faults();
        assert_eq!(faults.len(), 1);
        assert!(
            matches!(&faults[0], PoolError::ChecksumMismatch { addr: a2, .. } if *a2 == addr),
            "got {faults:?} (flipped word {word})"
        );
        // Misses: initial alloc + post-quarantine realloc; zero hits.
        assert_eq!(dev.pool_stats(), (0, 2));
    }

    #[test]
    fn verify_pool_detects_parked_corruption() {
        let dev = Device::mi250x();
        let a = dev.pool_acquire_u32(128);
        dev.pool_release_u32(a);
        assert!(dev.verify_pool().is_ok());
        dev.corrupt_parked(5).expect("one parked buffer");
        let err = dev.verify_pool().expect_err("corruption must be found");
        assert!(matches!(err, PoolError::ChecksumMismatch { .. }));
        // The corrupt entry was quarantined; a second scan is clean.
        assert!(dev.verify_pool().is_ok());
        assert_eq!(dev.pool_bytes(), 0);
    }

    #[test]
    fn pool_byte_cap_trims_least_recently_released() {
        let dev = Device::mi250x();
        let a = dev.pool_acquire_u32(100); // 400 B, released first (LRU)
        let a_addr = a.addr(0);
        let b = dev.pool_acquire_u32(50); // 200 B
        let c = dev.pool_acquire_u64(25); // 200 B
        dev.set_pool_limit(Some(500));
        dev.pool_release_u32(a);
        dev.pool_release_u32(b);
        // Releasing b pushed parked bytes to 600 > 500, evicting the
        // least recently released entry (a, 400 B).
        assert_eq!(dev.pool_bytes(), 200);
        dev.pool_release_u64(c);
        assert_eq!(dev.pool_bytes(), 400);
        assert!(dev.pool_pressure_events() >= 1);
        // The LRU victim was `a`: acquiring its size class misses.
        let a2 = dev.pool_acquire_u32(100);
        assert_ne!(a2.addr(0), a_addr, "trimmed buffer is gone");
        // Oversized release under a tiny cap bypasses the pool entirely.
        dev.set_pool_limit(Some(100));
        let before = dev.pool_pressure_events();
        dev.pool_release_u32(a2);
        assert!(dev.pool_pressure_events() > before);
        assert!(dev.pool_bytes() <= 100);
        // Uncapping restores normal parking.
        dev.set_pool_limit(None);
        let d = dev.pool_acquire_u32(10);
        dev.pool_release_u32(d);
        assert_eq!(dev.pool_bytes(), 40);
    }
}
