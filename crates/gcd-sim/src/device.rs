//! The simulated device: buffer allocation, kernel launches, streams,
//! synchronization, and the cost model that converts traced work into
//! microseconds.

use crate::arch::{ArchProfile, Compiler};
use crate::buffer::{BufU32, BufU64};
use crate::coalescer::Coalescer;
use crate::group::{GroupCfg, GroupCtx};
use crate::kernel::{KernelReport, LaunchCfg, WaveStats};
use crate::l2::L2Model;
use crate::wave::WaveCtx;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Execution fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Wavefronts run in parallel on host cores; memory effects are
    /// approximated by the per-wave coalescer only (no shared L2 model).
    /// Fast — used for end-to-end GTEPS experiments.
    Functional,
    /// Wavefronts replay sequentially through a shared L2 model, producing
    /// exact rocprofiler-style counters. Slow — used for Tables I, III–VI.
    Timing,
}

/// Per-wave coalescer capacity in lines (≈ the 16 KiB L0/L1 vector cache of
/// a CU at 64 B lines, shared pessimistically by 2 resident waves).
const COALESCER_LINES: usize = 128;

/// Number of L2 channels that can retire atomics concurrently.
const ATOMIC_UNITS: f64 = 32.0;

/// Resident waves per SIMD needed to fully hide memory latency.
const LATENCY_HIDING_WAVES: f64 = 4.0;

/// LDS capacity per CU, bytes (CDNA: 64 KiB).
const LDS_PER_CU: usize = 64 << 10;

/// A simulated GPU (one MI250X GCD by default).
pub struct Device {
    arch: ArchProfile,
    mode: ExecMode,
    compiler: Compiler,
    l2: Mutex<L2Model>,
    next_addr: AtomicU64,
    /// Per-stream elapsed time cursors, microseconds.
    streams: Mutex<Vec<f64>>,
    /// Streams that received work since the last sync.
    dirty: Mutex<Vec<bool>>,
    reports: Mutex<Vec<KernelReport>>,
    phase: Mutex<String>,
    profiling: bool,
}

impl Device {
    /// Create a device with `num_streams` streams.
    pub fn new(arch: ArchProfile, mode: ExecMode, num_streams: usize) -> Self {
        assert!(num_streams >= 1);
        let l2 = L2Model::new(arch.l2_bytes, arch.l2_ways, arch.line_bytes);
        Self {
            arch,
            mode,
            compiler: Compiler::ClangO3,
            l2: Mutex::new(l2),
            next_addr: AtomicU64::new(0),
            streams: Mutex::new(vec![0.0; num_streams]),
            dirty: Mutex::new(vec![false; num_streams]),
            reports: Mutex::new(Vec::new()),
            phase: Mutex::new(String::new()),
            profiling: true,
        }
    }

    /// Default configuration: one MI250X GCD, functional mode, 1 stream.
    pub fn mi250x() -> Self {
        Self::new(ArchProfile::mi250x_gcd(), ExecMode::Functional, 1)
    }

    /// The architecture profile in use.
    pub fn arch(&self) -> &ArchProfile {
        &self.arch
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Select the compiler model (paper §IV-A).
    pub fn set_compiler(&mut self, c: Compiler) {
        self.compiler = c;
    }

    /// Currently selected compiler model.
    pub fn compiler(&self) -> Compiler {
        self.compiler
    }

    /// Enable/disable recording of per-kernel reports.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Tag subsequent kernel reports with a phase label (e.g. `"level 3"`).
    pub fn set_phase(&self, phase: impl Into<String>) {
        *self.phase.lock() = phase.into();
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.lock().len()
    }

    // ---- allocation ----

    fn bump(&self, bytes: u64) -> u64 {
        let line = self.arch.line_bytes as u64;
        let rounded = bytes.div_ceil(line) * line;
        self.next_addr.fetch_add(rounded, Ordering::Relaxed)
    }

    /// Allocate a zeroed `u32` buffer.
    pub fn alloc_u32(&self, len: usize) -> BufU32 {
        BufU32::new(self.bump(4 * len.max(1) as u64), len)
    }

    /// Allocate a zeroed `u64` buffer.
    pub fn alloc_u64(&self, len: usize) -> BufU64 {
        BufU64::new(self.bump(8 * len.max(1) as u64), len)
    }

    /// Upload a host slice into a new device buffer (untimed; graph upload
    /// happens outside the measured BFS like the paper's setup phase).
    pub fn upload_u32(&self, src: &[u32]) -> BufU32 {
        BufU32::from_slice(self.bump(4 * src.len().max(1) as u64), src)
    }

    /// Upload a host slice of `u64` (untimed).
    pub fn upload_u64(&self, src: &[u64]) -> BufU64 {
        BufU64::from_slice(self.bump(8 * src.len().max(1) as u64), src)
    }

    // ---- timeline ----

    /// Modeled cost of a host↔device copy of `bytes`.
    pub fn copy_cost_us(&self, bytes: u64) -> f64 {
        self.arch.h2d_latency_us + bytes as f64 / (self.arch.h2d_bw_gbps * 1e3)
    }

    /// Charge a host↔device transfer on `stream`.
    pub fn charge_transfer(&self, stream: usize, bytes: u64) {
        let cost = self.copy_cost_us(bytes);
        let mut s = self.streams.lock();
        s[stream] += cost;
        self.dirty.lock()[stream] = true;
    }

    /// Charge arbitrary host-side time (data preparation etc.).
    pub fn charge_host_us(&self, us: f64) {
        let mut s = self.streams.lock();
        for t in s.iter_mut() {
            *t += us;
        }
    }

    /// Device synchronization: all stream cursors join at the max, plus a
    /// per-dirty-stream sync cost. This is the §IV-B effect: with three
    /// streams HIP pays the (large, on AMD) sync cost three times per level.
    pub fn sync(&self) -> f64 {
        let mut s = self.streams.lock();
        let mut d = self.dirty.lock();
        let dirty_count = d.iter().filter(|&&x| x).count().max(1);
        let t = s.iter().cloned().fold(0.0f64, f64::max) + self.arch.sync_us * dirty_count as f64;
        for x in s.iter_mut() {
            *x = t;
        }
        d.fill(false);
        t
    }

    /// Current modeled elapsed time (max over streams), microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.streams.lock().iter().cloned().fold(0.0, f64::max)
    }

    /// Advance every stream cursor to at least `us` — used by multi-device
    /// simulations to model barriers/communication completing at a common
    /// global time.
    pub fn advance_to(&self, us: f64) {
        let mut s = self.streams.lock();
        for t in s.iter_mut() {
            *t = t.max(us);
        }
    }

    /// Zero the timeline and cold-start the L2 (start of a measured run).
    pub fn reset_timeline(&self) {
        self.streams.lock().fill(0.0);
        self.dirty.lock().fill(false);
        self.l2.lock().invalidate();
    }

    /// Drain recorded kernel reports.
    pub fn take_reports(&self) -> Vec<KernelReport> {
        std::mem::take(&mut self.reports.lock())
    }

    // ---- kernel launch ----

    /// Launch a kernel on `stream`: `body` is invoked once per wavefront.
    /// Returns the report (also recorded if profiling is enabled).
    pub fn launch<F>(&self, stream: usize, cfg: LaunchCfg, body: F) -> KernelReport
    where
        F: Fn(&mut WaveCtx) + Sync,
    {
        let width = self.arch.wavefront_size;
        let n_waves = cfg.items.div_ceil(width);
        let stats = match self.mode {
            ExecMode::Functional => (0..n_waves)
                .into_par_iter()
                .map_init(
                    || Coalescer::new(COALESCER_LINES, self.arch.line_bytes),
                    |co, w| {
                        let mut ctx = WaveCtx::new(w, width, cfg.items, co, None);
                        body(&mut ctx);
                        ctx.stats
                    },
                )
                .reduce(WaveStats::default, |mut a, b| {
                    a.merge(&b);
                    a
                }),
            ExecMode::Timing => {
                let mut l2 = self.l2.lock();
                l2.reset_counters();
                let mut co = Coalescer::new(COALESCER_LINES, self.arch.line_bytes);
                let mut total = WaveStats::default();
                for w in 0..n_waves {
                    let mut ctx = WaveCtx::new(w, width, cfg.items, &mut co, Some(&mut l2));
                    body(&mut ctx);
                    total.merge(&ctx.stats);
                }
                total
            }
        };
        let report = self.cost_model(&cfg, stats, None);
        {
            let mut s = self.streams.lock();
            s[stream] += report.runtime_ms * 1000.0;
            self.dirty.lock()[stream] = true;
        }
        if self.profiling {
            self.reports.lock().push(report.clone());
        }
        report
    }

    /// Launch a workgroup (block) kernel: `body` runs once per group with
    /// LDS and a barrier (see [`GroupCtx`]).
    pub fn launch_groups<F>(&self, stream: usize, cfg: GroupCfg, body: F) -> KernelReport
    where
        F: Fn(&mut GroupCtx) + Sync,
    {
        let width = self.arch.wavefront_size;
        let stats = match self.mode {
            ExecMode::Functional => (0..cfg.groups)
                .into_par_iter()
                .map(|gid| {
                    let mut ctx = GroupCtx::new(
                        gid,
                        cfg,
                        width,
                        self.arch.line_bytes,
                        COALESCER_LINES,
                        None,
                    );
                    body(&mut ctx);
                    ctx.stats
                })
                .reduce(WaveStats::default, |mut a, b| {
                    a.merge(&b);
                    a
                }),
            ExecMode::Timing => {
                let mut l2 = self.l2.lock();
                l2.reset_counters();
                let mut total = WaveStats::default();
                for gid in 0..cfg.groups {
                    let mut ctx = GroupCtx::new(
                        gid,
                        cfg,
                        width,
                        self.arch.line_bytes,
                        COALESCER_LINES,
                        Some(&mut l2),
                    );
                    body(&mut ctx);
                    total.merge(&ctx.stats);
                }
                total
            }
        };
        let lcfg = LaunchCfg::new(cfg.name, cfg.groups * cfg.waves_per_group * width)
            .with_registers(cfg.registers_per_thread);
        let report = self.cost_model(&lcfg, stats, Some((cfg.lds_bytes, cfg.waves_per_group)));
        {
            let mut s = self.streams.lock();
            s[stream] += report.runtime_ms * 1000.0;
            self.dirty.lock()[stream] = true;
        }
        if self.profiling {
            self.reports.lock().push(report.clone());
        }
        report
    }

    /// Convert raw counters into a rocprof-style report. `lds` carries
    /// `(lds_bytes_per_group, waves_per_group)` for workgroup launches,
    /// whose occupancy LDS usage can additionally cap.
    fn cost_model(
        &self,
        cfg: &LaunchCfg,
        stats: WaveStats,
        lds: Option<(usize, usize)>,
    ) -> KernelReport {
        let a = &self.arch;
        let cm = self.compiler.model();

        // Occupancy from register pressure.
        let regs = f64::from(cfg.registers_per_thread) * cm.register_factor;
        let bytes_per_wave = regs * 4.0 * a.wavefront_size as f64;
        let mut waves_by_regs = a.regfile_bytes_per_simd as f64 / bytes_per_wave;
        if let Some((lds_bytes, wpg)) = lds {
            // Groups resident per CU limited by LDS; waves per SIMD follow.
            let groups_per_cu = (LDS_PER_CU as f64 / lds_bytes.max(1) as f64).max(1.0);
            let waves_by_lds = groups_per_cu * wpg as f64 / a.simds_per_cu as f64;
            waves_by_regs = waves_by_regs.min(waves_by_lds);
        }
        let resident = waves_by_regs.clamp(1.0, a.max_waves_per_simd as f64);
        let occupancy = resident / a.max_waves_per_simd as f64;
        let hiding = (resident / LATENCY_HIDING_WAVES).min(1.0);

        let instr = stats.instructions as f64 * cm.instruction_factor;
        let issue_rate = (a.num_cus * a.simds_per_cu) as f64;
        let compute_cycles = instr / issue_rate / hiding.max(0.25);

        let read_bytes = stats.hbm_lines as f64 * a.line_bytes as f64;
        let spill_bytes = instr * cm.spill_bytes_per_instr;
        let mem_bytes = read_bytes + stats.bytes_written as f64 + spill_bytes;
        let mem_cycles = mem_bytes / a.bytes_per_cycle() / hiding.max(0.25);

        let atomic_cycles = (stats.atomics as f64 + 3.0 * stats.atomic_conflicts as f64)
            * a.atomic_cost_cycles
            / ATOMIC_UNITS;

        let cycles = compute_cycles.max(mem_cycles).max(atomic_cycles);
        let runtime_us = a.launch_us + cycles / (a.clock_ghz * 1000.0);

        let l2_hit_pct = match self.mode {
            ExecMode::Timing => {
                let total = stats.l2_hits + (stats.l2_accesses - stats.l2_hits);
                if total == 0 {
                    0.0
                } else {
                    100.0 * stats.l2_hits as f64 / total as f64
                }
            }
            // Functional mode proxies L2 behaviour with the coalescer.
            ExecMode::Functional => {
                if stats.accesses == 0 {
                    0.0
                } else {
                    100.0 * stats.l1_hits as f64 / stats.accesses as f64
                }
            }
        };
        let mem_busy_pct = if cycles > 0.0 {
            (100.0 * mem_cycles / cycles).min(100.0)
        } else {
            0.0
        };

        KernelReport {
            name: cfg.name.to_string(),
            phase: self.phase.lock().clone(),
            runtime_ms: runtime_us / 1000.0,
            l2_hit_pct,
            mem_busy_pct,
            fetch_kb: read_bytes / 1024.0,
            stats,
            occupancy,
        }
    }

    // ---- built-in utility kernels ----

    /// Device-side fill of a `u32` buffer (charged like a real memset
    /// kernel: one coalesced store stream).
    pub fn fill_u32(&self, stream: usize, buf: &BufU32, val: u32) -> KernelReport {
        let cfg = LaunchCfg::new("fill_u32", buf.len()).with_registers(8);
        self.launch(stream, cfg, |w| {
            let writes: Vec<(usize, u32)> = w.lanes().map(|gid| (gid, val)).collect();
            w.vstore32(buf, &writes);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_readback() {
        let dev = Device::mi250x();
        let buf = dev.alloc_u32(1000);
        dev.fill_u32(0, &buf, 7);
        assert!(buf.to_host().iter().all(|&v| v == 7));
    }

    #[test]
    fn launch_advances_timeline_and_sync_joins() {
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Functional, 2);
        let buf = dev.alloc_u32(1 << 16);
        dev.fill_u32(0, &buf, 1);
        let t_before = dev.elapsed_us();
        assert!(t_before > 0.0);
        let t = dev.sync();
        // Sync adds at least one sync cost.
        assert!(t >= t_before + dev.arch().sync_us);
        assert_eq!(dev.elapsed_us(), t);
    }

    #[test]
    fn multi_stream_sync_costs_more() {
        let arch = ArchProfile::mi250x_gcd();
        let one = Device::new(arch.clone(), ExecMode::Functional, 1);
        let three = Device::new(arch, ExecMode::Functional, 3);
        let b1 = one.alloc_u32(64);
        one.fill_u32(0, &b1, 0);
        let t1 = one.sync();
        let b3 = three.alloc_u32(64);
        // Same work split across three streams.
        for s in 0..3 {
            three.launch(s, LaunchCfg::new("noop", 16), |w| {
                let writes: Vec<(usize, u32)> = w.lanes().map(|g| (g, 0)).collect();
                w.vstore32(&b3, &writes);
            });
        }
        let t3 = three.sync();
        assert!(
            t3 > t1 + 1.5 * three.arch().sync_us,
            "3-stream sync {t3} should exceed 1-stream {t1} by ~2 sync costs"
        );
    }

    #[test]
    fn bigger_kernels_take_longer() {
        let dev = Device::mi250x();
        let small = dev.alloc_u32(1 << 10);
        let large = dev.alloc_u32(1 << 20);
        let r_small = dev.fill_u32(0, &small, 0);
        let r_large = dev.fill_u32(0, &large, 0);
        assert!(r_large.runtime_ms > r_small.runtime_ms);
        assert!(r_large.stats.bytes_written > r_small.stats.bytes_written);
    }

    #[test]
    fn timing_mode_reports_l2_hits() {
        let dev = Device::new(ArchProfile::mi250x_gcd(), ExecMode::Timing, 1);
        let buf = dev.alloc_u32(1 << 16);
        // First pass: cold.
        let r1 = dev.launch(0, LaunchCfg::new("scan1", buf.len()), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        // Second pass: warm L2 (64 KiB elements = 256 KiB < 8 MiB L2).
        let r2 = dev.launch(0, LaunchCfg::new("scan2", buf.len()), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        assert!(r1.l2_hit_pct < 5.0, "cold pass should miss: {}", r1.l2_hit_pct);
        assert!(r2.l2_hit_pct > 90.0, "warm pass should hit: {}", r2.l2_hit_pct);
        assert!(r1.fetch_kb > 10.0 * r2.fetch_kb.max(0.001));
    }

    #[test]
    fn functional_matches_timing_functionally() {
        // The same kernel must compute identical data in both modes.
        let run = |mode| {
            let dev = Device::new(ArchProfile::mi250x_gcd(), mode, 1);
            let src = dev.upload_u32(&(0..4096u32).collect::<Vec<_>>());
            let dst = dev.alloc_u32(4096);
            dev.launch(0, LaunchCfg::new("double", 4096), |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut vals = Vec::new();
                w.vload32(&src, &idxs, &mut vals);
                let writes: Vec<(usize, u32)> =
                    idxs.iter().zip(&vals).map(|(&i, &v)| (i, v * 2)).collect();
                w.vstore32(&dst, &writes);
            });
            dst.to_host()
        };
        assert_eq!(run(ExecMode::Functional), run(ExecMode::Timing));
    }

    #[test]
    fn reports_are_recorded_with_phase() {
        let dev = Device::mi250x();
        dev.set_phase("level 2");
        let buf = dev.alloc_u32(128);
        dev.fill_u32(0, &buf, 0);
        let reports = dev.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].phase, "level 2");
        assert_eq!(reports[0].name, "fill_u32");
        assert!(dev.take_reports().is_empty());
    }

    #[test]
    fn compiler_o0_is_much_slower() {
        // An instruction-rich kernel (like BFS expansion) shows the §IV-A
        // no-`-O3` cliff; a pure memset would be bandwidth-bound and barely
        // affected.
        let run = |compiler| {
            let mut dev = Device::mi250x();
            dev.set_compiler(compiler);
            let buf = dev.alloc_u32(1 << 18);
            dev.launch(0, LaunchCfg::new("expand", buf.len()), |w| {
                let idxs: Vec<usize> = w.lanes().collect();
                let mut out = Vec::new();
                w.vload32(&buf, &idxs, &mut out);
                w.alu(40); // neighbor-inspection loop body
            })
            .runtime_ms
        };
        let fast = run(Compiler::ClangO3);
        let slow = run(Compiler::ClangO0);
        assert!(
            slow > 3.0 * fast,
            "O0 {slow} should be several times O3 {fast}"
        );
    }

    #[test]
    fn register_pressure_lowers_occupancy() {
        let dev = Device::mi250x();
        let buf = dev.alloc_u32(1 << 14);
        let light = dev.launch(0, LaunchCfg::new("light", 1 << 14).with_registers(16), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        let heavy = dev.launch(0, LaunchCfg::new("heavy", 1 << 14).with_registers(128), |w| {
            let idxs: Vec<usize> = w.lanes().collect();
            let mut out = Vec::new();
            w.vload32(&buf, &idxs, &mut out);
        });
        assert!(heavy.occupancy < light.occupancy);
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let dev = Device::mi250x();
        let r = dev.launch(0, LaunchCfg::new("empty", 0), |_w| {});
        assert!((r.runtime_ms - dev.arch().launch_us / 1000.0).abs() < 1e-9);
        assert_eq!(r.stats.instructions, 0);
    }
}
