//! Wave-synchronous execution context.
//!
//! Kernels are written the way one reasons about lockstep SIMT code: the
//! unit of execution is a wavefront (64 lanes on MI250X, 32 on P6000), and
//! every *vector operation* — a gather, a scatter, a batch of atomics, an
//! ALU step — costs one wave instruction regardless of how many lanes are
//! active. Divergent loops therefore naturally pay for their longest lane,
//! which is exactly the effect that makes degree-binned workload balancing
//! counter-productive in the bottom-up phase on 64-wide wavefronts
//! (paper §IV-A).
//!
//! Memory accesses are traced through the per-wave [`Coalescer`] and, in
//! timing mode, the shared [`L2Model`], producing the rocprofiler-style
//! counters of the paper's Tables III–V.

use crate::buffer::{BufU32, BufU64};
use crate::coalescer::Coalescer;
use crate::kernel::WaveStats;
use crate::l2::L2Model;

/// Where a wave's coalescer misses go — the three classification regimes a
/// launch can run under.
pub(crate) enum MemSink<'a> {
    /// Functional mode: no shared L2 model; every read miss is charged as an
    /// HBM fetch (documented overestimate).
    Functional,
    /// Sequential timing: classify each miss through the shared L2 the
    /// moment it happens.
    L2(&'a mut L2Model),
    /// Parallel timing, phase A: record `(line, is_read)` in execution order
    /// and defer L2 classification to a later in-order replay.
    Capture(&'a mut Vec<(u64, bool)>),
}

impl MemSink<'_> {
    /// Reborrow for handing the sink to a shorter-lived [`WaveCtx`] (one per
    /// `GroupCtx::wave` call).
    pub(crate) fn reborrow(&mut self) -> MemSink<'_> {
        match self {
            MemSink::Functional => MemSink::Functional,
            MemSink::L2(l2) => MemSink::L2(l2),
            MemSink::Capture(buf) => MemSink::Capture(buf),
        }
    }
}

/// Execution context of a single wavefront.
pub struct WaveCtx<'a> {
    wave_id: usize,
    width: usize,
    items: usize,
    coalescer: &'a mut Coalescer,
    sink: MemSink<'a>,
    missed: Vec<u64>,
    /// Counters accumulated by this wave.
    pub stats: WaveStats,
}

impl<'a> WaveCtx<'a> {
    pub(crate) fn new(
        wave_id: usize,
        width: usize,
        items: usize,
        coalescer: &'a mut Coalescer,
        sink: MemSink<'a>,
    ) -> Self {
        coalescer.reset();
        Self {
            wave_id,
            width,
            items,
            coalescer,
            sink,
            missed: Vec::with_capacity(8),
            stats: WaveStats::default(),
        }
    }

    /// Lanes per wavefront on this device.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Index of this wavefront within the launch.
    #[inline]
    pub fn wave_id(&self) -> usize {
        self.wave_id
    }

    /// Total work-items in the launch.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.items
    }

    /// Global thread id of `lane`, or `None` if it falls past the launch
    /// size (partial trailing wave).
    #[inline]
    pub fn global_id(&self, lane: usize) -> Option<usize> {
        debug_assert!(lane < self.width);
        let gid = self.wave_id * self.width + lane;
        (gid < self.items).then_some(gid)
    }

    /// Iterate the global ids covered by this wave.
    pub fn lanes(&self) -> impl Iterator<Item = usize> + '_ {
        let start = self.wave_id * self.width;
        let end = (start + self.width).min(self.items);
        start..end
    }

    /// Charge `n` pure-ALU wave instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.stats.instructions += n;
    }

    fn trace(&mut self, addr: u64, len: u32, is_read: bool) {
        self.stats.accesses += 1;
        self.missed.clear();
        let fetched = self.coalescer.access(addr, len, &mut self.missed);
        let first = self.coalescer.line_of(addr);
        let last = self.coalescer.line_of(addr + u64::from(len) - 1);
        let touched = last - first + 1;
        self.stats.l1_hits += touched - u64::from(fetched);
        for i in 0..self.missed.len() {
            let line = self.missed[i];
            self.stats.l2_accesses += 1;
            match &mut self.sink {
                MemSink::L2(l2) => {
                    if l2.access_line(line) {
                        self.stats.l2_hits += 1;
                    } else if is_read {
                        self.stats.hbm_lines += 1;
                    }
                }
                MemSink::Functional => {
                    if is_read {
                        self.stats.hbm_lines += 1;
                    }
                }
                // `l2_hits`/`hbm_lines` are settled later by the in-order
                // replay (`Device::classify_captured`).
                MemSink::Capture(buf) => buf.push((line, is_read)),
            }
        }
        if !is_read {
            self.stats.bytes_written += u64::from(len);
        }
    }

    // --- scalar (uniform) memory operations: 1 wave instruction each ---

    /// Uniform 32-bit load (e.g. reading a queue length).
    pub fn sload32(&mut self, buf: &BufU32, idx: usize) -> u32 {
        self.stats.instructions += 1;
        self.trace(buf.addr(idx), 4, true);
        buf.load(idx)
    }

    /// Uniform 64-bit load.
    pub fn sload64(&mut self, buf: &BufU64, idx: usize) -> u64 {
        self.stats.instructions += 1;
        self.trace(buf.addr(idx), 8, true);
        buf.load(idx)
    }

    /// Uniform 32-bit store.
    pub fn sstore32(&mut self, buf: &BufU32, idx: usize, val: u32) {
        self.stats.instructions += 1;
        self.trace(buf.addr(idx), 4, false);
        buf.store(idx, val);
    }

    /// Uniform 64-bit store.
    pub fn sstore64(&mut self, buf: &BufU64, idx: usize, val: u64) {
        self.stats.instructions += 1;
        self.trace(buf.addr(idx), 8, false);
        buf.store(idx, val);
    }

    // --- vector operations: 1 wave instruction for up to `width` lanes ---

    fn charge_vector(&mut self, lanes: usize) {
        // Requests wider than the wave model a per-lane loop: one wave
        // instruction per `width` lanes.
        self.stats.instructions += lanes.div_ceil(self.width) as u64;
    }

    /// Gather 32-bit values at `idxs` (one per active lane); results are
    /// appended to `out` in lane order.
    pub fn vload32(&mut self, buf: &BufU32, idxs: &[usize], out: &mut Vec<u32>) {
        if idxs.is_empty() {
            return;
        }
        self.charge_vector(idxs.len());
        for &i in idxs {
            self.trace(buf.addr(i), 4, true);
            out.push(buf.load(i));
        }
    }

    /// Gather 64-bit values.
    pub fn vload64(&mut self, buf: &BufU64, idxs: &[usize], out: &mut Vec<u64>) {
        if idxs.is_empty() {
            return;
        }
        self.charge_vector(idxs.len());
        for &i in idxs {
            self.trace(buf.addr(i), 8, true);
            out.push(buf.load(i));
        }
    }

    /// Scatter 32-bit values.
    pub fn vstore32(&mut self, buf: &BufU32, writes: &[(usize, u32)]) {
        if writes.is_empty() {
            return;
        }
        self.charge_vector(writes.len());
        for &(i, v) in writes {
            self.trace(buf.addr(i), 4, false);
            buf.store(i, v);
        }
    }

    /// Scatter 64-bit values.
    pub fn vstore64(&mut self, buf: &BufU64, writes: &[(usize, u64)]) {
        if writes.is_empty() {
            return;
        }
        self.charge_vector(writes.len());
        for &(i, v) in writes {
            self.trace(buf.addr(i), 8, false);
            buf.store(i, v);
        }
    }

    fn charge_atomics(
        &mut self,
        idxs: impl Iterator<Item = usize> + Clone,
        buf_base: u64,
        elem: u64,
    ) {
        let n = idxs.clone().count() as u64;
        self.stats.atomics += n;
        // Ops hitting the same cache line within one wave op serialize at
        // the L2 atomic unit.
        let mut lines: Vec<u64> = idxs.map(|i| (buf_base + elem * i as u64) >> 6).collect();
        lines.sort_unstable();
        lines.dedup();
        self.stats.atomic_conflicts += n - lines.len() as u64;
    }

    /// Per-lane compare-exchange batch. Each entry is `(idx, expected, new)`;
    /// results are appended to `out` (`Ok(prev)` on success).
    pub fn vcas32(
        &mut self,
        buf: &BufU32,
        ops: &[(usize, u32, u32)],
        out: &mut Vec<Result<u32, u32>>,
    ) {
        if ops.is_empty() {
            return;
        }
        self.charge_vector(ops.len());
        self.charge_atomics(ops.iter().map(|o| o.0), buf.addr(0), 4);
        for &(i, cur, new) in ops {
            self.trace(buf.addr(i), 4, true);
            out.push(buf.cas(i, cur, new));
        }
    }

    /// Per-lane fetch-add batch; returns previous values in lane order.
    pub fn vadd32(&mut self, buf: &BufU32, ops: &[(usize, u32)], out: &mut Vec<u32>) {
        if ops.is_empty() {
            return;
        }
        self.charge_vector(ops.len());
        self.charge_atomics(ops.iter().map(|o| o.0), buf.addr(0), 4);
        for &(i, v) in ops {
            self.trace(buf.addr(i), 4, true);
            out.push(buf.fetch_add(i, v));
        }
    }

    /// Per-lane atomic-OR batch (`atomicOr`) — the frontier-bitmap update
    /// primitive of distributed BFS.
    pub fn vor32(&mut self, buf: &BufU32, ops: &[(usize, u32)]) {
        if ops.is_empty() {
            return;
        }
        self.charge_vector(ops.len());
        self.charge_atomics(ops.iter().map(|o| o.0), buf.addr(0), 4);
        for &(i, v) in ops {
            self.trace(buf.addr(i), 4, true);
            buf.fetch_or(i, v);
        }
    }

    /// Per-lane atomic-OR batch on 64-bit words (`atomicOr` on
    /// `unsigned long long`) — the visited-mask update primitive of
    /// wave-width-64 multi-source BFS.
    pub fn vor64(&mut self, buf: &BufU64, ops: &[(usize, u64)]) {
        if ops.is_empty() {
            return;
        }
        self.charge_vector(ops.len());
        self.charge_atomics(ops.iter().map(|o| o.0), buf.addr(0), 8);
        for &(i, v) in ops {
            self.trace(buf.addr(i), 8, true);
            buf.fetch_or(i, v);
        }
    }

    /// Per-lane atomic-minimum batch (`atomicMin`); returns previous values
    /// in lane order. The relaxation primitive of SSSP-style BFS.
    pub fn vmin32(&mut self, buf: &BufU32, ops: &[(usize, u32)], out: &mut Vec<u32>) {
        if ops.is_empty() {
            return;
        }
        self.charge_vector(ops.len());
        self.charge_atomics(ops.iter().map(|o| o.0), buf.addr(0), 4);
        for &(i, v) in ops {
            self.trace(buf.addr(i), 4, true);
            out.push(buf.fetch_min(i, v));
        }
    }

    /// Uniform (wave-aggregated) fetch-add: one atomic performed by the
    /// first active lane — the idiomatic way XBFS allocates queue slots for
    /// a whole wave after a ballot.
    pub fn wave_add32(&mut self, buf: &BufU32, idx: usize, val: u32) -> u32 {
        self.stats.instructions += 1;
        self.stats.atomics += 1;
        self.trace(buf.addr(idx), 4, true);
        buf.fetch_add(idx, val)
    }

    /// Uniform fetch-add on a 64-bit counter.
    pub fn wave_add64(&mut self, buf: &BufU64, idx: usize, val: u64) -> u64 {
        self.stats.instructions += 1;
        self.stats.atomics += 1;
        self.trace(buf.addr(idx), 8, true);
        buf.fetch_add(idx, val)
    }

    // --- wave intrinsics (the __ballot/__any/__shfl/__popcll family) ---

    /// `__ballot`: bitmask of lanes whose predicate is true. Predicates are
    /// given for the lanes present (≤ width).
    pub fn ballot(&mut self, preds: &[bool]) -> u64 {
        debug_assert!(preds.len() <= self.width && self.width <= 64);
        self.stats.instructions += 1;
        preds
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &p)| if p { m | (1 << i) } else { m })
    }

    /// `__any`: true if any lane's predicate holds.
    pub fn any(&mut self, preds: &[bool]) -> bool {
        self.stats.instructions += 1;
        preds.iter().any(|&p| p)
    }

    /// `__shfl`: broadcast lane `src`'s value to the wave.
    pub fn shfl(&mut self, vals: &[u32], src: usize) -> u32 {
        self.stats.instructions += 1;
        vals[src]
    }

    /// `__shfl_up`: each lane receives the value from `delta` lanes below;
    /// lanes below `delta` keep their own value (HIP semantics).
    pub fn shfl_up(&mut self, vals: &[u32], delta: usize, out: &mut Vec<u32>) {
        self.stats.instructions += 1;
        for (i, &v) in vals.iter().enumerate() {
            out.push(if i >= delta { vals[i - delta] } else { v });
        }
    }

    /// `__shfl_down`: each lane receives the value from `delta` lanes above;
    /// lanes past the end keep their own value.
    pub fn shfl_down(&mut self, vals: &[u32], delta: usize, out: &mut Vec<u32>) {
        self.stats.instructions += 1;
        for (i, &v) in vals.iter().enumerate() {
            out.push(if i + delta < vals.len() {
                vals[i + delta]
            } else {
                v
            });
        }
    }

    /// `__shfl_xor`: butterfly exchange — lane `i` receives lane `i ^ mask`
    /// (own value if the partner is outside the active set).
    pub fn shfl_xor(&mut self, vals: &[u32], mask: usize, out: &mut Vec<u32>) {
        self.stats.instructions += 1;
        for (i, &v) in vals.iter().enumerate() {
            let p = i ^ mask;
            out.push(if p < vals.len() { vals[p] } else { v });
        }
    }

    /// Wave-level exclusive prefix sum (log-width butterfly; longer inputs
    /// model a chunked scan).
    pub fn wave_prefix_sum(&mut self, vals: &[u32], out: &mut Vec<u32>) -> u32 {
        let log_w = (usize::BITS - self.width.leading_zeros()) as u64;
        self.stats.instructions += log_w * vals.len().div_ceil(self.width).max(1) as u64;
        let mut acc = 0u32;
        for &v in vals {
            out.push(acc);
            acc += v;
        }
        acc
    }

    /// Wave-level sum reduction (chunked for inputs longer than the wave).
    pub fn wave_reduce_add(&mut self, vals: &[u32]) -> u64 {
        let log_w = (usize::BITS - self.width.leading_zeros()) as u64;
        self.stats.instructions += log_w * vals.len().div_ceil(self.width).max(1) as u64;
        vals.iter().map(|&v| u64::from(v)).sum()
    }
}

/// `__popcll` — population count of a 64-bit ballot mask.
#[inline]
pub fn popc64(mask: u64) -> u32 {
    mask.count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(co: &'a mut Coalescer) -> WaveCtx<'a> {
        WaveCtx::new(0, 64, 1024, co, MemSink::Functional)
    }

    #[test]
    fn lanes_respect_partial_waves() {
        let mut co = Coalescer::new(64, 64);
        let ctx = WaveCtx::new(2, 64, 140, &mut co, MemSink::Functional);
        let lanes: Vec<usize> = ctx.lanes().collect();
        assert_eq!(lanes.first(), Some(&128));
        assert_eq!(lanes.len(), 12); // 140 - 128
        assert_eq!(ctx.global_id(11), Some(139));
        assert_eq!(ctx.global_id(12), None);
    }

    #[test]
    fn vector_load_charges_one_instruction() {
        let buf = BufU32::from_slice(0, &[10, 20, 30, 40]);
        let mut co = Coalescer::new(64, 64);
        let mut ctx = ctx_with(&mut co);
        let mut out = Vec::new();
        ctx.vload32(&buf, &[0, 2], &mut out);
        assert_eq!(out, vec![10, 30]);
        assert_eq!(ctx.stats.instructions, 1);
        assert_eq!(ctx.stats.accesses, 2);
        // Both fit in one line: one fetch.
        assert_eq!(ctx.stats.hbm_lines, 1);
    }

    #[test]
    fn empty_vector_op_is_free() {
        let buf = BufU32::new(0, 4);
        let mut co = Coalescer::new(64, 64);
        let mut ctx = ctx_with(&mut co);
        let mut out = Vec::new();
        ctx.vload32(&buf, &[], &mut out);
        assert_eq!(ctx.stats.instructions, 0);
    }

    #[test]
    fn cas_batch_counts_conflicts() {
        let buf = BufU32::new(0, 64);
        let mut co = Coalescer::new(64, 64);
        let mut ctx = ctx_with(&mut co);
        let mut out = Vec::new();
        // Three CAS on the same line (idx 0, 1, 2), one far away.
        ctx.vcas32(
            &buf,
            &[(0, 0, 1), (1, 0, 1), (2, 0, 1), (32, 0, 1)],
            &mut out,
        );
        assert_eq!(ctx.stats.atomics, 4);
        assert_eq!(ctx.stats.atomic_conflicts, 2);
        assert!(out.iter().all(|r| r.is_ok()));
        // Losing CAS:
        out.clear();
        ctx.vcas32(&buf, &[(0, 0, 9)], &mut out);
        assert_eq!(out[0], Err(1));
    }

    #[test]
    fn writes_do_not_count_as_fetches() {
        let buf = BufU32::new(4096, 64);
        let mut co = Coalescer::new(64, 64);
        let mut ctx = ctx_with(&mut co);
        ctx.vstore32(&buf, &[(0, 1), (1, 2)]);
        assert_eq!(ctx.stats.hbm_lines, 0);
        assert_eq!(ctx.stats.bytes_written, 8);
        // Second store on the same line already hit the coalescer.
        assert_eq!(ctx.stats.l1_hits, 1);
        // A read of the just-written line also hits the coalescer.
        let mut out = Vec::new();
        ctx.vload32(&buf, &[0], &mut out);
        assert_eq!(ctx.stats.hbm_lines, 0);
        assert_eq!(ctx.stats.l1_hits, 2);
    }

    #[test]
    fn timing_mode_feeds_l2() {
        let buf = BufU32::new(0, 1024);
        let mut co = Coalescer::new(4, 64); // tiny coalescer: everything spills to L2
        let mut l2 = L2Model::new(1 << 20, 16, 64);
        let mut out = Vec::new();
        {
            let mut ctx = WaveCtx::new(0, 64, 1024, &mut co, MemSink::L2(&mut l2));
            let idxs: Vec<usize> = (0..64).map(|i| i * 16).collect(); // distinct lines
            ctx.vload32(&buf, &idxs, &mut out);
            assert_eq!(ctx.stats.l2_accesses, 64);
            assert_eq!(ctx.stats.hbm_lines, 64);
        }
        // Second wave re-reads the same lines: coalescer is reset but L2 is
        // warm, so fetches become L2 hits.
        let mut ctx = WaveCtx::new(1, 64, 1024, &mut co, MemSink::L2(&mut l2));
        out.clear();
        let idxs: Vec<usize> = (0..64).map(|i| i * 16).collect();
        ctx.vload32(&buf, &idxs, &mut out);
        assert_eq!(ctx.stats.l2_hits, 64);
        assert_eq!(ctx.stats.hbm_lines, 0);
    }

    #[test]
    fn capture_sink_records_misses_in_order_and_defers_classification() {
        let buf = BufU32::new(0, 1024);
        let mut co = Coalescer::new(4, 64); // tiny: everything spills
        let mut misses = Vec::new();
        let mut ctx = WaveCtx::new(0, 64, 1024, &mut co, MemSink::Capture(&mut misses));
        let idxs: Vec<usize> = (0..32).map(|i| i * 16).collect(); // distinct lines
        let mut out = Vec::new();
        ctx.vload32(&buf, &idxs, &mut out);
        ctx.vstore32(&buf, &[(512, 1)]);
        assert_eq!(ctx.stats.l2_accesses, 33);
        // Classification is deferred to the replay phase.
        assert_eq!(ctx.stats.l2_hits, 0);
        assert_eq!(ctx.stats.hbm_lines, 0);
        drop(ctx);
        assert_eq!(misses.len(), 33);
        assert!(misses[..32].iter().all(|&(_, is_read)| is_read));
        assert!(!misses[32].1, "store miss must be captured as a write");
        // Lines appear in execution order.
        let lines: Vec<u64> = misses[..4].iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ballot_any_shfl_popc() {
        let mut co = Coalescer::new(16, 64);
        let mut ctx = ctx_with(&mut co);
        let mask = ctx.ballot(&[true, false, true]);
        assert_eq!(mask, 0b101);
        assert_eq!(popc64(mask), 2);
        assert!(ctx.any(&[false, true]));
        assert!(!ctx.any(&[false, false]));
        assert_eq!(ctx.shfl(&[7, 8, 9], 2), 9);
        assert_eq!(ctx.stats.instructions, 4);
    }

    #[test]
    fn shfl_family_semantics() {
        let mut co = Coalescer::new(16, 64);
        let mut ctx = ctx_with(&mut co);
        let vals = [10u32, 20, 30, 40];
        let mut up = Vec::new();
        ctx.shfl_up(&vals, 1, &mut up);
        assert_eq!(up, vec![10, 10, 20, 30]);
        let mut down = Vec::new();
        ctx.shfl_down(&vals, 2, &mut down);
        assert_eq!(down, vec![30, 40, 30, 40]);
        let mut xor = Vec::new();
        ctx.shfl_xor(&vals, 1, &mut xor);
        assert_eq!(xor, vec![20, 10, 40, 30]);
        assert_eq!(ctx.stats.instructions, 3);
    }

    #[test]
    fn butterfly_reduction_via_shfl_xor() {
        // The classic log-step wave reduction built from shfl_xor — the
        // idiom XBFS's warp aggregates compile to.
        let mut co = Coalescer::new(16, 64);
        let mut ctx = ctx_with(&mut co);
        let mut vals: Vec<u32> = (1..=8).collect(); // sum = 36
        let mut mask = 4;
        while mask >= 1 {
            let mut partner = Vec::new();
            ctx.shfl_xor(&vals, mask, &mut partner);
            for (v, p) in vals.iter_mut().zip(&partner) {
                *v += p;
            }
            mask /= 2;
        }
        assert!(vals.iter().all(|&v| v == 36), "{vals:?}");
    }

    #[test]
    fn prefix_sum_and_reduce() {
        let mut co = Coalescer::new(16, 64);
        let mut ctx = ctx_with(&mut co);
        let mut out = Vec::new();
        let total = ctx.wave_prefix_sum(&[1, 2, 3, 4], &mut out);
        assert_eq!(out, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
        assert_eq!(ctx.wave_reduce_add(&[5, 5, 5]), 15);
    }

    #[test]
    fn wave_aggregated_atomic_is_single_op() {
        let buf = BufU32::new(0, 4);
        let mut co = Coalescer::new(16, 64);
        let mut ctx = ctx_with(&mut co);
        let prev = ctx.wave_add32(&buf, 0, 64);
        assert_eq!(prev, 0);
        assert_eq!(buf.load(0), 64);
        assert_eq!(ctx.stats.atomics, 1);
    }
}
