//! rocprofiler-style aggregation over kernel reports.
//!
//! The paper's Tables III–V list, per BFS level, one row per kernel with
//! `Runtime`, `L2CacheHit`, `MemUnitBusy` and `FetchSize`; Table VI sums
//! memory read and runtime across the kernels of a level. This module turns
//! the raw [`KernelReport`] stream of a run into those aggregates.

use crate::kernel::KernelReport;
use serde::{Deserialize, Serialize};

/// All kernel rows recorded for one phase (one BFS level), in launch order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// The phase label shared by these kernels.
    pub phase: String,
    /// Kernel reports in launch order.
    pub kernels: Vec<KernelReport>,
}

impl PhaseProfile {
    /// Total runtime across this phase's kernels, ms.
    pub fn total_runtime_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.runtime_ms).sum()
    }

    /// Total memory read across this phase's kernels, MB.
    pub fn total_fetch_mb(&self) -> f64 {
        self.kernels.iter().map(|k| k.fetch_kb).sum::<f64>() / 1024.0
    }

    /// Total memory read, KB.
    pub fn total_fetch_kb(&self) -> f64 {
        self.kernels.iter().map(|k| k.fetch_kb).sum()
    }
}

/// Group a report stream by phase, preserving first-seen phase order.
pub fn group_by_phase(reports: &[KernelReport]) -> Vec<PhaseProfile> {
    let mut out: Vec<PhaseProfile> = Vec::new();
    for r in reports {
        match out.iter_mut().find(|p| p.phase == r.phase) {
            Some(p) => p.kernels.push(r.clone()),
            None => out.push(PhaseProfile {
                phase: r.phase.clone(),
                kernels: vec![r.clone()],
            }),
        }
    }
    out
}

/// Render a report stream as rocprofiler-style CSV (one row per dispatch),
/// for offline analysis of `repro` runs.
pub fn to_csv(reports: &[KernelReport]) -> String {
    let mut out = String::from(
        "phase,kernel,runtime_ms,l2_hit_pct,mem_busy_pct,fetch_kb,instructions,atomics,hbm_lines,occupancy\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{:.6},{:.3},{:.3},{:.3},{},{},{},{:.3}\n",
            r.phase,
            r.name,
            r.runtime_ms,
            r.l2_hit_pct,
            r.mem_busy_pct,
            r.fetch_kb,
            r.stats.instructions,
            r.stats.atomics,
            r.stats.hbm_lines,
            r.occupancy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WaveStats;

    fn report(phase: &str, name: &str, rt: f64, fetch: f64) -> KernelReport {
        KernelReport {
            name: name.into(),
            phase: phase.into(),
            runtime_ms: rt,
            l2_hit_pct: 50.0,
            mem_busy_pct: 10.0,
            fetch_kb: fetch,
            stats: WaveStats::default(),
            occupancy: 1.0,
        }
    }

    #[test]
    fn groups_and_sums() {
        let reports = vec![
            report("L0", "a", 1.0, 100.0),
            report("L0", "b", 2.0, 924.0),
            report("L1", "a", 3.0, 2048.0),
        ];
        let phases = group_by_phase(&reports);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "L0");
        assert_eq!(phases[0].kernels.len(), 2);
        assert!((phases[0].total_runtime_ms() - 3.0).abs() < 1e-12);
        assert!((phases[0].total_fetch_mb() - 1.0).abs() < 1e-12);
        assert!((phases[1].total_fetch_kb() - 2048.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let reports = vec![report("L0", "a", 1.0, 100.0)];
        let csv = to_csv(&reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("phase,kernel,runtime_ms"));
        assert!(lines[1].starts_with("L0,a,1.000000,"));
    }

    #[test]
    fn preserves_first_seen_order() {
        let reports = vec![
            report("L1", "x", 1.0, 0.0),
            report("L0", "y", 1.0, 0.0),
            report("L1", "z", 1.0, 0.0),
        ];
        let phases = group_by_phase(&reports);
        assert_eq!(phases[0].phase, "L1");
        assert_eq!(phases[0].kernels.len(), 2);
    }
}
