//! rocprofiler-style aggregation over kernel reports.
//!
//! The paper's Tables III–V list, per BFS level, one row per kernel with
//! `Runtime`, `L2CacheHit`, `MemUnitBusy` and `FetchSize`; Table VI sums
//! memory read and runtime across the kernels of a level. This module turns
//! the raw [`KernelReport`] stream of a run into those aggregates.

use crate::kernel::{KernelReport, WaveStats};
use serde::{Deserialize, Serialize};
use xbfs_telemetry::export::csv_field;

/// All kernel rows recorded for one phase (one BFS level), in launch order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// The phase label shared by these kernels.
    pub phase: String,
    /// Kernel reports in launch order.
    pub kernels: Vec<KernelReport>,
}

impl PhaseProfile {
    /// Total runtime across this phase's kernels, ms.
    pub fn total_runtime_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.runtime_ms).sum()
    }

    /// Total memory read across this phase's kernels, MB.
    pub fn total_fetch_mb(&self) -> f64 {
        self.kernels.iter().map(|k| k.fetch_kb).sum::<f64>() / 1024.0
    }

    /// Total memory read, KB.
    pub fn total_fetch_kb(&self) -> f64 {
        self.kernels.iter().map(|k| k.fetch_kb).sum()
    }
}

/// Group a report stream by phase, preserving first-seen phase order.
pub fn group_by_phase(reports: &[KernelReport]) -> Vec<PhaseProfile> {
    let mut out: Vec<PhaseProfile> = Vec::new();
    for r in reports {
        match out.iter_mut().find(|p| p.phase == r.phase) {
            Some(p) => p.kernels.push(r.clone()),
            None => out.push(PhaseProfile {
                phase: r.phase.clone(),
                kernels: vec![r.clone()],
            }),
        }
    }
    out
}

/// Render a report stream as rocprofiler-style CSV (one row per dispatch),
/// for offline analysis of `repro` runs. Phase and kernel labels are
/// RFC-4180 quoted, so free-form labels (`set_phase("level 3, retry")`)
/// survive the round trip through [`from_csv`].
pub fn to_csv(reports: &[KernelReport]) -> String {
    let mut out = String::from(
        "phase,kernel,runtime_ms,l2_hit_pct,mem_busy_pct,fetch_kb,instructions,atomics,hbm_lines,occupancy\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{:.6},{:.3},{:.3},{:.3},{},{},{},{:.3}\n",
            csv_field(&r.phase),
            csv_field(&r.name),
            r.runtime_ms,
            r.l2_hit_pct,
            r.mem_busy_pct,
            r.fetch_kb,
            r.stats.instructions,
            r.stats.atomics,
            r.stats.hbm_lines,
            r.occupancy,
        ));
    }
    out
}

/// Parse [`to_csv`] output back into (partial) kernel reports.
///
/// Counters not present in the CSV (cache-hit breakdowns, conflict counts)
/// come back zeroed; everything the CSV carries round-trips exactly up to
/// the printed precision.
pub fn from_csv(csv: &str) -> Result<Vec<KernelReport>, String> {
    let mut rows = csv_records(csv)?;
    if rows.is_empty() {
        return Err("empty CSV".into());
    }
    let header = rows.remove(0);
    if header.first().map(String::as_str) != Some("phase") || header.len() != 10 {
        return Err(format!("unexpected CSV header: {header:?}"));
    }
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            if row.len() != 10 {
                return Err(format!(
                    "row {}: expected 10 fields, got {}",
                    i + 1,
                    row.len()
                ));
            }
            let f64_at = |j: usize| -> Result<f64, String> {
                row[j]
                    .parse()
                    .map_err(|e| format!("row {}: field {j}: {e}", i + 1))
            };
            let u64_at = |j: usize| -> Result<u64, String> {
                row[j]
                    .parse()
                    .map_err(|e| format!("row {}: field {j}: {e}", i + 1))
            };
            Ok(KernelReport {
                phase: row[0].clone(),
                name: row[1].clone(),
                runtime_ms: f64_at(2)?,
                l2_hit_pct: f64_at(3)?,
                mem_busy_pct: f64_at(4)?,
                fetch_kb: f64_at(5)?,
                stats: WaveStats {
                    instructions: u64_at(6)?,
                    atomics: u64_at(7)?,
                    hbm_lines: u64_at(8)?,
                    ..WaveStats::default()
                },
                occupancy: f64_at(9)?,
            })
        })
        .collect()
}

/// Split RFC-4180 CSV text into records of unquoted fields.
fn csv_records(csv: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = csv.chars().peekable();
    let mut quoted = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => quoted = true,
            ',' => {
                row.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {}
            '\n' => {
                if any || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any = false;
            }
            _ => field.push(c),
        }
    }
    if quoted {
        return Err("unterminated quoted field".into());
    }
    if any || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(phase: &str, name: &str, rt: f64, fetch: f64) -> KernelReport {
        KernelReport {
            name: name.into(),
            phase: phase.into(),
            runtime_ms: rt,
            l2_hit_pct: 50.0,
            mem_busy_pct: 10.0,
            fetch_kb: fetch,
            stats: WaveStats::default(),
            occupancy: 1.0,
        }
    }

    #[test]
    fn groups_and_sums() {
        let reports = vec![
            report("L0", "a", 1.0, 100.0),
            report("L0", "b", 2.0, 924.0),
            report("L1", "a", 3.0, 2048.0),
        ];
        let phases = group_by_phase(&reports);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "L0");
        assert_eq!(phases[0].kernels.len(), 2);
        assert!((phases[0].total_runtime_ms() - 3.0).abs() < 1e-12);
        assert!((phases[0].total_fetch_mb() - 1.0).abs() < 1e-12);
        assert!((phases[1].total_fetch_kb() - 2048.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let reports = vec![report("L0", "a", 1.0, 100.0)];
        let csv = to_csv(&reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("phase,kernel,runtime_ms"));
        assert!(lines[1].starts_with("L0,a,1.000000,"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes_and_round_trips() {
        let mut tricky = report("level 3, retry", "fq_expand\"wave\"", 1.25, 42.0);
        tricky.stats.instructions = 7;
        tricky.stats.atomics = 3;
        tricky.stats.hbm_lines = 11;
        let reports = vec![tricky, report("L1", "plain", 0.5, 8.0)];
        let csv = to_csv(&reports);
        // Still one line per record despite the embedded comma.
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("\"level 3, retry\""));
        assert!(csv.contains("\"fq_expand\"\"wave\"\"\""));

        let parsed = from_csv(&csv).expect("own output must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].phase, "level 3, retry");
        assert_eq!(parsed[0].name, "fq_expand\"wave\"");
        assert_eq!(parsed[0].stats.instructions, 7);
        assert_eq!(parsed[0].stats.atomics, 3);
        assert_eq!(parsed[0].stats.hbm_lines, 11);
        assert!((parsed[0].runtime_ms - 1.25).abs() < 1e-9);
        assert!((parsed[0].fetch_kb - 42.0).abs() < 1e-9);
        assert_eq!(parsed[1].phase, "L1");
        // Re-serializing the parsed reports reproduces the CSV byte-for-byte.
        assert_eq!(to_csv(&parsed), csv);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("not,the,header\n").is_err());
        let good = to_csv(&[report("L0", "a", 1.0, 1.0)]);
        let truncated = good.replace(",1.000\n", "\n");
        assert!(from_csv(&truncated).is_err(), "short row must be rejected");
        assert!(from_csv("phase,kernel,runtime_ms,l2_hit_pct,mem_busy_pct,fetch_kb,instructions,atomics,hbm_lines,occupancy\n\"open").is_err());
    }

    #[test]
    fn preserves_first_seen_order() {
        let reports = vec![
            report("L1", "x", 1.0, 0.0),
            report("L0", "y", 1.0, 0.0),
            report("L1", "z", 1.0, 0.0),
        ];
        let phases = group_by_phase(&reports);
        assert_eq!(phases[0].phase, "L1");
        assert_eq!(phases[0].kernels.len(), 2);
    }
}
