//! Architecture profiles and the compiler model.
//!
//! The reproduction compares three hardware configurations (paper Fig. 5):
//! the NVIDIA Pascal card XBFS was developed on, and the AMD MI250X GCD of
//! Frontier (once "naively ported", once tuned). All architectural constants
//! the cost model consumes live here, so the porting story is a matter of
//! swapping profiles, not code.

use serde::{Deserialize, Serialize};

/// Static description of one GPU (one GCD for MI250X).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchProfile {
    /// Marketing name of the part.
    pub name: &'static str,
    /// Lanes per wavefront (AMD: 64) or warp (NVIDIA: 32).
    pub wavefront_size: usize,
    /// Compute units (AMD CU / NVIDIA SM).
    pub num_cus: usize,
    /// SIMD units per CU that can each issue one wave instruction per cycle.
    pub simds_per_cu: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes (both vendors: 64 B at L2 granularity).
    pub line_bytes: usize,
    /// Peak HBM/GDDR bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Cycles a single atomic RMW occupies at the L2 atomic unit.
    pub atomic_cost_cycles: f64,
    /// Host-side cost of one kernel launch, microseconds.
    pub launch_us: f64,
    /// Host-side cost of one device/stream synchronization, microseconds.
    /// The paper found this "significantly higher" on AMD than NVIDIA,
    /// motivating stream consolidation (§IV-B).
    pub sync_us: f64,
    /// Host↔device copy bandwidth in GB/s (PCIe4 / Infinity Fabric).
    pub h2d_bw_gbps: f64,
    /// Fixed per-copy latency, microseconds.
    pub h2d_latency_us: f64,
    /// Vector register file bytes per SIMD (for occupancy).
    pub regfile_bytes_per_simd: usize,
    /// Hardware cap on resident waves per SIMD.
    pub max_waves_per_simd: usize,
}

impl ArchProfile {
    /// One Graphics Compute Die of an AMD Instinct MI250X, the Frontier
    /// node GPU: 110 CUs, wave64, 64 GB HBM2E at 1.6 TB/s, 8 MiB L2.
    pub fn mi250x_gcd() -> Self {
        Self {
            name: "MI250X-GCD",
            wavefront_size: 64,
            num_cus: 110,
            simds_per_cu: 4,
            clock_ghz: 1.7,
            l2_bytes: 8 << 20,
            l2_ways: 16,
            line_bytes: 64,
            mem_bw_gbps: 1600.0,
            atomic_cost_cycles: 40.0,
            launch_us: 4.0,
            // HIP device synchronization measured in the paper's environment
            // is far costlier than CUDA's; this asymmetry drives §IV-B.
            sync_us: 22.0,
            h2d_bw_gbps: 32.0,
            h2d_latency_us: 10.0,
            regfile_bytes_per_simd: 128 << 10,
            max_waves_per_simd: 8,
        }
    }

    /// One MI100 (CDNA1), the MI250X's predecessor: 120 CUs, wave64,
    /// 32 GB HBM2 at 1.23 TB/s, 8 MiB L2. Useful for generation-over-
    /// generation studies of the same kernels.
    pub fn mi100() -> Self {
        Self {
            name: "MI100",
            wavefront_size: 64,
            num_cus: 120,
            simds_per_cu: 4,
            clock_ghz: 1.502,
            l2_bytes: 8 << 20,
            l2_ways: 16,
            line_bytes: 64,
            mem_bw_gbps: 1230.0,
            atomic_cost_cycles: 44.0,
            launch_us: 4.0,
            sync_us: 22.0,
            h2d_bw_gbps: 16.0,
            h2d_latency_us: 10.0,
            regfile_bytes_per_simd: 128 << 10,
            max_waves_per_simd: 8,
        }
    }

    /// NVIDIA Quadro P6000 (Pascal), the card original XBFS was tuned on:
    /// 30 SMs, warp32, 432 GB/s GDDR5X, 3 MiB L2.
    pub fn p6000() -> Self {
        Self {
            name: "P6000",
            wavefront_size: 32,
            num_cus: 30,
            simds_per_cu: 4,
            clock_ghz: 1.506,
            l2_bytes: 3 << 20,
            l2_ways: 16,
            line_bytes: 64,
            mem_bw_gbps: 432.0,
            atomic_cost_cycles: 24.0,
            launch_us: 3.0,
            sync_us: 5.0,
            h2d_bw_gbps: 12.0,
            h2d_latency_us: 8.0,
            regfile_bytes_per_simd: 64 << 10,
            max_waves_per_simd: 16,
        }
    }

    /// Bytes the memory system can move per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.mem_bw_gbps / self.clock_ghz
    }

    /// Peak lane throughput (lanes retiring per cycle).
    pub fn peak_lanes_per_cycle(&self) -> f64 {
        (self.num_cus * self.simds_per_cu * self.wavefront_size) as f64
    }
}

/// Which compiler produced the "binary" (paper §IV-A: `clang` beats `hipcc`
/// on the bottom-up kernel by using fewer registers; omitting `-O3` causes
/// register spilling and a ~10× slowdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Compiler {
    /// `clang -O3`: baseline register budget.
    ClangO3,
    /// `hipcc -O3`: same code, more registers per thread.
    HipccO3,
    /// `clang` without `-O3`: unoptimized ISA, registers spilled to scratch.
    ClangO0,
}

/// Multipliers the compiler applies to a kernel's resource usage.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompilerModel {
    /// Multiplier on the kernel's declared registers-per-thread.
    pub register_factor: f64,
    /// Multiplier on dynamic instruction count.
    pub instruction_factor: f64,
    /// Extra scratch (spill) bytes moved per wave instruction.
    pub spill_bytes_per_instr: f64,
}

impl Compiler {
    /// The resource model for this compiler.
    pub fn model(self) -> CompilerModel {
        match self {
            Compiler::ClangO3 => CompilerModel {
                register_factor: 1.0,
                instruction_factor: 1.0,
                spill_bytes_per_instr: 0.0,
            },
            // hipcc allocates ~35% more VGPRs on the bottom-up kernel,
            // hurting occupancy (the 17% per-iteration regression of §IV-A).
            Compiler::HipccO3 => CompilerModel {
                register_factor: 1.35,
                instruction_factor: 1.05,
                spill_bytes_per_instr: 0.0,
            },
            // No -O3: redundant loads/stores and spill traffic; the paper
            // observed "up to 10× slower".
            Compiler::ClangO0 => CompilerModel {
                register_factor: 1.2,
                instruction_factor: 6.0,
                spill_bytes_per_instr: 24.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi250x_matches_public_spec() {
        let a = ArchProfile::mi250x_gcd();
        assert_eq!(a.wavefront_size, 64);
        assert_eq!(a.num_cus, 110);
        assert!((a.mem_bw_gbps - 1600.0).abs() < 1e-9);
        // Paper §IV-B: AMD sync much more expensive than NVIDIA sync.
        assert!(a.sync_us > 2.0 * ArchProfile::p6000().sync_us);
    }

    #[test]
    fn p6000_is_warp32() {
        assert_eq!(ArchProfile::p6000().wavefront_size, 32);
    }

    #[test]
    fn mi100_is_a_slower_wave64_part() {
        let old = ArchProfile::mi100();
        let new = ArchProfile::mi250x_gcd();
        assert_eq!(old.wavefront_size, 64);
        assert!(old.mem_bw_gbps < new.mem_bw_gbps);
    }

    #[test]
    fn bytes_per_cycle_sane() {
        let a = ArchProfile::mi250x_gcd();
        // 1600 GB/s at 1.7 GHz ≈ 941 B/cycle.
        assert!((a.bytes_per_cycle() - 941.0).abs() < 1.0);
    }

    #[test]
    fn compiler_models_ordered() {
        let clang = Compiler::ClangO3.model();
        let hipcc = Compiler::HipccO3.model();
        let o0 = Compiler::ClangO0.model();
        assert!(hipcc.register_factor > clang.register_factor);
        assert!(o0.instruction_factor > hipcc.instruction_factor);
        assert!(o0.spill_bytes_per_instr > 0.0);
    }
}
