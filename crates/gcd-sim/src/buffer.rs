//! Device buffers.
//!
//! Kernels see device memory as typed arrays of `u32` / `u64`; storage is
//! atomic so functional-mode execution can run wavefronts in parallel with
//! rayon exactly the way real workgroups race on global memory. Each buffer
//! carries a base "device address" from a bump allocator so the memory
//! hierarchy model can reason about cache lines across buffers.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A device buffer of `u32` values (status arrays, frontier queues,
/// adjacency lists, counters).
pub struct BufU32 {
    base: u64,
    data: Vec<AtomicU32>,
}

/// A device buffer of `u64` values (CSR row offsets, prefix sums).
pub struct BufU64 {
    base: u64,
    data: Vec<AtomicU64>,
}

macro_rules! impl_buf {
    ($name:ident, $atom:ty, $prim:ty, $width:expr) => {
        impl $name {
            pub(crate) fn new(base: u64, len: usize) -> Self {
                let data = (0..len).map(|_| <$atom>::new(0)).collect();
                Self { base, data }
            }

            pub(crate) fn from_slice(base: u64, src: &[$prim]) -> Self {
                let data = src.iter().map(|&v| <$atom>::new(v)).collect();
                Self { base, data }
            }

            /// Zero-length placeholder at address 0 — for moving a real
            /// buffer out of a struct field (e.g. into the device pool)
            /// without leaving the field uninhabited.
            pub fn placeholder() -> Self {
                Self::new(0, 0)
            }

            /// Number of elements.
            #[inline]
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// True if the buffer holds no elements.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// Device base address of the buffer (valid even when empty —
            /// unlike [`Self::addr`], which bounds-checks its index).
            #[inline]
            pub(crate) fn base_addr(&self) -> u64 {
                self.base
            }

            /// Device byte address of element `idx`.
            #[inline]
            pub fn addr(&self, idx: usize) -> u64 {
                debug_assert!(
                    idx < self.data.len(),
                    "device OOB: {idx} >= {}",
                    self.data.len()
                );
                self.base + ($width as u64) * idx as u64
            }

            /// Element size in bytes.
            #[inline]
            pub fn elem_bytes(&self) -> u32 {
                $width
            }

            /// Raw load — used by the wave context after tracing; host code
            /// may call it directly (host reads are not traced, mirroring a
            /// mapped read outside kernel time).
            #[inline]
            pub fn load(&self, idx: usize) -> $prim {
                self.data[idx].load(Ordering::Relaxed)
            }

            /// Raw store (see [`Self::load`]).
            #[inline]
            pub fn store(&self, idx: usize, val: $prim) {
                self.data[idx].store(val, Ordering::Relaxed);
            }

            /// Raw compare-exchange; returns the previous value on success.
            #[inline]
            pub fn cas(&self, idx: usize, current: $prim, new: $prim) -> Result<$prim, $prim> {
                self.data[idx].compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            }

            /// Raw fetch-add.
            #[inline]
            pub fn fetch_add(&self, idx: usize, val: $prim) -> $prim {
                self.data[idx].fetch_add(val, Ordering::Relaxed)
            }

            /// Raw atomic minimum.
            #[inline]
            pub fn fetch_min(&self, idx: usize, val: $prim) -> $prim {
                self.data[idx].fetch_min(val, Ordering::Relaxed)
            }

            /// Raw atomic bitwise OR.
            #[inline]
            pub fn fetch_or(&self, idx: usize, val: $prim) -> $prim {
                self.data[idx].fetch_or(val, Ordering::Relaxed)
            }

            /// Copy device contents back to a host vector (untraced).
            pub fn to_host(&self) -> Vec<$prim> {
                self.data
                    .iter()
                    .map(|a| a.load(Ordering::Relaxed))
                    .collect()
            }

            /// Fill with a value from the host (untraced; use the device
            /// `fill` kernel when the cost should be charged).
            pub fn host_fill(&self, val: $prim) {
                for a in &self.data {
                    a.store(val, Ordering::Relaxed);
                }
            }

            /// Overwrite contents from a host slice (untraced).
            pub fn host_write(&self, src: &[$prim]) {
                assert_eq!(src.len(), self.data.len(), "host_write length mismatch");
                for (a, &v) in self.data.iter().zip(src) {
                    a.store(v, Ordering::Relaxed);
                }
            }
        }
    };
}

impl_buf!(BufU32, AtomicU32, u32, 4);
impl_buf!(BufU64, AtomicU64, u64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_elementwise() {
        let b = BufU32::new(0x1000, 8);
        assert_eq!(b.addr(0), 0x1000);
        assert_eq!(b.addr(3), 0x100C);
        let b64 = BufU64::new(0x2000, 4);
        assert_eq!(b64.addr(2), 0x2010);
    }

    #[test]
    fn load_store_cas() {
        let b = BufU32::new(0, 4);
        b.store(1, 42);
        assert_eq!(b.load(1), 42);
        assert_eq!(b.cas(1, 42, 7), Ok(42));
        assert_eq!(b.cas(1, 42, 9), Err(7));
        assert_eq!(b.fetch_add(1, 3), 7);
        assert_eq!(b.load(1), 10);
        b.fetch_min(1, 2);
        assert_eq!(b.load(1), 2);
    }

    #[test]
    fn host_round_trip() {
        let b = BufU64::from_slice(0, &[5, 6, 7]);
        assert_eq!(b.to_host(), vec![5, 6, 7]);
        b.host_fill(1);
        assert_eq!(b.to_host(), vec![1, 1, 1]);
        b.host_write(&[9, 8, 7]);
        assert_eq!(b.to_host(), vec![9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn host_write_checks_len() {
        BufU32::new(0, 2).host_write(&[1]);
    }
}
