//! Per-wavefront access coalescer.
//!
//! GPU memory requests are issued per cache line, not per lane: 64 lanes
//! loading 64 consecutive `u32`s produce 4 line requests, while 64 random
//! gathers produce up to 64. We model that with a small per-wave
//! recently-used line set (approximating the CU's L1 vector cache and the
//! coalescing stage): an access whose line is resident is free; a miss is
//! forwarded to the next level (functional-mode counters or the shared L2).

/// Small set-associative line filter, LRU within each set.
#[derive(Debug, Clone)]
pub struct Coalescer {
    /// log2(number of sets).
    set_bits: u32,
    ways: usize,
    line_bits: u32,
    /// `sets[set][way]` holds line tags (`u64::MAX` = invalid).
    sets: Vec<u64>,
    /// LRU stamps parallel to `sets`.
    stamps: Vec<u64>,
    tick: u64,
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses forwarded to the next level.
    pub misses: u64,
}

impl Coalescer {
    /// A coalescer covering `lines` cache lines of `line_bytes` each,
    /// organized as 4-way sets. `lines` is rounded up to a power of two and
    /// at least 4.
    pub fn new(lines: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        let ways = 4usize;
        let sets = (lines.max(ways) / ways).next_power_of_two();
        Self {
            set_bits: sets.trailing_zeros(),
            ways,
            line_bits: line_bytes.trailing_zeros(),
            sets: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line index of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    /// Access `len` bytes at `addr`; returns the number of *new* line
    /// fetches this access generates (0, 1, or 2 for a straddling access),
    /// pushing each missed line id into `missed`.
    pub fn access(&mut self, addr: u64, len: u32, missed: &mut Vec<u64>) -> u32 {
        let first = self.line_of(addr);
        let last = self.line_of(addr + u64::from(len) - 1);
        let mut fetches = 0;
        for line in first..=last {
            if self.touch(line) {
                self.hits += 1;
            } else {
                self.misses += 1;
                missed.push(line);
                fetches += 1;
            }
        }
        fetches
    }

    /// Touch a line; true if it was resident.
    fn touch(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line & ((1 << self.set_bits) - 1)) as usize;
        let base = set * self.ways;
        let slots = &mut self.sets[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            return true;
        }
        // Evict LRU way.
        let (victim, _) = self.stamps[base..base + self.ways]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .unwrap();
        self.sets[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Reset residency and counters (new wave reuses the allocation).
    pub fn reset(&mut self) {
        self.sets.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_coalesce() {
        let mut c = Coalescer::new(64, 64);
        let mut missed = Vec::new();
        // 64 consecutive u32 reads = 16 per line -> 4 lines.
        for i in 0..64u64 {
            c.access(i * 4, 4, &mut missed);
        }
        assert_eq!(missed.len(), 4);
        assert_eq!(c.misses, 4);
        assert_eq!(c.hits, 60);
    }

    #[test]
    fn random_gathers_do_not_coalesce() {
        let mut c = Coalescer::new(64, 64);
        let mut missed = Vec::new();
        for i in 0..32u64 {
            c.access(i * 4096, 4, &mut missed); // distinct lines, distinct sets
        }
        assert_eq!(c.misses, 32);
    }

    #[test]
    fn straddling_access_counts_two_lines() {
        let mut c = Coalescer::new(16, 64);
        let mut missed = Vec::new();
        let fetched = c.access(62, 4, &mut missed); // crosses 64-byte boundary
        assert_eq!(fetched, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Coalescer::new(4, 64); // 1 set, 4 ways
        let mut missed = Vec::new();
        for line in 0..4u64 {
            c.access(line * 64, 4, &mut missed);
        }
        c.access(0, 4, &mut missed); // refresh line 0
        c.access(4 * 64, 4, &mut missed); // evicts line 1 (oldest)
        missed.clear();
        c.access(0, 4, &mut missed);
        assert!(missed.is_empty(), "line 0 should still be resident");
        c.access(64, 4, &mut missed);
        assert_eq!(missed.len(), 1, "line 1 should have been evicted");
    }

    #[test]
    fn reset_clears_residency() {
        let mut c = Coalescer::new(16, 64);
        let mut missed = Vec::new();
        c.access(0, 4, &mut missed);
        c.reset();
        missed.clear();
        c.access(0, 4, &mut missed);
        assert_eq!(missed.len(), 1);
        assert_eq!(c.hits, 0);
    }
}
