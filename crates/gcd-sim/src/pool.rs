//! Buffer-pool integrity primitives: the typed pool fault taxonomy, the
//! FNV-1a content checksum shared by the pool and the `xbfs-core`
//! certificate layer, and the canary constant stamped on parked entries.
//!
//! Why FNV-1a: mixing one word is `acc' = (acc ^ w) * PRIME`. XOR with a
//! fixed accumulator and multiplication by an odd constant are both
//! bijections on `u64`, so changing a *single* word (of any width up to 64
//! bits) always changes the final digest — a lone bit flip in a parked
//! buffer is detected with certainty, not merely with high probability.
//! Multi-word corruptions can in principle cancel, but that is outside the
//! single-event-upset model this layer defends against (DESIGN.md §9).

use std::fmt;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mix one word into an FNV-1a accumulator.
#[inline]
pub fn fnv1a_mix(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(FNV_PRIME)
}

/// FNV-1a digest of a word stream.
pub fn fnv1a<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    words.into_iter().fold(FNV_OFFSET, fnv1a_mix)
}

/// Base value of the per-entry canary; each parked buffer stores
/// `POOL_CANARY ^ address ^ length` so a clobbered free-list entry is
/// distinguishable from clobbered buffer contents.
pub const POOL_CANARY: u64 = 0x5a5a_c3c3_9696_f00d;

/// One splitmix64 step — the workspace's standard seedable stream, used
/// here to pick deterministic corruption targets in parked buffers.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A detected buffer-pool integrity fault.
///
/// Release-side faults ([`Self::DoubleRelease`], [`Self::ForeignBuffer`])
/// are caller bugs and are returned to the caller (plus recorded in the
/// device's fault ledger). Acquire-side faults ([`Self::ChecksumMismatch`],
/// [`Self::CanaryClobbered`]) are silent-data-corruption detections: the
/// poisoned entry is quarantined (dropped) and the acquire transparently
/// falls back to a fresh allocation, with the fault left in the ledger for
/// the integrity layer to surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A buffer with this base address is already parked in the free list.
    DoubleRelease {
        /// Device base address of the buffer.
        addr: u64,
        /// Element count of the buffer.
        len: usize,
    },
    /// The buffer does not come from this device's address space.
    ForeignBuffer {
        /// Device base address of the buffer.
        addr: u64,
        /// Element count of the buffer.
        len: usize,
    },
    /// A parked buffer's contents no longer match the checksum recorded
    /// when it was released — corruption while sitting in the pool.
    ChecksumMismatch {
        /// Device base address of the buffer.
        addr: u64,
        /// Element count of the buffer.
        len: usize,
        /// Digest recorded at release time.
        expected: u64,
        /// Digest recomputed at detection time.
        actual: u64,
    },
    /// A parked entry's canary word was clobbered (free-list metadata
    /// corruption rather than buffer-content corruption).
    CanaryClobbered {
        /// Device base address of the buffer.
        addr: u64,
        /// Element count of the buffer.
        len: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DoubleRelease { addr, len } => write!(
                f,
                "double release: buffer at {addr:#x} ({len} elems) is already in the pool"
            ),
            Self::ForeignBuffer { addr, len } => write!(
                f,
                "foreign buffer: {addr:#x} ({len} elems) was not allocated by this device"
            ),
            Self::ChecksumMismatch {
                addr,
                len,
                expected,
                actual,
            } => write!(
                f,
                "pooled buffer at {addr:#x} ({len} elems) corrupted while parked: \
                 checksum {actual:#018x}, expected {expected:#018x}"
            ),
            Self::CanaryClobbered { addr, len } => write!(
                f,
                "pool canary clobbered for buffer at {addr:#x} ({len} elems)"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_single_word_flip_always_changes_digest() {
        // The bijection argument, checked over a bit sweep: flipping any
        // single bit of any word changes the digest.
        let words = [7u64, 0, u64::MAX, 0x1234_5678_9abc_def0];
        let base = fnv1a(words.iter().copied());
        for i in 0..words.len() {
            for bit in 0..64 {
                let mut w = words;
                w[i] ^= 1 << bit;
                assert_ne!(fnv1a(w.iter().copied()), base, "word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_varies() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut a));
    }

    #[test]
    fn pool_errors_render() {
        let e = PoolError::ChecksumMismatch {
            addr: 0x40,
            len: 8,
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("corrupted while parked"));
        assert!(PoolError::DoubleRelease { addr: 0, len: 1 }
            .to_string()
            .contains("double release"));
    }
}
