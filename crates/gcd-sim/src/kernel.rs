//! Kernel launch descriptors, per-wave statistics and the rocprof-style
//! per-kernel report.

use serde::{Deserialize, Serialize};

/// Parameters of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchCfg {
    /// Kernel name as it would appear in rocprofiler output.
    pub name: &'static str,
    /// Number of logical work-items (threads).
    pub items: usize,
    /// Vector registers per thread the kernel "compiles" to; drives
    /// occupancy. BFS expansion kernels are register-hungry (~40–64),
    /// simple scans are light (~16–24).
    pub registers_per_thread: u32,
}

impl LaunchCfg {
    /// A launch with the default register budget (32/thread).
    pub fn new(name: &'static str, items: usize) -> Self {
        Self {
            name,
            items,
            registers_per_thread: 32,
        }
    }

    /// Override the register budget.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }
}

/// Raw counters accumulated while executing wavefronts. Merged across waves
/// with [`WaveStats::merge`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveStats {
    /// Wave (lockstep) instructions issued.
    pub instructions: u64,
    /// Traced memory accesses (lane granular).
    pub accesses: u64,
    /// Coalescer (L1-level) hits.
    pub l1_hits: u64,
    /// Requests leaving the coalescer toward L2.
    pub l2_accesses: u64,
    /// L2 hits (timing mode only; 0 in functional mode).
    pub l2_hits: u64,
    /// Lines fetched from HBM (L2 misses in timing mode, coalescer misses
    /// in functional mode).
    pub hbm_lines: u64,
    /// Atomic operations executed.
    pub atomics: u64,
    /// Atomic ops that conflicted on a line within one wave op (serialized).
    pub atomic_conflicts: u64,
    /// Bytes stored (write traffic, charged at half read cost).
    pub bytes_written: u64,
}

impl WaveStats {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &WaveStats) {
        self.instructions += other.instructions;
        self.accesses += other.accesses;
        self.l1_hits += other.l1_hits;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.hbm_lines += other.hbm_lines;
        self.atomics += other.atomics;
        self.atomic_conflicts += other.atomic_conflicts;
        self.bytes_written += other.bytes_written;
    }
}

/// What rocprofiler would report for one kernel dispatch — the schema of
/// the paper's Tables III–V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name as configured at launch.
    pub name: String,
    /// Free-form phase tag (the BFS level / strategy), set via
    /// `Device::set_phase`.
    pub phase: String,
    /// Modeled kernel time in milliseconds (includes launch overhead).
    pub runtime_ms: f64,
    /// `L2CacheHit` (%).
    pub l2_hit_pct: f64,
    /// `MemUnitBusy` (%).
    pub mem_busy_pct: f64,
    /// `FetchSize` (KB) — data fetched from HBM.
    pub fetch_kb: f64,
    /// Raw counters for deeper analysis.
    pub stats: WaveStats,
    /// Occupancy the cost model derived (resident waves / max waves).
    pub occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = WaveStats {
            instructions: 1,
            accesses: 2,
            l1_hits: 3,
            l2_accesses: 4,
            l2_hits: 5,
            hbm_lines: 6,
            atomics: 7,
            atomic_conflicts: 8,
            bytes_written: 9,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.bytes_written, 18);
    }

    #[test]
    fn launch_cfg_builder() {
        let c = LaunchCfg::new("k", 100).with_registers(48);
        assert_eq!(c.registers_per_thread, 48);
        assert_eq!(c.items, 100);
    }
}
