#![warn(missing_docs)]

//! `gcd-sim` — a software stand-in for an AMD MI250X Graphics Compute Die.
//!
//! The XBFS-on-Frontier paper is evaluated on hardware we cannot ship: one
//! GCD of an MI250X under HIP, profiled with rocprofiler. This crate
//! substitutes that substrate (DESIGN.md §2) with an execution model that
//! is *functionally real* — kernels written against it compute actual BFS
//! results — while charging costs from the same quantities the paper
//! reasons about:
//!
//! * lockstep **wavefronts** (64 lanes AMD / 32 NVIDIA) with
//!   `__ballot`/`__any`/`__shfl`/`__popcll` intrinsics ([`wave`]),
//! * a **memory hierarchy** — per-wave coalescer ([`coalescer`]) in front
//!   of a set-associative L2 ([`l2`]) and an HBM bandwidth model — that
//!   yields rocprofiler's `FetchSize` / `L2CacheHit` / `MemUnitBusy`
//!   counters ([`kernel::KernelReport`]),
//! * **atomics** with per-line contention serialization,
//! * **kernel-launch and device-sync costs** with per-stream timelines
//!   (AMD sync ≫ NVIDIA sync, the effect behind §IV-B stream
//!   consolidation), and
//! * a **compiler/register model** (clang vs hipcc vs no `-O3`, §IV-A)
//!   feeding an occupancy-based issue model.
//!
//! Two fidelity levels ([`device::ExecMode`]): `Functional` runs waves in
//! parallel on host cores for end-to-end GTEPS experiments; `Timing`
//! replays waves through the shared L2 to regenerate the paper's profiler
//! tables — by default via the two-phase parallel capture/replay schedule
//! ([`device::TimingReplay`]), which is bit-identical to the sequential
//! reference path.

pub mod arch;
pub mod buffer;
pub mod coalescer;
pub mod device;
pub mod group;
pub mod kernel;
pub mod l2;
pub mod pool;
pub mod profiler;
pub mod wave;

pub use arch::{ArchProfile, Compiler, CompilerModel};
pub use buffer::{BufU32, BufU64};
pub use device::{Device, ExecMode, PoolGauges, TimingReplay};
pub use group::{GroupCfg, GroupCtx};
pub use kernel::{KernelReport, LaunchCfg, WaveStats};
pub use pool::{fnv1a, fnv1a_mix, splitmix64, PoolError};
pub use profiler::{group_by_phase, PhaseProfile};
pub use wave::{popc64, WaveCtx};
