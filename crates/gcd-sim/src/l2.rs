//! Shared L2 cache model.
//!
//! Timing-mode runs feed every coalescer miss through this set-associative
//! LRU model; its miss count × line size is exactly the `FetchSize` counter
//! rocprofiler reports (Tables I and III–V of the paper), and
//! `hits / (hits + misses)` is `L2CacheHit`.

/// Set-associative LRU cache over line addresses.
#[derive(Debug, Clone)]
pub struct L2Model {
    set_mask: u64,
    ways: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed (fetched from HBM).
    pub misses: u64,
}

impl L2Model {
    /// Build from a capacity in bytes, associativity and line size.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1);
        assert!(line_bytes.is_power_of_two());
        let lines = (capacity_bytes / line_bytes).max(ways);
        let sets = (lines / ways).next_power_of_two();
        Self {
            set_mask: sets as u64 - 1,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one line; returns true on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        if let Some(w) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
        {
            self.stamps[base + w] = self.tick;
            self.hits += 1;
            return true;
        }
        let (victim, _) = self.stamps[base..base + self.ways]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .unwrap();
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        self.misses += 1;
        false
    }

    /// Hit rate in percent over all accesses so far (0 if none).
    pub fn hit_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Zero the counters but keep residency (per-kernel accounting while the
    /// cache stays warm across kernels, as on real hardware).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Cold-start the cache (new BFS run).
    pub fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_line_hits() {
        let mut l2 = L2Model::new(1 << 20, 16, 64);
        assert!(!l2.access_line(7));
        for _ in 0..9 {
            assert!(l2.access_line(7));
        }
        assert_eq!(l2.hits, 9);
        assert_eq!(l2.misses, 1);
        assert!((l2.hit_pct() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_evicts() {
        // 4 KiB cache, 64 B lines => 64 lines total, 4-way.
        let mut l2 = L2Model::new(4096, 4, 64);
        for line in 0..128u64 {
            l2.access_line(line);
        }
        assert_eq!(l2.misses, 128);
        // Re-touch the first half: all evicted by the second half.
        l2.reset_counters();
        for line in 0..64u64 {
            l2.access_line(line);
        }
        assert_eq!(l2.hits, 0);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut l2 = L2Model::new(1 << 16, 16, 64); // 1024 lines
        for round in 0..3 {
            for line in 0..512u64 {
                let hit = l2.access_line(line);
                if round > 0 {
                    assert!(hit, "line {line} fell out in round {round}");
                }
            }
        }
    }

    #[test]
    fn invalidate_cold_starts() {
        let mut l2 = L2Model::new(1 << 16, 16, 64);
        l2.access_line(1);
        l2.invalidate();
        assert!(!l2.access_line(1));
        assert_eq!(l2.misses, 1);
    }

    #[test]
    fn hit_pct_empty_is_zero() {
        assert_eq!(L2Model::new(4096, 4, 64).hit_pct(), 0.0);
    }
}
