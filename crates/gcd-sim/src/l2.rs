//! Shared L2 cache model.
//!
//! Timing-mode runs feed every coalescer miss through this set-associative
//! LRU model; its miss count × line size is exactly the `FetchSize` counter
//! rocprofiler reports (Tables I and III–V of the paper), and
//! `hits / (hits + misses)` is `L2CacheHit`.

/// Set-associative LRU cache over line addresses.
#[derive(Debug, Clone)]
pub struct L2Model {
    set_mask: u64,
    ways: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed (fetched from HBM).
    pub misses: u64,
}

impl L2Model {
    /// Build from a capacity in bytes, associativity and line size.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1);
        assert!(line_bytes.is_power_of_two());
        let lines = (capacity_bytes / line_bytes).max(ways);
        let sets = (lines / ways).next_power_of_two();
        Self {
            set_mask: sets as u64 - 1,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one line; returns true on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        self.access_with_stamp(line, self.tick)
    }

    /// Core LRU step with an explicit stamp — shared by the sequential path
    /// ([`Self::access_line`]) and the batched [`Self::replay`].
    fn access_with_stamp(&mut self, line: u64, stamp: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        if let Some(w) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
        {
            self.stamps[base + w] = stamp;
            self.hits += 1;
            return true;
        }
        let (victim, _) = self.stamps[base..base + self.ways]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .unwrap();
        self.tags[base + victim] = line;
        self.stamps[base + victim] = stamp;
        self.misses += 1;
        false
    }

    /// Replay a batch of line accesses, sharded by cache set, and return the
    /// per-access hit/miss verdicts in the original order.
    ///
    /// Bit-identical to calling [`Self::access_line`] once per element:
    /// access `p` uses stamp `tick + p + 1` (exactly the tick the sequential
    /// path would assign), sets are fully independent (tags/stamps/eviction
    /// never cross a set boundary), and within one set the accesses are
    /// processed in ascending global position. Grouping the trace by set
    /// makes each run a disjoint-region task — the shape a parallel
    /// classifier wants — while the hit/miss counters remain plain sums.
    pub fn replay(&mut self, lines: &[u64]) -> Vec<bool> {
        let base = self.tick;
        let mut order: Vec<u32> = (0..lines.len() as u32).collect();
        order.sort_unstable_by_key(|&p| (lines[p as usize] & self.set_mask, p));
        let mut hits_out = vec![false; lines.len()];
        for &p in &order {
            let line = lines[p as usize];
            hits_out[p as usize] = self.access_with_stamp(line, base + u64::from(p) + 1);
        }
        self.tick = base + lines.len() as u64;
        hits_out
    }

    /// Hit rate in percent over all accesses so far (0 if none).
    pub fn hit_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Zero the counters but keep residency (per-kernel accounting while the
    /// cache stays warm across kernels, as on real hardware).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Cold-start the cache (new BFS run).
    pub fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_line_hits() {
        let mut l2 = L2Model::new(1 << 20, 16, 64);
        assert!(!l2.access_line(7));
        for _ in 0..9 {
            assert!(l2.access_line(7));
        }
        assert_eq!(l2.hits, 9);
        assert_eq!(l2.misses, 1);
        assert!((l2.hit_pct() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_evicts() {
        // 4 KiB cache, 64 B lines => 64 lines total, 4-way.
        let mut l2 = L2Model::new(4096, 4, 64);
        for line in 0..128u64 {
            l2.access_line(line);
        }
        assert_eq!(l2.misses, 128);
        // Re-touch the first half: all evicted by the second half.
        l2.reset_counters();
        for line in 0..64u64 {
            l2.access_line(line);
        }
        assert_eq!(l2.hits, 0);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut l2 = L2Model::new(1 << 16, 16, 64); // 1024 lines
        for round in 0..3 {
            for line in 0..512u64 {
                let hit = l2.access_line(line);
                if round > 0 {
                    assert!(hit, "line {line} fell out in round {round}");
                }
            }
        }
    }

    #[test]
    fn invalidate_cold_starts() {
        let mut l2 = L2Model::new(1 << 16, 16, 64);
        l2.access_line(1);
        l2.invalidate();
        assert!(!l2.access_line(1));
        assert_eq!(l2.misses, 1);
    }

    #[test]
    fn hit_pct_empty_is_zero() {
        assert_eq!(L2Model::new(4096, 4, 64).hit_pct(), 0.0);
    }

    /// xorshift-driven trace: replay must agree with access_line per access
    /// and leave identical tags/stamps/tick/hit/miss state.
    #[test]
    fn replay_matches_sequential_access() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 192 // small line space on a 64-line cache => heavy eviction
        };
        let trace: Vec<u64> = (0..4096).map(|_| next()).collect();

        let mut seq = L2Model::new(4096, 4, 64);
        let mut par = seq.clone();
        // Warm both caches identically so the replay starts mid-stream.
        for &l in &trace[..512] {
            seq.access_line(l);
            par.access_line(l);
        }
        let seq_hits: Vec<bool> = trace[512..].iter().map(|&l| seq.access_line(l)).collect();
        let par_hits = par.replay(&trace[512..]);
        assert_eq!(seq_hits, par_hits);
        assert_eq!(seq.hits, par.hits);
        assert_eq!(seq.misses, par.misses);
        assert_eq!(seq.tick, par.tick);
        assert_eq!(seq.tags, par.tags);
        assert_eq!(seq.stamps, par.stamps);
    }

    #[test]
    fn replay_empty_is_noop() {
        let mut l2 = L2Model::new(4096, 4, 64);
        l2.access_line(3);
        let before = (l2.tick, l2.hits, l2.misses);
        assert!(l2.replay(&[]).is_empty());
        assert_eq!((l2.tick, l2.hits, l2.misses), before);
    }
}
