//! Workgroup (thread-block / CTA) execution: multiple wavefronts sharing
//! LDS (local data share) and a barrier — the "block-centric updating" tier
//! of XBFS's workload balancing.
//!
//! A group kernel is structured as *phases* separated by [`GroupCtx::barrier`];
//! within a phase the group's waves execute with no ordering guarantees
//! (emulated sequentially), exactly the contract real LDS-sharing kernels
//! must satisfy.

use crate::coalescer::Coalescer;
use crate::kernel::WaveStats;
use crate::wave::{MemSink, WaveCtx};

/// Launch shape of a workgroup kernel.
#[derive(Debug, Clone, Copy)]
pub struct GroupCfg {
    /// Kernel name (rocprofiler row).
    pub name: &'static str,
    /// Number of workgroups.
    pub groups: usize,
    /// Wavefronts per workgroup (AMD allows up to 16; XBFS uses 4).
    pub waves_per_group: usize,
    /// LDS bytes per workgroup (occupancy limiter; 64 KiB per CU).
    pub lds_bytes: usize,
    /// Vector registers per thread.
    pub registers_per_thread: u32,
}

impl GroupCfg {
    /// A group launch with 4 waves and 16 KiB LDS per group.
    pub fn new(name: &'static str, groups: usize) -> Self {
        Self {
            name,
            groups,
            waves_per_group: 4,
            lds_bytes: 16 << 10,
            registers_per_thread: 32,
        }
    }

    /// Override waves per group.
    pub fn with_waves(mut self, waves: usize) -> Self {
        assert!(waves >= 1);
        self.waves_per_group = waves;
        self
    }

    /// Override LDS usage.
    pub fn with_lds(mut self, bytes: usize) -> Self {
        self.lds_bytes = bytes;
        self
    }

    /// Override the register budget.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }
}

/// Execution context of one workgroup.
pub struct GroupCtx<'a> {
    group_id: usize,
    cfg: GroupCfg,
    width: usize,
    lds: Vec<u32>,
    /// Aggregated stats of all the group's wave executions.
    pub stats: WaveStats,
    /// Per-wave coalescers (waves of a group share the CU's L1 in reality;
    /// one coalescer per wave is the conservative choice).
    coalescers: Vec<Coalescer>,
    sink: MemSink<'a>,
    line_bytes: usize,
    items_per_group: usize,
}

impl<'a> GroupCtx<'a> {
    pub(crate) fn new(
        group_id: usize,
        cfg: GroupCfg,
        width: usize,
        line_bytes: usize,
        coalescer_lines: usize,
        sink: MemSink<'a>,
    ) -> Self {
        let coalescers = (0..cfg.waves_per_group)
            .map(|_| Coalescer::new(coalescer_lines, line_bytes))
            .collect();
        Self {
            group_id,
            cfg,
            width,
            lds: vec![0; cfg.lds_bytes / 4],
            stats: WaveStats::default(),
            coalescers,
            sink,
            line_bytes,
            items_per_group: cfg.waves_per_group * width,
        }
    }

    /// This group's index within the launch.
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// Wavefronts in this group.
    pub fn waves_per_group(&self) -> usize {
        self.cfg.waves_per_group
    }

    /// Lanes per wavefront.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Threads per group.
    pub fn group_size(&self) -> usize {
        self.items_per_group
    }

    /// Execute `body` as wavefront `wave` of this group. The wave sees
    /// global ids `group_id * group_size + wave * width + lane`.
    pub fn wave<F: FnOnce(&mut WaveCtx)>(&mut self, wave: usize, body: F) {
        assert!(wave < self.cfg.waves_per_group, "wave index out of range");
        let global_wave = self.group_id * self.cfg.waves_per_group + wave;
        let items = (self.group_id + 1) * self.items_per_group; // full groups
        let _ = self.line_bytes;
        let mut ctx = WaveCtx::new(
            global_wave,
            self.width,
            items,
            &mut self.coalescers[wave],
            self.sink.reborrow(),
        );
        body(&mut ctx);
        self.stats.merge(&ctx.stats);
    }

    /// Group-wide barrier (`s_barrier`): every wave pays one instruction.
    pub fn barrier(&mut self) {
        self.stats.instructions += self.cfg.waves_per_group as u64;
    }

    /// Read LDS words at `idxs` (one per lane); charges one wave
    /// instruction per `width` accesses. LDS traffic never touches the
    /// memory hierarchy.
    pub fn lds_gather(&mut self, idxs: &[usize], out: &mut Vec<u32>) {
        if idxs.is_empty() {
            return;
        }
        self.stats.instructions += idxs.len().div_ceil(self.width) as u64;
        for &i in idxs {
            out.push(self.lds[i]);
        }
    }

    /// Write LDS words; same charging as [`Self::lds_gather`].
    pub fn lds_scatter(&mut self, writes: &[(usize, u32)]) {
        if writes.is_empty() {
            return;
        }
        self.stats.instructions += writes.len().div_ceil(self.width) as u64;
        for &(i, v) in writes {
            self.lds[i] = v;
        }
    }

    /// Number of LDS words available.
    pub fn lds_len(&self) -> usize {
        self.lds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_builder() {
        let c = GroupCfg::new("k", 10)
            .with_waves(8)
            .with_lds(4096)
            .with_registers(64);
        assert_eq!(c.waves_per_group, 8);
        assert_eq!(c.lds_bytes, 4096);
        assert_eq!(c.registers_per_thread, 64);
    }

    #[test]
    fn lds_round_trip_and_charging() {
        let mut g = GroupCtx::new(0, GroupCfg::new("k", 1), 64, 64, 128, MemSink::Functional);
        assert_eq!(g.lds_len(), (16 << 10) / 4);
        g.lds_scatter(&[(0, 7), (100, 9)]);
        let mut out = Vec::new();
        g.lds_gather(&[100, 0], &mut out);
        assert_eq!(out, vec![9, 7]);
        assert_eq!(g.stats.instructions, 2);
        // LDS ops never hit the memory system.
        assert_eq!(g.stats.accesses, 0);
    }

    #[test]
    fn barrier_charges_all_waves() {
        let mut g = GroupCtx::new(
            0,
            GroupCfg::new("k", 1).with_waves(4),
            64,
            64,
            128,
            MemSink::Functional,
        );
        g.barrier();
        assert_eq!(g.stats.instructions, 4);
    }

    #[test]
    fn wave_ids_are_global() {
        let mut g = GroupCtx::new(
            3,
            GroupCfg::new("k", 8).with_waves(4),
            64,
            64,
            128,
            MemSink::Functional,
        );
        let mut seen = Vec::new();
        for wv in 0..4 {
            g.wave(wv, |w| {
                seen.push((w.wave_id(), w.lanes().next().unwrap()));
            });
        }
        // Group 3, 4 waves of width 64: global waves 12..16.
        assert_eq!(seen, vec![(12, 768), (13, 832), (14, 896), (15, 960)]);
    }

    #[test]
    #[should_panic(expected = "wave index out of range")]
    fn rejects_bad_wave_index() {
        let mut g = GroupCtx::new(
            0,
            GroupCfg::new("k", 1).with_waves(2),
            64,
            64,
            128,
            MemSink::Functional,
        );
        g.wave(2, |_| {});
    }
}
