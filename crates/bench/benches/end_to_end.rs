//! Criterion bench for Fig. 8: XBFS vs every baseline engine on each of
//! the six dataset analogs (small scale; the `repro fig8` binary runs the
//! full comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd_sim::Device;
use xbfs_baselines::{
    EnterpriseLike, GpuBfs, GunrockLike, HierarchicalQueue, SimpleTopDown, SsspAsync,
};
use xbfs_bench::common::default_source;
use xbfs_bench::Scale;
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::Dataset;

fn bench_fig8(c: &mut Criterion) {
    let scale = Scale::smoke();
    for d in [Dataset::LiveJournal, Dataset::Rmat25] {
        let g = scale.dataset(d, 1);
        let src = default_source(&g);
        let mut group = c.benchmark_group(format!("fig8_{d}"));
        let cfg = XbfsConfig::default();
        let dev = Device::mi250x();
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_function("xbfs", |b| {
            b.iter(|| std::hint::black_box(xbfs.run(src).unwrap()))
        });
        let engines: Vec<Box<dyn GpuBfs>> = vec![
            Box::new(GunrockLike),
            Box::new(EnterpriseLike),
            Box::new(SimpleTopDown),
            Box::new(HierarchicalQueue),
            Box::new(SsspAsync),
        ];
        for e in engines {
            let dev = Device::mi250x();
            group.bench_with_input(BenchmarkId::from_parameter(e.name()), &e, |b, e| {
                b.iter(|| std::hint::black_box(e.run(&dev, &g, src)))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
