//! Criterion bench for Table I / the 17.9% Fig. 8 claim: full XBFS on the
//! R-MAT analog with and without degree-aware neighbor re-arrangement
//! (plus the adversarial ascending order as a sanity pole).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbfs_bench::common::{default_source, mi250x_functional};
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};
use xbfs_graph::{rearrange_by_degree, RearrangeOrder};

fn bench_rearrangement(c: &mut Criterion) {
    let base = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&base);
    let mut group = c.benchmark_group("rearrangement");
    for (label, order) in [
        ("vertex-id", RearrangeOrder::VertexId),
        ("degree-descending", RearrangeOrder::DegreeDescending),
        ("degree-ascending", RearrangeOrder::DegreeAscending),
    ] {
        let g = rearrange_by_degree(&base, order);
        let cfg = XbfsConfig::default();
        let dev = mi250x_functional(&cfg);
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &xbfs, |b, x| {
            b.iter(|| std::hint::black_box(x.run(src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rearrangement
}
criterion_main!(benches);
