//! Criterion bench for the §IV ablations: every AMD-specific optimization
//! toggled off individually.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbfs_bench::common::{default_source, mi250x_functional};
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};

fn bench_ablations(c: &mut Criterion) {
    let g = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&g);
    let variants: Vec<(&str, XbfsConfig)> = vec![
        ("optimized", XbfsConfig::optimized_amd()),
        (
            "multi-stream",
            XbfsConfig {
                multi_stream: true,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no-nfg",
            XbfsConfig {
                nfg: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "bu-balancing-on",
            XbfsConfig {
                balancing_bottom_up: true,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no-proactive",
            XbfsConfig {
                proactive: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no-td-balancing",
            XbfsConfig {
                balancing_top_down: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablations");
    for (label, cfg) in variants {
        let dev = mi250x_functional(&cfg);
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &xbfs, |b, x| {
            b.iter(|| std::hint::black_box(x.run(src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
