//! Criterion bench for Fig. 5: the three porting stages — CUDA original on
//! the P6000 profile, naive hipify on MI250X, optimized AMD port.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd_sim::{ArchProfile, Compiler, ExecMode};
use xbfs_bench::common::{default_source, mk_device};
use xbfs_core::{Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};

fn bench_porting(c: &mut Criterion) {
    let g = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&g);
    let configs: [(&str, ArchProfile, XbfsConfig, Compiler); 3] = [
        (
            "cuda-original-p6000",
            ArchProfile::p6000(),
            XbfsConfig::cuda_original(),
            Compiler::ClangO3,
        ),
        (
            "naive-hipify-mi250x",
            ArchProfile::mi250x_gcd(),
            XbfsConfig::naive_port(),
            Compiler::HipccO3,
        ),
        (
            "optimized-mi250x",
            ArchProfile::mi250x_gcd(),
            XbfsConfig::optimized_amd(),
            Compiler::ClangO3,
        ),
    ];
    let mut group = c.benchmark_group("fig5_porting_stages");
    for (label, arch, cfg, compiler) in configs {
        let dev = mk_device(arch, ExecMode::Functional, &cfg, compiler);
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &xbfs, |b, x| {
            b.iter(|| std::hint::black_box(x.run(src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_porting
}
criterion_main!(benches);
