//! Criterion bench for Fig. 7 / Tables III–VI: one full forced-strategy
//! BFS per strategy on the R-MAT dataset, plus the adaptive controller run
//! that mixes them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbfs_bench::common::{default_source, mi250x_functional};
use xbfs_core::{Strategy, Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};

fn bench_strategies(c: &mut Criterion) {
    let g = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&g);
    let mut group = c.benchmark_group("forced_strategy_bfs");
    for strat in [Strategy::ScanFree, Strategy::SingleScan, Strategy::BottomUp] {
        let cfg = XbfsConfig::forced(strat);
        let dev = mi250x_functional(&cfg);
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(strat), &xbfs, |b, xbfs| {
            b.iter(|| std::hint::black_box(xbfs.run(src).unwrap()))
        });
    }
    let cfg = XbfsConfig::default();
    let dev = mi250x_functional(&cfg);
    let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
    group.bench_function("adaptive", |b| {
        b.iter(|| std::hint::black_box(xbfs.run(src).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}
criterion_main!(benches);
