//! Criterion bench for the §IV-A compiler study: forced bottom-up BFS under
//! clang -O3, hipcc -O3 and clang without -O3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd_sim::{ArchProfile, Compiler, ExecMode};
use xbfs_bench::common::{default_source, mk_device};
use xbfs_core::{Strategy, Xbfs, XbfsConfig};
use xbfs_graph::generators::{rmat_graph, RmatParams};

fn bench_compilers(c: &mut Criterion) {
    let g = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&g);
    let cfg = XbfsConfig::forced(Strategy::BottomUp);
    let mut group = c.benchmark_group("compiler_model_bottom_up");
    for (label, compiler) in [
        ("clang-O3", Compiler::ClangO3),
        ("hipcc-O3", Compiler::HipccO3),
        ("clang-O0", Compiler::ClangO0),
    ] {
        let dev = mk_device(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            &cfg,
            compiler,
        );
        let xbfs = Xbfs::new(&dev, &g, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &xbfs, |b, x| {
            b.iter(|| std::hint::black_box(x.run(src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compilers
}
criterion_main!(benches);
