//! Criterion bench for the multi-GCD engine: strong scaling and the
//! push-only vs direction-optimizing comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbfs_bench::common::default_source;
use xbfs_graph::generators::{rmat_graph, RmatParams};
use xbfs_multi_gcd::{ClusterConfig, GcdCluster, LinkModel};

fn bench_distributed(c: &mut Criterion) {
    let g = rmat_graph(RmatParams::graph500(14), 7);
    let src = default_source(&g);
    let mut group = c.benchmark_group("distributed_bfs");
    for num_gcds in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("direction_optimizing", num_gcds),
            &num_gcds,
            |b, &p| {
                b.iter(|| {
                    let cfg = ClusterConfig {
                        num_gcds: p,
                        ..ClusterConfig::node_of_8()
                    };
                    let mut cluster =
                        GcdCluster::new(&g, cfg, LinkModel::frontier()).expect("valid config");
                    std::hint::black_box(cluster.run(src).expect("fault-free run"))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("push_only", num_gcds),
            &num_gcds,
            |b, &p| {
                b.iter(|| {
                    let cfg = ClusterConfig {
                        num_gcds: p,
                        push_only: true,
                        ..ClusterConfig::node_of_8()
                    };
                    let mut cluster =
                        GcdCluster::new(&g, cfg, LinkModel::frontier()).expect("valid config");
                    std::hint::black_box(cluster.run(src).expect("fault-free run"))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_distributed
}
criterion_main!(benches);
