//! Criterion microbenches for the `gcd-sim` substrate itself — the cost of
//! the machinery behind Tables III–V (cache models, wave ops, kernel
//! dispatch) as host wall-clock.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcd_sim::coalescer::Coalescer;
use gcd_sim::l2::L2Model;
use gcd_sim::{ArchProfile, Device, ExecMode, LaunchCfg};

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_model");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("sequential_lines", |b| {
        b.iter(|| {
            let mut l2 = L2Model::new(8 << 20, 16, 64);
            for line in 0..n {
                std::hint::black_box(l2.access_line(line));
            }
        })
    });
    group.bench_function("random_lines", |b| {
        b.iter(|| {
            let mut l2 = L2Model::new(8 << 20, 16, 64);
            let mut x = 0x12345678u64;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                std::hint::black_box(l2.access_line(x >> 40));
            }
        })
    });
    group.finish();
}

fn bench_coalescer(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescer");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("streaming_access", |b| {
        b.iter(|| {
            let mut co = Coalescer::new(128, 64);
            let mut missed = Vec::new();
            for i in 0..n {
                missed.clear();
                std::hint::black_box(co.access(i * 4, 4, &mut missed));
            }
        })
    });
    group.finish();
}

fn bench_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dispatch");
    for (label, mode) in [
        ("functional", ExecMode::Functional),
        ("timing", ExecMode::Timing),
    ] {
        let dev = Device::new(ArchProfile::mi250x_gcd(), mode, 1);
        let buf = dev.alloc_u32(1 << 16);
        group.throughput(Throughput::Elements(1 << 16));
        group.bench_function(format!("fill_64k_{label}"), |b| {
            b.iter(|| std::hint::black_box(dev.fill_u32(0, &buf, 1)))
        });
        group.bench_function(format!("gather_scan_{label}"), |b| {
            b.iter(|| {
                dev.launch(0, LaunchCfg::new("scan", buf.len()), |w| {
                    let idxs: Vec<usize> = w.lanes().collect();
                    let mut out = Vec::with_capacity(idxs.len());
                    w.vload32(&buf, &idxs, &mut out);
                    std::hint::black_box(out.len());
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_l2, bench_coalescer, bench_launch
}
criterion_main!(benches);
