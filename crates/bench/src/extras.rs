//! The remaining quantitative claims: §V-F bandwidth efficiency, the §IV-A
//! compiler study, and the §IV ablation set.

use crate::common::default_source;
use crate::common::{f2, f3, mi250x_timing, mk_device, render_table, Scale};
use crate::tables::TABLE_SEED;
use gcd_sim::{ArchProfile, Compiler, ExecMode};
use xbfs_core::{bandwidth_efficiency, Strategy, Xbfs, XbfsConfig};
use xbfs_graph::{rearrange_by_degree, Dataset, RearrangeOrder};

/// §V-F: predicted vs measured bandwidth efficiency on the R-MAT dataset.
pub fn efficiency(scale: &Scale) -> String {
    let g = rearrange_by_degree(
        &scale.table_rmat(TABLE_SEED),
        RearrangeOrder::DegreeDescending,
    );
    let cfg = XbfsConfig::default();
    let dev = mi250x_timing(&cfg, scale.table_shift);
    let run = Xbfs::new(&dev, &g, cfg)
        .expect("bench inputs are valid")
        .run(default_source(&g))
        .expect("bench inputs are valid");
    let eff = bandwidth_efficiency(&run, g.num_vertices(), g.num_edges(), dev.arch());
    format!(
        "§V-F bandwidth efficiency (R-MAT scale {}, {} ms end-to-end):\n\
         predicted bytes 16|V|+4|M| = {:.1} MB -> {:.1}% of peak\n\
         measured fetch            = {:.1} MB -> {:.1}% of peak\n\
         (paper: 13.7% predicted, 16.2% measured on Rmat25)\n",
        25 - scale.table_shift,
        f3(run.total_ms),
        eff.predicted_bytes as f64 / 1e6,
        100.0 * eff.predicted_fraction_of_peak,
        eff.measured_bytes as f64 / 1e6,
        100.0 * eff.measured_fraction_of_peak,
    )
}

/// §IV-A compiler study: total bottom-up expansion time under clang -O3,
/// hipcc -O3 and clang without -O3.
pub fn compilers(scale: &Scale) -> String {
    let g = scale.table_rmat(TABLE_SEED);
    let cfg = XbfsConfig::forced(Strategy::BottomUp);
    let run_with = |compiler: Compiler| {
        let dev = mk_device(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            &cfg,
            compiler,
        );
        let run = Xbfs::new(&dev, &g, cfg)
            .expect("bench inputs are valid")
            .run(default_source(&g))
            .expect("bench inputs are valid");
        let bu_ms: f64 = run
            .level_stats
            .iter()
            .flat_map(|l| &l.kernels)
            .filter(|k| k.name.starts_with("bu_expand"))
            .map(|k| k.runtime_ms)
            .sum();
        (bu_ms, run.total_ms)
    };
    let (clang_bu, clang_total) = run_with(Compiler::ClangO3);
    let (hipcc_bu, hipcc_total) = run_with(Compiler::HipccO3);
    let (o0_bu, o0_total) = run_with(Compiler::ClangO0);
    let rows = vec![
        vec![
            "clang -O3".into(),
            f3(clang_bu),
            f3(clang_total),
            "1.00x".into(),
        ],
        vec![
            "hipcc -O3".into(),
            f3(hipcc_bu),
            f3(hipcc_total),
            format!("{:.2}x", hipcc_bu / clang_bu.max(1e-12)),
        ],
        vec![
            "clang (no -O3)".into(),
            f3(o0_bu),
            f3(o0_total),
            format!("{:.2}x", o0_bu / clang_bu.max(1e-12)),
        ],
    ];
    render_table(
        "§IV-A compiler study: bottom-up expansion time (paper: hipcc +17%/iter, no -O3 up to 10x)",
        &["Compiler", "bu_expand ms", "end-to-end ms", "vs clang"],
        &rows,
    )
}

/// §IV ablations: each optimization toggled off individually, GTEPS on the
/// R-MAT analog.
pub fn ablations(scale: &Scale) -> String {
    let g = rearrange_by_degree(
        &scale.dataset(Dataset::Rmat25, TABLE_SEED),
        RearrangeOrder::DegreeDescending,
    );
    let sources = xbfs_graph::stats::pick_sources(&g, scale.sources, 3);
    let variants: Vec<(&str, XbfsConfig)> = vec![
        ("optimized (all on)", XbfsConfig::optimized_amd()),
        (
            "3 streams (no consolidation)",
            XbfsConfig {
                multi_stream: true,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no NFG",
            XbfsConfig {
                nfg: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "bottom-up balancing on",
            XbfsConfig {
                balancing_bottom_up: true,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no proactive claims",
            XbfsConfig {
                proactive: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
        (
            "no top-down balancing",
            XbfsConfig {
                balancing_top_down: false,
                ..XbfsConfig::optimized_amd()
            },
        ),
    ];
    let mut base_gteps = 0.0;
    let mut rows = Vec::new();
    for (label, cfg) in variants {
        let dev = mk_device(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            &cfg,
            Compiler::ClangO3,
        );
        let xbfs = Xbfs::new(&dev, &g, cfg).expect("bench inputs are valid");
        let (mut edges, mut ms) = (0u64, 0.0f64);
        for &s in &sources {
            let run = xbfs.run(s).expect("bench inputs are valid");
            edges += run.traversed_edges;
            ms += run.total_ms;
        }
        let gteps = edges as f64 / (ms * 1e-3).max(1e-12) / 1e9;
        if rows.is_empty() {
            base_gteps = gteps;
        }
        rows.push(vec![
            label.into(),
            f2(gteps),
            format!("{:+.1}%", 100.0 * (gteps / base_gteps.max(1e-12) - 1.0)),
        ]);
    }
    render_table(
        "§IV ablations on the R-MAT analog (n-to-n GTEPS)",
        &["Variant", "GTEPS", "vs optimized"],
        &rows,
    )
}

/// §V-D "Test of best α": end-to-end n-to-n GTEPS as a function of the
/// bottom-up threshold, on the R-MAT analog. The paper settles on α = 0.1
/// from the per-level study (our Fig. 7); this sweep confirms the choice
/// end-to-end.
pub fn alpha(scale: &Scale) -> String {
    let g = rearrange_by_degree(
        &scale.dataset(Dataset::Rmat25, TABLE_SEED),
        RearrangeOrder::DegreeDescending,
    );
    let sources = xbfs_graph::stats::pick_sources(&g, scale.sources, 21);
    let mut rows = Vec::new();
    for a in [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, f64::INFINITY] {
        let cfg = XbfsConfig {
            alpha: a,
            scan_free_max_ratio: (1e-3f64).min(a),
            ..XbfsConfig::optimized_amd()
        };
        let dev = mk_device(
            ArchProfile::mi250x_gcd(),
            ExecMode::Functional,
            &cfg,
            Compiler::ClangO3,
        );
        let xbfs = Xbfs::new(&dev, &g, cfg).expect("bench inputs are valid");
        let (mut edges, mut ms, mut bu_levels) = (0u64, 0.0f64, 0usize);
        for &s in &sources {
            let run = xbfs.run(s).expect("bench inputs are valid");
            edges += run.traversed_edges;
            ms += run.total_ms;
            bu_levels += run
                .strategy_trace()
                .iter()
                .filter(|&&s| s == Strategy::BottomUp)
                .count();
        }
        let label = if a.is_infinite() {
            "inf (top-down only)".to_string()
        } else {
            format!("{a}")
        };
        rows.push(vec![
            label,
            f2(edges as f64 / (ms * 1e-3).max(1e-12) / 1e9),
            format!("{:.1}", bu_levels as f64 / sources.len() as f64),
        ]);
    }
    render_table(
        "§V-D alpha sweep on the R-MAT analog (paper picks α = 0.1)",
        &["alpha", "GTEPS", "bottom-up levels/run"],
        &rows,
    )
}

/// Multi-GCD scaling study — the paper's "basis for distributed BFS"
/// claim, quantified: strong scaling of the distributed engine over 1–8
/// GCDs, push-only vs direction-optimizing, plus the intro's Graph500
/// framing (Frontier's CPU submission averages ≈ 0.4 GTEPS per GCD).
pub fn scaling(scale: &Scale) -> String {
    use xbfs_multi_gcd::{ClusterConfig, GcdCluster, LinkModel};
    let g = scale.table_rmat(TABLE_SEED);
    let src = default_source(&g);
    let mut rows = Vec::new();
    let mut single_gcd_ms = 0.0f64;
    // 1-8 GCDs = one Frontier node; 16/32 cross node boundaries, where the
    // fabric model switches to the slower inter-node links.
    for num_gcds in [1usize, 2, 4, 8, 16, 32] {
        let mut per_mode = Vec::new();
        for push_only in [false, true] {
            let cfg = ClusterConfig {
                num_gcds,
                alpha: 0.1,
                push_only,
            };
            let mut cluster =
                GcdCluster::new(&g, cfg, LinkModel::frontier()).expect("valid table config");
            let run = cluster.run(src).expect("fault-free run");
            per_mode.push(run);
        }
        let opt = &per_mode[0];
        let push = &per_mode[1];
        if num_gcds == 1 {
            single_gcd_ms = opt.total_ms;
        }
        let exchanged: u64 = push.level_stats.iter().map(|l| l.exchanged_bytes).sum();
        rows.push(vec![
            num_gcds.to_string(),
            f3(opt.total_ms),
            f2(opt.gteps),
            f2(opt.gteps_per_gcd),
            format!("{:.2}x", single_gcd_ms / opt.total_ms.max(1e-12)),
            f3(push.total_ms),
            format!("{:.1} KB", exchanged as f64 / 1024.0),
        ]);
    }
    let mut out = render_table(
        &format!(
            "Multi-GCD strong scaling, R-MAT scale {} (direction-optimizing vs push-only)",
            25 - scale.table_shift
        ),
        &[
            "GCDs",
            "time ms",
            "GTEPS",
            "GTEPS/GCD",
            "speedup",
            "push-only ms",
            "push exch.",
        ],
        &rows,
    );
    out.push_str(
        "\ncontext (paper §I): Frontier's June-2024 CPU Graph500 run = 29654.6 GTEPS\n\
         over 9248 nodes x 8 GCD-equivalents = 0.4 GTEPS/GCD; one simulated GCD\n\
         running XBFS already exceeds that by orders of magnitude at full scale.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_reports_all_gcd_counts() {
        let t = scaling(&Scale::smoke());
        for n in ["1", "2", "4", "8"] {
            assert!(t.lines().any(|l| l.trim_start().starts_with(n)), "{t}");
        }
        assert!(t.contains("GTEPS/GCD"));
    }

    #[test]
    fn compiler_ordering_holds() {
        let t = compilers(&Scale::smoke());
        assert!(t.contains("hipcc"));
        // Extract the two multiplier cells.
        let lines: Vec<&str> = t.lines().collect();
        let cell = |prefix: &str| -> f64 {
            lines
                .iter()
                .find(|l| l.trim_start().starts_with(prefix))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|x| x.trim_end_matches('x').parse().ok())
                .unwrap_or_else(|| panic!("no multiplier row for {prefix:?} in\n{t}"))
        };
        let hipcc_x = cell("hipcc -O3");
        let o0_x = cell("clang (no");
        assert!(hipcc_x > 1.0, "hipcc should be slower: {hipcc_x}");
        assert!(o0_x > hipcc_x, "O0 {o0_x} should exceed hipcc {hipcc_x}");
    }

    #[test]
    fn efficiency_reports_both_numbers() {
        let t = efficiency(&Scale::smoke());
        assert!(t.contains("predicted"));
        assert!(t.contains("measured"));
    }
}
