//! Shared helpers for the experiment harness.

use gcd_sim::{ArchProfile, Compiler, Device, ExecMode};
use xbfs_core::XbfsConfig;
use xbfs_graph::{Csr, Dataset};

/// How much smaller than the paper's datasets to run (graphs shrink by
/// `2^shift`). The default keeps functional-mode experiments minutes-fast
/// and timing-mode experiments tractable.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Shift applied to the Table II datasets for end-to-end experiments.
    pub dataset_shift: u32,
    /// R-MAT scale used by the timing-mode profiler tables ("Rmat25" in
    /// the paper; `25 - table_shift` here).
    pub table_shift: u32,
    /// Sources per dataset for n-to-n experiments.
    pub sources: usize,
    /// Seeds for the Fig. 6 box ranges.
    pub seeds: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            dataset_shift: 7,
            // R-MAT scale 19 under the timing simulator: the ~80 MB working
            // set exceeds the 8 MiB L2 the way Rmat25's 4.3 GB does on the
            // real GCD, so per-level FetchSize behaves like the paper's.
            table_shift: 6,
            sources: 8,
            seeds: 6,
        }
    }
}

impl Scale {
    /// A fast configuration for CI/tests.
    pub fn smoke() -> Self {
        Self {
            dataset_shift: 10,
            table_shift: 12,
            sources: 2,
            seeds: 2,
        }
    }

    /// Generate a Table II dataset at this scale.
    pub fn dataset(&self, d: Dataset, seed: u64) -> Csr {
        d.generate(self.dataset_shift, seed)
    }

    /// Generate the profiler-table R-MAT graph.
    pub fn table_rmat(&self, seed: u64) -> Csr {
        xbfs_graph::generators::rmat_graph(
            xbfs_graph::generators::RmatParams::graph500(25u32.saturating_sub(self.table_shift)),
            seed,
        )
    }
}

/// Build a device for an experiment.
pub fn mk_device(
    arch: ArchProfile,
    mode: ExecMode,
    cfg: &XbfsConfig,
    compiler: Compiler,
) -> Device {
    let mut dev = Device::new(arch, mode, cfg.required_streams());
    dev.set_compiler(compiler);
    dev
}

/// MI250X profile with the L2 capacity scaled down by `2^shift`, matching
/// the graph shrink. The paper's cache behaviour is governed by the
/// working-set : L2 ratio (Rmat25's 128 MB status array vs 8 MiB L2); a
/// `2^shift`-smaller graph against the full-size L2 would sit entirely in
/// cache and erase every per-level FetchSize effect the tables show.
pub fn scaled_mi250x(shift: u32) -> ArchProfile {
    let mut a = ArchProfile::mi250x_gcd();
    a.l2_bytes = (a.l2_bytes >> shift).max(32 << 10);
    a
}

/// Deterministic non-isolated source vertex for single-source experiments.
pub fn default_source(g: &Csr) -> u32 {
    xbfs_graph::stats::pick_sources(g, 1, 0x5EED)
        .first()
        .copied()
        .expect("graph has no vertex with edges")
}

/// MI250X functional-mode device for a config.
pub fn mi250x_functional(cfg: &XbfsConfig) -> Device {
    mk_device(
        ArchProfile::mi250x_gcd(),
        ExecMode::Functional,
        cfg,
        Compiler::ClangO3,
    )
}

/// MI250X timing-mode device for a config, with the L2 scaled to the
/// experiment's graph shrink (see [`scaled_mi250x`]).
pub fn mi250x_timing(cfg: &XbfsConfig, shift: u32) -> Device {
    mk_device(
        scaled_mi250x(shift),
        ExecMode::Timing,
        cfg,
        Compiler::ClangO3,
    )
}

/// Render a table: header + rows of equal arity, columns padded.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Scientific notation like the paper's ratio column.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x >= 1e-2 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200".into()],
            ],
        );
        assert!(t.contains("a"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.725), "0.725");
        assert_eq!(sci(1.86e-9), "1.86e-9");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        render_table("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn scale_generates() {
        let s = Scale::smoke();
        let g = s.dataset(Dataset::Dblp, 1);
        assert!(g.num_vertices() >= 256);
        let r = s.table_rmat(1);
        assert_eq!(r.num_vertices(), 1 << 13);
    }
}
