//! Regeneration of the paper's Figures 5–8.

use crate::common::{f2, f3, mi250x_functional, mk_device, render_table, sci, Scale};
use gcd_sim::{ArchProfile, Compiler, Device, ExecMode};
use std::collections::BTreeMap;
use xbfs_baselines::{BeamerLike, GpuBfs, GunrockLike};
use xbfs_core::{RunCtx, Xbfs, XbfsConfig};
use xbfs_graph::stats::{level_profile, pick_sources};
use xbfs_graph::{rearrange_by_degree, Dataset, RearrangeOrder};

/// Fig. 5: per-kernel time breakdown across the three porting stages:
/// (a) original CUDA XBFS on the P6000 profile, (b) naive hipify on the
/// MI250X, (c) the optimized AMD port.
pub fn fig5(scale: &Scale) -> String {
    let g = scale.table_rmat(crate::tables::TABLE_SEED);
    let configs: [(&str, ArchProfile, XbfsConfig, Compiler); 3] = [
        (
            "(a) CUDA original / P6000",
            ArchProfile::p6000(),
            XbfsConfig::cuda_original(),
            Compiler::ClangO3, // stands in for nvcc -O3
        ),
        (
            "(b) naive hipify / MI250X",
            ArchProfile::mi250x_gcd(),
            XbfsConfig::naive_port(),
            Compiler::HipccO3,
        ),
        (
            "(c) optimized / MI250X",
            ArchProfile::mi250x_gcd(),
            XbfsConfig::optimized_amd(),
            Compiler::ClangO3,
        ),
    ];
    let mut out = String::new();
    for (label, arch, cfg, compiler) in configs {
        let dev = mk_device(arch, ExecMode::Functional, &cfg, compiler);
        // (c) additionally uses the re-arranged graph (§IV-B).
        let src = crate::common::default_source(&g);
        let run = if label.starts_with("(c)") {
            let rg = rearrange_by_degree(&g, RearrangeOrder::DegreeDescending);
            Xbfs::new(&dev, &rg, cfg)
                .expect("bench inputs are valid")
                .run(src)
                .expect("bench inputs are valid")
        } else {
            Xbfs::new(&dev, &g, cfg)
                .expect("bench inputs are valid")
                .run(src)
                .expect("bench inputs are valid")
        };
        let mut per_kernel: BTreeMap<String, f64> = BTreeMap::new();
        for ls in &run.level_stats {
            for k in &ls.kernels {
                *per_kernel.entry(k.name.clone()).or_default() += k.runtime_ms;
            }
        }
        let rows: Vec<Vec<String>> = per_kernel
            .iter()
            .map(|(k, &ms)| vec![k.clone(), f3(ms)])
            .collect();
        out.push_str(&render_table(
            &format!("Fig. 5 {label}: end-to-end {:.3} ms", run.total_ms),
            &["Kernel", "Total ms"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Fig. 6: per-level log2 edge-ratio ranges over random sources, for every
/// dataset.
pub fn fig6(scale: &Scale) -> String {
    let mut out = String::new();
    for d in Dataset::ALL {
        let g = scale.dataset(d, crate::tables::TABLE_SEED);
        let sources = pick_sources(&g, scale.seeds, 7);
        // ratios[level] = all observed log2 ratios at that level.
        let mut ratios: Vec<Vec<f64>> = Vec::new();
        for &s in &sources {
            let p = level_profile(&g, s);
            for (l, &r) in p.edge_ratios.iter().enumerate() {
                if ratios.len() <= l {
                    ratios.resize(l + 1, Vec::new());
                }
                if r > 0.0 {
                    ratios[l].push(r.log2());
                }
            }
        }
        let rows: Vec<Vec<String>> = ratios
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(l, v)| {
                let mut sorted = v.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let min = sorted[0];
                let max = sorted[sorted.len() - 1];
                let med = sorted[sorted.len() / 2];
                vec![l.to_string(), f2(min), f2(med), f2(max)]
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Fig. 6 [{d}]: log2(edge ratio) per level over {} sources ({} levels)",
                sources.len(),
                rows.len()
            ),
            &["Level", "min", "median", "max"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Fig. 7: runtime of each forced strategy at each level (with its ratio),
/// up to and including the peak-ratio level, on the R-MAT dataset.
pub fn fig7(scale: &Scale) -> String {
    let all = crate::tables::forced_level_totals(scale);
    let ratios: Vec<f64> = all[0].levels.iter().map(|&(r, _, _)| r).collect();
    let peak = ratios
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut rows = Vec::new();
    for (l, &ratio) in ratios.iter().enumerate().take(peak + 1) {
        let mut row = vec![l.to_string(), sci(ratio)];
        for s in &all {
            row.push(
                s.levels
                    .get(l)
                    .map(|&(_, _, ms)| f3(ms))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    render_table(
        "Fig. 7: per-level runtime (ms) of each strategy vs ratio (to peak ratio)",
        &["Level", "Ratio", "Scan-free", "Single-scan", "Bottom-up"],
        &rows,
    )
}

/// One dataset row of Fig. 8.
pub struct Fig8Row {
    pub dataset: Dataset,
    pub xbfs_gteps: f64,
    pub xbfs_plain_gteps: f64,
    pub gunrock_gteps: f64,
    pub beamer_gteps: f64,
}

/// Run the Fig. 8 comparison: XBFS (re-arranged), XBFS (not re-arranged)
/// and the Gunrock-like baseline, n-to-n over random sources, per dataset.
pub fn fig8_rows(scale: &Scale) -> Vec<Fig8Row> {
    Dataset::ALL
        .iter()
        .map(|&d| {
            let g = scale.dataset(d, crate::tables::TABLE_SEED);
            let sources = pick_sources(&g, scale.sources, 13);
            let rg = rearrange_by_degree(&g, RearrangeOrder::DegreeDescending);
            let cfg = XbfsConfig::default();

            let gteps_of = |graph: &xbfs_graph::Csr| {
                let dev = mi250x_functional(&cfg);
                let xbfs = Xbfs::new(&dev, graph, cfg).expect("bench inputs are valid");
                let (mut edges, mut ms) = (0u64, 0.0f64);
                for &s in &sources {
                    let run = xbfs.run(s).expect("bench inputs are valid");
                    edges += run.traversed_edges;
                    ms += run.total_ms;
                }
                edges as f64 / (ms * 1e-3).max(1e-12) / 1e9
            };
            let xbfs_gteps = gteps_of(&rg);
            let xbfs_plain_gteps = gteps_of(&g);

            let baseline_gteps = |engine: &dyn GpuBfs| {
                let dev = Device::mi250x();
                let ctx = RunCtx::new(&dev, &g); // uploaded once per engine
                let (mut edges, mut ms) = (0u64, 0.0f64);
                for &s in &sources {
                    let run = engine.run_in(&ctx, s);
                    edges += run.traversed_edges;
                    ms += run.total_ms;
                }
                edges as f64 / (ms * 1e-3).max(1e-12) / 1e9
            };
            let gunrock_gteps = baseline_gteps(&GunrockLike);
            let beamer_gteps = baseline_gteps(&BeamerLike::default());

            Fig8Row {
                dataset: d,
                xbfs_gteps,
                xbfs_plain_gteps,
                gunrock_gteps,
                beamer_gteps,
            }
        })
        .collect()
}

/// Fig. 8 rendered.
pub fn fig8(scale: &Scale) -> String {
    let rows = fig8_rows(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                f2(r.xbfs_gteps),
                f2(r.xbfs_plain_gteps),
                f2(r.gunrock_gteps),
                f2(r.beamer_gteps),
                format!("{:.1}x", r.xbfs_gteps / r.gunrock_gteps.max(1e-12)),
                format!(
                    "{:+.1}%",
                    100.0 * (r.xbfs_gteps / r.xbfs_plain_gteps.max(1e-12) - 1.0)
                ),
            ]
        })
        .collect();
    render_table(
        "Fig. 8: n-to-n GTEPS on one simulated GCD",
        &[
            "Graph",
            "XBFS",
            "XBFS (no rearr.)",
            "Gunrock-like",
            "Beamer-like",
            "vs Gunrock",
            "rearr. gain",
        ],
        &table,
    )
}

/// Extension of Fig. 8: every baseline engine head-to-head with XBFS on
/// every dataset (n-to-n GTEPS). The §II related-work taxonomy, measured.
pub fn baselines_sweep(scale: &Scale) -> String {
    use xbfs_baselines::{EnterpriseLike, HierarchicalQueue, SimpleTopDown, SsspAsync};
    let engines: Vec<Box<dyn GpuBfs>> = vec![
        Box::new(GunrockLike),
        Box::new(EnterpriseLike),
        Box::new(HierarchicalQueue),
        Box::new(SimpleTopDown),
        Box::new(SsspAsync),
        Box::new(BeamerLike::default()),
    ];
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = scale.dataset(d, crate::tables::TABLE_SEED);
        let sources = pick_sources(&g, scale.sources.min(4), 13);
        let gteps_of_runs = |edges: u64, ms: f64| edges as f64 / (ms * 1e-3).max(1e-12) / 1e9;

        let cfg = XbfsConfig::default();
        let dev = mi250x_functional(&cfg);
        let xbfs = Xbfs::new(&dev, &g, cfg).expect("bench inputs are valid");
        let (mut edges, mut ms) = (0u64, 0.0f64);
        for &s in &sources {
            let run = xbfs.run(s).expect("bench inputs are valid");
            edges += run.traversed_edges;
            ms += run.total_ms;
        }
        let mut row = vec![d.to_string(), f2(gteps_of_runs(edges, ms))];
        for e in &engines {
            let dev = Device::mi250x();
            let ctx = RunCtx::new(&dev, &g); // uploaded once per engine
            let (mut edges, mut ms) = (0u64, 0.0f64);
            for &s in &sources {
                let run = e.run_in(&ctx, s);
                edges += run.traversed_edges;
                ms += run.total_ms;
            }
            row.push(f2(gteps_of_runs(edges, ms)));
        }
        rows.push(row);
    }
    render_table(
        "Baseline sweep: n-to-n GTEPS, every engine on every dataset",
        &[
            "Graph",
            "XBFS",
            "gunrock",
            "enterprise",
            "hier-queue",
            "status-arr",
            "sssp-async",
            "beamer",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rows_reach_peak() {
        let s = Scale::smoke();
        let t = fig7(&s);
        assert!(t.contains("Scan-free"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn fig8_shape_holds_on_smoke_scale() {
        let rows = fig8_rows(&Scale::smoke());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.xbfs_gteps > 0.0, "{}", r.dataset);
            assert!(
                r.xbfs_gteps > r.gunrock_gteps,
                "{}: XBFS {} should beat gunrock {}",
                r.dataset,
                r.xbfs_gteps,
                r.gunrock_gteps
            );
        }
    }
}
